#!/usr/bin/env python3
"""Case study: short-lived per-query UDF extensions (§2.2 Obs 1).

A data-processing engine receives queries that each carry a UDF.  The
UDF must be validated, compiled, and injected *per query* -- so the
injection path gates query latency.  Local (agent-style) injection
pays validation+compilation every time; RDX injects a cached binary
in microseconds.

Run:  python examples/udf_per_query.py
"""

from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.udf import Arg, BinOp, Call, Const, Query, QueryEngine

QUERIES = 25


def make_engine():
    sim = Simulator()
    host = Host(sim, "warehouse", cores=8, dram_bytes=1 << 22)
    engine = QueryEngine(host, row_width=4)
    engine.load_table(
        "orders",
        [(i, (i * 37) % 500, (i * 11) % 97, 3) for i in range(500)],
    )
    return sim, engine


def price_udf():
    # clamp(qty * unit_price, 10, discount_cap + 50)
    return Call(
        "clamp",
        BinOp("*", Arg(0), Const(3)),
        Const(10),
        BinOp("+", Arg(1), Const(50)),
    )


def main() -> None:
    print(f"{QUERIES} queries, each shipping the same per-query UDF\n")

    sim, engine = make_engine()
    local_inject = 0.0
    for _ in range(QUERIES):
        result = sim.run_process(
            engine.run_query_local(Query(udf=price_udf(), table="orders"))
        )
        local_inject += result.inject_us
    print(f"local injection:  {local_inject / QUERIES:8.1f} us/query "
          "(validate + compile every time)")

    sim, engine = make_engine()
    rdx_inject = 0.0
    for index in range(QUERIES):
        result = sim.run_process(
            engine.run_query_rdx(
                Query(udf=price_udf(), table="orders"), udf_key="price_v1"
            )
        )
        if index > 0:  # skip the one-time compile
            rdx_inject += result.inject_us
    rdx_mean = rdx_inject / (QUERIES - 1)
    print(f"RDX injection:    {rdx_mean:8.1f} us/query "
          "(cached binary, one-sided write)")

    reference = QueryEngine.reference(
        Query(udf=price_udf(), table="orders"), engine.tables["orders"]
    )
    print(f"\nresults identical to reference evaluator: "
          f"{result.values == reference}")
    print(f"injection speedup: {local_inject / QUERIES / rdx_mean:.0f}x -- "
          "per-query extensions become practical at RDMA speed.")


if __name__ == "__main__":
    main()
