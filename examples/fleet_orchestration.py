#!/usr/bin/env python3
"""Advanced: declarative fleet orchestration, control loops, and
fault-injection testing (the paper's §7 roadmap items, implemented).

1. An **intent document** declares two extensions with a dependency
   and label selectors; the planner compiles it into ordered waves and
   the executor rolls them out transactionally.
2. A **data-driven control loop** watches an XState counter over RDMA
   and auto-deploys a guard extension when it spikes.
3. A **fault-injection campaign** deliberately tears images in flight
   and verifies the sandbox detects every corruption.

Run:  python examples/fleet_orchestration.py
"""

from repro.core.faults import crash_campaign
from repro.core.loops import ControlLoop, ThresholdPolicy
from repro.core.orchestrator import (
    ExtensionSpec,
    Fleet,
    OrchestrationIntent,
    Selector,
    Strategy,
    execute_plan,
    plan_intent,
)
from repro.core.xstate import XStateSpec
from repro.ebpf import MapType, make_stress_program
from repro.exp.harness import make_testbed


def main() -> None:
    bed = make_testbed(n_hosts=4, cores_per_host=4)
    fleet = Fleet(
        codeflows={f.sandbox.host.name: f for f in bed.codeflows},
        labels={
            "node0": {"tier": "web"},
            "node1": {"tier": "web"},
            "node2": {"tier": "web"},
            "node3": {"tier": "db"},
        },
    )

    # -- 1. declarative rollout -----------------------------------------
    intent = OrchestrationIntent(
        name="q3-policy-refresh",
        extensions=[
            ExtensionSpec(
                name="auth_guard",
                program=make_stress_program(800, seed=1, name="auth_guard"),
                hook="ingress",
                targets=Selector(labels={"tier": "web"}),
                after=("audit_log",),
            ),
            ExtensionSpec(
                name="audit_log",
                program=make_stress_program(400, seed=2, name="audit_log"),
                hook="egress",
            ),
        ],
        strategy=Strategy(kind="bbu"),
    )
    plan = plan_intent(intent, fleet)
    print(plan.summary())
    outcome = bed.sim.run_process(execute_plan(bed.control, fleet, plan))
    for wave in outcome.waves:
        print(f"  wave {wave.extension!r}: {len(wave.targets)} targets, "
              f"bubble {wave.window_us:.1f} us")

    # -- 2. data-driven control loop -------------------------------------
    print("\ncontrol loop: watching an error counter over one-sided reads")
    flow = fleet.codeflows["node0"]
    handle = bed.sim.run_process(
        flow.deploy_xstate(XStateSpec("err_counters", MapType.HASH, 4, 8, 8))
    )
    guard = make_stress_program(300, seed=7, name="overload_guard")
    loop = ControlLoop(
        flow,
        handle,
        ThresholdPolicy(
            counter_key=(1).to_bytes(4, "little"),
            high=100,
            low=10,
            guard_program=guard,
            hook_name="egress",
        ),
        interval_us=500,
    )
    loop.start(duration_us=30_000)
    bed.sim.run(until=bed.sim.now + 2_000)
    # The workload's error counter spikes...
    bed.sim.run_process(
        flow.xstate_update(handle, (1).to_bytes(4, "little"),
                           (400).to_bytes(8, "little"))
    )
    bed.sim.run(until=bed.sim.now + 5_000)
    loop.stop()
    bed.sim.run()
    print(f"  loop actions: {[a for _t, a in loop.actions()]}, "
          f"reaction latency {loop.reaction_latency_us():.0f} us")

    # -- 3. fault-injection campaign --------------------------------------
    victim = make_stress_program(600, seed=9, name="victim")
    injected, detected = crash_campaign(bed, victim, rounds=8)
    print(f"\nfault campaign: {injected} payload corruptions injected, "
          f"{detected} detected by the data path "
          f"({'all caught' if injected == detected else 'MISSED SOME'})")


if __name__ == "__main__":
    main()
