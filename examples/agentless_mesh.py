#!/usr/bin/env python3
"""Case study: agentless Wasm filter rollout over a service mesh (§4).

Builds the paper's 11-microservice application twice:

* **agent mode** -- per-pod agents compile filters locally; the
  controller pushes with eventual consistency, and a tracer probe
  catches requests running *mixed* filter versions;
* **RDX mode** -- one ``rdx_broadcast`` updates every sidecar
  transactionally under a Big Bubble Update; no probe ever observes
  mixed logic.

Run:  python examples/agentless_mesh.py
"""

from repro.agent.controller import AgentController
from repro.agent.rollout import RolloutPlan, rollout_eventual
from repro.core.api import bootstrap_sandbox, rdx_broadcast
from repro.core.control_plane import RdxControlPlane
from repro.mesh.apps import AppSpec, MicroserviceApp
from repro.mesh.consistency import ConsistencyProbe
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_header_filter

N_SERVICES = 11
FILTER_PADDING = 800  # sizes the filter like a production module


def agent_rollout() -> tuple[float, int]:
    """Returns (inconsistency window us, mixed-version probes)."""
    sim = Simulator()
    app = MicroserviceApp(sim, AppSpec(n_services=N_SERVICES))
    controller_host = Host(sim, "ctl", cores=8, dram_bytes=32 * 2**20)
    app.fabric.attach(controller_host)
    controller = AgentController(controller_host, max_concurrent_pushes=4)

    v1 = make_header_filter(version=1, padding=FILTER_PADDING)
    for agent in app.agents_by_service().values():
        sim.run_process(agent.inject(v1, "filter0"))

    probe = ConsistencyProbe(app, interval_us=1_000)
    probe.start(duration_us=60_000_000)

    plan = RolloutPlan(
        services=app.agents_by_service(),
        programs={
            svc: [make_header_filter(version=2, padding=FILTER_PADDING)]
            for svc in app.services()
        },
        dependencies=app.dependency_map(),
        hook_name="filter0",
    )
    rollout = sim.run_process(rollout_eventual(controller, plan))
    sim.run(until=sim.now + 5_000)
    probe.stop()
    sim.run()
    return rollout.inconsistency_window_us, probe.result().mixed_count


def rdx_rollout() -> tuple[float, int]:
    """Returns (bubble window us, mixed-version probes)."""
    sim = Simulator()
    app = MicroserviceApp(sim, AppSpec(n_services=N_SERVICES, with_agents=False))
    control_host = Host(sim, "rdx-ctl", cores=8, dram_bytes=32 * 2**20)
    app.fabric.attach(control_host)
    control = RdxControlPlane(control_host)

    codeflows = []
    for service in app.services():
        sandbox = app.pods[service].proxy.sandbox
        bootstrap_sandbox(sandbox)
        codeflows.append(sim.run_process(control.create_codeflow(sandbox)))

    v1 = [make_header_filter(version=1, padding=FILTER_PADDING)
          for _ in codeflows]
    sim.run_process(rdx_broadcast(codeflows, v1, "filter0"))

    probe = ConsistencyProbe(app, interval_us=5.0)
    probe.start(duration_us=60_000_000)

    v2 = [make_header_filter(version=2, padding=FILTER_PADDING)
          for _ in codeflows]
    outcome = sim.run_process(rdx_broadcast(codeflows, v2, "filter0"))
    sim.run(until=sim.now + 1_000)
    probe.stop()
    sim.run()
    return outcome.bubble_window_us, probe.result().mixed_count


def main() -> None:
    agent_window, agent_mixed = agent_rollout()
    rdx_window, rdx_mixed = rdx_rollout()

    print(f"{N_SERVICES}-service app, version 1 -> version 2 filter rollout\n")
    print(f"{'':24}{'update window':>16}{'mixed-logic probes':>20}")
    print(f"{'agent (eventual)':<24}{agent_window / 1000:>13.1f} ms"
          f"{agent_mixed:>20}")
    print(f"{'RDX (broadcast+BBU)':<24}{rdx_window:>13.1f} us"
          f"{rdx_mixed:>20}")
    print("\nRDX turns a mixed-logic window of milliseconds into a")
    print("microsecond bubble during which requests simply buffer.")


if __name__ == "__main__":
    main()
