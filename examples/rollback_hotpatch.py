#!/usr/bin/env python3
"""Case study: microsecond rollback + hot patching (§4).

A faulty extension version ships and the data path starts crashing.
The RDX control plane rolls the hook back to the previous resident
image with one transactional pointer flip -- microseconds, even while
the host CPU is saturated -- then hot-patches the fixed version
through the normal CodeFlow pipeline.

Run:  python examples/rollback_hotpatch.py
"""

from repro.core.rollback import RollbackManager
from repro.ebpf import Interpreter, make_stress_program
from repro.errors import SandboxCrash
from repro.exp.harness import make_testbed


def main() -> None:
    bed = make_testbed(n_hosts=1, cores_per_host=4)
    sim = bed.sim

    stable = make_stress_program(1_300, seed=1, name="policy")
    buggy = make_stress_program(1_300, seed=2, name="policy")
    fixed = make_stress_program(1_300, seed=3, name="policy")

    # v1 ships and works.
    sim.run_process(bed.control.inject(bed.codeflow, stable, "ingress"))
    packet = bytes(range(256))
    result, _ = bed.sandbox.run_hook("ingress", packet)
    print(f"v1 live: r0={result.r0:#x}")

    # v2 ships... and its image gets corrupted on the way to memory.
    sim.run_process(bed.control.inject(bed.codeflow, buggy, "ingress"))
    live = bed.codeflow.deployed["policy"]
    bed.host.memory.write(live.code_addr + 17, b"\xde\xad")
    bed.host.cache.flush(live.code_addr, live.code_len)
    try:
        bed.sandbox.run_hook("ingress", packet)
    except SandboxCrash as crash:
        print(f"v2 crashes the data path: {crash}")

    # Saturate the host CPU -- the situation where agent-path recovery
    # locks out (§2.2 Obs 3 / §4).
    def burner():
        while sim.now < 10_000_000:
            yield from bed.host.cpu.run(950)
            yield sim.timeout(50)

    for _ in range(8):
        sim.spawn(burner())
    mark = sim.now
    sim.run(until=sim.now + 20_000)  # let the load saturate the cores
    load = bed.host.cpu.utilization(since_us=mark)

    # RDX rollback: pointer flip + flush; no host CPU on the path.
    manager = RollbackManager(bed.codeflow)
    record = sim.run_process(manager.rollback("policy"))
    bed.sandbox.crashed = False
    result, _ = bed.sandbox.run_hook("ingress", packet)
    expected = Interpreter().run(stable.insns, packet).r0
    print(f"rolled back to v1 in {record.duration_us:.1f} us under "
          f"{load * 100:.0f}% CPU load "
          f"(correct: {result.r0 == expected})")

    # Hot patch v3 through the normal pipeline.
    report = sim.run_process(manager.hot_patch(fixed))
    result, _ = bed.sandbox.run_hook("ingress", packet)
    expected = Interpreter().run(fixed.insns, packet).r0
    print(f"hot-patched v3 in {report.total_us:.1f} us "
          f"(correct: {result.r0 == expected})")
    print(f"audit log: {len(manager.audit_log)} rollback(s) recorded")


if __name__ == "__main__":
    main()
