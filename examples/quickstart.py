#!/usr/bin/env python3
"""Quickstart: inject an eBPF extension into a remote sandbox with RDX.

Boots a one-rack testbed (one data host + a control-plane server),
installs the management stubs, creates a CodeFlow, deploys a real
eBPF program plus its XState map with one-sided RDMA, and runs the
data path -- printing where every microsecond went.

Run:  python examples/quickstart.py
"""

from repro.core import RdxControlPlane
from repro.core.api import (
    bootstrap_sandbox,
    rdx_create_codeflow,
    rdx_deploy_prog,
    rdx_deploy_xstate,
)
from repro.core.xstate import XStateSpec
from repro.ebpf import BpfMap, Interpreter, MapType, make_stress_program
from repro.net import Cluster
from repro.sandbox import Sandbox
from repro.sim import Simulator


def main() -> None:
    # --- boot the rack ------------------------------------------------
    sim = Simulator()
    cluster = Cluster(sim, n_hosts=1)
    target = cluster.hosts[0]

    sandbox = Sandbox(target, hooks=("ingress", "egress"))
    bootstrap_sandbox(sandbox)  # the one-time ctx_register stub setup
    control = RdxControlPlane(cluster.control_host)

    # --- the extension: a 1.3K-insn socket filter with one map --------
    program = make_stress_program(1_300, seed=42, with_map=True, name="demo")
    initial_map = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
    initial_map.update((0).to_bytes(4, "little"), (7).to_bytes(8, "little"))

    # --- agentless injection ------------------------------------------
    def deploy():
        handle = yield from rdx_create_codeflow(control, sandbox)
        yield from rdx_deploy_xstate(
            handle,
            XStateSpec("stress_map", MapType.ARRAY, 4, 8, 4),
            initial=initial_map,
        )
        # First deploy validates + JIT-compiles on the control plane
        # and caches the result ("validate once, deploy anywhere").
        yield from rdx_deploy_prog(handle, program, "ingress")
        # Repeat deploys measure the pure injection path.
        report = yield from rdx_deploy_prog(handle, program, "ingress")
        return handle, report

    _handle, report = sim.run_process(deploy())

    print(f"deployed {program.name!r} ({len(program.insns)} insns) "
          f"in {report.total_us:.1f} us of simulated time")
    for phase, duration in report.phases().items():
        print(f"  {phase:>9}: {duration:7.2f} us")
    print(f"  target-host CPU consumed: {target.cpu.busy_us:.1f} us  "
          "(agentless: the RNIC did the work)")

    # --- the data path executes the injected code ----------------------
    packet = bytes(range(256))
    result, cost = sandbox.run_hook("ingress", packet)
    expected = Interpreter(maps=[initial_map]).run(program.insns, packet).r0
    print(f"data path: r0={result.r0:#x} in {cost:.2f} us "
          f"(reference match: {result.r0 == expected})")


if __name__ == "__main__":
    main()
