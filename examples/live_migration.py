#!/usr/bin/env python3
"""Case study: extension live migration for microsecond auto-scaling (§4).

A warm-pool scale-out must move the app container *and* its sidecar
filters.  Container state moves over RDMA in microseconds either way;
the filter reload is the bottleneck under per-pod agents (local
recompilation) and near-free under RDX (re-link cached binary + copy
XState one-sided).

Run:  python examples/live_migration.py
"""

from repro.agent.daemon import NodeAgent
from repro.apps.serverless import WarmPool
from repro.core.api import bootstrap_sandbox
from repro.core.control_plane import RdxControlPlane
from repro.core.migration import MigrationManager
from repro.core.xstate import XStateSpec
from repro.ebpf.maps import BpfMap, MapType
from repro.mesh.proxy import SidecarProxy
from repro.net.fabric import Fabric
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_rate_limit_filter

FILTER_PADDING = 3_000
RATE_LIMIT = 1_000


def rig():
    sim = Simulator()
    fabric = Fabric(sim)
    hosts = {
        name: Host(sim, name, cores=4, dram_bytes=32 * 2**20)
        for name in ("src", "replica", "ctl")
    }
    for host in hosts.values():
        fabric.attach(host)
    src = SidecarProxy(hosts["src"], name="src.sidecar")
    replica = SidecarProxy(hosts["replica"], name="replica.sidecar")
    return sim, hosts, src, replica


def agent_path() -> float:
    sim, hosts, _src, replica = rig()
    agent = NodeAgent(hosts["replica"], replica.sandbox)
    pool = WarmPool(sim, [replica])
    filters = [make_rate_limit_filter(limit=RATE_LIMIT, version=1, padding=FILTER_PADDING)]
    report = sim.run_process(
        pool.scale_out_agent(pool.take_replica(), agent, filters, ["filter0"])
    )
    print(f"agent scale-out: {report.total_us:10.1f} us total  "
          f"(filter reload {report.filter_reload_us:.1f} us = "
          f"{report.filter_share * 100:.0f}%)")
    return report.total_us


def rdx_path() -> float:
    sim, hosts, src, replica = rig()
    bootstrap_sandbox(src.sandbox)
    bootstrap_sandbox(replica.sandbox)
    control = RdxControlPlane(hosts["ctl"])
    src_flow = sim.run_process(control.create_codeflow(src.sandbox))
    dst_flow = sim.run_process(control.create_codeflow(replica.sandbox))

    # The source pod runs a rate-limit filter with live counter state.
    module = make_rate_limit_filter(limit=RATE_LIMIT, version=1, padding=FILTER_PADDING)
    src_xstate = sim.run_process(
        src_flow.deploy_xstate(
            XStateSpec("rl_counters", MapType.ARRAY, 4, 8, 8),
            initial=BpfMap(MapType.ARRAY, 4, 8, 8, name="rl_counters"),
        )
    )
    sim.run_process(control.inject(src_flow, module, "filter0"))

    pool = WarmPool(sim, [replica])
    migration = MigrationManager(control)
    report = sim.run_process(
        pool.scale_out_rdx(
            src_flow, dst_flow, migration, [module.name],
        )
    )
    del src_xstate
    print(f"RDX scale-out:   {report.total_us:10.1f} us total  "
          f"(filter migrate {report.filter_reload_us:.1f} us = "
          f"{report.filter_share * 100:.0f}%)")
    return report.total_us


def main() -> None:
    print("warm-pool pod scale-out, including sidecar filter movement\n")
    agent_total = agent_path()
    rdx_total = rdx_path()
    print(f"\nRDX cuts scale-out latency {agent_total / rdx_total:.0f}x by "
          "removing filter recompilation from the critical path.")


if __name__ == "__main__":
    main()
