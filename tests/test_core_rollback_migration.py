"""Rollback, hot-patch, and live-migration tests (§4)."""

import pytest

from repro.core.migration import MigrationManager
from repro.core.rollback import RollbackManager
from repro.core.xstate import XStateSpec
from repro.ebpf.interpreter import Interpreter
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.stress import make_stress_program
from repro.errors import DeployError


def inject(bed, codeflow, program, hook="ingress"):
    return bed.sim.run_process(bed.control.inject(codeflow, program, hook))


class TestRollback:
    def test_rollback_restores_previous_logic(self, testbed):
        stable = make_stress_program(100, seed=1, name="ext")
        faulty = make_stress_program(100, seed=2, name="ext")
        inject(testbed, testbed.codeflow, stable)
        inject(testbed, testbed.codeflow, faulty)
        manager = RollbackManager(testbed.codeflow)
        record = testbed.sim.run_process(manager.rollback("ext"))
        ctx = bytes(range(256))
        result, _ = testbed.sandbox.run_hook("ingress", ctx)
        assert result.r0 == Interpreter().run(stable.insns, ctx).r0
        assert record.duration_us < 50  # microseconds, not milliseconds

    def test_rollback_without_history(self, testbed):
        program = make_stress_program(100, seed=1, name="solo")
        inject(testbed, testbed.codeflow, program)
        manager = RollbackManager(testbed.codeflow)
        process = testbed.sim.spawn(manager.rollback("solo"))
        testbed.sim.run()
        with pytest.raises(DeployError, match="no previous version"):
            _ = process.value

    def test_rollback_unknown_program(self, testbed):
        manager = RollbackManager(testbed.codeflow)
        process = testbed.sim.spawn(manager.rollback("ghost"))
        testbed.sim.run()
        with pytest.raises(DeployError):
            _ = process.value

    def test_repeated_rollback_walks_history(self, testbed):
        v1 = make_stress_program(100, seed=1, name="ext")
        v2 = make_stress_program(100, seed=2, name="ext")
        v3 = make_stress_program(100, seed=3, name="ext")
        for version in (v1, v2, v3):
            inject(testbed, testbed.codeflow, version)
        manager = RollbackManager(testbed.codeflow)
        testbed.sim.run_process(manager.rollback("ext"))  # -> v2
        testbed.sim.run_process(manager.rollback("ext"))  # -> v1
        ctx = bytes(range(256))
        result, _ = testbed.sandbox.run_hook("ingress", ctx)
        assert result.r0 == Interpreter().run(v1.insns, ctx).r0

    def test_audit_log(self, testbed):
        stable = make_stress_program(100, seed=1, name="ext")
        faulty = make_stress_program(100, seed=2, name="ext")
        inject(testbed, testbed.codeflow, stable)
        inject(testbed, testbed.codeflow, faulty)
        manager = RollbackManager(testbed.codeflow)
        testbed.sim.run_process(manager.rollback("ext"))
        assert len(manager.audit_log) == 1
        assert manager.audit_log[0].target == testbed.sandbox.name

    def test_hot_patch_deploys_fix(self, testbed):
        buggy = make_stress_program(100, seed=4, name="svc_ext")
        fixed = make_stress_program(100, seed=5, name="svc_ext")
        inject(testbed, testbed.codeflow, buggy)
        manager = RollbackManager(testbed.codeflow)
        testbed.sim.run_process(manager.hot_patch(fixed))
        ctx = bytes(range(256))
        result, _ = testbed.sandbox.run_hook("ingress", ctx)
        assert result.r0 == Interpreter().run(fixed.insns, ctx).r0

    def test_hot_patch_needs_hook(self, testbed):
        manager = RollbackManager(testbed.codeflow)
        fresh = make_stress_program(100, seed=6, name="brand_new")
        process = testbed.sim.spawn(manager.hot_patch(fresh))
        testbed.sim.run()
        with pytest.raises(DeployError, match="no hook known"):
            _ = process.value


class TestMigration:
    def test_migrate_code(self, testbed2):
        bed = testbed2
        program = make_stress_program(100, seed=1, name="mig")
        inject(bed, bed.codeflows[0], program)
        manager = MigrationManager(bed.control)
        report = bed.sim.run_process(
            manager.migrate(bed.codeflows[0], bed.codeflows[1], "mig")
        )
        ctx = bytes(range(256))
        src_result, _ = bed.sandboxes[0].run_hook("ingress", ctx)
        dst_result, _ = bed.sandboxes[1].run_hook("ingress", ctx)
        assert src_result.r0 == dst_result.r0
        assert report.total_us < 1_000  # microsecond-scale

    def test_migrate_with_xstate(self, testbed2):
        bed = testbed2
        spec = XStateSpec("stress_map", MapType.ARRAY, 4, 8, 4)
        initial = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
        initial.update((0).to_bytes(4, "little"), (42).to_bytes(8, "little"))
        src_handle = bed.sim.run_process(
            bed.codeflows[0].deploy_xstate(spec, initial=initial)
        )
        program = make_stress_program(100, seed=1, with_map=True, name="mig")
        inject(bed, bed.codeflows[0], program)

        # Mutate live state on the source before migrating.
        def mutate():
            yield from bed.codeflows[0].xstate_update(
                src_handle, (0).to_bytes(4, "little"), (777).to_bytes(8, "little")
            )

        bed.sim.run_process(mutate())

        manager = MigrationManager(bed.control)
        report = bed.sim.run_process(
            manager.migrate(
                bed.codeflows[0], bed.codeflows[1], "mig", xstate=src_handle
            )
        )
        assert report.xstate_bytes > 0
        # Destination runs with the *migrated* state value.
        ctx = bytes(256)
        dst_result, _ = bed.sandboxes[1].run_hook("ingress", ctx)
        template = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
        template.update((0).to_bytes(4, "little"), (777).to_bytes(8, "little"))
        expected = Interpreter(maps=[template]).run(program.insns, ctx).r0
        assert dst_result.r0 == expected

    def test_migrate_unknown_program(self, testbed2):
        bed = testbed2
        manager = MigrationManager(bed.control)
        process = bed.sim.spawn(
            manager.migrate(bed.codeflows[0], bed.codeflows[1], "ghost")
        )
        bed.sim.run()
        with pytest.raises(DeployError):
            _ = process.value

    def test_migration_reuses_compile_cache(self, testbed2):
        bed = testbed2
        program = make_stress_program(100, seed=1, name="mig")
        inject(bed, bed.codeflows[0], program)
        compiles_before = bed.control.compiles_run
        manager = MigrationManager(bed.control)
        bed.sim.run_process(
            manager.migrate(bed.codeflows[0], bed.codeflows[1], "mig")
        )
        assert bed.control.compiles_run == compiles_before  # cache hit
