"""Tests for causal deploy-trace reconstruction (spans + trace events)."""

import pytest

from repro.core.broadcast import CodeFlowGroup
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed
from repro.obs.spans import reconstruct_deploy_traces

#: PR-4 pipelined fast-path anchors (BENCH_deploy_pipeline.json): a
#: fully-warm single-target deploy and the 8-target bubble window.
WARM_DEPLOY_ANCHOR_US = 14.1
BUBBLE_WINDOW_ANCHOR_US = 28.6
#: Sim-time tolerance around the anchors (deterministic sim, but the
#: obs plane itself and unrelated PRs legitimately move these a bit).
TOLERANCE = 0.40


def _programs(n, version):
    return [
        make_stress_program(400, seed=version * 31 + i, name=f"prog{i}")
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def broadcast_bed():
    """An 8-target bed after a cold then a fully-warm broadcast."""
    bed = make_testbed(n_hosts=8, cores_per_host=8)
    group = CodeFlowGroup(bed.codeflows)
    for codeflow in bed.codeflows:
        codeflow.tenant = "team-a"
    programs = _programs(8, 1)
    bed.sim.run_process(group.broadcast(programs, "ingress", tenant="team-a"))
    warm = bed.sim.run_process(
        group.broadcast(programs, "ingress", tenant="team-a")
    )
    # Data-path traffic after the rollout: closes the first-exec edge.
    for sandbox in bed.sandboxes:
        sandbox.run_hook("ingress", b"\x00" * 256)
    return bed, warm


class TestBroadcastTrace:
    def test_one_trace_per_root_with_all_legs(self, broadcast_bed):
        bed, _warm = broadcast_bed
        traces = [
            t
            for t in reconstruct_deploy_traces(bed.obs.tracer, bed.obs.recorder)
            if t.root.name == "rdx.broadcast"
        ]
        assert len(traces) == 2  # cold + warm
        for trace in traces:
            assert len(trace.targets) == 8
            assert sorted(leg.target for leg in trace.targets) == sorted(
                sandbox.name for sandbox in bed.sandboxes
            )

    def test_warm_trace_matches_pr4_anchors(self, broadcast_bed):
        """The reconstructed numbers are the benchmark's numbers."""
        bed, warm = broadcast_bed
        trace = reconstruct_deploy_traces(bed.obs.tracer, bed.obs.recorder)[-1]
        assert trace.bubble_window_us == pytest.approx(warm.bubble_window_us)
        assert trace.bubble_window_us == pytest.approx(
            BUBBLE_WINDOW_ANCHOR_US, rel=TOLERANCE
        )
        assert trace.total_us == pytest.approx(warm.total_us, abs=1e-6)
        for leg in trace.targets:
            # Every target became install-visible within the broadcast.
            assert 0 < leg.install_visible_us <= warm.total_us + 1e-6

    def test_first_exec_edge_joins_sandbox_side(self, broadcast_bed):
        bed, _warm = broadcast_bed
        trace = reconstruct_deploy_traces(bed.obs.tracer, bed.obs.recorder)[-1]
        for leg in trace.targets:
            assert leg.first_exec_us is not None
            # Causality: nothing executes before it is install-visible.
            assert leg.first_exec_us >= leg.install_visible_us

    def test_trace_events_cover_the_wire_protocol(self, broadcast_bed):
        bed, _warm = broadcast_bed
        trace = reconstruct_deploy_traces(bed.obs.tracer, bed.obs.recorder)[-1]
        kinds = {event.category for event in trace.events}
        assert {
            "rdx.trace.chain", "rdx.trace.cas", "rdx.trace.flush"
        } <= kinds
        # 8 targets: at least one commit CAS and one cc flush each.
        cas = [e for e in trace.events if e.category == "rdx.trace.cas"]
        flushes = [e for e in trace.events if e.category == "rdx.trace.flush"]
        assert len({e.data["target"] for e in cas}) == 8
        assert len({e.data["target"] for e in flushes}) == 8
        for event in trace.events:
            assert event.data["trace_id"] == trace.trace_id

    def test_tenant_label_rides_trace_and_registry(self, broadcast_bed):
        bed, _warm = broadcast_bed
        trace = reconstruct_deploy_traces(bed.obs.tracer, bed.obs.recorder)[-1]
        assert trace.tenant == "team-a"
        rows = [
            row
            for row in bed.obs.registry.snapshot()
            if row["name"] == "rdx.tenant.install_visible_us"
        ]
        assert rows and all(
            row["labels"] == {"tenant": "team-a"} for row in rows
        )
        # With the default cardinality cap, per-target deploy series
        # aggregate to one label per (unsharded) control plane.
        per_target = {
            row["labels"]["target"]
            for row in bed.obs.registry.snapshot()
            if row["name"] == "rdx.deploy.install_visible_us"
        }
        assert per_target == {"_all"}

    def test_target_labels_opt_in_restores_per_target_series(
        self, monkeypatch
    ):
        from repro import params

        monkeypatch.setattr(params, "RDX_OBS_TARGET_LABELS", True)
        bed = make_testbed(n_hosts=4, cores_per_host=8)
        group = CodeFlowGroup(bed.codeflows)
        bed.sim.run_process(group.broadcast(_programs(4, 7), "ingress"))
        per_target = {
            row["labels"]["target"]
            for row in bed.obs.registry.snapshot()
            if row["name"] == "rdx.deploy.install_visible_us"
        }
        assert per_target == {sandbox.name for sandbox in bed.sandboxes}


class TestInjectTrace:
    def test_warm_inject_reconstructs_and_matches_anchor(self, testbed):
        program = make_stress_program(400, seed=99)
        testbed.sim.run_process(
            testbed.control.inject(testbed.codeflow, program, "ingress")
        )
        report = testbed.sim.run_process(
            testbed.control.inject(testbed.codeflow, program, "ingress")
        )
        assert report.total_us == pytest.approx(
            WARM_DEPLOY_ANCHOR_US, rel=TOLERANCE
        )
        traces = [
            t
            for t in reconstruct_deploy_traces(
                testbed.obs.tracer, testbed.obs.recorder
            )
            if t.root.name == "rdx.inject"
        ]
        assert len(traces) == 2
        warm = traces[-1]
        assert len(warm.targets) == 1
        leg = warm.targets[0]
        assert leg.target == testbed.sandbox.name
        assert 0 < leg.install_visible_us <= warm.total_us + 1e-6

    def test_code_addr_recorded_on_deploy_span(self, testbed):
        program = make_stress_program(300, seed=5)
        report = testbed.sim.run_process(
            testbed.control.inject(testbed.codeflow, program, "ingress")
        )
        spans = testbed.obs.tracer.by_name("rdx.deploy")
        assert spans[-1].attrs["code_addr"] == report.code_addr != 0

    def test_trace_ids_isolate_concurrent_deploys(self, testbed2):
        programs = [make_stress_program(300, seed=i) for i in (1, 2)]
        procs = [
            testbed2.sim.spawn(
                testbed2.control.inject(cf, prog, "ingress"),
                name=f"inj{i}",
            )
            for i, (cf, prog) in enumerate(zip(testbed2.codeflows, programs))
        ]
        testbed2.sim.run()
        assert all(p.triggered for p in procs)
        traces = [
            t
            for t in reconstruct_deploy_traces(
                testbed2.obs.tracer, testbed2.obs.recorder
            )
            if t.root.name == "rdx.inject"
        ]
        assert len(traces) == 2
        assert traces[0].trace_id != traces[1].trace_id
        for trace in traces:
            assert len(trace.targets) == 1
            for event in trace.events:
                assert event.data["target"] == trace.targets[0].target
