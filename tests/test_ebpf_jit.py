"""JIT tests: relocation records, linking, and corruption detection."""

import pytest

from repro.errors import JitError, SandboxCrash
from repro.ebpf import opcodes as op
from repro.ebpf.asm import Asm
from repro.ebpf.interpreter import Interpreter
from repro.ebpf.jit import (
    PLACEHOLDER,
    RelocKind,
    decode_image,
    jit_compile,
)
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.program import BpfProgram
from repro.ebpf.stress import make_stress_program

HELPER_ADDR = {"bpf_map_lookup_elem": 0xAA00_0040, "bpf_ktime_get_ns": 0xAA00_0140}
MAP_ADDR = {"m0": 0x7F00_0000}


def resolve(reloc):
    if reloc.kind is RelocKind.HELPER:
        return HELPER_ADDR[reloc.symbol]
    return MAP_ADDR[reloc.symbol]


def helper_at(address):
    return {0xAA00_0040: 1, 0xAA00_0140: 5}.get(address)


def map_slot_at(address):
    return {0x7F00_0000: 0}.get(address)


def simple_prog():
    return BpfProgram(
        Asm().mov_imm(op.R0, 9).exit_().build(), name="simple"
    )


def helper_prog():
    return BpfProgram(Asm().call(5).exit_().build(), name="uses_helper")


def map_prog():
    asm = (
        Asm()
        .mov_imm(op.R8, 0)
        .stx(op.BPF_W, op.R10, op.R8, -4)
        .mov_reg(op.R2, op.R10)
        .alu64_imm(op.BPF_ADD, op.R2, -4)
        .ld_map_fd(op.R1, 0)
        .call(1)
        .jmp_imm(op.BPF_JEQ, op.R0, 0, "out")
        .ldx_dw(op.R0, op.R0, 0)
        .exit_()
        .label("out")
        .mov_imm(op.R0, 0)
        .exit_()
    )
    return BpfProgram(asm.build(), name="uses_map", map_names=("m0",))


class TestCompile:
    def test_inline_program_has_no_relocations(self):
        binary = jit_compile(simple_prog())
        assert binary.relocations == []
        assert binary.is_linked

    def test_helper_call_emits_relocation(self):
        binary = jit_compile(helper_prog())
        assert len(binary.relocations) == 1
        assert binary.relocations[0].kind is RelocKind.HELPER
        assert binary.relocations[0].symbol == "bpf_ktime_get_ns"
        assert not binary.is_linked

    def test_map_ref_emits_relocation(self):
        binary = jit_compile(map_prog())
        kinds = {r.kind for r in binary.relocations}
        assert kinds == {RelocKind.HELPER, RelocKind.MAP}

    def test_symbol_table_offsets(self):
        binary = jit_compile(map_prog())
        for symbol, offsets in binary.symbols.items():
            for offset in offsets:
                operand = binary.code[offset : offset + 8]
                assert int.from_bytes(operand, "little") == PLACEHOLDER

    def test_arch_variants_differ(self):
        x86 = jit_compile(simple_prog(), arch="x86_64")
        arm = jit_compile(simple_prog(), arch="arm64")
        assert x86.code != arm.code

    def test_unknown_arch(self):
        with pytest.raises(JitError):
            jit_compile(simple_prog(), arch="riscv")

    def test_unknown_helper_rejected(self):
        prog = BpfProgram(Asm().call(999).exit_().build())
        with pytest.raises(JitError):
            jit_compile(prog)


class TestLinkAndDecode:
    def test_roundtrip_inline(self):
        binary = jit_compile(simple_prog())
        insns = decode_image(binary.code, helper_at, map_slot_at)
        assert Interpreter().run(insns, b"").r0 == 9

    def test_roundtrip_with_relocations(self):
        bpf_map = BpfMap(MapType.ARRAY, 4, 8, 4, name="m0")
        bpf_map.update((0).to_bytes(4, "little"), (321).to_bytes(8, "little"))
        linked = jit_compile(map_prog()).link(resolve)
        assert linked.is_linked
        insns = decode_image(linked.code, helper_at, map_slot_at)
        assert Interpreter(maps=[bpf_map]).run(insns, b"").r0 == 321

    def test_stress_program_differential(self):
        program = make_stress_program(1300, seed=7, with_map=True)
        bpf_map = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
        linked = jit_compile(program).link(
            lambda r: HELPER_ADDR.get(r.symbol, 0x7F00_0000)
        )
        insns = decode_image(
            linked.code, helper_at, lambda a: 0 if a == 0x7F00_0000 else None
        )
        ctx = bytes(range(256))
        direct = Interpreter(maps=[bpf_map]).run(program.insns, ctx).r0
        via_jit = Interpreter(maps=[bpf_map]).run(insns, ctx).r0
        assert direct == via_jit

    def test_unresolved_symbol_fails_link(self):
        binary = jit_compile(helper_prog())
        with pytest.raises(JitError, match="unresolved"):
            binary.link(lambda r: None)


class TestCorruptionDetection:
    def test_unlinked_execution_crashes(self):
        binary = jit_compile(helper_prog())
        with pytest.raises(SandboxCrash, match="unresolved"):
            decode_image(binary.code, helper_at, map_slot_at)

    def test_unknown_helper_address_crashes(self):
        linked = jit_compile(helper_prog()).link(lambda r: 0xDDDD)
        with pytest.raises(SandboxCrash, match="unknown"):
            decode_image(linked.code, helper_at, map_slot_at)

    def test_flipped_byte_crashes(self):
        binary = jit_compile(simple_prog())
        corrupt = bytearray(binary.code)
        corrupt[12] ^= 0xFF
        with pytest.raises(SandboxCrash):
            decode_image(bytes(corrupt), helper_at, map_slot_at)

    def test_truncation_crashes(self):
        binary = jit_compile(simple_prog())
        with pytest.raises(SandboxCrash):
            decode_image(binary.code[:-6], helper_at, map_slot_at)

    def test_torn_write_mix_crashes(self):
        """Half-old/half-new image (the §3.5 partial-read hazard)."""
        old = jit_compile(simple_prog()).code
        new = jit_compile(
            BpfProgram(Asm().mov_imm(op.R0, 10).exit_().build())
        ).code
        assert len(old) == len(new)
        torn = new[: len(new) // 2] + old[len(old) // 2 :]
        with pytest.raises(SandboxCrash):
            decode_image(torn, helper_at, map_slot_at)

    def test_wrong_arch_crashes(self):
        binary = jit_compile(simple_prog(), arch="arm64")
        with pytest.raises(SandboxCrash, match="architecture"):
            decode_image(binary.code, helper_at, map_slot_at, expect_arch="x86_64")

    def test_bad_magic_crashes(self):
        binary = jit_compile(simple_prog())
        with pytest.raises(SandboxCrash, match="magic"):
            decode_image(b"XX" + binary.code[2:], helper_at, map_slot_at)

    def test_empty_image_crashes(self):
        with pytest.raises(SandboxCrash, match="too short"):
            decode_image(b"", helper_at, map_slot_at)

    def test_crc_survives_correct_link(self):
        linked = jit_compile(helper_prog()).link(resolve)
        insns = decode_image(linked.code, helper_at, map_slot_at)
        assert insns  # decodes cleanly after re-checksumming
