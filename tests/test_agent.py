"""Agent baseline tests: daemon, controller, rollouts."""

import pytest

from repro import params
from repro.agent.controller import AgentController
from repro.agent.daemon import NodeAgent
from repro.agent.rollout import RolloutPlan, rollout_eventual, rollout_planned
from repro.ebpf.stress import make_stress_program
from repro.errors import ConsistencyError
from repro.exp.harness import make_testbed
from repro.mesh.apps import AppSpec, MicroserviceApp
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_header_filter


class TestDaemonInject:
    def test_inject_installs_and_runs(self, testbed):
        program = make_stress_program(100, seed=1)
        breakdown = testbed.sim.run_process(
            testbed.agent.inject(program, "ingress")
        )
        assert breakdown.total_us > 0
        result, _cost = testbed.sandbox.run_hook("ingress", bytes(range(256)))
        from repro.ebpf.interpreter import Interpreter

        assert result.r0 == Interpreter().run(program.insns, bytes(range(256))).r0

    def test_breakdown_phases_sum_to_total(self, testbed):
        program = make_stress_program(1300, seed=2)
        breakdown = testbed.sim.run_process(
            testbed.agent.inject(program, "ingress")
        )
        assert sum(breakdown.phases().values()) == pytest.approx(
            breakdown.total_us, rel=0.01
        )

    def test_verify_jit_dominates(self, testbed):
        """§2.2 Obs 1: compilation is >= 90% of the load path."""
        program = make_stress_program(1300, seed=3)
        breakdown = testbed.sim.run_process(
            testbed.agent.inject(program, "ingress")
        )
        share = (breakdown.verify_us + breakdown.jit_us) / breakdown.total_us
        assert share >= 0.90

    def test_cost_scales_with_size(self, testbed):
        small = testbed.sim.run_process(
            testbed.agent.inject(make_stress_program(100, seed=1), "ingress")
        )
        large = testbed.sim.run_process(
            testbed.agent.inject(make_stress_program(5000, seed=1), "ingress")
        )
        assert large.total_us > 10 * small.total_us

    def test_injection_burns_host_cpu(self, testbed):
        before = testbed.host.cpu.busy_us
        testbed.sim.run_process(
            testbed.agent.inject(make_stress_program(1300, seed=1), "ingress")
        )
        burned = testbed.host.cpu.busy_us - before
        assert burned >= params.verify_cost_us(1300)

    def test_wasm_injection(self, testbed):
        module = make_header_filter(version=1, padding=50)
        breakdown = testbed.sim.run_process(
            testbed.agent.inject(module, "ingress")
        )
        assert breakdown.verify_us > 0
        assert testbed.agent.stats.injections == 1

    def test_remove(self, testbed):
        program = make_stress_program(100, seed=1)
        testbed.sim.run_process(testbed.agent.inject(program, "ingress"))
        testbed.sim.run_process(testbed.agent.remove(program))
        result, _ = testbed.sandbox.run_hook("ingress", bytes(256))
        assert result is None
        assert testbed.agent.stats.removals == 1

    def test_state_polling_burns_cpu(self, testbed):
        testbed.agent.start_state_polling(
            interval_us=1_000, cost_us=100, duration_us=10_000
        )
        testbed.sim.run()
        assert testbed.agent.stats.polls >= 9
        assert testbed.agent.stats.poll_cpu_us >= 900

    def test_stop_state_polling(self, testbed):
        testbed.agent.start_state_polling(interval_us=1_000, cost_us=10)
        testbed.sim.run(until=5_000)
        testbed.agent.stop_state_polling()
        polls = testbed.agent.stats.polls
        testbed.sim.run(until=20_000)
        assert testbed.agent.stats.polls == polls


class TestController:
    @pytest.fixture
    def rig(self, testbed):
        controller = AgentController(testbed.cluster.control_host)
        return testbed, controller

    def test_push_applies_remotely(self, rig):
        testbed, controller = rig
        program = make_stress_program(100, seed=1)
        result = testbed.sim.run_process(
            controller.push(testbed.agent, program, "ingress")
        )
        assert result.latency_us > params.CONTROLLER_BATCH_DELAY_US
        out, _ = testbed.sandbox.run_hook("ingress", bytes(256))
        assert out is not None

    def test_push_many_concurrent(self):
        bed = make_testbed(n_hosts=3, cores_per_host=4)
        controller = AgentController(bed.cluster.control_host)
        assignments = [
            (agent, make_stress_program(100, seed=i + 1), "ingress")
            for i, agent in enumerate(bed.agents)
        ]
        results = bed.sim.run_process(controller.push_many(assignments))
        assert len(results) == 3
        assert all(r.latency_us > 0 for r in results)

    def test_push_concurrency_waves(self):
        """More pushes than stream workers apply in waves."""
        bed = make_testbed(n_hosts=6, cores_per_host=4)
        controller = AgentController(
            bed.cluster.control_host, max_concurrent_pushes=2
        )
        assignments = [
            (agent, make_stress_program(1300, seed=i + 1), "ingress")
            for i, agent in enumerate(bed.agents)
        ]
        results = bed.sim.run_process(controller.push_many(assignments))
        applied = sorted(r.applied_us for r in results)
        spread = applied[-1] - applied[0]
        single = applied[0] - results[0].issued_us
        assert spread > single  # waves, not one synchronized apply


class TestRollout:
    def _plan(self, app, family="wasm", per_service_insns=300):
        if family == "wasm":
            programs = {
                svc: [make_header_filter(version=2, padding=30)]
                for svc in app.services()
            }
        else:
            programs = {
                svc: [make_stress_program(per_service_insns, seed=i + 1)]
                for i, svc in enumerate(app.services())
            }
        return RolloutPlan(
            services=app.agents_by_service(),
            programs=programs,
            dependencies=app.dependency_map(),
            hook_name="filter0",
        )

    def test_eventual_has_window(self):
        sim = Simulator()
        app = MicroserviceApp(sim, AppSpec(n_services=6))
        controller_host = Host(sim, "ctl", cores=8, dram_bytes=1 << 22)
        app.fabric.attach(controller_host)
        controller = AgentController(controller_host, max_concurrent_pushes=2)
        result = sim.run_process(rollout_eventual(controller, self._plan(app)))
        assert result.inconsistency_window_us > 0
        assert result.update_interval_us >= result.inconsistency_window_us
        assert len(result.applied_us) == 6

    def test_planned_is_violation_free(self):
        sim = Simulator()
        app = MicroserviceApp(sim, AppSpec(n_services=6))
        controller_host = Host(sim, "ctl", cores=8, dram_bytes=1 << 22)
        app.fabric.attach(controller_host)
        controller = AgentController(controller_host)
        plan = self._plan(app)
        result = sim.run_process(rollout_planned(controller, plan))
        assert result.violations(plan) == []

    def test_planned_slower_than_eventual(self):
        def run(mode):
            sim = Simulator()
            app = MicroserviceApp(sim, AppSpec(n_services=6))
            controller_host = Host(sim, "ctl", cores=8, dram_bytes=1 << 22)
            app.fabric.attach(controller_host)
            controller = AgentController(controller_host)
            plan = self._plan(app)
            runner = rollout_planned if mode == "planned" else rollout_eventual
            return sim.run_process(runner(controller, plan)).update_interval_us

        assert run("planned") > run("eventual")

    def test_dependency_order_callees_first(self):
        sim = Simulator()
        app = MicroserviceApp(sim, AppSpec(n_services=6))
        plan = self._plan(app)
        order = plan.dependency_order()
        position = {svc: i for i, svc in enumerate(order)}
        for caller, callees in plan.dependencies.items():
            for callee in callees:
                assert position[callee] < position[caller]

    def test_cycle_rejected(self):
        sim = Simulator()
        app = MicroserviceApp(sim, AppSpec(n_services=2))
        with pytest.raises(ConsistencyError):
            RolloutPlan(
                services=app.agents_by_service(),
                programs={},
                dependencies={"svc0": ["svc1"], "svc1": ["svc0"]},
            )

    def test_missing_agent_rejected(self):
        sim = Simulator()
        app = MicroserviceApp(sim, AppSpec(n_services=2))
        with pytest.raises(ConsistencyError):
            RolloutPlan(
                services=app.agents_by_service(),
                programs={"ghost": []},
                dependencies={},
            )
