"""Interpreter semantics tests: ALU, jumps, memory, helpers, maps."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SandboxError
from repro.ebpf import opcodes as op
from repro.ebpf.asm import Asm
from repro.ebpf.interpreter import Interpreter
from repro.ebpf.maps import BpfMap, MapType

U64 = (1 << 64) - 1


def run(asm: Asm, ctx: bytes = b"\x00" * 256, maps=()):
    return Interpreter(maps=list(maps)).run(asm.build(), ctx)


class TestAlu64:
    @pytest.mark.parametrize(
        "alu_op,a,b,expected",
        [
            (op.BPF_ADD, 3, 4, 7),
            (op.BPF_SUB, 3, 4, (3 - 4) & U64),
            (op.BPF_MUL, 5, 6, 30),
            (op.BPF_DIV, 17, 5, 3),
            (op.BPF_MOD, 17, 5, 2),
            (op.BPF_OR, 0b100, 0b011, 0b111),
            (op.BPF_AND, 0b110, 0b011, 0b010),
            (op.BPF_XOR, 0b110, 0b011, 0b101),
            (op.BPF_LSH, 1, 8, 256),
            (op.BPF_RSH, 256, 8, 1),
        ],
    )
    def test_binary_ops(self, alu_op, a, b, expected):
        asm = (
            Asm()
            .mov_imm(op.R0, a)
            .mov_imm(op.R2, b)
            .alu64_reg(alu_op, op.R0, op.R2)
            .exit_()
        )
        assert run(asm).r0 == expected

    def test_div_by_zero_yields_zero(self):
        asm = (
            Asm().mov_imm(op.R0, 42).mov_imm(op.R2, 0)
            .alu64_reg(op.BPF_DIV, op.R0, op.R2).exit_()
        )
        assert run(asm).r0 == 0

    def test_mod_by_zero_keeps_dividend(self):
        asm = (
            Asm().mov_imm(op.R0, 42).mov_imm(op.R2, 0)
            .alu64_reg(op.BPF_MOD, op.R0, op.R2).exit_()
        )
        assert run(asm).r0 == 42

    def test_arsh_sign_extends(self):
        asm = (
            Asm()
            .mov_imm(op.R0, -16)
            .alu64_imm(op.BPF_ARSH, op.R0, 2)
            .exit_()
        )
        assert run(asm).r0 == (-4) & U64

    def test_neg(self):
        asm = Asm().mov_imm(op.R0, 5).neg(op.R0).exit_()
        assert run(asm).r0 == (-5) & U64

    def test_wrap_at_64_bits(self):
        asm = (
            Asm()
            .lddw(op.R0, U64)
            .alu64_imm(op.BPF_ADD, op.R0, 1)
            .exit_()
        )
        assert run(asm).r0 == 0

    def test_alu32_truncates(self):
        asm = (
            Asm()
            .lddw(op.R0, 0xFFFF_FFFF_FFFF_FFFF)
            .alu32_imm(op.BPF_ADD, op.R0, 1)
            .exit_()
        )
        assert run(asm).r0 == 0  # 32-bit wrap zero-extends

    @given(st.integers(0, U64), st.integers(0, U64))
    def test_add_matches_python(self, a, b):
        asm = (
            Asm().lddw(op.R0, a).lddw(op.R2, b)
            .alu64_reg(op.BPF_ADD, op.R0, op.R2).exit_()
        )
        assert run(asm).r0 == (a + b) & U64


class TestJumps:
    @pytest.mark.parametrize(
        "jmp_op,a,b,taken",
        [
            (op.BPF_JEQ, 5, 5, True),
            (op.BPF_JNE, 5, 5, False),
            (op.BPF_JGT, 6, 5, True),
            (op.BPF_JGE, 5, 5, True),
            (op.BPF_JLT, 4, 5, True),
            (op.BPF_JLE, 5, 5, True),
            (op.BPF_JSET, 0b110, 0b010, True),
            (op.BPF_JSET, 0b100, 0b010, False),
        ],
    )
    def test_conditionals(self, jmp_op, a, b, taken):
        asm = (
            Asm()
            .mov_imm(op.R2, a)
            .mov_imm(op.R3, b)
            .mov_imm(op.R0, 0)
            .jmp_reg(jmp_op, op.R2, op.R3, "yes")
            .exit_()
            .label("yes")
            .mov_imm(op.R0, 1)
            .exit_()
        )
        assert run(asm).r0 == (1 if taken else 0)

    def test_signed_compare(self):
        # -1 (unsigned huge) JSGT 0 must NOT be taken.
        asm = (
            Asm()
            .mov_imm(op.R2, -1)
            .mov_imm(op.R0, 0)
            .jmp_imm(op.BPF_JSGT, op.R2, 0, "yes")
            .exit_()
            .label("yes")
            .mov_imm(op.R0, 1)
            .exit_()
        )
        assert run(asm).r0 == 0

    def test_unconditional(self):
        asm = (
            Asm().mov_imm(op.R0, 1).ja("end").mov_imm(op.R0, 2)
            .label("end").exit_()
        )
        assert run(asm).r0 == 1


class TestMemory:
    def test_ctx_byte_read(self):
        asm = Asm().ldx_b(op.R0, op.R1, 3).exit_()
        assert run(asm, ctx=bytes([0, 0, 0, 0xAB]) + bytes(252)).r0 == 0xAB

    def test_ctx_word_read_little_endian(self):
        ctx = bytes([0x78, 0x56, 0x34, 0x12]) + bytes(252)
        asm = Asm().ldx_w(op.R0, op.R1, 0).exit_()
        assert run(asm, ctx=ctx).r0 == 0x12345678

    def test_stack_roundtrip_all_sizes(self):
        for size, mask in [
            (op.BPF_B, 0xFF),
            (op.BPF_H, 0xFFFF),
            (op.BPF_W, 0xFFFFFFFF),
            (op.BPF_DW, U64),
        ]:
            asm = (
                Asm()
                .lddw(op.R2, 0x1122334455667788)
                .stx(size, op.R10, op.R2, -8)
                .ldx(size, op.R0, op.R10, -8)
                .exit_()
            )
            assert run(asm).r0 == 0x1122334455667788 & mask

    def test_st_immediate(self):
        asm = (
            Asm()
            .st_imm(op.BPF_W, op.R10, -4, 0xCAFE)
            .ldx_w(op.R0, op.R10, -4)
            .exit_()
        )
        assert run(asm).r0 == 0xCAFE

    def test_ctx_write_faults(self):
        asm = Asm().mov_imm(op.R2, 1).stx(op.BPF_B, op.R1, op.R2, 0).exit_()
        with pytest.raises(SandboxError, match="read-only"):
            run(asm)

    def test_wild_pointer_faults(self):
        asm = Asm().mov_imm(op.R2, 0x123).ldx_b(op.R0, op.R2, 0).exit_()
        with pytest.raises(SandboxError, match="bad memory access"):
            run(asm)

    def test_pc_out_of_range_faults(self):
        asm = Asm().mov_imm(op.R0, 0)  # no exit
        with pytest.raises(SandboxError, match="pc"):
            run(asm)

    def test_instruction_budget(self):
        # A self-loop via raw backward jump (interpreter-level guard;
        # the verifier would reject this).
        from repro.ebpf.insn import Insn

        insns = [Insn(op.BPF_JMP | op.BPF_JA, off=-1)]
        with pytest.raises(SandboxError, match="budget"):
            Interpreter(insn_budget=1000).run(insns, b"")


class TestHelpersAndMaps:
    def _lookup_prog(self):
        return (
            Asm()
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .jmp_imm(op.BPF_JEQ, op.R0, 0, "miss")
            .ldx_dw(op.R0, op.R0, 0)
            .exit_()
            .label("miss")
            .mov_imm(op.R0, 0)
            .exit_()
        )

    def test_map_lookup_hit(self):
        bpf_map = BpfMap(MapType.ARRAY, 4, 8, 4)
        bpf_map.update((0).to_bytes(4, "little"), (777).to_bytes(8, "little"))
        assert run(self._lookup_prog(), maps=[bpf_map]).r0 == 777

    def test_map_lookup_miss(self):
        bpf_map = BpfMap(MapType.HASH, 4, 8, 4)
        assert run(self._lookup_prog(), maps=[bpf_map]).r0 == 0

    def test_map_write_through_value_pointer(self):
        bpf_map = BpfMap(MapType.ARRAY, 4, 8, 4)
        asm = (
            Asm()
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .jmp_imm(op.BPF_JEQ, op.R0, 0, "miss")
            .mov_imm(op.R2, 55)
            .stx(op.BPF_DW, op.R0, op.R2, 0)
            .label("miss")
            .mov_imm(op.R0, 0)
            .exit_()
        )
        run(asm, maps=[bpf_map])
        value = bpf_map.lookup((0).to_bytes(4, "little"))
        assert int.from_bytes(value, "little") == 55

    def test_ktime_helper(self):
        asm = Asm().call(5).exit_()
        result = Interpreter(time_ns=123456).run(asm.build(), b"")
        assert result.r0 == 123456

    def test_prandom_deterministic(self):
        asm = Asm().call(7).exit_()
        result = Interpreter(prandom_seq=[9, 8]).run(asm.build(), b"")
        assert result.r0 == 9

    def test_cpu_id_helper(self):
        asm = Asm().call(8).exit_()
        assert Interpreter(cpu_id=3).run(asm.build(), b"").r0 == 3

    def test_unknown_helper_faults(self):
        asm = Asm().call(12345).exit_()
        with pytest.raises(SandboxError, match="unknown helper"):
            run(asm)

    def test_helpers_clobber_r1_to_r5(self):
        asm = (
            Asm()
            .mov_imm(op.R3, 77)
            .call(5)
            .mov_reg(op.R0, op.R3)
            .exit_()
        )
        assert run(asm).r0 == 0  # clobbered to zero
