"""Service-mesh tests: proxies, app DAGs, workloads, consistency probe."""

import pytest

import networkx as nx

from repro.agent.daemon import NodeAgent
from repro.errors import WorkloadError
from repro.mesh.apps import AppSpec, MicroserviceApp, PAPER_APPS, make_app_dag
from repro.mesh.consistency import ConsistencyProbe
from repro.mesh.proxy import SidecarProxy
from repro.mesh.workload import OpenLoopLoad
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_header_filter, make_rate_limit_filter
from repro.wasm.runtime import CONTINUE, DENY, RequestContext


@pytest.fixture
def app():
    sim = Simulator()
    return sim, MicroserviceApp(sim, AppSpec(n_services=6))


class TestAppDag:
    @pytest.mark.parametrize("label,n", PAPER_APPS)
    def test_paper_app_sizes(self, label, n):
        dag = make_app_dag(n)
        assert dag.number_of_nodes() == n
        assert nx.is_directed_acyclic_graph(dag)

    def test_single_entry(self):
        dag = make_app_dag(10)
        roots = [node for node in dag if dag.in_degree(node) == 0]
        assert roots == ["svc0"]

    def test_all_reachable_from_entry(self):
        dag = make_app_dag(33)
        reachable = nx.descendants(dag, "svc0") | {"svc0"}
        assert len(reachable) == 33

    def test_call_path_deterministic(self, app):
        _sim, application = app
        assert application.call_path(12345) == application.call_path(12345)

    def test_call_path_starts_at_entry(self, app):
        _sim, application = app
        for path_hash in (0, 7, 99, 12345):
            path = application.call_path(path_hash)
            assert path[0] == "svc0"
            # Each hop must be a real edge.
            for caller, callee in zip(path, path[1:]):
                assert callee in application.callees_of(caller)

    def test_bigger_apps_have_deeper_paths(self):
        sim = Simulator()
        small = MicroserviceApp(sim, AppSpec(n_services=4))
        sim2 = Simulator()
        big = MicroserviceApp(sim2, AppSpec(n_services=33))
        small_depth = max(len(small.call_path(h)) for h in range(50))
        big_depth = max(len(big.call_path(h)) for h in range(50))
        assert big_depth > small_depth

    def test_agentless_app_has_no_agents(self):
        sim = Simulator()
        application = MicroserviceApp(
            sim, AppSpec(n_services=2, with_agents=False)
        )
        with pytest.raises(WorkloadError):
            application.agents_by_service()


class TestProxy:
    @pytest.fixture
    def proxy(self):
        from repro.net.fabric import Fabric

        sim = Simulator()
        fabric = Fabric(sim)
        host = Host(sim, "h", cores=4, dram_bytes=32 * 2**20)
        fabric.attach(host)
        proxy = SidecarProxy(host, n_filter_slots=2)
        agent = NodeAgent(host, proxy.sandbox)
        return sim, proxy, agent

    def test_empty_chain_continues(self, proxy):
        _sim, sidecar, _agent = proxy
        verdict, cost = sidecar.process_request(RequestContext())
        assert verdict == CONTINUE
        assert cost < 1.0

    def test_filter_executes(self, proxy):
        sim, sidecar, agent = proxy
        sim.run_process(agent.inject(make_header_filter(version=4), "filter0"))
        ctx = RequestContext()
        verdict, cost = sidecar.process_request(ctx)
        assert verdict == CONTINUE
        assert sidecar.versions_seen(ctx) == 4
        assert cost > 1.0

    def test_deny_short_circuits(self, proxy):
        sim, sidecar, agent = proxy
        sim.run_process(agent.inject(make_rate_limit_filter(limit=0), "filter0"))
        sim.run_process(agent.inject(make_header_filter(version=9), "filter1"))
        ctx = RequestContext()
        verdict, _ = sidecar.process_request(ctx)
        assert verdict == DENY
        assert sidecar.versions_seen(ctx) is None  # filter1 never ran
        assert sidecar.requests_denied == 1

    def test_chain_runs_in_order(self, proxy):
        sim, sidecar, agent = proxy
        sim.run_process(agent.inject(make_header_filter(version=1), "filter0"))
        sim.run_process(agent.inject(make_header_filter(version=2), "filter1"))
        ctx = RequestContext()
        sidecar.process_request(ctx)
        assert sidecar.versions_seen(ctx) == 2  # last writer wins


class TestWorkload:
    def test_offered_rate_approximate(self, app):
        sim, application = app
        load = OpenLoopLoad(application, rate_per_s=1000, seed=1,
                            hop_service_us=10)
        stats = sim.run_process(load.run(200_000))
        assert stats.offered == pytest.approx(200, rel=0.3)

    def test_all_complete_when_underloaded(self, app):
        sim, application = app
        load = OpenLoopLoad(application, rate_per_s=200, seed=2,
                            hop_service_us=10)
        stats = sim.run_process(load.run(100_000))
        assert stats.completed == len(stats.records) == stats.offered

    def test_latency_percentile_monotone(self, app):
        sim, application = app
        load = OpenLoopLoad(application, rate_per_s=500, seed=3,
                            hop_service_us=50)
        sim.run_process(load.run(100_000))
        stats = load.stats
        assert stats.latency_percentile(50) <= stats.latency_percentile(99)

    def test_invalid_rate(self, app):
        _sim, application = app
        with pytest.raises(ValueError):
            OpenLoopLoad(application, rate_per_s=0)


class TestConsistencyProbe:
    def test_uniform_versions_not_mixed(self, app):
        sim, application = app
        v1 = make_header_filter(version=1)
        for agent in application.agents_by_service().values():
            sim.run_process(agent.inject(v1, "filter0"))
        probe = ConsistencyProbe(application, interval_us=100)
        probe.start(duration_us=5_000)
        sim.run()
        result = probe.result()
        assert result.probes_sent > 0
        assert result.mixed_count == 0
        assert result.window_us == 0.0

    def test_mixed_versions_detected(self, app):
        sim, application = app
        # Half the services on v1, half on v2: probes crossing the
        # boundary must report mixed.
        services = application.services()
        for index, service in enumerate(services):
            version = 1 if index % 2 == 0 else 2
            agent = application.pods[service].agent
            sim.run_process(
                agent.inject(make_header_filter(version=version), "filter0")
            )
        probe = ConsistencyProbe(application, interval_us=100)
        probe.start(duration_us=10_000)
        sim.run()
        assert probe.result().mixed_count > 0

    def test_stop_ends_probing(self, app):
        sim, application = app
        probe = ConsistencyProbe(application, interval_us=100)
        probe.start(duration_us=1_000_000)
        sim.run(until=2_000)
        probe.stop()
        count = probe.result().probes_sent
        sim.run()
        assert probe.result().probes_sent == count


class TestResponseChain:
    @pytest.fixture
    def proxy(self):
        from repro.net.fabric import Fabric

        sim = Simulator()
        fabric = Fabric(sim)
        host = Host(sim, "h", cores=4, dram_bytes=32 * 2**20)
        fabric.attach(host)
        proxy = SidecarProxy(host, n_filter_slots=2)
        agent = NodeAgent(host, proxy.sandbox)
        return sim, proxy, agent

    def test_empty_response_chain(self, proxy):
        _sim, sidecar, _agent = proxy
        verdict, cost = sidecar.process_response(RequestContext())
        assert verdict == CONTINUE
        assert cost < 1.0

    def test_response_filter_executes(self, proxy):
        sim, sidecar, agent = proxy
        sim.run_process(agent.inject(make_header_filter(version=8), "resp0"))
        ctx = RequestContext()
        verdict, _cost = sidecar.process_response(ctx)
        assert verdict == CONTINUE
        assert sidecar.versions_seen(ctx) == 8

    def test_response_chain_reverse_order(self, proxy):
        sim, sidecar, agent = proxy
        sim.run_process(agent.inject(make_header_filter(version=1), "resp0"))
        sim.run_process(agent.inject(make_header_filter(version=2), "resp1"))
        ctx = RequestContext()
        sidecar.process_response(ctx)
        # resp1 runs first, resp0 last: last writer is version 1.
        assert sidecar.versions_seen(ctx) == 1

    def test_response_deny(self, proxy):
        sim, sidecar, agent = proxy
        sim.run_process(agent.inject(make_rate_limit_filter(limit=0), "resp1"))
        verdict, _ = sidecar.process_response(RequestContext())
        assert verdict == DENY

    def test_request_and_response_chains_independent(self, proxy):
        sim, sidecar, agent = proxy
        sim.run_process(agent.inject(make_header_filter(version=3), "filter0"))
        ctx = RequestContext()
        sidecar.process_response(ctx)
        assert sidecar.versions_seen(ctx) is None  # resp chain empty

    def test_workload_with_responses(self):
        sim = Simulator()
        application = MicroserviceApp(sim, AppSpec(n_services=4))
        # Response filter that denies everything on one service.
        agent = application.pods["svc0"].agent
        sim.run_process(agent.inject(make_rate_limit_filter(limit=0), "resp0"))
        load = OpenLoopLoad(application, rate_per_s=500, seed=4,
                            hop_service_us=10, with_responses=True)
        stats = sim.run_process(load.run(50_000))
        # Every request unwinds through svc0's resp chain -> all denied.
        assert stats.offered > 0
        assert all(r.denied for r in stats.records)
