"""Happens-before race checker: recorder helpers, graph, detectors.

Three layers of coverage:

* unit tests over :class:`TraceRecorder` helpers and hand-crafted
  ``hb.*`` event lists (graph edges, each detector's bug class);
* instrumentation tests driving the real sync layer with checking on
  (per-WR post ranges, selective signaling);
* schedule tests running the known-bad interleavings end to end and
  the PR 4 reconciler orphan-detach regression reframed as an HB
  violation.
"""

from __future__ import annotations

import pytest

from repro import params
from repro.ebpf.stress import make_stress_program
from repro.errors import SandboxCrash
from repro.exp import hb_schedules
from repro.exp.harness import make_testbed
from repro.hb import checker
from repro.hb.detect import detect_races
from repro.hb.events import HbEvent, extract, txn_note
from repro.hb.graph import HbGraph
from repro.sim.trace import TraceRecorder


@pytest.fixture
def hb_on():
    saved = params.RDX_HB_CHECK
    params.RDX_HB_CHECK = True
    yield
    params.RDX_HB_CHECK = saved


# -- TraceRecorder helpers (satellite: overlap filter + since) -------------


class TestRecorderHelpers:
    def test_filter_address_range_overlap(self):
        trace = TraceRecorder()
        trace.record(1.0, "hb.land", addr=0x1000, length=0x100)
        trace.record(2.0, "hb.land", addr=0x1100, length=0x100)  # adjacent
        trace.record(3.0, "hb.land", addr=0x10F0, length=0x20)  # straddles
        trace.record(4.0, "other", note="no addr")
        hits = list(trace.filter(address_range=(0x1000, 0x1100)))
        assert [e.time_us for e in hits] == [1.0, 3.0]

    def test_filter_address_range_default_length_one(self):
        trace = TraceRecorder()
        trace.record(1.0, "hb.exec", addr=0x2000)  # no length key
        assert list(trace.filter(address_range=(0x2000, 0x2001)))
        assert not list(trace.filter(address_range=(0x2001, 0x3000)))

    def test_filter_range_composes_with_category(self):
        trace = TraceRecorder()
        trace.record(1.0, "hb.land", addr=0x1000, length=8)
        trace.record(2.0, "hb.post", addr=0x1000, length=8)
        hits = list(trace.filter("hb.land", address_range=(0x1000, 0x1008)))
        assert [e.category for e in hits] == ["hb.land"]

    def test_since_returns_suffix_in_order(self):
        trace = TraceRecorder()
        for t in range(10):
            trace.record(float(t), "ev", i=t)
        tail = trace.since(7.0)
        assert [e.data["i"] for e in tail] == [7, 8, 9]
        assert trace.since(99.0) == []
        assert len(trace.since(0.0)) == 10


# -- hand-crafted event lists ----------------------------------------------


def _ev(seq, etype, **data):
    return HbEvent(seq, float(seq), etype, data)


def _write(seq, qp, addr, length, wr_id=None, **extra):
    return _ev(
        seq, "land", qp=qp, target="t0", kind="WRITE", addr=addr,
        length=length, wr_id=wr_id if wr_id is not None else seq, **extra,
    )


class TestGraphEdges:
    def test_same_qp_sq_fifo_orders_lands(self):
        graph = HbGraph([_write(0, qp=1, addr=0, length=8),
                         _write(1, qp=1, addr=100, length=8)])
        assert graph.happens_before(graph.events[0], graph.events[1])

    def test_cross_qp_lands_are_concurrent(self):
        graph = HbGraph([_write(0, qp=1, addr=0, length=8),
                         _write(1, qp=2, addr=100, length=8)])
        assert graph.concurrent(graph.events[0], graph.events[1])

    def test_signaled_completion_orders_subsequent_posts(self):
        # land(wr=7) -> comp(wr=7) -> post(wr=8) -> land(wr=8):
        # the completion is the ordering point even across bodies.
        events = [
            _write(0, qp=1, addr=0, length=8, wr_id=7),
            _ev(1, "comp", qp=1, wr_id=7, status="ok"),
            _ev(2, "post", qp=1, target="t0", kind="WRITE", addr=100,
                length=8, wr_id=8),
            _write(3, qp=1, addr=100, length=8, wr_id=8),
        ]
        graph = HbGraph(events)
        assert graph.happens_before(events[0], events[2])
        assert graph.happens_before(events[1], events[3])

    def test_unsignaled_wr_has_no_completion_edge(self):
        # No comp event between the two QPs' activity: a post on qp 2
        # is NOT ordered behind qp 1's land no matter the wall clock.
        events = [
            _write(0, qp=1, addr=0, length=8),
            _ev(1, "post", qp=2, target="t0", kind="WRITE", addr=0,
                length=8, wr_id=9),
            _write(2, qp=2, addr=0, length=8, wr_id=9),
        ]
        graph = HbGraph(events)
        assert graph.concurrent(events[0], events[2])

    def test_lock_release_orders_next_acquire(self):
        events = [
            _ev(0, "lock", qp=1, target="t0", op="acquire", addr=0x40,
                token="a"),
            _write(1, qp=1, addr=0x80, length=8),
            _ev(2, "lock", qp=1, target="t0", op="release", addr=0x40,
                token="a"),
            _ev(3, "lock", qp=2, target="t0", op="acquire", addr=0x40,
                token="b"),
            _write(4, qp=2, addr=0x80, length=8),
        ]
        graph = HbGraph(events)
        # The critical-section write on qp 1 is ordered before the
        # write under the next holder's lock on qp 2.
        assert graph.happens_before(events[1], events[4])

    def test_epoch_fence_orders_old_epoch_effects(self):
        events = [
            _write(0, qp=1, addr=0x100, length=8, epoch=1),
            _ev(1, "land", qp=2, target="t0", kind="CAS", addr=0x8,
                length=8, wr_id=50, label="epoch", value=2, success=True),
        ]
        graph = HbGraph(events)
        assert graph.happens_before(events[0], events[1])

    def test_reads_from_installer_orders_exec(self):
        events = [
            _ev(0, "land", qp=1, target="t0", kind="WRITE", addr=0x20,
                length=8, wr_id=3, value=0x9000),
            _ev(1, "exec", target="t0", hook_addr=0x20, pointer=0x9000,
                addr=0x9000, length=64),
        ]
        graph = HbGraph(events)
        assert graph.happens_before(events[0], events[1])


class TestDetectorsSynthetic:
    def test_unordered_write_write_overlap(self):
        graph = HbGraph([_write(0, qp=1, addr=0x1000, length=0x100),
                         _write(1, qp=2, addr=0x1080, length=0x100)])
        findings = detect_races(graph)
        assert [f.kind for f in findings] == ["unordered-write-write"]
        assert findings[0].range == (0x1080, 0x1100)
        assert findings[0].first.seq == 0 and findings[0].second.seq == 1

    def test_ordered_writes_are_clean(self):
        graph = HbGraph([_write(0, qp=1, addr=0x1000, length=0x100),
                         _write(1, qp=1, addr=0x1080, length=0x100)])
        assert detect_races(graph) == []

    def test_disjoint_ranges_are_clean(self):
        graph = HbGraph([_write(0, qp=1, addr=0x1000, length=0x10),
                         _write(1, qp=2, addr=0x2000, length=0x10)])
        assert detect_races(graph) == []

    def test_torn_exec_on_write_racing_exec(self):
        events = [
            _write(0, qp=1, addr=0x9000, length=0x200),
            _ev(1, "exec", target="t0", hook_addr=0x20, pointer=0x9000,
                addr=0x9000, length=0x200),
        ]
        # No reads-from edge: the exec observed a pointer nobody in
        # the trace installed, racing the in-flight body write.
        findings = detect_races(HbGraph(events))
        assert [f.kind for f in findings] == ["torn-exec"]

    def test_bubble_label_specializes_kind(self):
        events = [
            _write(0, qp=1, addr=0x10, length=8, label="bubble"),
            _write(1, qp=2, addr=0x10, length=8, label="bubble"),
        ]
        findings = detect_races(HbGraph(events))
        assert [f.kind for f in findings] == ["bubble-race"]

    def test_atomic_vs_atomic_is_serialized(self):
        events = [
            _ev(0, "land", qp=1, target="t0", kind="CAS", addr=0x8,
                length=8, wr_id=1, value=1, success=True),
            _ev(1, "land", qp=2, target="t0", kind="FADD", addr=0x8,
                length=8, wr_id=2, value=1, success=True),
        ]
        assert detect_races(HbGraph(events)) == []

    def test_failed_cas_is_not_an_effect(self):
        events = [
            _write(0, qp=1, addr=0x8, length=8),
            _ev(1, "land", qp=2, target="t0", kind="CAS", addr=0x8,
                length=8, wr_id=2, success=False),
        ]
        assert detect_races(HbGraph(events)) == []

    def test_commit_before_body(self):
        events = [
            _ev(0, "post", qp=2, target="t0", kind="CAS", addr=0x20,
                length=8, wr_id=9, txn=5, pub_addr=0x9000, pub_len=0x100),
            _ev(1, "land", qp=2, target="t0", kind="CAS", addr=0x20,
                length=8, wr_id=9, txn=5, pub_addr=0x9000, pub_len=0x100,
                value=0x9000, success=True),
            _write(2, qp=1, addr=0x9000, length=0x100, txn=5),
        ]
        findings = detect_races(HbGraph(events))
        kinds = [f.kind for f in findings]
        assert "commit-before-body" in kinds
        finding = findings[kinds.index("commit-before-body")]
        assert finding.first.seq == 2 and finding.second.seq == 1

    def test_body_before_commit_is_clean(self):
        events = [
            _write(0, qp=1, addr=0x9000, length=0x100, txn=5),
            _ev(1, "comp", qp=1, wr_id=0, status="ok"),
            _ev(2, "post", qp=1, target="t0", kind="CAS", addr=0x20,
                length=8, wr_id=9, txn=5, pub_addr=0x9000, pub_len=0x100),
            _ev(3, "land", qp=1, target="t0", kind="CAS", addr=0x20,
                length=8, wr_id=9, txn=5, value=0x9000, success=True),
        ]
        assert detect_races(HbGraph(events)) == []

    def test_stale_epoch_write_after_fence(self):
        events = [
            _ev(0, "land", qp=2, target="t0", kind="CAS", addr=0x8,
                length=8, wr_id=1, label="epoch", value=3, success=True),
            _write(1, qp=1, addr=0x100, length=8, epoch=2),
        ]
        findings = detect_races(HbGraph(events))
        assert [f.kind for f in findings] == ["stale-epoch-write"]

    def test_current_epoch_write_is_clean(self):
        events = [
            _ev(0, "land", qp=2, target="t0", kind="CAS", addr=0x8,
                length=8, wr_id=1, label="epoch", value=3, success=True),
            _write(1, qp=1, addr=0x100, length=8, epoch=3),
        ]
        assert detect_races(HbGraph(events)) == []


# -- instrumentation over the real stack -----------------------------------


class TestInstrumentation:
    def test_batch_posts_carry_ranges_and_selective_signaling(self, hb_on):
        bed = make_testbed(n_hosts=1, cores_per_host=2)
        sandbox = bed.sandboxes[0]
        assert sandbox.ctx_manifest is not None
        base = sandbox.ctx_manifest.code_addr
        ops = [(base, b"a" * 64), (base + 64, b"b" * 32),
               (base + 96, b"c" * 8)]
        start = len(bed.obs.recorder.events)  # skip testbed setup
        bed.sim.run_process(bed.codeflow.sync.write_batch(ops))
        events = extract(list(bed.obs.recorder.events)[start:])
        checker.consume(bed.sim)  # clean teardown under RDX_HB_CHECK=1

        posts = [e for e in events if e.etype == "post"]
        assert [(e.addr, e.length) for e in posts] == [
            (base, 64), (base + 64, 32), (base + 96, 8)
        ]
        assert [e.get("signaled") for e in posts] == [False, False, True]
        chains = {e.get("chain") for e in posts}
        assert len(chains) == 1 and None not in chains  # one doorbell
        comps = [
            e for e in events
            if e.etype == "comp" and e.get("chain") in chains
        ]
        assert len(comps) == 1 and comps[0].get("chained") == 3

    def test_deploy_tags_body_and_commit_with_txn(self, hb_on):
        bed = make_testbed(n_hosts=1, cores_per_host=2)
        program = make_stress_program(120, seed=3, name="hbtag")
        bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )
        events = extract(bed.obs.recorder)
        checker.consume(bed.sim)

        commits = [
            e for e in events
            if e.etype == "land" and e.kind == "CAS"
            and e.get("pub_addr") is not None
        ]
        assert commits, "commit CAS should carry a publishes range"
        txn = commits[-1].get("txn")
        body = [
            e for e in events
            if e.etype == "land" and e.kind == "WRITE" and e.get("txn") == txn
        ]
        assert body, "body writes should share the commit's txn id"

    def test_clean_deploy_and_exec_has_no_findings(self, hb_on):
        bed = make_testbed(n_hosts=1, cores_per_host=2)
        program = make_stress_program(120, seed=4, name="hbok")
        bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )
        bed.sandboxes[0].run_hook("ingress", bytes(256))
        report = checker.consume(bed.sim)
        assert report.events > 0
        assert report.clean, checker.format_findings(report.findings)

    def test_truncated_trace_is_not_reported_clean(self):
        trace = TraceRecorder(max_events=2)
        trace.record(1.0, "hb.land", qp=1, target="t0", kind="WRITE",
                     addr=0, length=8, wr_id=1)
        trace.record(2.0, "hb.land", qp=1, target="t0", kind="WRITE",
                     addr=8, length=8, wr_id=2)
        trace.record(3.0, "hb.land", qp=1, target="t0", kind="WRITE",
                     addr=16, length=8, wr_id=3)
        report = checker.check_recorder(trace)
        assert report.truncated and not report.clean
        assert report.findings == []


# -- known-bad schedules end to end ----------------------------------------


class TestSchedules:
    def test_clean_schedule(self, hb_on):
        result = hb_schedules._schedule_clean_deploy(seed=0)
        assert result.ok and not result.findings

    def test_reordered_commit_fires(self, hb_on):
        result = hb_schedules._schedule_reordered_commit(seed=0)
        assert "commit-before-body" in result.kinds
        finding = result.findings[0]
        assert finding.first.seq != finding.second.seq
        lo, hi = finding.range
        assert lo < hi  # names the published range

    def test_fenceless_stale_writer_fires(self, hb_on):
        result = hb_schedules._schedule_fenceless_stale_writer(seed=0)
        assert "stale-epoch-write" in result.kinds

    def test_torn_install_fires(self, hb_on):
        result = hb_schedules._schedule_torn_install(seed=0)
        assert "torn-exec" in result.kinds

    def test_bubble_race_fires(self, hb_on):
        result = hb_schedules._schedule_bubble_race(seed=0)
        assert "bubble-race" in result.kinds

    def test_reconciler_orphan_detach_regression(self, hb_on):
        """PR 4 regression, reframed as an ordering violation.

        The recovery reconciler detaches orphan images and releases
        their pages for reuse.  Detaching while the data path still
        executes the image is exactly a WRITE/EXEC race on the reused
        range: a redeploy that lands fresh code over the orphan's
        address must be HB-after the last exec that observed the old
        pointer -- there is no such edge, and the checker says so.
        """
        bed = make_testbed(n_hosts=1, cores_per_host=2)
        sim = bed.sim
        sandbox = bed.sandboxes[0]
        program = make_stress_program(300, seed=9, name="orphan")
        sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        record = bed.codeflow.deployed[program.name]

        # Reconciler-style reuse: scrub + rewrite the orphan's range
        # through its own QP while the hook pointer still references it.
        scrubber = hb_schedules.sibling_sync(bed, sandbox)
        sim.spawn(
            scrubber.write(record.code_addr, b"\x00" * record.code_len),
            name="orphan-detach",
        )
        sim.run(until=sim.now + 2.0)  # detach in flight, partially landed
        try:
            sandbox.run_hook("ingress", bytes(256))
        except SandboxCrash:
            pass
        sandbox.crashed = False
        sim.run(until=sim.now + 10_000)

        report = checker.consume(sim)
        kinds = [f.kind for f in report.findings]
        assert "torn-exec" in kinds
        finding = report.findings[kinds.index("torn-exec")]
        lo, hi = finding.range
        assert lo >= record.code_addr
        assert hi <= record.code_addr + record.code_len


class TestTxnNote:
    def test_txn_note_mints_unique_ids(self):
        a, b = txn_note(), txn_note()
        assert a["txn"] != b["txn"]
        c = txn_note(publishes=(0x9000, 0x80))
        assert c["pub_addr"] == 0x9000 and c["pub_len"] == 0x80
