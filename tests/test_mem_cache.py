"""Unit tests for the CPU cache / DMA incoherence model (Fig 5 substrate)."""

import pytest

from repro import params
from repro.mem.cache import CacheModel
from repro.mem.memory import PhysicalMemory
from repro.sim.core import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    mem = PhysicalMemory(1 << 20)
    cache = CacheModel(sim, mem, cpki=5.0, seed=42)
    return sim, mem, cache


class TestBasicCoherence:
    def test_first_read_is_fresh(self, setup):
        sim, mem, cache = setup
        mem.write(mem.base, b"fresh-data")
        assert cache.cpu_read(mem.base, 10) == b"fresh-data"

    def test_cpu_write_is_write_through(self, setup):
        sim, mem, cache = setup
        cache.cpu_write(mem.base, b"written")
        assert mem.read(mem.base, 7) == b"written"
        assert cache.cpu_read(mem.base, 7) == b"written"

    def test_dma_write_goes_stale_behind_cached_line(self, setup):
        sim, mem, cache = setup
        mem.write(mem.base, b"old-value")
        cache.cpu_read(mem.base, 9)  # cache it
        cache.dma_write(mem.base, b"new-value")
        # DRAM has the new bytes; the CPU still sees the old ones.
        assert mem.read(mem.base, 9) == b"new-value"
        assert cache.cpu_read(mem.base, 9) == b"old-value"
        assert cache.is_stale(mem.base)

    def test_uncached_dma_write_visible_immediately(self, setup):
        sim, mem, cache = setup
        cache.dma_write(mem.base + 128, b"direct")
        assert cache.cpu_read(mem.base + 128, 6) == b"direct"

    def test_flush_restores_coherence(self, setup):
        sim, mem, cache = setup
        cache.cpu_read(mem.base, 8)
        cache.dma_write(mem.base, b"12345678")
        cache.flush(mem.base, 8)
        assert cache.cpu_read(mem.base, 8) == b"12345678"
        assert not cache.is_stale(mem.base)

    def test_cpu_write_refreshes_stale_line(self, setup):
        sim, mem, cache = setup
        cache.cpu_read(mem.base, 8)
        cache.dma_write(mem.base, b"AAAAAAAA")
        # CPU store to the same line pulls the whole line fresh.
        cache.cpu_write(mem.base + 8, b"B")
        assert cache.cpu_read(mem.base, 8) == b"AAAAAAAA"

    def test_dma_read_sees_dram(self, setup):
        sim, mem, cache = setup
        cache.cpu_write(mem.base, b"cpu-bytes")
        assert cache.dma_read(mem.base, 9) == b"cpu-bytes"


class TestEviction:
    def test_eviction_ends_staleness(self, setup):
        sim, mem, cache = setup
        cache.cpu_read(mem.base, 8)
        cache.dma_write(mem.base, b"newnewne")
        # Advance far beyond any plausible eviction deadline.
        sim.run(until=10_000_000)
        assert cache.cpu_read(mem.base, 8) == b"newnewne"

    def test_zero_cpki_never_evicts(self):
        sim = Simulator()
        mem = PhysicalMemory(1 << 16)
        cache = CacheModel(sim, mem, cpki=0.0, seed=1)
        cache.cpu_read(mem.base, 8)
        cache.dma_write(mem.base, b"xxxxxxxx")
        sim.run(until=100_000_000)
        assert cache.cpu_read(mem.base, 8) == bytes(8)  # still stale

    def test_higher_cpki_evicts_sooner(self):
        def staleness_duration(cpki: float) -> float:
            durations = []
            for seed in range(40):
                sim = Simulator()
                mem = PhysicalMemory(1 << 16)
                cache = CacheModel(sim, mem, cpki=cpki, seed=seed)
                cache.cpu_read(mem.base, 8)
                cache.dma_write(mem.base, b"zzzzzzzz")
                while cache.cpu_read(mem.base, 8) != b"zzzzzzzz":
                    sim.run(until=sim.now + 5)
                durations.append(sim.now)
            return sum(durations) / len(durations)

        assert staleness_duration(40.0) < staleness_duration(5.0)

    def test_cpki_validation(self, setup):
        _sim, _mem, cache = setup
        with pytest.raises(ValueError):
            cache.cpki = -1


class TestStats:
    def test_hit_miss_counting(self, setup):
        sim, mem, cache = setup
        cache.cpu_read(mem.base, 8)  # miss
        cache.cpu_read(mem.base, 8)  # hit
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_stale_hits_counted(self, setup):
        sim, mem, cache = setup
        cache.cpu_read(mem.base, 8)
        cache.dma_write(mem.base, b"qqqqqqqq")
        cache.cpu_read(mem.base, 8)
        assert cache.stats.stale_hits >= 1

    def test_flush_counted(self, setup):
        sim, mem, cache = setup
        cache.cpu_read(mem.base, 8)
        cache.flush(mem.base, 8)
        assert cache.stats.flushes == 1

    def test_flush_all(self, setup):
        sim, mem, cache = setup
        cache.cpu_read(mem.base, 8)
        cache.dma_write(mem.base, b"newbytes")
        cache.flush_all()
        assert cache.cpu_read(mem.base, 8) == b"newbytes"


class TestMultiLine:
    def test_read_spanning_lines(self, setup):
        sim, mem, cache = setup
        data = bytes(range(200))
        mem.write(mem.base, data)
        assert cache.cpu_read(mem.base, 200) == data

    def test_partial_line_staleness(self, setup):
        sim, mem, cache = setup
        line = params.CACHE_LINE_BYTES
        # Cache two lines; DMA only the second.
        cache.cpu_read(mem.base, 2 * line)
        cache.dma_write(mem.base + line, b"\xee" * line)
        view = cache.cpu_read(mem.base, 2 * line)
        assert view[:line] == bytes(line)
        assert view[line:] == bytes(line)  # stale: still zeros
        cache.flush(mem.base + line, line)
        view = cache.cpu_read(mem.base, 2 * line)
        assert view[line:] == b"\xee" * line
