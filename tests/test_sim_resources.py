"""Unit tests for resources: Resource, CPU, Container, Store."""

import pytest

from repro.sim.core import Simulator
from repro.sim.resources import CPU, Container, Mutex, Resource, Store


class TestResource:
    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        a, b, c = resource.request(), resource.request(), resource.request()
        sim.run()
        assert a.triggered and b.triggered
        assert not c.triggered
        assert resource.in_use == 2
        assert resource.queue_len == 1

    def test_release_grants_next_waiter(self, sim):
        resource = Resource(sim, capacity=1)
        a = resource.request()
        b = resource.request()
        sim.run()
        resource.release(a)
        sim.run()
        assert b.triggered

    def test_release_unheld_is_error(self, sim):
        resource = Resource(sim, capacity=1)
        grant = sim.event()
        with pytest.raises(Exception):
            resource.release(grant)

    def test_priority_order(self, sim):
        resource = Resource(sim, capacity=1)
        hold = resource.request()
        low = resource.request(priority=5)
        high = resource.request(priority=-1)
        sim.run()
        resource.release(hold)
        sim.run()
        assert high.triggered
        assert not low.triggered

    def test_fifo_within_priority(self, sim):
        resource = Resource(sim, capacity=1)
        hold = resource.request()
        first = resource.request(priority=0)
        second = resource.request(priority=0)
        sim.run()
        resource.release(hold)
        sim.run()
        assert first.triggered and not second.triggered

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_using_helper(self, sim):
        resource = Resource(sim, capacity=1)

        def worker():
            yield from resource.using(10)
            return sim.now

        first = sim.spawn(worker())
        second = sim.spawn(worker())
        sim.run()
        assert first.value == 10
        assert second.value == 20

    def test_mutex_is_capacity_one(self, sim):
        assert Mutex(sim).capacity == 1


class TestCPU:
    def test_serializes_beyond_cores(self, sim):
        cpu = CPU(sim, cores=2)
        done = []

        def task(tag):
            yield from cpu.run(10)
            done.append((tag, sim.now))

        for tag in range(4):
            sim.spawn(task(tag))
        sim.run()
        assert [when for _tag, when in done] == [10, 10, 20, 20]

    def test_busy_accounting_and_utilization(self, sim):
        cpu = CPU(sim, cores=2)
        sim.spawn(cpu.run(30))
        sim.spawn(cpu.run(10))
        sim.run()
        assert cpu.busy_us == 40
        # 40 busy over 30 elapsed x 2 cores
        assert cpu.utilization() == pytest.approx(40 / 60)

    def test_negative_cost_rejected(self, sim):
        cpu = CPU(sim, cores=1)
        with pytest.raises(ValueError):
            sim.run_process(cpu.run(-5))

    def test_zero_cost_completes(self, sim):
        cpu = CPU(sim, cores=1)
        sim.run_process(cpu.run(0))
        assert cpu.tasks_run == 1

    def test_sliced_run_total_time_unchanged_when_uncontended(self, sim):
        cpu = CPU(sim, cores=1)

        def task():
            yield from cpu.run(10, quantum_us=1)
            return sim.now

        assert sim.run_process(task()) == pytest.approx(10)

    def test_sliced_run_interleaves_fairly(self, sim):
        cpu = CPU(sim, cores=1)
        finish = {}

        def sliced(tag):
            yield from cpu.run(10, quantum_us=1)
            finish[tag] = sim.now

        sim.spawn(sliced("a"))
        sim.spawn(sliced("b"))
        sim.run()
        # Both finish around 20 (interleaved), not 10/20 (serial).
        assert finish["a"] == pytest.approx(19, abs=2)
        assert finish["b"] == pytest.approx(20, abs=2)

    def test_priority_preempts_queue_order(self, sim):
        cpu = CPU(sim, cores=1)
        order = []

        def task(tag, priority):
            yield from cpu.run(5, priority)
            order.append(tag)

        def scenario():
            yield from cpu.run(1)  # occupy the core briefly

        sim.spawn(scenario())
        sim.spawn(task("normal", 0))
        sim.spawn(task("kernel", -1))
        sim.run()
        assert order.index("kernel") < order.index("normal")


class TestContainer:
    def test_put_then_get(self, sim):
        container = Container(sim, capacity=100, init=0)
        container.put(30)
        got = container.get(20)
        sim.run()
        assert got.triggered
        assert container.level == 10

    def test_get_blocks_until_level(self, sim):
        container = Container(sim, capacity=100)
        got = container.get(50)
        sim.run()
        assert not got.triggered
        container.put(50)
        sim.run()
        assert got.triggered

    def test_put_blocks_at_capacity(self, sim):
        container = Container(sim, capacity=10, init=10)
        put = container.put(5)
        sim.run()
        assert not put.triggered
        container.get(5)
        sim.run()
        assert put.triggered

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=0)
        with pytest.raises(ValueError):
            Container(sim, capacity=10, init=20)


class TestStore:
    def test_fifo_order(self, sim):
        store = Store(sim)
        for item in ("a", "b", "c"):
            store.put(item)
        values = []
        for _ in range(3):
            got = store.get()
            sim.run()
            values.append(got.value)
        assert values == ["a", "b", "c"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = store.get()
        sim.run()
        assert not got.triggered
        store.put("x")
        sim.run()
        assert got.value == "x"

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        store.put("first")
        second = store.put("second")
        sim.run()
        assert not second.triggered
        store.get()
        sim.run()
        assert second.triggered

    def test_len(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        sim.run()
        assert len(store) == 2
