"""End-to-end checks that the RDX pipeline feeds the telemetry hub.

Each test drives real operations through a testbed and asserts on the
metrics/spans they should leave behind -- this is what keeps the
instrumentation honest as the pipeline evolves.
"""

import pytest

from repro.core.broadcast import CodeFlowGroup
from repro.core.introspect import RemoteIntrospector
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed
from repro.obs import telemetry_of


@pytest.fixture
def bed():
    return make_testbed(n_hosts=3, cores_per_host=8)


def _counter_value(registry, name, **labels):
    metric = registry.counter(name, **labels)
    return metric.value


class TestDeployInstrumentation:
    def test_cold_then_warm_deploy_moves_cache_counters(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        registry = bed.obs.registry
        assert registry.counter("rdx.cache.miss").value == 1
        assert registry.counter("rdx.cache.hit").value == 0
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        assert registry.counter("rdx.cache.miss").value == 1
        assert registry.counter("rdx.cache.hit").value == 1

    def test_deploy_feeds_latency_histogram(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        hist = bed.obs.registry.get("rdx.deploy.latency_us")
        assert hist is not None
        assert hist.count == 1
        assert hist.min > 0
        summary = hist.summary()
        assert 0 < summary["p50"] <= summary["p99"]

    def test_deploy_counts_bytes_written(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        registry = bed.obs.registry
        assert registry.counter("rdx.deploy.count").value == 1
        record = bed.codeflow.deployed[program.name]
        assert registry.counter("rdx.deploy.bytes_written").value >= record.code_len

    def test_span_tree_mirrors_pipeline(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        tracer = bed.obs.tracer
        (inject,) = tracer.by_name("rdx.inject")
        child_names = {s.name for s in tracer.children_of(inject)}
        # Cold path: validate + jit + link + deploy all under the inject.
        assert {"rdx.validate", "rdx.jit", "rdx.link", "rdx.deploy"} <= child_names

    def test_validate_and_jit_cpu_histograms(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        registry = bed.obs.registry
        assert registry.get("rdx.validate.cpu_us").count == 1
        assert registry.get("rdx.jit.cpu_us").count == 1


class TestBroadcastInstrumentation:
    def test_fanout_produces_per_target_child_spans(self, bed):
        group = CodeFlowGroup(bed.codeflows)
        programs = [
            make_stress_program(900, seed=11, name="rollout")
            for _ in bed.codeflows
        ]
        bed.sim.run_process(group.broadcast(programs, "egress"))
        tracer = bed.obs.tracer
        (parent,) = tracer.by_name("rdx.broadcast")
        children = [
            s for s in tracer.children_of(parent)
            if s.name == "rdx.broadcast.target"
        ]
        assert len(children) == len(bed.codeflows)
        targets = {c.attrs["target"] for c in children}
        assert targets == {cf.sandbox.name for cf in bed.codeflows}

    def test_fanout_metrics(self, bed):
        group = CodeFlowGroup(bed.codeflows)
        programs = [
            make_stress_program(900, seed=11, name="rollout")
            for _ in bed.codeflows
        ]
        bed.sim.run_process(group.broadcast(programs, "egress"))
        registry = bed.obs.registry
        assert registry.counter("rdx.broadcast.count").value == 1
        assert registry.counter("rdx.broadcast.targets").value == len(bed.codeflows)
        assert registry.get("rdx.broadcast.fanout").max == len(bed.codeflows)
        assert registry.get("rdx.broadcast.bubble_window_us").count == 1


class TestAuditInstrumentation:
    def test_findings_counted_by_severity_and_plane(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        introspector = RemoteIntrospector(bed.codeflow)
        introspector.snapshot_deployed()
        bed.sim.run_process(introspector.audit())
        registry = bed.obs.registry
        assert registry.counter("rdx.audit.runs").value == 1
        clean_findings = sum(m.value for m in registry.series("rdx.audit.findings"))

        # Tamper with the deployed image: the next audit must flag it.
        record = bed.codeflow.deployed[program.name]
        raw = bed.host.memory.read(record.code_addr + 16, 1)
        bed.host.memory.write(record.code_addr + 16, bytes([raw[0] ^ 0xFF]))
        bed.sim.run_process(introspector.audit())
        assert registry.counter(
            "rdx.audit.findings", severity="critical", plane="code"
        ).value >= clean_findings + 1
        assert registry.counter("rdx.audit.bytes_read").value > 0
        assert registry.get("rdx.audit.duration_us").count == 2

    def test_audit_span_recorded(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        introspector = RemoteIntrospector(bed.codeflow)
        introspector.snapshot_deployed()
        bed.sim.run_process(introspector.audit())
        (span,) = bed.obs.tracer.by_name("rdx.audit")
        assert span.duration_us > 0


class TestRdmaInstrumentation:
    def test_verb_counters_and_dma_bytes(self, bed):
        program = make_stress_program(1_300, seed=3)
        bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
        registry = bed.obs.registry
        verbs = registry.series("rdma.verbs")
        assert verbs, "deploy must issue RDMA verbs"
        assert sum(m.value for m in verbs) > 0
        dma = registry.series("rdma.bytes_dma")
        assert sum(m.value for m in dma) > 0
        assert registry.get("rdma.cq.depth").count > 0


class TestIsolation:
    def test_two_testbeds_do_not_share_metrics(self):
        bed_a = make_testbed(n_hosts=1, cores_per_host=8)
        bed_b = make_testbed(n_hosts=1, cores_per_host=8)
        program = make_stress_program(1_300, seed=3)
        bed_a.sim.run_process(
            bed_a.control.inject(bed_a.codeflow, program, "ingress")
        )
        assert bed_a.obs.registry.counter("rdx.cache.miss").value == 1
        assert bed_b.obs.registry.counter("rdx.cache.miss").value == 0

    def test_telemetry_of_is_cached_per_sim(self, bed):
        assert telemetry_of(bed.sim) is telemetry_of(bed.sim)
        assert bed.obs is telemetry_of(bed.sim)
