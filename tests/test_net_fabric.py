"""Tests for the rack fabric and message delivery."""

import pytest

from repro import params
from repro.errors import HostUnreachable, ReproError
from repro.net.fabric import Fabric, Message
from repro.net.topology import Cluster, Host
from repro.sim.core import Simulator


@pytest.fixture
def pair():
    sim = Simulator()
    fabric = Fabric(sim)
    a = Host(sim, "a", dram_bytes=1 << 20)
    b = Host(sim, "b", dram_bytes=1 << 20)
    fabric.attach(a)
    fabric.attach(b)
    return sim, fabric, a, b


class TestDelivery:
    def test_message_delivered_with_latency(self, pair):
        sim, fabric, a, b = pair
        done = fabric.send(Message(src="a", dst="b", channel="x", size_bytes=0))
        sim.run()
        assert done.triggered
        assert sim.now == pytest.approx(params.NET_BASE_LATENCY_US)

    def test_serialization_delay_scales_with_size(self, pair):
        sim, fabric, a, b = pair
        size = 125_000
        fabric.send(Message(src="a", dst="b", channel="x", size_bytes=size))
        sim.run()
        expected = params.NET_BASE_LATENCY_US + size / fabric.bandwidth_bpus
        assert sim.now == pytest.approx(expected)

    def test_handler_invoked(self, pair):
        sim, fabric, a, b = pair
        received = []
        b.register_handler("ch", lambda msg: received.append(msg.payload))
        fabric.send(Message(src="a", dst="b", channel="ch", size_bytes=10,
                            payload="data"))
        sim.run()
        assert received == ["data"]

    def test_generator_handler_spawned(self, pair):
        sim, fabric, a, b = pair
        marks = []

        def handler(msg):
            yield sim.timeout(5)
            marks.append(sim.now)

        b.register_handler("gen", handler)
        fabric.send(Message(src="a", dst="b", channel="gen", size_bytes=0))
        sim.run()
        assert marks and marks[0] > params.NET_BASE_LATENCY_US

    def test_no_handler_is_fine(self, pair):
        sim, fabric, a, b = pair
        fabric.send(Message(src="a", dst="b", channel="nobody", size_bytes=0))
        sim.run()

    def test_egress_serializes_per_sender(self, pair):
        sim, fabric, a, b = pair
        size = 125_000  # 10 us serialization each
        for _ in range(3):
            fabric.send(Message(src="a", dst="b", channel="x", size_bytes=size))
        sim.run()
        serialize = size / fabric.bandwidth_bpus
        assert sim.now == pytest.approx(
            3 * serialize + params.NET_BASE_LATENCY_US
        )

    def test_counters(self, pair):
        sim, fabric, a, b = pair
        fabric.send(Message(src="a", dst="b", channel="x", size_bytes=100))
        sim.run()
        assert fabric.messages_sent == 1
        assert fabric.bytes_sent == 100


class TestValidation:
    def test_unknown_destination(self, pair):
        _sim, fabric, _a, _b = pair
        with pytest.raises(ReproError):
            fabric.send(Message(src="a", dst="ghost", channel="x", size_bytes=0))

    def test_unknown_source(self, pair):
        _sim, fabric, _a, _b = pair
        with pytest.raises(ReproError):
            fabric.send(Message(src="ghost", dst="b", channel="x", size_bytes=0))

    def test_negative_size(self, pair):
        _sim, fabric, _a, _b = pair
        with pytest.raises(ReproError):
            fabric.send(Message(src="a", dst="b", channel="x", size_bytes=-1))

    def test_double_attach_rejected(self, pair):
        sim, fabric, a, _b = pair
        with pytest.raises(ReproError):
            fabric.attach(a)

    def test_host_lookup(self, pair):
        _sim, fabric, a, _b = pair
        assert fabric.host("a") is a
        with pytest.raises(ReproError):
            fabric.host("ghost")


class TestCluster:
    def test_builds_hosts_and_control(self):
        cluster = Cluster(Simulator(), n_hosts=3)
        assert [h.name for h in cluster.hosts] == ["node0", "node1", "node2"]
        assert cluster.control_host is not None
        assert cluster.control_host.name == "control"
        assert len(cluster.all_hosts()) == 4

    def test_without_control(self):
        cluster = Cluster(Simulator(), n_hosts=1, with_control_host=False)
        assert cluster.control_host is None

    def test_host_lookup(self):
        cluster = Cluster(Simulator(), n_hosts=2)
        assert cluster.host("node1").name == "node1"
        with pytest.raises(KeyError):
            cluster.host("nope")

    def test_needs_one_host(self):
        with pytest.raises(ValueError):
            Cluster(Simulator(), n_hosts=0)


class TestFaultModel:
    def test_msg_ids_deterministic_per_fabric(self):
        """Regression: msg_id comes from a per-Fabric counter, so the
        same scenario produces the same IDs no matter how many other
        simulators ran earlier in the process."""

        def run_once():
            sim = Simulator()
            fabric = Fabric(sim)
            a = Host(sim, "a", dram_bytes=1 << 20)
            b = Host(sim, "b", dram_bytes=1 << 20)
            fabric.attach(a)
            fabric.attach(b)
            seen = []
            b.register_handler("x", lambda msg: seen.append(msg.msg_id))
            for i in range(5):
                fabric.send(
                    Message(src="a", dst="b", channel="x", size_bytes=100 * i)
                )
            sim.run()
            return seen

        first, second = run_once(), run_once()
        assert first == second == [1, 2, 3, 4, 5]

    def test_crash_drops_inflight_and_fails_waiter(self, pair):
        sim, fabric, a, b = pair
        done = fabric.send(Message(src="a", dst="b", channel="x", size_bytes=0))
        fabric.crash_host("b")  # crashes while the message is in flight
        sim.run()
        assert done.triggered and not done.ok
        with pytest.raises(HostUnreachable):
            _ = done.value
        assert fabric.messages_dropped == 1
        assert fabric.messages_sent == 0

    def test_recovered_host_receives_again(self, pair):
        sim, fabric, a, b = pair
        fabric.crash_host("b")
        fabric.send(Message(src="a", dst="b", channel="x", size_bytes=0))
        sim.run()
        fabric.recover_host("b")
        done = fabric.send(Message(src="a", dst="b", channel="x", size_bytes=0))
        sim.run()
        assert done.ok

    def test_partition_and_heal(self, pair):
        sim, fabric, a, b = pair
        fabric.partition("a", "b")
        assert not fabric.reachable("a", "b")
        lost = fabric.send(Message(src="a", dst="b", channel="x", size_bytes=0))
        sim.run()
        assert not lost.ok
        fabric.heal("a", "b")
        assert fabric.reachable("a", "b")
        done = fabric.send(Message(src="a", dst="b", channel="x", size_bytes=0))
        sim.run()
        assert done.ok

    def test_extra_delay_slows_delivery(self, pair):
        sim, fabric, a, b = pair
        fabric.set_extra_delay("b", 7.5)
        fabric.send(Message(src="a", dst="b", channel="x", size_bytes=0))
        sim.run()
        assert sim.now == pytest.approx(params.NET_BASE_LATENCY_US + 7.5)
