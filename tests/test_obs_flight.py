"""Tests for the crash flight recorder and blackbox replay."""

import json

import pytest

from repro.core.journal import REC_FLIGHT, IntentJournal
from repro.ebpf.stress import make_stress_program
from repro.obs.flight import FlightRecorder, format_blackbox
from repro.obs.telemetry import Telemetry, export_prometheus
from repro.sim.trace import TraceRecorder


class TestRing:
    def test_ring_is_bounded_and_counts_drops(self, sim):
        flight = FlightRecorder(sim, capacity=4)
        hub = Telemetry(sim)
        for index in range(10):
            with hub.span("op", index=index) as span:
                pass
            flight.record_span(span)
        assert len(flight.entries) == 4
        assert flight.dropped == 6
        snapshot = flight.snapshot()
        assert snapshot["truncated"] is True
        assert snapshot["ring_dropped"] == 6
        # The ring keeps the *newest* entries.
        kept = [entry["attrs"]["index"] for entry in snapshot["ring"]]
        assert kept == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            FlightRecorder(sim, capacity=0)

    def test_note_metrics_rings_deltas_once(self, sim):
        hub = Telemetry(sim)
        hub.counter("rdx.deploy.count").inc(3)
        assert hub.flight.note_metrics(hub.registry) == 1
        # No movement -> no new entries.
        assert hub.flight.note_metrics(hub.registry) == 0
        hub.counter("rdx.deploy.count").inc()
        hub.counter("other.counter").inc()  # outside the rdx. prefix
        assert hub.flight.note_metrics(hub.registry) == 1
        entries = [e for e in hub.flight.entries if e["kind"] == "metric"]
        assert [e["delta"] for e in entries] == [3, 1]
        assert entries[-1]["total"] == 4

    def test_snapshot_captures_open_spans(self, sim):
        hub = Telemetry(sim)
        span = hub.span("rdx.broadcast", group_size=3)
        snapshot = hub.flight.snapshot(hub.tracer.open_spans)
        span.finish()
        assert [s["name"] for s in snapshot["open_spans"]] == ["rdx.broadcast"]
        assert snapshot["open_spans"][0]["attrs"]["group_size"] == 3

    def test_snapshot_is_json_safe_and_journal_neutral(self, sim):
        """Nested-only payload: replay scanners must ignore FLIGHT."""
        hub = Telemetry(sim)
        with hub.span("rdx.deploy", target="node0.sb1", obj=object()):
            pass
        detail = hub.flight.snapshot(hub.tracer.open_spans)
        json.dumps(detail)  # fully serializable
        journal = IntentJournal()
        journal.record_flight(1, detail)
        assert journal.known_targets() == []
        assert journal.in_flight() == []
        assert journal.committed_intent() == {}


class TestCrashSnapshot:
    def _crash_mid_broadcast(self, bed):
        from repro.core.broadcast import CodeFlowGroup

        group = CodeFlowGroup(bed.codeflows)
        programs = [
            make_stress_program(300, seed=i, name=f"fl{i}")
            for i in range(len(bed.codeflows))
        ]
        bed.sim.run_process(group.broadcast(programs, "ingress"))
        proc = bed.sim.spawn(
            group.broadcast(programs, "ingress"), name="doomed"
        )
        bed.sim.run(until=bed.sim.now + 10.0)
        assert proc.is_alive
        bed.control.crash()
        proc.interrupt("control plane fail-stop")
        bed.sim.run()

    def test_crash_journals_flight_record(self, testbed2):
        self._crash_mid_broadcast(testbed2)
        records = testbed2.control.journal.flight_records()
        assert len(records) == 1
        detail = records[0].detail
        assert detail["ring"]  # the committed broadcast's spans
        assert any(
            span["name"] == "rdx.broadcast"
            for span in detail["open_spans"]
        )

    def test_flight_record_survives_jsonl_round_trip(self, testbed2):
        self._crash_mid_broadcast(testbed2)
        journal = testbed2.control.journal
        rebuilt = IntentJournal.from_jsonl(journal.to_jsonl())
        originals = [r.detail for r in journal.flight_records()]
        recovered = [r.detail for r in rebuilt.flight_records()]
        assert recovered == originals
        assert rebuilt.records[-1].rec == REC_FLIGHT

    def test_format_blackbox_renders_the_story(self, testbed2):
        self._crash_mid_broadcast(testbed2)
        flights = [
            r.detail for r in testbed2.control.journal.flight_records()
        ]
        report = format_blackbox(flights, epoch=testbed2.control.epoch)
        assert "flight record 1/1" in report
        assert "in flight at death" in report
        assert "OPEN rdx.broadcast" in report
        assert "recent activity" in report

    def test_empty_journal_renders_clean(self):
        assert "no flight records" in format_blackbox([])


class TestTruncatedMarker:
    def test_recorder_drops_surface_as_counter_and_marker(self, sim):
        """Satellite: ring drops are first-class and never report clean."""
        hub = Telemetry(sim, recorder=TraceRecorder(max_events=4))
        for index in range(6):
            hub.recorder.record(float(index), "evt")
        assert hub.registry.counter("rdx.obs.trace_dropped").value == 2
        assert hub.truncated
        text = export_prometheus(hub)
        assert "rdx_obs_truncated 1" in text
        # clear() empties the ring, but the hub stays marked truncated:
        # history was lost, and no later export may pretend otherwise.
        hub.recorder.clear()
        assert hub.recorder.dropped == 0
        assert hub.truncated
        assert "rdx_obs_truncated 1" in export_prometheus(hub)

    def test_clean_hub_exports_untruncated(self, sim):
        hub = Telemetry(sim)
        hub.counter("rdx.deploy.count").inc()
        assert "rdx_obs_truncated 0" in export_prometheus(hub)
