"""Tests for the multi-tenant deploy service (repro.serve).

Covers the warm linked-image pool (hit semantics, warm-reboot
invalidation, LRU, prewarm), admission control (every shed reason
counted, backpressure, the no-silent-drops ledger), the serve
telemetry segment (one-sided scrape, torn retry, zero service CPU),
and the QoS satellites: atomic token-bucket reservation and snapshot
reporting.
"""

import pytest

from repro import params
from repro.core.faults import FaultInjector, FaultKind
from repro.core.qos import QosScheduler, TenantQuota, _TokenBucket
from repro.core.xstate import XStateSpec
from repro.ebpf import opcodes as op
from repro.ebpf.asm import Asm
from repro.ebpf.maps import MapType
from repro.ebpf.program import BpfProgram
from repro.ebpf.stress import make_stress_program, make_stress_variant
from repro.errors import ReproError, SecurityError
from repro.exp.serve_workload import ServeWorkloadSpec, run_serve_workload
from repro.obs import tenant_label
from repro.serve import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    SHED_STOPPED,
    SHED_TENANT_QUOTA,
    SHED_UNKNOWN_TENANT,
    DeployService,
    PriorityClass,
    WarmLinkedImagePool,
    default_classes,
    scrape_serve,
)
from repro.sim.core import Simulator


# ---------------------------------------------------------------------------
# Satellite: atomic token-bucket reservation
# ---------------------------------------------------------------------------


class TestTokenBucketReserve:
    def test_reserve_debits_immediately(self, sim):
        bucket = _TokenBucket(sim, rate_per_s=1e6, burst=10)  # 1 byte/us
        assert bucket.reserve(10) == 0.0  # burst covers it
        # Balance is now 0: the next reservation waits for refill.
        assert bucket.reserve(40) == pytest.approx(40.0)
        # And the one after that queues *behind* the first deficit --
        # the debit happened even though nobody waited yet.
        assert bucket.reserve(40) == pytest.approx(80.0)

    def test_delay_for_is_a_pure_peek(self, sim):
        bucket = _TokenBucket(sim, rate_per_s=1e6, burst=10)
        assert bucket.delay_for(50) == pytest.approx(40.0)
        assert bucket.delay_for(50) == pytest.approx(40.0)  # unchanged
        assert bucket.reserve(50) == pytest.approx(40.0)  # the real debit

    def test_concurrent_reservers_serialize_at_rate(self, testbed):
        """The PR's race: two deploys sneaking under one balance.

        With the old peek-then-take two-step both would observe the
        full burst and pay no throttle.  With atomic reservation the
        second inject must wait out the first one's deficit.
        """
        bed = testbed
        qos = QosScheduler(bed.control, wire_slots=2)
        qos.register_tenant(
            TenantQuota("t", rate_bytes_per_s=1e6, burst_bytes=800)
        )
        program = make_stress_program(100, seed=1)  # 800 bytes

        def deploy():
            yield from qos.inject(
                "t", bed.codeflow, program, "ingress", retain_history=False
            )

        bed.sim.spawn(deploy(), name="first")
        bed.sim.spawn(deploy(), name="second")
        bed.sim.run()
        # First rode the burst; second reserved behind it: 800 bytes
        # at 1 byte/us = 800us of throttle, charged exactly once.
        assert qos.usage["t"].deploys == 2
        assert qos.usage["t"].throttled_us == pytest.approx(800.0)


# ---------------------------------------------------------------------------
# Satellite: usage reporting returns snapshots
# ---------------------------------------------------------------------------


class TestQosReporting:
    @pytest.fixture
    def qos(self, testbed):
        qos = QosScheduler(testbed.control)
        qos.register_tenant(
            TenantQuota("t", rate_bytes_per_s=1e9, burst_bytes=1e6)
        )
        return testbed, qos

    def _deploy(self, bed, qos, seed=1):
        program = make_stress_program(100, seed=seed)
        bed.sim.run_process(
            qos.inject("t", bed.codeflow, program, "ingress",
                       retain_history=False)
        )

    def test_tenant_report_is_a_snapshot(self, qos):
        bed, qos = qos
        self._deploy(bed, qos)
        window1 = qos.tenant_report()
        window1["t"].deploys = 99  # mutating the copy...
        assert qos.usage["t"].deploys == 1  # ...not the accumulator
        self._deploy(bed, qos, seed=2)
        window2 = qos.tenant_report()
        assert window2["t"].deploys == 2
        # The earlier snapshot did not move underneath the caller.
        assert window1["t"].bytes_injected == window2["t"].bytes_injected / 2

    def test_reset_usage_closes_the_window(self, qos):
        bed, qos = qos
        self._deploy(bed, qos)
        final = qos.reset_usage()
        assert final["t"].deploys == 1
        assert qos.usage["t"].deploys == 0
        assert qos.tenant_report()["t"].bytes_injected == 0.0

    def test_throttle_hint_unknown_tenant(self, qos):
        _bed, qos = qos
        with pytest.raises(SecurityError):
            qos.throttle_hint("ghost", 100)


# ---------------------------------------------------------------------------
# The warm linked-image pool
# ---------------------------------------------------------------------------


def _service(bed, classes=None, workers=2, **pool_kwargs):
    pool = WarmLinkedImagePool(bed.control, **pool_kwargs)
    service = DeployService(
        bed.control, classes=classes, workers=workers, warm_pool=pool
    )
    return service


class TestWarmPool:
    def test_second_deploy_is_a_warm_hit(self, testbed):
        """Popularity admission: cold deploy #1 admits, #2 rides warm."""
        bed = testbed
        pool = WarmLinkedImagePool(bed.control, admit_after=1).attach()
        program = make_stress_program(300, seed=3)

        def timed():
            started = bed.sim.now
            report = yield from bed.control.inject(
                bed.codeflow, program, "ingress"
            )
            return bed.sim.now - started, report

        cold_us, cold = bed.sim.run_process(timed())
        assert not cold.warm
        assert len(pool) == 1
        link_hits = bed.control.link_cache_hits
        registry_hits = bed.control.cache_hits
        warm_us, warm = bed.sim.run_process(timed())
        assert warm.warm
        assert pool.hits == 1
        # The whole cold pipeline was skipped: neither prepare's
        # registry nor the link cache saw any traffic.
        assert bed.control.link_cache_hits == link_hits
        assert bed.control.cache_hits == registry_hits
        # And end to end (validate+JIT+link avoided) it is far cheaper.
        assert warm_us * 2 < cold_us

    def test_warm_hit_preserves_execution(self, testbed):
        """A warm image must run; a content change must never hit."""
        bed = testbed
        pool = WarmLinkedImagePool(bed.control, admit_after=1).attach()
        program = make_stress_program(200, seed=11)
        bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )
        report = bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )
        assert report.warm
        assert bed.sandbox.run_hook("ingress", b"\x00" * 256) is not None
        # The pool key is the program *tag* -- a content hash -- so a
        # patched variant (same name, different imm) can never be
        # served stale bytes: it misses and takes the cold path.
        patched = make_stress_variant(program, 7, name=program.name)
        report = bed.sim.run_process(
            bed.control.inject(bed.codeflow, patched, "ingress")
        )
        assert not report.warm
        assert pool.miss_reasons.get("absent", 0) >= 1

    def test_warm_reboot_layout_change_misses(self, testbed):
        """Address churn invalidates: same contract as the link cache.

        A decoy XState pushes ``stress_map`` deeper into the
        scratchpad; after a warm reboot only ``stress_map`` comes
        back, reusing the decoy's old address.  The pool must *miss*
        (reason ``layout-changed``) -- serving the resident image
        would patch a stale map address.
        """
        bed = testbed
        codeflow = bed.codeflow
        pool = WarmLinkedImagePool(bed.control, admit_after=1).attach()
        program = make_stress_program(600, seed=5, with_map=True,
                                      name="mapper")
        decoy = XStateSpec("decoy", MapType.ARRAY, 4, 8, 4)
        state = XStateSpec("stress_map", MapType.ARRAY, 4, 8, 4)
        bed.sim.run_process(codeflow.deploy_xstate(decoy))
        bed.sim.run_process(codeflow.deploy_xstate(state))
        old_addr = codeflow.scratchpad.by_name("stress_map").data_addr
        bed.sim.run_process(bed.control.inject(codeflow, program, "ingress"))
        assert len(pool) == 1

        bed.sandbox.warm_reboot()
        codeflow.reset_after_reboot()
        bed.sim.run_process(codeflow.stamp_epoch(bed.control.epoch))
        bed.sim.run_process(codeflow.deploy_xstate(state))
        assert codeflow.scratchpad.by_name("stress_map").data_addr != old_addr

        report = bed.sim.run_process(
            bed.control.inject(codeflow, program, "ingress")
        )
        assert not report.warm
        assert pool.miss_reasons.get("layout-changed") == 1
        # The re-linked post-reboot image was admitted alongside; a
        # redeploy on the *new* layout is warm again.
        report = bed.sim.run_process(
            bed.control.inject(codeflow, program, "ingress")
        )
        assert report.warm

    def test_lru_eviction_at_cap(self, testbed):
        bed = testbed
        pool = WarmLinkedImagePool(bed.control, cap=2, admit_after=1).attach()
        programs = [
            make_stress_program(200, seed=20 + i, name=f"evict{i}")
            for i in range(3)
        ]
        for program in programs:
            bed.sim.run_process(
                bed.control.inject(bed.codeflow, program, "ingress")
            )
        assert len(pool) == 2
        assert pool.evictions == 1
        # The oldest entry went; deploying it again is a miss.
        report = bed.sim.run_process(
            bed.control.inject(bed.codeflow, programs[0], "ingress")
        )
        assert not report.warm

    def test_prewarm_makes_first_deploy_warm(self, testbed):
        bed = testbed
        pool = WarmLinkedImagePool(bed.control).attach()
        program = make_stress_program(300, seed=9)
        assert bed.sim.run_process(pool.prewarm(bed.codeflow, program))
        report = bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )
        assert report.warm
        assert pool.hits == 1

    def test_invalidate_counts_evictions(self, testbed):
        bed = testbed
        pool = WarmLinkedImagePool(bed.control, admit_after=1).attach()
        program = make_stress_program(200, seed=13)
        bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )
        assert pool.invalidate(tag=program.tag()) == 1
        assert pool.evictions == 1
        assert len(pool) == 0


# ---------------------------------------------------------------------------
# Admission control: every rejection is counted
# ---------------------------------------------------------------------------


def _tiny_classes(**overrides):
    base = dict(
        rate_bytes_per_s=1e9, burst_bytes=1e9, queue_depth=2,
        tenant_rate_bytes_per_s=1e9, tenant_burst_bytes=1e9,
        max_pending_per_tenant=8,
    )
    base.update(overrides)
    return (PriorityClass("only", priority=0, **base),)


class TestAdmission:
    def test_unknown_tenant_shed(self, testbed):
        service = _service(testbed)
        service.start()
        program = make_stress_program(100, seed=1)
        ticket = service.submit("ghost", testbed.codeflow, program, "ingress")
        assert not ticket.accepted
        assert ticket.shed_reason == SHED_UNKNOWN_TENANT
        assert service.admission.shed[SHED_UNKNOWN_TENANT] == 1

    def test_queue_full_shed(self, testbed):
        service = _service(testbed, classes=_tiny_classes(queue_depth=2))
        service.register("t", "only")
        service.running = True  # queue only: no workers draining
        program = make_stress_program(100, seed=1)
        verdicts = [
            service.submit("t", testbed.codeflow, program, "ingress")
            for _ in range(4)
        ]
        assert [t.accepted for t in verdicts] == [True, True, False, False]
        assert service.admission.shed[SHED_QUEUE_FULL] == 2

    def test_tenant_quota_shed(self, testbed):
        service = _service(
            testbed,
            classes=_tiny_classes(queue_depth=16, max_pending_per_tenant=2),
        )
        service.register("t", "only")
        service.register("other", "only")
        service.running = True
        program = make_stress_program(100, seed=1)
        verdicts = [
            service.submit("t", testbed.codeflow, program, "ingress")
            for _ in range(3)
        ]
        assert [t.shed_reason for t in verdicts] == [
            None, None, SHED_TENANT_QUOTA,
        ]
        # The cap is per tenant, not per queue: others still get in.
        assert service.submit(
            "other", testbed.codeflow, program, "ingress"
        ).accepted

    def test_rate_limited_shed(self, testbed):
        classes = (
            PriorityClass(
                "only", priority=0,
                rate_bytes_per_s=1e6, burst_bytes=100,  # ~nothing
                queue_depth=16,
                tenant_rate_bytes_per_s=1e9, tenant_burst_bytes=1e9,
                max_throttle_us=50.0,
            ),
        )
        service = _service(testbed, classes=classes)
        service.register("t", "only")
        service.running = True
        program = make_stress_program(500, seed=1)  # 4KB >> 100B + 50us
        ticket = service.submit("t", testbed.codeflow, program, "ingress")
        assert ticket.shed_reason == SHED_RATE_LIMITED
        assert service.admission.shed[SHED_RATE_LIMITED] == 1

    def test_stop_sheds_queued_as_stopped(self, testbed):
        service = _service(testbed, classes=_tiny_classes(queue_depth=8))
        service.register("t", "only")
        service.running = True
        program = make_stress_program(100, seed=1)
        tickets = [
            service.submit("t", testbed.codeflow, program, "ingress")
            for _ in range(3)
        ]
        assert service.stop() == 3
        assert service.admission.shed[SHED_STOPPED] == 3
        assert all(t.shed_reason == SHED_STOPPED for t in tickets)
        # Post-stop intake is shed too, not dropped.
        late = service.submit("t", testbed.codeflow, program, "ingress")
        assert late.shed_reason == SHED_STOPPED

    def test_backpressure_blocks_instead_of_shedding(self, testbed):
        """submit_wait parks on the space event; nothing is shed."""
        bed = testbed
        service = _service(bed, classes=_tiny_classes(queue_depth=1),
                           workers=1)
        service.register("t", "only")
        service.start()
        program = make_stress_program(200, seed=1)
        tickets = []

        def producer():
            for _ in range(4):
                ticket = yield from service.submit_wait(
                    "t", bed.codeflow, program, "ingress"
                )
                tickets.append(ticket)
            yield from service.drain()

        bed.sim.run_process(producer())
        assert len(tickets) == 4
        assert all(t.accepted for t in tickets)
        assert service.admission.shed.get(SHED_QUEUE_FULL) is None
        assert service.completed == 4

    def test_accounting_identity_with_failures(self, testbed):
        """offered == completed + failed + shed, even under faults."""
        bed = testbed
        service = _service(bed, classes=_tiny_classes(queue_depth=16),
                           workers=1, admit_after=10_000)
        service.register("t", "only")
        service.start()
        # An unverifiable program (uninitialized register) fails the
        # pipeline deterministically: counted as ``failed``, never a
        # silent drop.
        bad = BpfProgram(
            Asm().mov_reg(op.R0, op.R5).exit_().build(), name="bad"
        )

        def body():
            ticket = service.submit("t", bed.codeflow, bad, "ingress")
            yield ticket.done
            return ticket

        ticket = bed.sim.run_process(body())
        assert ticket.error is not None
        assert not ticket.completed
        assert service.failed == 1
        assert service.accounting()["unaccounted"] == 0
        # Under injected torn writes the retry layer heals the deploy:
        # it lands in ``completed`` -- the ledger balances either way.
        injector = FaultInjector(bed.codeflow, seed=5)
        injector.arm(FaultKind.TORN_WRITE, count=50)  # persistent
        injector.attach()
        program = make_stress_program(300, seed=2)

        def body2():
            ticket = service.submit("t", bed.codeflow, program, "ingress")
            yield ticket.done
            return ticket

        try:
            ticket = bed.sim.run_process(body2())
        finally:
            injector.detach()
        assert ticket.completed
        assert service.completed == 1
        assert service.accounting()["unaccounted"] == 0

    def test_priority_class_overtakes_bulk(self, testbed):
        """A hotpatch submitted after queued bulk work finishes first."""
        bed = testbed
        classes = default_classes(queue_depth=32)
        service = _service(bed, classes=classes, workers=1)
        service.register("whale", "bulk")
        service.register("pager", "hotpatch")
        service.start()
        bulk_prog = make_stress_program(2_000, seed=4)
        hot_prog = make_stress_program(60, seed=6)

        def body():
            bulk = [
                service.submit("whale", bed.codeflow, bulk_prog, "egress",
                               kind="bulk")
                for _ in range(3)
            ]
            hot = service.submit("pager", bed.codeflow, hot_prog, "ingress",
                                 kind="hot")
            for ticket in [hot] + bulk:
                yield ticket.done
            return hot, bulk

        hot, bulk = bed.sim.run_process(body())
        assert hot.completed
        # The worker was mid-bulk at submit time; the hotpatch then
        # overtook every *queued* bulk deploy.
        finished_bulk = sorted(t.finished_us for t in bulk)
        assert hot.finished_us < finished_bulk[1]


# ---------------------------------------------------------------------------
# The serve telemetry segment
# ---------------------------------------------------------------------------


def _control_read(bed):
    """A one-sided read shim against the control host's memory."""

    def read(addr, size):
        yield bed.sim.timeout(0.2)  # wire time, no control CPU
        return bed.control.host.memory.read(addr, size)

    return read


class TestServeSegment:
    def _run_some_traffic(self, bed, service):
        service.register("t", "hotpatch")
        service.start()
        program = make_stress_program(120, seed=1)

        def body():
            tickets = [
                service.submit("t", bed.codeflow, program, "ingress")
                for _ in range(3)
            ]
            for ticket in tickets:
                if ticket.accepted:
                    yield ticket.done

        bed.sim.run_process(body())

    def test_scrape_matches_service_truth(self, testbed):
        bed = testbed
        service = _service(bed, admit_after=1)
        self._run_some_traffic(bed, service)
        assert service.segment is not None
        snapshot = bed.sim.run_process(
            scrape_serve(_control_read(bed), service.segment.base_addr)
        )
        assert snapshot.values["admit.accept"] == 3
        assert snapshot.values["deploys.completed"] == service.completed
        assert snapshot.values["warm.hit"] == service.warm_pool.hits
        assert snapshot.values["warm.hit"] >= 1
        assert snapshot.values["deploy_us.count"] == 3
        local = service.segment.snapshot_local()
        assert snapshot.values == local.values

    def test_scrape_consumes_no_control_cpu(self, testbed):
        bed = testbed
        service = _service(bed, admit_after=1)
        self._run_some_traffic(bed, service)
        cpu = bed.control.host.cpu
        before = (cpu.busy_us, cpu.tasks_run)
        for _ in range(5):
            bed.sim.run_process(
                scrape_serve(_control_read(bed), service.segment.base_addr)
            )
        assert (cpu.busy_us, cpu.tasks_run) == before

    def test_torn_scrape_retries_then_accepts(self, testbed):
        bed = testbed
        service = _service(bed, admit_after=1)
        self._run_some_traffic(bed, service)
        segment = service.segment
        sim = bed.sim

        def slow_writer():
            segment.begin_update()
            segment.inc("warm.hit", 100)  # mid-write garbage
            yield sim.timeout(5.0)
            segment.end_update()

        sim.spawn(slow_writer(), name="torn-writer")
        snapshot = sim.run_process(
            scrape_serve(_control_read(bed), segment.base_addr, sim=sim)
        )
        # Accepted strictly after the bracket closed.
        assert snapshot.values["warm.hit"] == service.warm_pool.hits + 100

    def test_exhausted_retries_raise(self, testbed):
        bed = testbed
        service = _service(bed, admit_after=1)
        self._run_some_traffic(bed, service)
        service.segment.begin_update()  # bracket held open forever
        with pytest.raises(ReproError):
            bed.sim.run_process(
                scrape_serve(
                    _control_read(bed), service.segment.base_addr,
                    max_retries=2,
                )
            )
        service.segment.end_update()

    def test_tenant_label_collapses_to_class(self):
        assert params.RDX_OBS_TARGET_LABELS is False
        assert tenant_label("hot123", "hotpatch") == "hotpatch"
        saved = params.RDX_OBS_TARGET_LABELS
        params.RDX_OBS_TARGET_LABELS = True
        try:
            assert tenant_label("hot123", "hotpatch") == "hot123"
        finally:
            params.RDX_OBS_TARGET_LABELS = saved

    def test_per_class_series_stay_bounded(self, testbed):
        """1000 tenants, O(classes) label values on serve metrics."""
        bed = testbed
        service = _service(bed, admit_after=1)
        self._run_some_traffic(bed, service)
        labels = {
            tuple(sorted(row["labels"].items()))
            for row in bed.obs.registry.snapshot()
            if row["name"] == "rdx.serve.deploy_us"
        }
        assert labels == {(("tenant_class", "hotpatch"),)}


# ---------------------------------------------------------------------------
# End to end: the open-loop workload
# ---------------------------------------------------------------------------


class TestServeWorkload:
    def test_small_open_loop_mix(self):
        spec = ServeWorkloadSpec(
            n_tenants=45, n_targets=2, duration_us=120_000.0,
            n_hot_programs=3, seed=11,
        )
        result, service = run_serve_workload(spec)
        assert result.offered > 50
        assert result.unaccounted == 0
        assert result.completed + result.failed + sum(
            result.shed.values()
        ) == result.offered
        assert result.deploys_per_sec > 0
        assert result.latency_p99_us >= result.latency_p50_us
        # The tentpole's acceptance shape: warm >= 2x faster than the
        # cold validate+JIT+link path on service latency.
        assert result.warm_hits > 0
        assert result.warm_service_p50_us * 2 <= result.cold_service_p50_us

    def test_deterministic_for_seed(self):
        spec = ServeWorkloadSpec(
            n_tenants=20, n_targets=1, duration_us=50_000.0,
            n_hot_programs=2, seed=3,
        )
        first, _ = run_serve_workload(spec)
        second, _ = run_serve_workload(spec)
        assert first.offered == second.offered
        assert first.latency_p99_us == second.latency_p99_us
        assert first.shed == second.shed
