"""Tests for fault injection, control loops, and QoS isolation (§7)."""

import pytest

from repro.core.faults import FaultInjector, FaultKind, crash_campaign
from repro.core.loops import ControlLoop, ThresholdPolicy
from repro.core.qos import QosScheduler, TenantQuota
from repro.core.xstate import XStateSpec
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.stress import make_stress_program
from repro.errors import ReproError, SandboxCrash, SecurityError


class TestFaultInjector:
    def _linked(self, testbed, program):
        entry = testbed.sim.run_process(
            testbed.control.prepare_for(testbed.codeflow, program)
        )
        return testbed.codeflow.linker.link(entry.binary)[0]

    def test_torn_write_detected(self, testbed):
        program = make_stress_program(500, seed=1)
        linked = self._linked(testbed, program)
        injector = FaultInjector(testbed.codeflow)
        injector.arm(FaultKind.TORN_WRITE)
        testbed.sim.run_process(
            injector.deploy_with_faults(program, linked, "ingress")
        )
        with pytest.raises(SandboxCrash):
            testbed.sandbox.run_hook("ingress", bytes(256))
        assert injector.injected[0].kind is FaultKind.TORN_WRITE

    def test_bit_flip_detected(self, testbed):
        program = make_stress_program(500, seed=1)
        linked = self._linked(testbed, program)
        injector = FaultInjector(testbed.codeflow, seed=7)
        injector.arm(FaultKind.BIT_FLIP)
        testbed.sim.run_process(
            injector.deploy_with_faults(program, linked, "ingress")
        )
        with pytest.raises(SandboxCrash):
            testbed.sandbox.run_hook("ingress", bytes(256))

    def test_clean_deploy_without_armed_fault(self, testbed):
        program = make_stress_program(500, seed=1)
        linked = self._linked(testbed, program)
        injector = FaultInjector(testbed.codeflow)
        testbed.sim.run_process(
            injector.deploy_with_faults(program, linked, "ingress")
        )
        result, _ = testbed.sandbox.run_hook("ingress", bytes(256))
        assert result is not None
        assert injector.injected == []

    def test_dropped_flush_leaves_stale_view(self, testbed):
        addr = testbed.codeflow.manifest.scratchpad_addr
        testbed.host.cache.cpu_read(addr, 8)  # cache the line
        injector = FaultInjector(testbed.codeflow)
        injector.arm(FaultKind.DROPPED_FLUSH)

        def flow():
            yield from testbed.codeflow.sync.write(addr, b"FRESHDAT")
            yield from injector.cc_event(addr, 8)

        testbed.sim.run_process(flow())
        # The flush was dropped, so the CPU still sees stale bytes.
        assert testbed.host.cache.cpu_read(addr, 8) == bytes(8)

    def test_stale_read_fault(self, testbed):
        addr = testbed.codeflow.manifest.scratchpad_addr
        testbed.host.memory.write(addr, b"REALDATA")
        injector = FaultInjector(testbed.codeflow)
        injector.arm(FaultKind.STALE_READ)

        def flow():
            data = yield from injector.read(addr, 8)
            return data

        assert testbed.sim.run_process(flow()) == bytes(8)

    def test_dropped_flush_detected_and_recovered(self, testbed):
        """A dropped flush is *detectable* (CPU view disagrees with
        DRAM) and recoverable by re-issuing the cc_event."""
        addr = testbed.codeflow.manifest.scratchpad_addr
        testbed.host.cache.cpu_read(addr, 8)  # cache the stale line
        injector = FaultInjector(testbed.codeflow)
        injector.arm(FaultKind.DROPPED_FLUSH)

        def flow():
            yield from testbed.codeflow.sync.write(addr, b"FRESHDAT")
            yield from injector.cc_event(addr, 8)

        testbed.sim.run_process(flow())
        # Detection: the CPU's cached view disagrees with DRAM.
        assert testbed.host.cache.cpu_read(addr, 8) != b"FRESHDAT"
        assert testbed.host.memory.read(addr, 8) == b"FRESHDAT"

        # Recovery: re-issue the flush (the one-shot fault is spent).
        def reflush():
            yield from testbed.codeflow.sync.cc_event(addr, 8)

        testbed.sim.run_process(reflush())
        assert testbed.host.cache.cpu_read(addr, 8) == b"FRESHDAT"

    def test_stale_read_detected_and_recovered_by_rollback(self, testbed):
        """A stale readback fails the image CRC (detection); rollback
        to the previous resident image recovers the data path."""
        import zlib

        from repro.core.rollback import RollbackManager

        name = "patchme"
        for version, (size, seed) in enumerate([(300, 2), (320, 3)], 1):
            program = make_stress_program(size, seed=seed, name=name)
            testbed.sim.run_process(
                testbed.control.inject(testbed.codeflow, program, "ingress")
            )
        record = testbed.codeflow.deployed[name]
        v1_addr = record.history[-1]

        injector = FaultInjector(testbed.codeflow)
        injector.arm(FaultKind.STALE_READ)
        injector.attach()

        def readback():
            data = yield from testbed.codeflow.sync.read(
                record.code_addr, record.code_len
            )
            return data

        try:
            stale = testbed.sim.run_process(readback())
        finally:
            injector.detach()
        # Detection: pre-write bytes cannot carry the image's CRC.
        stored = int.from_bytes(stale[-4:], "little")
        assert zlib.crc32(stale[:-4]) & 0xFFFFFFFF != stored

        # Recovery: one pointer flip back to the last good image.
        testbed.sim.run_process(
            RollbackManager(testbed.codeflow).rollback(name)
        )
        assert testbed.codeflow.deployed[name].code_addr == v1_addr
        out, _ = testbed.sandbox.run_hook("ingress", bytes(256))
        assert out is not None

    def test_double_arm_rejected(self, testbed):
        injector = FaultInjector(testbed.codeflow)
        injector.arm(FaultKind.BIT_FLIP)
        with pytest.raises(ReproError):
            injector.arm(FaultKind.TORN_WRITE)

    def test_crash_campaign_detects_every_fault(self, testbed):
        program = make_stress_program(500, seed=5)
        injected, detected = crash_campaign(testbed, program, rounds=6)
        assert injected == 6
        assert detected == 6  # CRC catches all payload corruption


class TestControlLoop:
    @pytest.fixture
    def loop_rig(self, testbed):
        spec = XStateSpec("lb_counters", MapType.HASH, 4, 8, 8)
        handle = testbed.sim.run_process(testbed.codeflow.deploy_xstate(spec))
        guard = make_stress_program(100, seed=9, name="guard")
        policy = ThresholdPolicy(
            counter_key=(1).to_bytes(4, "little"),
            high=100,
            low=10,
            guard_program=guard,
            hook_name="egress",
        )
        loop = ControlLoop(testbed.codeflow, handle, policy, interval_us=500)
        return testbed, handle, loop

    def _set_counter(self, testbed, handle, value):
        testbed.sim.run_process(
            testbed.codeflow.xstate_update(
                handle, (1).to_bytes(4, "little"), value.to_bytes(8, "little")
            )
        )

    def test_deploys_guard_above_threshold(self, loop_rig):
        testbed, handle, loop = loop_rig
        self._set_counter(testbed, handle, 500)
        observation = testbed.sim.run_process(loop.run_once())
        assert observation.action == "deploy"
        result, _ = testbed.sandbox.run_hook("egress", bytes(256))
        assert result is not None

    def test_no_action_in_band(self, loop_rig):
        testbed, handle, loop = loop_rig
        self._set_counter(testbed, handle, 50)
        observation = testbed.sim.run_process(loop.run_once())
        assert observation.action == "none"

    def test_retires_guard_on_recovery(self, loop_rig):
        testbed, handle, loop = loop_rig
        self._set_counter(testbed, handle, 500)
        testbed.sim.run_process(loop.run_once())
        self._set_counter(testbed, handle, 5)
        observation = testbed.sim.run_process(loop.run_once())
        assert observation.action == "retire"
        result, _ = testbed.sandbox.run_hook("egress", bytes(256))
        assert result is None

    def test_hysteresis_prevents_flapping(self, loop_rig):
        testbed, handle, loop = loop_rig
        self._set_counter(testbed, handle, 500)
        testbed.sim.run_process(loop.run_once())
        self._set_counter(testbed, handle, 50)  # between low and high
        observation = testbed.sim.run_process(loop.run_once())
        assert observation.action == "none"  # still deployed

    def test_background_loop_reacts(self, loop_rig):
        testbed, handle, loop = loop_rig
        loop.start(duration_us=20_000)
        testbed.sim.run(until=2_000)
        self._set_counter(testbed, handle, 900)
        testbed.sim.run(until=10_000)
        loop.stop()
        testbed.sim.run()
        assert ("deploy" in {action for _t, action in loop.actions()})
        latency = loop.reaction_latency_us()
        assert latency is not None and latency <= 2 * loop.interval_us

    def test_bad_hysteresis(self):
        with pytest.raises(ReproError):
            ThresholdPolicy(
                counter_key=b"\x00" * 4, high=5, low=10,
                guard_program=None, hook_name="h",
            )


class TestQos:
    @pytest.fixture
    def scheduler(self, testbed):
        scheduler = QosScheduler(testbed.control)
        scheduler.register_tenant(
            TenantQuota("bulk", rate_bytes_per_s=2e6, burst_bytes=20_000,
                        priority=5)
        )
        scheduler.register_tenant(
            TenantQuota("urgent", rate_bytes_per_s=1e9, burst_bytes=1e6,
                        priority=0)
        )
        return testbed, scheduler

    def test_deploy_within_burst_unthrottled(self, scheduler):
        testbed, qos = scheduler
        program = make_stress_program(100, seed=1)  # 800 bytes
        report = testbed.sim.run_process(
            qos.inject("bulk", testbed.codeflow, program, "ingress")
        )
        assert report.total_us > 0
        assert qos.usage["bulk"].throttled_us == 0

    def test_rate_limit_throttles_bulk(self, scheduler):
        testbed, qos = scheduler
        program = make_stress_program(4_000, seed=1)  # 32 KB > burst

        def flood():
            for _ in range(3):
                yield from qos.inject(
                    "bulk", testbed.codeflow, program, "ingress",
                    retain_history=False,
                )

        testbed.sim.run_process(flood())
        assert qos.usage["bulk"].throttled_us > 0
        assert qos.usage["bulk"].deploys == 3

    def test_unknown_tenant_rejected(self, scheduler):
        testbed, qos = scheduler
        program = make_stress_program(100, seed=1)
        process = testbed.sim.spawn(
            qos.inject("ghost", testbed.codeflow, program, "ingress")
        )
        testbed.sim.run()
        with pytest.raises(SecurityError):
            _ = process.value

    def test_duplicate_tenant_rejected(self, scheduler):
        _testbed, qos = scheduler
        with pytest.raises(SecurityError):
            qos.register_tenant(
                TenantQuota("bulk", rate_bytes_per_s=1, burst_bytes=1)
            )

    def test_priority_lane_overtakes_bulk(self, testbed2):
        bed = testbed2
        qos = QosScheduler(bed.control)
        qos.register_tenant(
            TenantQuota("bulk", rate_bytes_per_s=1e9, burst_bytes=1e9,
                        priority=5)
        )
        qos.register_tenant(
            TenantQuota("urgent", rate_bytes_per_s=1e9, burst_bytes=1e9,
                        priority=0)
        )
        bulk_prog = make_stress_program(40_000, seed=1, name="bulk1")
        bulk_prog2 = make_stress_program(40_000, seed=2, name="bulk2")
        urgent_prog = make_stress_program(100, seed=3, name="hotfix")
        done_order = []

        def tenant_flow(tenant, flow, program, hook):
            yield from qos.inject(tenant, flow, program, hook)
            done_order.append(program.name)

        # Two bulk deploys queue up; an urgent hotfix arrives after.
        bed.sim.spawn(tenant_flow("bulk", bed.codeflows[0], bulk_prog, "ingress"))
        bed.sim.spawn(tenant_flow("bulk", bed.codeflows[0], bulk_prog2, "egress"))

        def late_urgent():
            yield bed.sim.timeout(5.0)
            yield from tenant_flow(
                "urgent", bed.codeflows[1], urgent_prog, "ingress"
            )

        bed.sim.spawn(late_urgent())
        bed.sim.run()
        # The hotfix must not wait behind the second bulk deploy.
        assert done_order.index("hotfix") < done_order.index("bulk2")
        report = qos.tenant_report()
        assert report["urgent"].deploys == 1
        assert report["bulk"].deploys == 2
