"""Collective CodeFlow / BBU tests (§4)."""

import pytest

from repro.core.api import rdx_broadcast
from repro.core.broadcast import CodeFlowGroup
from repro.errors import ConsistencyError, DeployError
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed


def programs_for(bed, size=100):
    return [
        make_stress_program(size, seed=i + 1, name=f"bc{i}")
        for i in range(len(bed.codeflows))
    ]


class TestBroadcast:
    def test_deploys_everywhere(self, testbed2):
        bed = testbed2
        progs = programs_for(bed)
        result = bed.sim.run_process(
            rdx_broadcast(bed.codeflows, progs, "ingress")
        )
        assert result.group_size == 2
        for sandbox in bed.sandboxes:
            out, _ = sandbox.run_hook("ingress", bytes(256))
            assert out is not None

    def test_bubble_raised_then_lowered(self, testbed2):
        bed = testbed2
        # Warm the registry so Phase 0 (prepare) is instant and the
        # observer lands inside the bubble window.
        for program, codeflow in zip(programs_for(bed), bed.codeflows):
            bed.sim.run_process(bed.control.prepare_for(codeflow, program))
        observed = {"during": None}

        def observer():
            # Poll through the (microsecond-scale) bubble window and
            # record the first instant every target's bubble is up at
            # once.  A fixed sample point would race the pipelined
            # fast path, whose window is a fraction of the serial one.
            for _ in range(500):
                yield bed.sim.timeout(1)
                states = [sb.bubble_active() for sb in bed.sandboxes]
                if all(states):
                    observed["during"] = states
                    return

        bed.sim.spawn(observer())
        result = bed.sim.run_process(
            rdx_broadcast(bed.codeflows, programs_for(bed), "ingress")
        )
        assert observed["during"] == [True, True]
        assert all(not sb.bubble_active() for sb in bed.sandboxes)
        assert result.bubble_window_us > 0

    def test_window_is_microseconds(self, testbed2):
        bed = testbed2
        for program, codeflow in zip(programs_for(bed), bed.codeflows):
            bed.sim.run_process(
                bed.control.prepare(program, arch=codeflow.manifest.arch)
            )
        result = bed.sim.run_process(
            rdx_broadcast(bed.codeflows, programs_for(bed), "ingress")
        )
        assert result.bubble_window_us < 1_000  # sub-millisecond

    def test_dependency_order_controls_lowering(self, testbed2):
        bed = testbed2
        lowered = []

        original = CodeFlowGroup._lower_bubble

        def spying(self, codeflow, flushes):
            lowered.append(codeflow.sandbox.name)
            return original(self, codeflow, flushes)

        CodeFlowGroup._lower_bubble = spying
        try:
            bed.sim.run_process(
                rdx_broadcast(
                    bed.codeflows, programs_for(bed), "ingress",
                    dependency_order=[0, 1],
                )
            )
        finally:
            CodeFlowGroup._lower_bubble = original
        assert lowered == [bed.sandboxes[0].name, bed.sandboxes[1].name]

    def test_bad_dependency_order(self, testbed2):
        bed = testbed2

        def flow():
            yield from CodeFlowGroup(bed.codeflows).broadcast(
                programs_for(bed), "ingress", dependency_order=[0, 0]
            )

        process = bed.sim.spawn(flow())
        bed.sim.run()
        with pytest.raises(ConsistencyError):
            _ = process.value

    def test_count_mismatch(self, testbed2):
        bed = testbed2

        def flow():
            yield from CodeFlowGroup(bed.codeflows).broadcast(
                programs_for(bed)[:1], "ingress"
            )

        process = bed.sim.spawn(flow())
        bed.sim.run()
        with pytest.raises(DeployError, match="one program per target"):
            _ = process.value

    def test_empty_group_rejected(self):
        with pytest.raises(DeployError):
            CodeFlowGroup([])

    def test_without_bbu_no_bubble(self, testbed2):
        bed = testbed2
        for program, codeflow in zip(programs_for(bed), bed.codeflows):
            bed.sim.run_process(bed.control.prepare_for(codeflow, program))
        bubble_writes = []
        original = CodeFlowGroup._set_bubble

        def spying(self, codeflow, value):
            bubble_writes.append(value)
            return original(self, codeflow, value)

        CodeFlowGroup._set_bubble = spying
        try:
            result = bed.sim.run_process(
                rdx_broadcast(bed.codeflows, programs_for(bed), "ingress",
                              use_bbu=False)
            )
        finally:
            CodeFlowGroup._set_bubble = original
        # Without BBU there is no bubble phase: no flag was ever
        # raised (or lowered) and the "window" is just the raw deploy
        # fan-out span.
        assert bubble_writes == []
        assert result.bubble_raised_us <= result.deploys_done_us
        assert all(not sb.bubble_active() for sb in bed.sandboxes)


class TestBubbleLeak:
    def test_failed_deploy_still_lowers_every_bubble(self, testbed2):
        """Regression: a deploy failure mid-broadcast must not strand
        targets behind raised bubble flags (§2.2 agent lockout)."""
        from repro.core.codeflow import CodeFlow
        from repro.errors import BroadcastAborted

        bed = testbed2
        # Patch at deploy_prog, the choke point every arm passes
        # through (flat legs via inject, tree roots via the prelinked
        # fast path), so the failure bites regardless of topology.
        original = CodeFlow.deploy_prog

        def failing(self, program, linked, hook_name, **kwargs):
            if self is bed.codeflows[1]:
                raise DeployError("target 1 deploy blew up")
            report = yield from original(
                self, program, linked, hook_name, **kwargs
            )
            return report

        CodeFlow.deploy_prog = failing
        try:
            process = bed.sim.spawn(
                rdx_broadcast(bed.codeflows, programs_for(bed), "ingress")
            )
            bed.sim.run()
        finally:
            CodeFlow.deploy_prog = original
        # The failure is surfaced as a transactional abort, not
        # swallowed; the per-target error rides along in the message.
        with pytest.raises(BroadcastAborted, match="blew up"):
            _ = process.value
        # ... and no bubble flag stays raised on any target.
        assert all(not sb.bubble_active() for sb in bed.sandboxes)

    def test_torn_write_aborts_and_lowers_every_bubble(self, testbed2):
        """The headline scenario: one target's image write is torn
        in-flight.  The CRC verify readback must surface it (a
        ConsistencyError, not silence), and every bubble must drop."""
        from repro.core.faults import FaultInjector, FaultKind
        from repro.errors import BroadcastAborted

        bed = testbed2
        injector = FaultInjector(bed.codeflows[1], seed=7)
        injector.arm(FaultKind.TORN_WRITE)
        injector.attach()
        try:
            process = bed.sim.spawn(
                rdx_broadcast(bed.codeflows, programs_for(bed), "ingress")
            )
            bed.sim.run()
        finally:
            injector.detach()
        with pytest.raises(BroadcastAborted) as excinfo:
            _ = process.value
        assert isinstance(excinfo.value, ConsistencyError)  # not swallowed
        outcome = excinfo.value.result.outcomes[1]
        assert not outcome.ok
        assert outcome.error_kind == "ConsistencyError"
        # No target is stranded buffering behind a raised bubble.
        assert all(not sb.bubble_active() for sb in bed.sandboxes)


class TestBbuConsistencyInvariant:
    def test_no_request_observes_mixed_logic(self):
        """The §4 guarantee: with BBU, a request that checks the bubble
        flag before executing never sees a mix of old and new logic."""
        from repro.mesh.apps import AppSpec, MicroserviceApp
        from repro.core.api import bootstrap_sandbox
        from repro.core.control_plane import RdxControlPlane
        from repro.mesh.consistency import ConsistencyProbe
        from repro.net.topology import Host
        from repro.sim.core import Simulator
        from repro.wasm.filters import make_header_filter

        sim = Simulator()
        app = MicroserviceApp(
            sim, AppSpec(n_services=4, with_agents=False)
        )
        control_host = Host(sim, "ctl", cores=8, dram_bytes=32 * 2**20)
        app.fabric.attach(control_host)
        control = RdxControlPlane(control_host)
        codeflows = []
        for service in app.services():
            sandbox = app.pods[service].proxy.sandbox
            bootstrap_sandbox(sandbox)
            codeflows.append(sim.run_process(control.create_codeflow(sandbox)))

        # Install v1 everywhere via broadcast first.
        v1 = [make_header_filter(version=1) for _ in codeflows]
        sim.run_process(rdx_broadcast(codeflows, v1, "filter0"))

        probe = ConsistencyProbe(app, interval_us=5.0)
        probe.start(duration_us=100_000)

        v2 = [make_header_filter(version=2) for _ in codeflows]
        sim.run_process(rdx_broadcast(codeflows, v2, "filter0"))
        sim.run(until=sim.now + 200)
        probe.stop()
        sim.run()

        result = probe.result()
        assert result.probes_sent > 0
        assert result.mixed_count == 0  # the invariant
