"""Tests for the TraceRecorder: bounding, pairing, filtering."""

import pytest

from repro.sim.trace import TraceRecorder


class TestRecord:
    def test_records_in_order(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", x=1)
        trace.record(2.0, "b")
        assert [e.category for e in trace.events] == ["a", "b"]
        assert trace.events[0].data == {"x": 1}
        assert len(trace) == 2

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "a")
        assert len(trace) == 0

    def test_filter_by_category_prefix(self):
        trace = TraceRecorder()
        trace.record(1.0, "rdx.deploy")
        trace.record(2.0, "rdx.deploy.end")
        trace.record(3.0, "agent.verify")
        assert len(list(trace.filter("rdx.deploy"))) == 2
        assert len(list(trace.filter(predicate=lambda e: e.time_us > 2))) == 1


class TestMaxEvents:
    def test_drop_oldest_and_count(self):
        trace = TraceRecorder(max_events=3)
        for i in range(5):
            trace.record(float(i), "ev", i=i)
        assert len(trace) == 3
        assert trace.dropped == 2
        # Oldest were dropped: 0 and 1 are gone.
        assert [e.data["i"] for e in trace.events] == [2, 3, 4]

    def test_unbounded_by_default(self):
        trace = TraceRecorder()
        for i in range(10_000):
            trace.record(float(i), "ev")
        assert len(trace) == 10_000
        assert trace.dropped == 0

    def test_clear_resets_dropped(self):
        trace = TraceRecorder(max_events=1)
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        assert trace.dropped == 1
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)


class TestDurations:
    def test_basic_pairing(self):
        trace = TraceRecorder()
        trace.record(10.0, "op.start", ext_id=1)
        trace.record(25.0, "op.end", ext_id=1)
        assert trace.durations("op.start", "op.end", "ext_id") == [15.0]

    def test_interleaved_keys(self):
        trace = TraceRecorder()
        trace.record(0.0, "op.start", ext_id="a")
        trace.record(5.0, "op.start", ext_id="b")
        trace.record(7.0, "op.end", ext_id="a")
        trace.record(20.0, "op.end", ext_id="b")
        assert trace.durations("op.start", "op.end", "ext_id") == [7.0, 15.0]

    def test_reentrant_same_key_pairs_lifo(self):
        """Nested ops on one key must not lose the outer start.

        This was a real bug: a dict of single starts silently
        overwrote the outer start, so the outer duration was wrong
        and one pairing was lost entirely.
        """
        trace = TraceRecorder()
        trace.record(0.0, "op.start", ext_id=1)   # outer
        trace.record(10.0, "op.start", ext_id=1)  # nested
        trace.record(12.0, "op.end", ext_id=1)    # closes nested
        trace.record(30.0, "op.end", ext_id=1)    # closes outer
        assert trace.durations("op.start", "op.end", "ext_id") == [2.0, 30.0]

    def test_unmatched_events_ignored(self):
        trace = TraceRecorder()
        trace.record(0.0, "op.start", ext_id=1)   # never ends
        trace.record(5.0, "op.end", ext_id=2)     # never started
        assert trace.durations("op.start", "op.end", "ext_id") == []
