"""Tests for the RDMA verbs layer: MRs, QPs, one-sided operations."""

import pytest

from repro import params
from repro.errors import RdmaError
from repro.net.topology import Cluster
from repro.rdma.cq import WcStatus
from repro.rdma.mr import AccessFlags, ProtectionDomain
from repro.rdma.qp import QpState, WorkRequest, WrOpcode
from repro.rdma.verbs import connect_qps, open_device
from repro.sim.core import Simulator

ALL_ACCESS = (
    AccessFlags.REMOTE_READ
    | AccessFlags.REMOTE_WRITE
    | AccessFlags.REMOTE_ATOMIC
    | AccessFlags.LOCAL_WRITE
)


@pytest.fixture
def rig():
    sim = Simulator()
    cluster = Cluster(sim, n_hosts=2, with_control_host=False)
    a, b = cluster.hosts
    ctx_a, ctx_b = open_device(a), open_device(b)
    pd_a, pd_b = ctx_a.alloc_pd(), ctx_b.alloc_pd()
    addr = b.allocator.alloc(256 * 1024, align=8)
    mr = pd_b.reg_mr(addr, 256 * 1024, ALL_ACCESS)
    qp_a = ctx_a.create_qp(pd_a, ctx_a.create_cq())
    qp_b = ctx_b.create_qp(pd_b, ctx_b.create_cq())
    connect_qps(qp_a, qp_b)
    return sim, a, b, qp_a, qp_b, mr, addr


def run_wr(sim, qp, wr):
    def proc():
        completion = yield qp.post_send(wr)
        return completion

    return sim.run_process(proc())


class TestMr:
    def test_rkey_lookup(self):
        pd = ProtectionDomain("dev")
        mr = pd.reg_mr(0x1000, 64, AccessFlags.REMOTE_READ)
        assert pd.lookup_rkey(mr.rkey) is mr
        assert pd.lookup_rkey(0xBAD) is None

    def test_dereg(self):
        pd = ProtectionDomain("dev")
        mr = pd.reg_mr(0x1000, 64, AccessFlags.REMOTE_READ)
        pd.dereg_mr(mr)
        assert pd.lookup_rkey(mr.rkey) is None
        with pytest.raises(RdmaError):
            pd.dereg_mr(mr)

    def test_zero_length_rejected(self):
        pd = ProtectionDomain("dev")
        with pytest.raises(RdmaError):
            pd.reg_mr(0x1000, 0, AccessFlags.REMOTE_READ)

    def test_check_remote_range(self):
        pd = ProtectionDomain("dev")
        mr = pd.reg_mr(0x1000, 64, AccessFlags.REMOTE_WRITE)
        mr.check_remote(0x1000, 64, AccessFlags.REMOTE_WRITE)
        from repro.errors import ProtectionError

        with pytest.raises(ProtectionError):
            mr.check_remote(0x1000, 65, AccessFlags.REMOTE_WRITE)
        with pytest.raises(ProtectionError):
            mr.check_remote(0x1000, 8, AccessFlags.REMOTE_ATOMIC)


class TestQpStateMachine:
    def test_fresh_qp_is_init(self, rig):
        sim, a, *_ = rig
        ctx = open_device(a)
        qp = ctx.create_qp(ctx.alloc_pd(), ctx.create_cq())
        assert qp.state is QpState.INIT

    def test_illegal_transition(self, rig):
        sim, a, *_ = rig
        ctx = open_device(a)
        qp = ctx.create_qp(ctx.alloc_pd(), ctx.create_cq())
        with pytest.raises(RdmaError):
            qp.modify(QpState.RTS)  # must pass through RTR

    def test_post_send_requires_rts(self, rig):
        sim, a, *_ = rig
        ctx = open_device(a)
        qp = ctx.create_qp(ctx.alloc_pd(), ctx.create_cq())
        with pytest.raises(RdmaError):
            qp.post_send(WorkRequest(opcode=WrOpcode.RDMA_WRITE))

    def test_double_connect_rejected(self, rig):
        _sim, _a, _b, qp_a, qp_b, *_ = rig
        with pytest.raises(RdmaError):
            connect_qps(qp_a, qp_b)

    def test_pd_device_mismatch(self, rig):
        sim, a, b, *_ = rig
        ctx_a = open_device(a)
        ctx_b = open_device(b)
        pd_b = ctx_b.alloc_pd()
        with pytest.raises(RdmaError):
            ctx_a.create_qp(pd_b, ctx_a.create_cq())


class TestOneSidedOps:
    def test_write_lands_in_remote_dram(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=mr.rkey,
            data=b"payload",
        ))
        assert completion.status is WcStatus.SUCCESS
        assert b.memory.read(addr, 7) == b"payload"

    def test_write_consumes_no_target_cpu(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=mr.rkey,
            data=b"x" * 100_000,
        ))
        assert b.cpu.busy_us == 0.0

    def test_read_returns_remote_bytes(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        b.memory.write(addr, b"remote-bytes")
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.RDMA_READ, remote_addr=addr, rkey=mr.rkey, length=12,
        ))
        assert completion.result == b"remote-bytes"

    def test_cas_success_and_failure(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.COMP_SWAP, remote_addr=addr, rkey=mr.rkey,
            compare=0, swap_or_add=7,
        ))
        assert completion.result == 0
        assert int.from_bytes(b.memory.read(addr, 8), "little") == 7
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.COMP_SWAP, remote_addr=addr, rkey=mr.rkey,
            compare=0, swap_or_add=99,
        ))
        assert completion.result == 7  # compare failed, no swap
        assert int.from_bytes(b.memory.read(addr, 8), "little") == 7

    def test_fetch_add(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        for expected_prior in (0, 5):
            completion = run_wr(sim, qp_a, WorkRequest(
                opcode=WrOpcode.FETCH_ADD, remote_addr=addr, rkey=mr.rkey,
                swap_or_add=5,
            ))
            assert completion.result == expected_prior

    def test_atomic_alignment_enforced(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.COMP_SWAP, remote_addr=addr + 4, rkey=mr.rkey,
            compare=0, swap_or_add=1,
        ))
        assert completion.status is WcStatus.REMOTE_ACCESS_ERROR

    def test_bad_rkey_errors_and_poisons_qp(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=0xBAD, data=b"x",
        ))
        assert completion.status is WcStatus.REMOTE_ACCESS_ERROR
        assert qp_a.state is QpState.ERROR
        flushed = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=mr.rkey, data=b"y",
        ))
        assert flushed.status is WcStatus.WR_FLUSH_ERROR

    def test_out_of_range_write_rejected(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr + 256 * 1024 - 2, rkey=mr.rkey,
            data=b"too-long",
        ))
        assert completion.status is WcStatus.REMOTE_ACCESS_ERROR

    def test_write_timing_scales_with_size(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig

        def timed(size):
            start = sim.now
            run_wr(sim, qp_a, WorkRequest(
                opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=mr.rkey,
                data=b"z" * size,
            ))
            return sim.now - start

        small = timed(8)
        large = timed(8000)
        assert small >= params.RDMA_SMALL_OP_RTT_US
        assert large > small
        assert large - small == pytest.approx(
            (8000 - 8) / params.RDMA_BANDWIDTH_BPUS, rel=0.2
        )

    def test_large_write_lands_progressively(self, rig):
        """Mid-transfer, remote memory holds a torn (partial) image."""
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        size = 64 * 1024
        done = qp_a.post_send(WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=mr.rkey,
            data=b"\xff" * size,
        ))

        observations = []

        def observer():
            while not done.triggered:
                first = b.memory.read(addr, 1)
                last = b.memory.read(addr + size - 1, 1)
                observations.append((first, last))
                yield sim.timeout(0.5)

        sim.spawn(observer())
        sim.run()
        torn = [(f, l) for f, l in observations if f == b"\xff" and l == b"\x00"]
        assert torn, "expected a window where the write was partially visible"

    def test_send_recv(self, rig):
        sim, a, b, qp_a, qp_b, mr, addr = rig
        qp_b.post_recv(addr + 1024, 64)
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.SEND, data=b"two-sided",
        ))
        assert completion.status is WcStatus.SUCCESS
        assert b.memory.read(addr + 1024, 9) == b"two-sided"
        recv = qp_b.cq.poll()
        assert recv is not None and recv.opcode == "recv"

    def test_send_without_recv_errors(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        completion = run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.SEND, data=b"nobody-listening",
        ))
        assert completion.status is WcStatus.REMOTE_ACCESS_ERROR


class TestCq:
    def test_completion_lands_in_cq(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig
        run_wr(sim, qp_a, WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=mr.rkey, data=b"x",
        ))
        completion = qp_a.cq.poll()
        assert completion is not None
        assert completion.status is WcStatus.SUCCESS
        assert qp_a.cq.poll() is None

    def test_blocking_wait(self, rig):
        sim, a, b, qp_a, _qp_b, mr, addr = rig

        def waiter():
            completion = yield qp_a.cq.wait()
            return completion.status

        process = sim.spawn(waiter())
        qp_a.post_send(WorkRequest(
            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=mr.rkey, data=b"x",
        ))
        sim.run()
        assert process.value is WcStatus.SUCCESS
