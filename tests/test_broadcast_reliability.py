"""Deploy-reliability tests: transactional abort, retry absorption,
quorum mode, deadlines, and the node-crash/partition fault model.

The broadcast invariants under test (paper §4, §2.2):

* any failed leg triggers all-or-nothing abort -- succeeded targets
  revert to their prior image (or detach if freshly deployed);
* no target is ever stranded behind a raised bubble flag;
* transient transport faults are absorbed by the retry policy instead
  of aborting the transaction;
* ``allow_partial=True`` opts into quorum-mode degradation instead.

``RDX_FAULT_SEED`` (CI fault-matrix) reseeds the campaign smoke test so
recovery logic is exercised under several fault schedules.
"""

import os

import pytest

from repro import params
from repro.core.api import rdx_broadcast
from repro.core.faults import FaultInjector, FaultKind
from repro.ebpf.stress import make_stress_program
from repro.errors import BroadcastAborted, ConsistencyError
from repro.exp.fault_campaign import run_fault_campaign
from repro.rdma.rnic import RNIC_MTU_BYTES

FAULT_SEED = int(os.environ.get("RDX_FAULT_SEED", "0"))


def versioned(bed, version, size=120):
    """One program per target; same names across versions so a v2
    deploy chains onto v1's history (making rollback possible)."""
    return [
        make_stress_program(
            size + version, seed=version * 10 + i, name=f"app{i}"
        )
        for i in range(len(bed.codeflows))
    ]


def counter_total(bed, name):
    """Sum a counter across all label sets."""
    return sum(
        row["value"]
        for row in bed.obs.registry.snapshot()
        if row["name"] == name and row["type"] == "counter"
    )


def broadcast_expecting_abort(bed, programs, **kwargs):
    process = bed.sim.spawn(
        rdx_broadcast(bed.codeflows, programs, "ingress", **kwargs)
    )
    bed.sim.run()
    with pytest.raises(BroadcastAborted) as excinfo:
        _ = process.value
    return excinfo.value


def code_addrs(bed):
    return [
        cf.deployed[f"app{i}"].code_addr
        for i, cf in enumerate(bed.codeflows)
    ]


class TestTransactionalAbort:
    def test_abort_rolls_back_every_target_to_prior_image(self, testbed2):
        """Torn write on one target mid-upgrade: *both* targets must
        end on the v1 image -- the survivor via the abort path, the
        corrupted target via its own verify-failure undo."""
        bed = testbed2
        bed.sim.run_process(
            rdx_broadcast(bed.codeflows, versioned(bed, 1), "ingress")
        )
        v1_addrs = code_addrs(bed)

        injector = FaultInjector(bed.codeflows[1], seed=FAULT_SEED)
        injector.arm(FaultKind.TORN_WRITE)
        injector.attach()
        try:
            err = broadcast_expecting_abort(bed, versioned(bed, 2))
        finally:
            injector.detach()

        assert err.result.aborted
        survivor = err.result.outcomes[0]
        assert survivor.rolled_back and not survivor.detached
        assert err.result.outcomes[1].error_kind == "ConsistencyError"
        # All-or-nothing: every hook points at its v1 image again.
        assert code_addrs(bed) == v1_addrs
        assert all(not sb.bubble_active() for sb in bed.sandboxes)
        # The rolled-back data path still runs v1 logic.
        out, _ = bed.sandboxes[0].run_hook("ingress", bytes(256))
        assert out is not None

    def test_fresh_deploy_abort_detaches(self, testbed2):
        """With no prior version to roll back to, abort detaches: the
        group ends exactly as it started -- nothing deployed."""
        bed = testbed2
        injector = FaultInjector(bed.codeflows[1], seed=FAULT_SEED)
        injector.arm(FaultKind.TORN_WRITE)
        injector.attach()
        try:
            err = broadcast_expecting_abort(bed, versioned(bed, 1))
        finally:
            injector.detach()

        survivor = err.result.outcomes[0]
        assert survivor.detached and not survivor.rolled_back
        assert all(not cf.deployed for cf in bed.codeflows)
        assert all(not sb.bubble_active() for sb in bed.sandboxes)

    def test_allow_partial_keeps_survivors_live(self, testbed2):
        """Quorum mode: the survivor keeps v2, the failed target
        reverts, and the result is marked degraded instead of raising."""
        bed = testbed2
        bed.sim.run_process(
            rdx_broadcast(bed.codeflows, versioned(bed, 1), "ingress")
        )
        v1_addrs = code_addrs(bed)

        injector = FaultInjector(bed.codeflows[1], seed=FAULT_SEED)
        injector.arm(FaultKind.TORN_WRITE)
        injector.attach()
        try:
            result = bed.sim.run_process(
                rdx_broadcast(
                    bed.codeflows, versioned(bed, 2), "ingress",
                    allow_partial=True,
                )
            )
        finally:
            injector.detach()

        assert result.degraded and not result.aborted
        assert result.outcomes[0].ok
        # Survivor moved to the v2 image; the corrupted target is back
        # on v1 (verify-failure undo), not left running torn code.
        new_addrs = code_addrs(bed)
        assert new_addrs[0] != v1_addrs[0]
        assert new_addrs[1] == v1_addrs[1]
        assert all(not sb.bubble_active() for sb in bed.sandboxes)

    def test_deadline_expiry_aborts(self, testbed2):
        """A deadline far below the deploy cost fails every leg with
        DeadlineExceeded; bubbles still drop."""
        bed = testbed2
        err = broadcast_expecting_abort(
            bed, versioned(bed, 1), deadline_us=0.5
        )
        kinds = {o.error_kind for o in err.result.outcomes}
        assert kinds == {"DeadlineExceeded"}
        assert all(not sb.bubble_active() for sb in bed.sandboxes)


class TestCrashModel:
    def test_node_crash_aborts_then_recovers(self, testbed2):
        """A target that crashes on its first op never ACKs: its leg
        exhausts transport retries, the broadcast aborts, and after
        recovery the same upgrade commits cleanly."""
        bed = testbed2
        injector = FaultInjector(bed.codeflows[1], seed=FAULT_SEED)
        injector.arm(FaultKind.NODE_CRASH)
        injector.attach()
        try:
            err = broadcast_expecting_abort(bed, versioned(bed, 1))
        finally:
            injector.detach()

        assert bed.codeflows[1].sandbox.host.crashed
        failed = err.result.outcomes[1]
        assert not failed.ok and failed.error_kind
        # The reachable target was fully undone.
        assert not bed.codeflows[0].deployed
        assert not bed.sandboxes[0].bubble_active()

        injector.recover_target()
        result = bed.sim.run_process(
            rdx_broadcast(bed.codeflows, versioned(bed, 1), "ingress")
        )
        assert not result.aborted
        assert all(o.ok for o in result.outcomes)

    def test_link_partition_aborts_then_heals(self, testbed2):
        bed = testbed2
        injector = FaultInjector(bed.codeflows[1], seed=FAULT_SEED)
        injector.arm(FaultKind.LINK_PARTITION)
        injector.attach()
        try:
            err = broadcast_expecting_abort(bed, versioned(bed, 1))
        finally:
            injector.detach()

        assert not err.result.outcomes[1].ok
        assert all(not sb.bubble_active() for sb in bed.sandboxes)

        injector.heal_partition()
        result = bed.sim.run_process(
            rdx_broadcast(bed.codeflows, versioned(bed, 1), "ingress")
        )
        assert not result.aborted
        assert all(o.ok for o in result.outcomes)


class TestRetryAbsorption:
    def test_transient_fault_absorbed_and_commits(self, testbed2):
        """A one-shot unACKed op is a retry, not an abort."""
        bed = testbed2
        absorbed_before = counter_total(bed, "rdx.retry.absorbed")
        injector = FaultInjector(bed.codeflows[1], seed=FAULT_SEED)
        injector.arm(FaultKind.TRANSIENT)
        injector.attach()
        try:
            result = bed.sim.run_process(
                rdx_broadcast(bed.codeflows, versioned(bed, 1), "ingress")
            )
        finally:
            injector.detach()

        assert not result.aborted and not result.degraded
        assert all(o.ok for o in result.outcomes)
        assert counter_total(bed, "rdx.retry.absorbed") > absorbed_before
        assert counter_total(bed, "rdx.broadcast.abort") == 0

    def test_verify_catches_stale_read(self, testbed2):
        """A stale verify readback (response carrying pre-write bytes)
        must fail the CRC check, not silently pass a corrupt image."""
        bed = testbed2
        bed.sim.run_process(
            rdx_broadcast(bed.codeflows, versioned(bed, 1), "ingress")
        )
        v1_addrs = code_addrs(bed)
        injector = FaultInjector(bed.codeflows[1], seed=FAULT_SEED)
        injector.arm(FaultKind.STALE_READ)
        injector.attach()
        try:
            err = broadcast_expecting_abort(bed, versioned(bed, 2))
        finally:
            injector.detach()
        assert isinstance(err, ConsistencyError)
        assert code_addrs(bed) == v1_addrs


class TestCampaignSmoke:
    def test_campaign_never_strands_a_bubble(self):
        result = run_fault_campaign(n_hosts=2, rounds=4, seed=FAULT_SEED)
        assert result.stranded == 0
        assert result.committed + result.aborts == result.rounds_run
        assert all(r.bubbles_clear for r in result.rounds)


class TestTornChainAbort:
    @pytest.fixture(autouse=True)
    def _pin_pipelined(self):
        # The mid-chain tear needs the batched fast path; keep the test
        # meaningful under an RDX_PIPELINED_DEPLOY=0 ablation run.
        saved = params.RDX_PIPELINED_DEPLOY
        params.RDX_PIPELINED_DEPLOY = True
        yield
        params.RDX_PIPELINED_DEPLOY = saved

    def test_crash_mid_chain_aborts_then_rebroadcast_succeeds(self, testbed2):
        """A target dying mid-WR-chain strands exactly the landed MTU
        prefix; the broadcast aborts all-or-nothing, and a rebroadcast
        after recovery re-lands every WR over the torn bytes."""
        bed = testbed2
        bed.sim.run_process(
            rdx_broadcast(bed.codeflows, versioned(bed, 1), "ingress")
        )
        v1_addrs = code_addrs(bed)

        # Fail-stop target 1 right after the first full MTU chunk of
        # its v2 image lands (v2 images span multiple chunks).
        victim = bed.sandboxes[1].host
        original = victim.cache.dma_write
        seen = {}

        def crash_after_first_chunk(addr, data):
            original(addr, data)
            if len(data) == RNIC_MTU_BYTES and "addr" not in seen:
                seen["addr"] = addr
                victim.crash()

        victim.cache.dma_write = crash_after_first_chunk
        try:
            err = broadcast_expecting_abort(
                bed, versioned(bed, 2, size=1_300)
            )
        finally:
            victim.cache.dma_write = original

        assert victim.crashed
        assert not err.result.outcomes[1].ok
        # Exactly one MTU chunk of the dead leg's image landed; the
        # chain's later chunks and WRs never executed.
        stranded = victim.memory.read(seen["addr"], 2 * RNIC_MTU_BYTES)
        assert any(stranded[:RNIC_MTU_BYTES])
        assert stranded[RNIC_MTU_BYTES:] == bytes(RNIC_MTU_BYTES)
        # The reachable target was rolled back to its v1 image.
        assert code_addrs(bed) == v1_addrs

        FaultInjector(bed.codeflows[1], seed=FAULT_SEED).recover_target()
        result = bed.sim.run_process(
            rdx_broadcast(
                bed.codeflows, versioned(bed, 3, size=1_300), "ingress"
            )
        )
        assert all(outcome.ok for outcome in result.outcomes)
        assert not any(sb.bubble_active() for sb in bed.sandboxes)
        for sandbox in bed.sandboxes:
            execution, _ = sandbox.run_hook("ingress", bytes(256))
            assert execution is not None
