"""Sandbox tests: GOT, hooks, metadata, memory-backed maps, runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LinkError, SandboxCrash, SandboxError
from repro.ebpf import opcodes as op
from repro.ebpf.asm import Asm
from repro.ebpf.jit import jit_compile
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.program import BpfProgram
from repro.net.topology import Host
from repro.rdma.verbs import open_device
from repro.sandbox.got import GlobalContext, SymbolKind
from repro.sandbox.metadata import (
    MetadataArray,
    MetadataBlock,
    METADATA_SLOT_BYTES,
    SLOT_LIVE,
)
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.xmaps import MemoryBackedMap
from repro.sim.core import Simulator


@pytest.fixture
def host():
    return Host(Simulator(), "h", cores=4, dram_bytes=64 * 2**20)


@pytest.fixture
def sandbox(host):
    return Sandbox(host, hooks=("ingress", "egress"))


def deploy_locally(sandbox, asm, hook="ingress", name="p"):
    program = BpfProgram(asm.build(), name=name)
    binary = jit_compile(program, arch=sandbox.arch)
    linked = binary.link(
        lambda r: sandbox.got.address_of(r.symbol)
    )
    sandbox.install_local(program, linked, hook)
    return program


class TestGot:
    def test_define_and_lookup(self, host):
        got = GlobalContext(host.memory, host.allocator.alloc(4096))
        symbol = got.define("foo", SymbolKind.HELPER, 0x1234, token=7)
        assert got.address_of("foo") == 0x1234
        assert got.symbol_at(0x1234) is symbol
        assert got.lookup("missing") is None

    def test_persists_to_memory(self, host):
        base = host.allocator.alloc(4096)
        got = GlobalContext(host.memory, base)
        got.define("a", SymbolKind.HELPER, 0xAA)
        got.define("b", SymbolKind.MAP, 0xBB)
        assert got.read_remote_qword(0) == 0xAA
        assert got.read_remote_qword(1) == 0xBB

    def test_redefine_keeps_index(self, host):
        got = GlobalContext(host.memory, host.allocator.alloc(4096))
        got.define("a", SymbolKind.HELPER, 0xAA)
        got.define("a", SymbolKind.HELPER, 0xCC)
        assert got.layout() == {"a": 0}
        assert got.read_remote_qword(0) == 0xCC

    def test_undefine(self, host):
        got = GlobalContext(host.memory, host.allocator.alloc(4096))
        got.define("a", SymbolKind.HELPER, 0xAA)
        got.undefine("a")
        assert got.lookup("a") is None
        assert got.read_remote_qword(0) == 0
        with pytest.raises(LinkError):
            got.undefine("a")

    def test_capacity(self, host):
        got = GlobalContext(host.memory, host.allocator.alloc(4096), capacity=2)
        got.define("a", SymbolKind.HELPER, 1)
        got.define("b", SymbolKind.HELPER, 2)
        with pytest.raises(LinkError, match="full"):
            got.define("c", SymbolKind.HELPER, 3)

    def test_address_of_unknown(self, host):
        got = GlobalContext(host.memory, host.allocator.alloc(4096))
        with pytest.raises(LinkError):
            got.address_of("ghost")


class TestMetadata:
    def test_roundtrip(self, host):
        block = MetadataBlock(
            state=SLOT_LIVE,
            prog_id=7,
            insn_cnt=100,
            ref_count=2,
            code_addr=0xABCD,
            code_len=1000,
            hook_slot=3,
            xstate_addr=0x1111,
            version=4,
            name="my_prog",
            tag=b"0123456789abcdef",
        )
        decoded = MetadataBlock.decode(block.encode())
        assert decoded == block

    def test_slot_size(self):
        assert len(MetadataBlock().encode()) == METADATA_SLOT_BYTES

    def test_field_count_matches_paper(self):
        """§3.1: `struct bpf_program` has 'no less than 30 variables'."""
        from repro.ebpf.program import BpfProgMetadata

        assert BpfProgMetadata.field_count() >= 30

    def test_array_init_and_find(self, host):
        array = MetadataArray(host.memory, host.allocator.alloc(64 * 256), slots=64)
        array.init_empty()
        assert array.find_free() == 0
        block = MetadataBlock(state=SLOT_LIVE, prog_id=9)
        array.write(0, block)
        assert array.find_free() == 1
        assert array.find_by_prog_id(9) == 0
        assert array.find_by_prog_id(10) is None

    @given(
        st.integers(0, 3),
        st.integers(0, 2**31 - 1),
        st.text(max_size=20),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, state, prog_id, name):
        block = MetadataBlock(state=state, prog_id=prog_id, name=name)
        decoded = MetadataBlock.decode(block.encode())
        assert decoded.prog_id == prog_id
        assert decoded.state == state


class TestMemoryBackedMap:
    @pytest.fixture
    def mmap(self, host):
        size = MemoryBackedMap.geometry_size(4, 8, 16)
        addr = host.allocator.alloc(size)
        return MemoryBackedMap(host.cache, addr, MapType.HASH, 4, 8, 16)

    def key(self, i):
        return i.to_bytes(4, "little")

    def val(self, i):
        return i.to_bytes(8, "little")

    def test_update_lookup_delete(self, mmap):
        assert mmap.update(self.key(1), self.val(10)) == 0
        assert mmap.lookup(self.key(1)) == self.val(10)
        assert mmap.delete(self.key(1)) == 0
        assert mmap.lookup(self.key(1)) is None

    def test_truth_lives_in_dram(self, mmap, host):
        mmap.update(self.key(2), self.val(22))
        raw = host.memory.read(mmap.base_addr, mmap.image_bytes())
        assert self.val(22) in raw

    def test_serialize_matches_dram(self, mmap, host):
        mmap.update(self.key(3), self.val(33))
        assert mmap.serialize() == host.memory.read(
            mmap.base_addr, mmap.image_bytes()
        )

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, (1 << 64) - 1)),
            max_size=25,
        )
    )
    @settings(max_examples=40)
    def test_differential_vs_dict_map(self, operations):
        """MemoryBackedMap behaves exactly like the dict-backed BpfMap."""
        host = Host(Simulator(), "d", dram_bytes=1 << 20)
        size = MemoryBackedMap.geometry_size(4, 8, 16)
        mem_map = MemoryBackedMap(
            host.cache, host.allocator.alloc(size), MapType.HASH, 4, 8, 16
        )
        ref_map = BpfMap(MapType.HASH, 4, 8, 16)
        for k, v in operations:
            key, value = self.key(k), self.val(v)
            assert mem_map.update(key, value) == ref_map.update(key, value)
        for k, _ in operations:
            assert mem_map.lookup(self.key(k)) == ref_map.lookup(self.key(k))
        assert len(mem_map) == len(ref_map)

    def test_array_backed(self, host):
        size = MemoryBackedMap.geometry_size(4, 8, 4)
        amap = MemoryBackedMap(
            host.cache, host.allocator.alloc(size), MapType.ARRAY, 4, 8, 4
        )
        assert amap.lookup(self.key(0)) == bytes(8)
        amap.update(self.key(2), self.val(5))
        assert amap.lookup(self.key(2)) == self.val(5)
        assert amap.delete(self.key(2)) == -22


class TestSandboxLifecycle:
    def test_ctx_register_manifest(self, sandbox):
        ctx = open_device(sandbox.host)
        manifest = sandbox.ctx_register(ctx.alloc_pd())
        assert manifest.rkey
        assert "bpf_map_lookup_elem" in manifest.helper_addresses
        assert "proxy_get_header" in manifest.helper_addresses
        assert manifest.hook_layout == {"ingress": 0, "egress": 1}
        assert manifest.meta_xstate_addr == sandbox.scratchpad_base

    def test_run_empty_hook(self, sandbox):
        result, cost = sandbox.run_hook("ingress", b"\x00" * 64)
        assert result is None
        assert cost < 1.0

    def test_install_and_run(self, sandbox):
        deploy_locally(sandbox, Asm().mov_imm(op.R0, 5).exit_())
        result, cost = sandbox.run_hook("ingress", b"\x00" * 256)
        assert result.r0 == 5
        assert cost > 0

    def test_replace_frees_old_image(self, sandbox):
        deploy_locally(sandbox, Asm().mov_imm(op.R0, 1).exit_(), name="v1")
        live_before = sandbox.code_allocator.bytes_live
        deploy_locally(sandbox, Asm().mov_imm(op.R0, 2).exit_(), name="v2")
        assert sandbox.code_allocator.bytes_live == live_before
        result, _ = sandbox.run_hook("ingress", b"\x00" * 256)
        assert result.r0 == 2

    def test_teardown_detaches_at_zero_refs(self, sandbox):
        program = deploy_locally(sandbox, Asm().mov_imm(op.R0, 1).exit_())
        assert sandbox.ctx_teardown(program.prog_id) is True
        result, _ = sandbox.run_hook("ingress", b"\x00" * 256)
        assert result is None

    def test_teardown_refcounting(self, sandbox):
        program = BpfProgram(Asm().mov_imm(op.R0, 1).exit_().build())
        binary = jit_compile(program, arch=sandbox.arch)
        linked = binary.link(lambda r: sandbox.got.address_of(r.symbol))
        sandbox.install_local(program, linked, "ingress", ref_count=2)
        assert sandbox.ctx_teardown(program.prog_id) is False  # 2 -> 1
        assert sandbox.ctx_teardown(program.prog_id) is True  # 1 -> 0

    def test_teardown_unknown_prog(self, sandbox):
        with pytest.raises(SandboxError):
            sandbox.ctx_teardown(424242)

    def test_unknown_hook(self, sandbox):
        with pytest.raises(SandboxError):
            sandbox.run_hook("nope", b"")

    def test_cross_sandbox_image_crashes(self, host):
        """An image linked for sandbox A crashes sandbox B (§3.3)."""
        a = Sandbox(host, name="a", hooks=("ingress",),
                    code_bytes=1 << 20, scratchpad_bytes=1 << 20)
        b = Sandbox(host, name="b", hooks=("ingress",),
                    code_bytes=1 << 20, scratchpad_bytes=1 << 20)
        program = BpfProgram(Asm().call(5).exit_().build(), name="helpers")
        binary = jit_compile(program, arch=a.arch)
        linked_for_a = binary.link(lambda r: a.got.address_of(r.symbol))
        # Install A-linked code into B.
        code_addr = b.code_allocator.alloc(len(linked_for_a.code), align=64)
        host.cache.cpu_write(code_addr, linked_for_a.code)
        b.hook_table.write_pointer("ingress", code_addr)
        with pytest.raises(SandboxCrash):
            b.run_hook("ingress", b"\x00" * 64)
        assert b.crashed

    def test_torn_image_crashes(self, sandbox, host):
        deploy_locally(sandbox, Asm().mov_imm(op.R0, 1).exit_())
        pointer = sandbox.hook_table.pointer_in_dram("ingress")
        # Corrupt a byte mid-image, as a torn RDMA write would.
        raw = host.memory.read(pointer + 11, 1)
        host.cache.cpu_write(pointer + 11, bytes([raw[0] ^ 0xFF]))
        with pytest.raises(SandboxCrash):
            sandbox.run_hook("ingress", b"\x00" * 64)

    def test_lock_mutual_exclusion(self, sandbox):
        assert sandbox.cpu_try_lock(owner=1)
        assert not sandbox.cpu_try_lock(owner=2)
        sandbox.cpu_unlock(owner=1)
        assert sandbox.cpu_try_lock(owner=2)
        with pytest.raises(SandboxError):
            sandbox.cpu_unlock(owner=1)

    def test_bubble_flag(self, sandbox, host):
        assert not sandbox.bubble_active()
        from repro.mem.layout import pack_qword

        host.cache.cpu_write(sandbox.bubble_addr, pack_qword(1))
        assert sandbox.bubble_active()

    def test_create_map_registers_symbol(self, sandbox):
        bpf_map = sandbox.create_map("counters", MapType.ARRAY, 4, 8, 4)
        assert sandbox.got.address_of("counters") == bpf_map.base_addr
        assert sandbox.maps[sandbox.got.lookup("counters").token] is bpf_map

    def test_program_uses_local_map(self, sandbox):
        bpf_map = sandbox.create_map("m0", MapType.ARRAY, 4, 8, 4)
        bpf_map.update((0).to_bytes(4, "little"), (88).to_bytes(8, "little"))
        asm = (
            Asm()
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .jmp_imm(op.BPF_JEQ, op.R0, 0, "out")
            .ldx_dw(op.R0, op.R0, 0)
            .exit_()
            .label("out")
            .mov_imm(op.R0, 0)
            .exit_()
        )
        program = BpfProgram(asm.build(), name="reader", map_names=("m0",))
        binary = jit_compile(program, arch=sandbox.arch)
        linked = binary.link(lambda r: sandbox.got.address_of(r.symbol))
        sandbox.install_local(program, linked, "ingress")
        result, _ = sandbox.run_hook("ingress", b"\x00" * 256)
        assert result.r0 == 88
