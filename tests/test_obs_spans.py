"""Tests for span tracing and its TraceRecorder/metrics integration."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.sim.core import Simulator
from repro.sim.trace import TraceRecorder


@pytest.fixture
def tracer(sim):
    return SpanTracer(sim, TraceRecorder(), MetricsRegistry())


class TestSpanLifecycle:
    def test_duration_is_simulated_time(self, sim, tracer):
        def op():
            with tracer.span("rdx.op") as span:
                yield sim.timeout(25)
            return span

        span = sim.run_process(op())
        assert span.finished
        assert span.duration_us == 25

    def test_unfinished_span_has_no_duration(self, sim, tracer):
        span = tracer.start("rdx.op")
        with pytest.raises(ValueError):
            _ = span.duration_us

    def test_double_finish_rejected(self, sim, tracer):
        span = tracer.start("rdx.op")
        span.finish()
        with pytest.raises(ValueError):
            span.finish()

    def test_exception_marks_span_error(self, sim, tracer):
        def op():
            with tracer.span("rdx.op"):
                yield sim.timeout(1)
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            sim.run_process(op())
        (span,) = tracer.finished_spans
        assert span.status == "error"
        assert "boom" in span.attrs["error"]

    def test_finish_attrs_merge(self, sim, tracer):
        span = tracer.start("rdx.op", a=1)
        span.finish(b=2)
        assert span.attrs == {"a": 1, "b": 2}


class TestHierarchy:
    def test_parent_child_links(self, sim, tracer):
        parent = tracer.start("rdx.broadcast")

        def leg(i):
            with tracer.span("rdx.broadcast.target", parent=parent, target=i):
                yield sim.timeout(i + 1)

        for i in range(3):
            sim.spawn(leg(i))
        sim.run()
        parent.finish()
        children = tracer.children_of(parent)
        assert len(children) == 3
        assert {c.attrs["target"] for c in children} == {0, 1, 2}
        assert all(c.parent_id == parent.span_id for c in children)

    def test_wrap_runs_generator_inside_span(self, sim, tracer):
        def work():
            yield sim.timeout(10)
            return "done"

        result = sim.run_process(tracer.wrap(work(), "rdx.work", kind="test"))
        assert result == "done"
        (span,) = tracer.by_name("rdx.work")
        assert span.duration_us == 10
        assert span.attrs["kind"] == "test"


class TestBackwardCompat:
    def test_span_events_land_in_trace_recorder(self, sim, tracer):
        span = tracer.start("rdx.deploy", program="p")
        sim.run_process(iter_timeout(sim, 40))
        span.finish()
        categories = [e.category for e in tracer.recorder.events]
        assert categories == ["rdx.deploy.start", "rdx.deploy.end"]
        # The existing durations() helper pairs span start/end events.
        assert tracer.recorder.durations(
            "rdx.deploy.start", "rdx.deploy.end", "span_id"
        ) == [40.0]

    def test_latency_histogram_fed_automatically(self, sim, tracer):
        span = tracer.start("rdx.deploy")
        sim.run_process(iter_timeout(sim, 15))
        span.finish()
        hist = tracer.registry.get("rdx.deploy.latency_us")
        assert hist.count == 1
        assert hist.sum == 15.0

    def test_recorder_and_registry_optional(self, sim):
        bare = SpanTracer(sim)
        span = bare.start("x")
        span.finish()
        assert bare.finished_spans == [span]


class TestBounds:
    def test_finished_spans_bounded(self, sim):
        tracer = SpanTracer(sim, keep_finished=10)
        for i in range(25):
            tracer.start("s", i=i).finish()
        assert len(tracer.finished_spans) == 10
        assert tracer.evicted == 15
        assert tracer.started == 25
        # Oldest evicted first.
        assert tracer.finished_spans[0].attrs["i"] == 15


def iter_timeout(sim, delay):
    yield sim.timeout(delay)
