"""Tests for the metrics instruments and registry."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("hits").value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("verbs", op="write").inc(3)
        registry.counter("verbs", op="read").inc(1)
        assert registry.counter("verbs", op="write").value == 3
        assert registry.counter("verbs", op="read").value == 1
        assert len(registry.series("verbs")) == 2


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_exact_aggregates(self):
        hist = Histogram("h")
        for value in (5.0, 1.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 9.0
        assert hist.min == 1.0
        assert hist.max == 5.0
        assert hist.mean == 3.0

    def test_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100
        assert hist.percentile(0) == 1

    def test_summary_block(self):
        hist = Histogram("h")
        for value in range(1000):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 1000
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert summary["max"] == 999

    def test_empty_summary(self):
        assert Histogram("h").summary()["count"] == 0
        assert Histogram("h").percentile(50) == 0.0

    def test_decimation_bounds_memory_but_keeps_exact_aggregates(self):
        hist = Histogram("h", max_samples=64)
        n = 100_000
        for value in range(n):
            hist.observe(value)
        assert hist.count == n
        assert hist.sum == sum(range(n))
        assert hist.max == n - 1
        assert len(hist.samples()) < 64
        # Percentiles stay sane estimates from the decimated reservoir.
        assert abs(hist.percentile(50) - n / 2) < n * 0.1

    def test_decimation_is_deterministic(self):
        a, b = Histogram("a", max_samples=32), Histogram("b", max_samples=32)
        for value in range(5000):
            a.observe(value)
            b.observe(value)
        assert a.samples() == b.samples()

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert len(registry) == 0

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.5)
        rows = {row["name"]: row for row in registry.snapshot()}
        assert rows["c"]["type"] == "counter"
        assert rows["c"]["value"] == 2
        assert rows["c"]["labels"] == {"k": "v"}
        assert rows["g"]["value"] == 7
        assert rows["h"]["count"] == 1
        assert rows["h"]["samples"] == [1.5]

    def test_iteration_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", z="1")
        registry.counter("a", a="1")
        names = [(m.name, m.labels) for m in registry]
        assert names == sorted(names)
