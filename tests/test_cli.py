"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_quick_fig4b(self, capsys):
        assert main(["fig4b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4b" in out
        assert "verify" in out

    def test_quick_fig5(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CPKI" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_every_experiment_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2a", "fig2b", "fig2c", "fig4a", "fig4b", "fig5",
            "redis", "mesh", "broadcast", "rollback",
        }
