"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_quick_fig4b(self, capsys):
        assert main(["fig4b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4b" in out
        assert "verify" in out

    def test_quick_fig5(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CPKI" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_telemetry_table(self, capsys):
        assert main(["telemetry", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "rdx.deploy.latency_us" in out
        assert "rdx.cache.hit" in out
        assert "rdx.cache.miss" in out
        assert "rdx.audit.findings" in out
        assert "p99" in out

    def test_telemetry_jsonl(self, capsys):
        assert main(["telemetry", "--quick", "--format", "jsonl"]) == 0
        out = capsys.readouterr().out
        import json
        rows = [json.loads(line) for line in out.strip().splitlines()]
        assert any(r["name"] == "rdx.deploy.latency_us" for r in rows)

    def test_telemetry_prom(self, capsys):
        assert main(["telemetry", "--quick", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE rdx_deploy_latency_us summary" in out
        assert 'rdx_deploy_latency_us{quantile="0.99"}' in out

    def test_every_experiment_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2a", "fig2b", "fig2c", "fig4a", "fig4b", "fig5",
            "redis", "mesh", "broadcast", "rollback",
        }
