"""Security model tests: RBAC, signatures, runtime limits (§5)."""

import pytest

from repro.core.security import Principal, Role, SecurityPolicy
from repro.ebpf.stress import make_stress_program
from repro.errors import SecurityError


@pytest.fixture
def policy():
    return SecurityPolicy(require_principal=True)


OBSERVER = Principal("alice", Role.OBSERVER)
OPERATOR = Principal("bob", Role.OPERATOR)
ADMIN = Principal("carol", Role.ADMIN)


class TestRbac:
    def test_anonymous_rejected_when_required(self, policy):
        with pytest.raises(SecurityError, match="authentication"):
            policy.check(None, "deploy")

    def test_anonymous_allowed_when_permissive(self):
        SecurityPolicy.permissive().check(None, "deploy")

    @pytest.mark.parametrize(
        "principal,operation,allowed",
        [
            (OBSERVER, "inspect", True),
            (OBSERVER, "xstate_read", True),
            (OBSERVER, "deploy", False),
            (OBSERVER, "rollback", False),
            (OPERATOR, "deploy", True),
            (OPERATOR, "broadcast", True),
            (OPERATOR, "create_codeflow", False),
            (OPERATOR, "teardown", False),
            (ADMIN, "create_codeflow", True),
            (ADMIN, "teardown", True),
            (ADMIN, "migrate", True),
        ],
    )
    def test_role_matrix(self, policy, principal, operation, allowed):
        if allowed:
            policy.check(principal, operation)
        else:
            with pytest.raises(SecurityError):
                policy.check(principal, operation)

    def test_target_scoping(self, policy):
        scoped = Principal("dave", Role.OPERATOR, target_scope=("node0",))
        policy.check(scoped, "deploy", "node0")
        with pytest.raises(SecurityError, match="not scoped"):
            policy.check(scoped, "deploy", "node1")

    def test_unscoped_reaches_all(self, policy):
        policy.check(OPERATOR, "deploy", "any-node")


class TestSignatures:
    def test_sign_and_verify(self):
        policy = SecurityPolicy.strict(signing_key=b"secret")
        program = make_stress_program(100, seed=1)
        policy.sign_program(program)
        policy.verify_signature(program)  # no raise

    def test_unsigned_rejected(self):
        policy = SecurityPolicy.strict(signing_key=b"secret")
        program = make_stress_program(100, seed=1)
        with pytest.raises(SecurityError, match="signature"):
            policy.verify_signature(program)

    def test_tampered_program_rejected(self):
        policy = SecurityPolicy.strict(signing_key=b"secret")
        program = make_stress_program(100, seed=1)
        policy.sign_program(program)
        tampered = make_stress_program(100, seed=2)
        with pytest.raises(SecurityError):
            policy.verify_signature(tampered)

    def test_no_key_means_no_check(self):
        SecurityPolicy.permissive().verify_signature(
            make_stress_program(100, seed=1)
        )

    def test_signing_requires_key(self):
        with pytest.raises(SecurityError, match="no signing key"):
            SecurityPolicy.permissive().sign_program(
                make_stress_program(100, seed=1)
            )


class TestLimits:
    def test_instruction_limit(self):
        policy = SecurityPolicy(max_insns=50)
        with pytest.raises(SecurityError, match="instruction limit"):
            policy.check_program_limits(make_stress_program(100, seed=1))

    def test_within_limit_passes(self):
        SecurityPolicy(max_insns=1000).check_program_limits(
            make_stress_program(100, seed=1)
        )

    def test_map_limit(self):
        policy = SecurityPolicy(max_maps=0)
        with pytest.raises(SecurityError, match="too many maps"):
            policy.check_program_limits(
                make_stress_program(100, seed=1, with_map=True)
            )


class TestControlPlaneIntegration:
    def test_strict_control_plane_rejects_operator_teardown(self, testbed):
        testbed.control.policy = SecurityPolicy(require_principal=True)
        program = make_stress_program(100, seed=1)

        def flow():
            yield from testbed.control.inject(
                testbed.codeflow, program, "ingress", principal=OBSERVER
            )

        process = testbed.sim.spawn(flow())
        testbed.sim.run()
        with pytest.raises(SecurityError):
            _ = process.value

    def test_operator_can_deploy(self, testbed):
        testbed.control.policy = SecurityPolicy(require_principal=True)
        program = make_stress_program(100, seed=1)
        report = testbed.sim.run_process(
            testbed.control.inject(
                testbed.codeflow, program, "ingress", principal=OPERATOR
            )
        )
        assert report.total_us > 0
