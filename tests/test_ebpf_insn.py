"""Instruction encode/decode tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.ebpf import opcodes as op
from repro.ebpf.insn import Insn, decode_program, encode_program, lddw_pair


class TestEncoding:
    def test_eight_bytes(self):
        insn = Insn(op.BPF_ALU64 | op.BPF_MOV | op.BPF_K, dst=1, imm=42)
        assert len(insn.encode()) == 8

    def test_roundtrip_simple(self):
        insn = Insn(op.BPF_JMP | op.BPF_JEQ | op.BPF_K, dst=3, src=0, off=-2, imm=7)
        assert Insn.decode(insn.encode()) == insn

    @given(
        st.integers(0, 255),
        st.integers(0, 10),
        st.integers(0, 15),
        st.integers(-(2**15), 2**15 - 1),
        st.integers(-(2**31), 2**31 - 1),
    )
    def test_roundtrip_property(self, opcode, dst, src, off, imm):
        insn = Insn(opcode=opcode, dst=dst, src=src, off=off, imm=imm)
        assert Insn.decode(insn.encode()) == insn

    def test_negative_imm_roundtrip(self):
        insn = Insn(op.BPF_ALU64 | op.BPF_ADD | op.BPF_K, dst=0, imm=-1)
        assert Insn.decode(insn.encode()).imm == -1

    def test_bad_register_rejected(self):
        with pytest.raises(ReproError):
            Insn(opcode=0, dst=11)

    def test_bad_offset_rejected(self):
        with pytest.raises(ReproError):
            Insn(opcode=0, off=2**15)

    def test_decode_wrong_length(self):
        with pytest.raises(ReproError):
            Insn.decode(b"short")


class TestProgramImage:
    def test_encode_decode_program(self):
        insns = [
            Insn(op.BPF_ALU64 | op.BPF_MOV | op.BPF_K, dst=0, imm=1),
            Insn(op.BPF_JMP | op.BPF_EXIT),
        ]
        assert decode_program(encode_program(insns)) == insns

    def test_decode_misaligned_image(self):
        with pytest.raises(ReproError):
            decode_program(b"123456789")

    def test_lddw_pair_splits_imm64(self):
        pair = lddw_pair(dst=2, imm64=0x1122334455667788)
        assert pair[0].opcode == op.LDDW
        assert pair[0].imm == 0x55667788
        assert pair[1].imm == 0x11223344

    def test_lddw_pair_map_fd(self):
        pair = lddw_pair(dst=1, imm64=3, src=op.PSEUDO_MAP_FD)
        assert pair[0].src == op.PSEUDO_MAP_FD
        assert pair[0].imm == 3
