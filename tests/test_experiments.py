"""Shape tests for every experiment: small-scale runs asserting the
paper's qualitative claims (who wins, direction of trends)."""

import pytest

from repro.exp.fig2a import run_fig2a
from repro.exp.fig2b import run_fig2b
from repro.exp.fig2c import run_fig2c
from repro.exp.fig4a import run_fig4a
from repro.exp.fig4b import run_fig4b
from repro.exp.fig5 import run_fig5
from repro.exp.tab_broadcast import run_tab_broadcast
from repro.exp.tab_mesh import run_tab_mesh
from repro.exp.tab_redis import run_tab_redis
from repro.exp.tab_rollback import run_tab_rollback


class TestFig2a:
    def test_ms_level_and_growing(self):
        result = run_fig2a(sizes=(1_300, 11_000), repeats=2)
        small, large = result.points
        assert small.mean_inject_us >= 1_000  # ms-level at 1.3K insns
        assert large.mean_inject_us > 5 * small.mean_inject_us

    def test_verify_jit_dominates(self):
        result = run_fig2a(sizes=(1_300,), repeats=2)
        assert result.points[0].verify_jit_share >= 0.90


class TestFig2b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2b(
            apps=(("app1", 4), ("app2", 11)),
            ebpf_insns=2_000,
            wasm_padding=300,
            probe_interval_us=3_000.0,
        )

    def test_window_grows_with_app_size(self, result):
        for family in ("ebpf", "wasm"):
            series = result.series(family)
            assert series[1][1] > series[0][1]

    def test_windows_nonzero(self, result):
        assert all(p.window_us > 0 for p in result.points)

    def test_requests_observe_mixed_logic(self, result):
        wasm_points = [p for p in result.points if p.family == "wasm"]
        assert any(p.mixed_requests > 0 for p in wasm_points)

    def test_dependency_violations_happen(self, result):
        assert any(p.violations > 0 for p in result.points)


class TestFig2c:
    def test_contention_bites_at_saturation_only(self):
        result = run_fig2c(rates=(100, 400), duration_us=400_000)
        low, high = result.points
        assert low.degradation < 0.15
        assert high.degradation > 0.30  # approaching "halved"


class TestFig4a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4a(sizes=(1_300, 11_000), repeats=2)

    def test_rdx_wins_by_orders_of_magnitude(self, result):
        assert all(p.speedup > 30 for p in result.points)

    def test_speedup_grows_with_size(self, result):
        speedups = result.speedups()
        assert speedups[1] > speedups[0]

    def test_rdx_stays_microseconds(self, result):
        assert all(p.rdx_us < 200 for p in result.points)


class TestFig4b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4b()

    def test_agent_verify_jit_share(self, result):
        assert result.agent_verify_jit_share >= 0.90

    def test_rdx_has_no_compile_phase(self, result):
        assert "verify" not in result.rdx_phases_us
        assert "jit" not in result.rdx_phases_us

    def test_totals_ordered(self, result):
        assert result.rdx_total_us < result.agent_total_us / 10


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(cpki_levels=(5, 40), trials=21)

    def test_rdx_flat_and_microseconds(self, result):
        for point in result.points:
            assert point.rdx_median_us < 10

    def test_vanilla_decreases_with_cpki(self, result):
        low, high = result.points
        assert low.vanilla_median_us > high.vanilla_median_us

    def test_orders_of_magnitude_gap_at_low_cpki(self, result):
        low = result.points[0]
        assert low.vanilla_median_us > 50 * low.rdx_median_us


class TestTables:
    def test_redis_improvement_positive(self):
        result = run_tab_redis(duration_us=150_000)
        assert result.improvement_pct > 5

    def test_mesh_improvement_positive(self):
        result = run_tab_mesh(duration_us=200_000)
        assert result.improvement_pct > 10

    def test_broadcast_buffer_tiny_vs_agent(self):
        result = run_tab_broadcast(group_sizes=(2,))
        row = result.rows[0]
        assert row.bubble_window_us < 1_000
        assert row.bbu_buffer_requests < row.agent_buffer_requests / 100

    def test_rollback_microseconds_under_load(self):
        result = run_tab_rollback()
        assert result.rdx_rollback_us < 100
        assert result.speedup > 100
