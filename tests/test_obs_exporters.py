"""Tests for the JSON-lines and Prometheus exporters."""

import pytest

from repro.obs.exporters import (
    escape_label_value,
    from_jsonl,
    parse_prometheus,
    prom_name,
    to_jsonl,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema_check import check_jsonl, check_prometheus


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("rdx.cache.hit").inc(7)
    reg.counter("rdma.verbs", op="write", rnic="n0").inc(42)
    reg.gauge("rdx.live", target="node0").set(3)
    hist = reg.histogram("rdx.deploy.latency_us")
    for value in (10.0, 20.0, 30.0, 40.0, 1000.0):
        hist.observe(value)
    return reg


class TestJsonl:
    def test_round_trip_is_lossless(self, registry):
        text = to_jsonl(registry)
        rebuilt = from_jsonl(text)
        assert to_jsonl(rebuilt) == text

    def test_round_trip_preserves_percentiles(self, registry):
        rebuilt = from_jsonl(to_jsonl(registry))
        original = registry.get("rdx.deploy.latency_us")
        copy = rebuilt.get("rdx.deploy.latency_us")
        assert copy.summary() == original.summary()
        # Further observations keep working on the rebuilt histogram.
        copy.observe(5.0)
        assert copy.count == original.count + 1

    def test_decimated_histogram_round_trips(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        hist.max_samples = 16
        for value in range(1000):
            hist.observe(value)
        rebuilt = from_jsonl(to_jsonl(reg))
        assert to_jsonl(rebuilt) == to_jsonl(reg)
        assert rebuilt.get("h").count == 1000

    def test_empty_registry(self):
        assert to_jsonl(MetricsRegistry()) == ""
        assert len(from_jsonl("")) == 0

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            from_jsonl("not json")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            from_jsonl('{"type": "meter", "name": "x", "labels": {}}')


class TestPrometheus:
    def test_name_sanitization(self):
        assert prom_name("rdx.deploy.latency_us") == "rdx_deploy_latency_us"
        assert prom_name("weird-name.1") == "weird_name_1"

    def test_counter_and_gauge_lines(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE rdx_cache_hit counter" in text
        assert "rdx_cache_hit 7" in text
        assert 'rdma_verbs{op="write",rnic="n0"} 42' in text
        assert '# TYPE rdx_live gauge' in text
        assert 'rdx_live{target="node0"} 3' in text

    def test_histogram_rendered_as_summary(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE rdx_deploy_latency_us summary" in text
        assert 'rdx_deploy_latency_us{quantile="0.5"}' in text
        assert "rdx_deploy_latency_us_count 5" in text
        assert "rdx_deploy_latency_us_sum 1100" in text

    def test_parse_round_trips_values(self, registry):
        values = parse_prometheus(to_prometheus(registry))
        assert values[("rdx_cache_hit", ())] == 7
        assert values[
            ("rdma_verbs", (("op", "write"), ("rnic", "n0")))
        ] == 42
        hist = registry.get("rdx.deploy.latency_us")
        assert values[
            ("rdx_deploy_latency_us", (("quantile", "0.5"),))
        ] == hist.percentile(50)
        assert values[("rdx_deploy_latency_us_count", ())] == 5

    def test_exporters_agree_on_the_same_registry(self, registry):
        """jsonl and prometheus must present identical values."""
        prom = parse_prometheus(to_prometheus(registry))
        rebuilt = from_jsonl(to_jsonl(registry))
        assert parse_prometheus(to_prometheus(rebuilt)) == prom

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus("!!! not exposition")

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}


class TestLabelEscaping:
    """Satellite: hostile label values can't corrupt the exposition."""

    HOSTILE = [
        'quote " in the middle',
        "back\\slash",
        "two\nlines",
        '\\" all \n three \\',
    ]

    def test_escape_covers_the_spec_characters(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    @pytest.mark.parametrize("value", HOSTILE)
    def test_hostile_values_round_trip(self, value):
        reg = MetricsRegistry()
        reg.counter("rdx.deploy.count", tenant=value).inc(5)
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed[("rdx_deploy_count", (("tenant", value),))] == 5

    def test_hostile_values_keep_one_line_per_sample(self):
        reg = MetricsRegistry()
        for index, value in enumerate(self.HOSTILE):
            reg.gauge("rdx.live", tenant=value).set(index)
        text = to_prometheus(reg)
        samples = [
            line
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(samples) == len(self.HOSTILE)

    def test_name_charset_enforced(self):
        assert prom_name("3xx.count") == "_3xx_count"
        assert prom_name('na"me\n') == "na_me_"
        assert prom_name("") == "_"

    def test_schema_check_accepts_escaped_export(self):
        reg = MetricsRegistry()
        reg.counter("rdx.deploy.count", tenant='evil"\n\\').inc()
        hist = reg.histogram("rdx.deploy.latency_us", tenant="t\n1")
        hist.observe(4.0)
        assert check_prometheus(to_prometheus(reg)) == []
        assert check_jsonl(to_jsonl(reg)) == []

    def test_schema_check_flags_violations(self):
        assert check_prometheus('bad name{x="1"} 2\n')
        assert check_prometheus("rdx_inf_count +Inf\n") == [
            "prom: rdx_inf_count: non-finite value inf"
        ]
        assert check_jsonl('{"type": "meter", "name": "x"}')
        assert check_jsonl(
            '{"type": "counter", "name": "x", "labels": {"a": 1}, "value": 2}'
        )
