"""End-to-end integration tests across the whole stack."""

import pytest

from repro.core.api import (
    bootstrap_sandbox,
    rdx_cc_event,
    rdx_create_codeflow,
    rdx_deploy_prog,
    rdx_deploy_xstate,
    rdx_jit_compile_code,
    rdx_link_code,
    rdx_mutual_excl,
    rdx_tx,
    rdx_validate_code,
)
from repro.core.xstate import XStateSpec
from repro.ebpf.interpreter import Interpreter
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed
from repro.mem.layout import unpack_qword
from repro.wasm.filters import make_routing_filter
from repro.wasm.runtime import RequestContext


class TestTable1Api:
    """Exercise every operation of the paper's Table 1 by name."""

    def test_full_table1_flow(self):
        bed = make_testbed(n_hosts=2)
        program = make_stress_program(300, seed=8, with_map=True, name="t1")
        template = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
        template.update((0).to_bytes(4, "little"), (64).to_bytes(8, "little"))

        def flow():
            # rdx_create_codeflow
            handle = yield from rdx_create_codeflow(bed.control, bed.sandboxes[0])
            # rdx_validate_code
            stats = yield from rdx_validate_code(handle, program, maps=[template])
            assert stats.states_visited > 0
            # rdx_JIT_compile_code
            binary = yield from rdx_jit_compile_code(handle, program)
            assert not binary.is_linked
            # rdx_deploy_xstate
            xstate = yield from rdx_deploy_xstate(
                handle,
                XStateSpec("stress_map", MapType.ARRAY, 4, 8, 4),
                initial=template,
            )
            # rdx_link_code
            linked = yield from rdx_link_code(handle, program)
            assert linked.is_linked
            # rdx_deploy_prog
            report = yield from rdx_deploy_prog(handle, program, "ingress")
            # rdx_tx on the epoch counter (create_codeflow already
            # stamped incarnation epoch 1 into it)
            prior = yield from rdx_tx(
                handle, b"", 0, handle.sandbox.epoch_addr, 2, expect=1
            )
            assert prior == 1
            # rdx_cc_event on the epoch line
            yield from rdx_cc_event(handle, handle.sandbox.epoch_addr, 8)
            # rdx_mutual_excl
            lock = rdx_mutual_excl(handle, 0xCAFE)
            yield from lock.acquire()
            yield from lock.release()
            return handle, xstate, report

        handle, xstate, report = bed.sim.run_process(flow())
        assert report.total_us > 0
        assert handle.sandbox.epoch() == 2

        # Data path runs the deployed extension against deployed state.
        ctx = bytes(range(256))
        result, _ = bed.sandboxes[0].run_hook("ingress", ctx)
        expected = Interpreter(maps=[template]).run(program.insns, ctx).r0
        assert result.r0 == expected


class TestAgentVsRdxEquivalence:
    def test_identical_data_path_artifacts(self, testbed2):
        """The same program deployed via agent and via RDX computes the
        same results on both hosts -- routes differ, artifacts do not."""
        bed = testbed2
        program = make_stress_program(500, seed=10)
        bed.sim.run_process(bed.agents[0].inject(program, "ingress"))
        bed.sim.run_process(
            bed.control.inject(bed.codeflows[1], program, "ingress")
        )
        ctx = bytes(range(256))
        via_agent, _ = bed.sandboxes[0].run_hook("ingress", ctx)
        via_rdx, _ = bed.sandboxes[1].run_hook("ingress", ctx)
        assert via_agent.r0 == via_rdx.r0

    def test_rdx_faster_agent_burns_cpu(self, testbed2):
        bed = testbed2
        program = make_stress_program(1_300, seed=11)
        agent_breakdown = bed.sim.run_process(
            bed.agents[0].inject(program, "ingress")
        )
        # Warm cache then measure deploy.
        bed.sim.run_process(
            bed.control.inject(bed.codeflows[1], program, "ingress")
        )
        report = bed.sim.run_process(
            bed.control.inject(bed.codeflows[1], program, "ingress")
        )
        assert report.total_us * 10 < agent_breakdown.total_us
        assert bed.cluster.hosts[0].cpu.busy_us > 1_000  # agent host
        assert bed.cluster.hosts[1].cpu.busy_us == 0  # RDX target


class TestWasmOverRdx:
    def test_wasm_filter_deploy_and_execute(self, testbed):
        module = make_routing_filter(n_routes=4, version=3)
        report = testbed.sim.run_process(
            testbed.control.inject(testbed.codeflow, module, "ingress")
        )
        assert report.total_us > 0
        ctx = RequestContext(path_hash=5)
        result, cost = testbed.sandbox.run_wasm_hook("ingress", ctx)
        assert result.value == 0  # CONTINUE
        assert ctx.route == (5 + 3) % 4
        assert cost > 0


class TestIncoherenceWindow:
    def test_vanilla_write_leaves_stale_hook(self, testbed):
        """Without cc_event, the data path keeps the old hook pointer
        until eviction -- directly observable through the cache."""
        sandbox = testbed.sandbox
        hook_addr = sandbox.hook_table.slot_addr("ingress")
        sandbox.hook_table.read_pointer("ingress")  # cache the line

        def flow():
            yield from testbed.codeflow.sync.write(
                hook_addr, (0x1234).to_bytes(8, "little")
            )

        testbed.sim.run_process(flow())
        assert sandbox.hook_table.read_pointer("ingress") == 0  # stale
        dram = unpack_qword(testbed.host.memory.read(hook_addr, 8))
        assert dram == 0x1234

    def test_cc_event_makes_hook_visible(self, testbed):
        sandbox = testbed.sandbox
        hook_addr = sandbox.hook_table.slot_addr("ingress")
        sandbox.hook_table.read_pointer("ingress")

        def flow():
            yield from testbed.codeflow.sync.write(
                hook_addr, (0x5678).to_bytes(8, "little")
            )
            yield from testbed.codeflow.sync.cc_event(hook_addr, 8)

        testbed.sim.run_process(flow())
        assert sandbox.hook_table.read_pointer("ingress") == 0x5678


class TestCrashContainment:
    def test_crashed_sandbox_flags_reason(self, testbed):
        from repro.errors import SandboxCrash

        pointer = testbed.codeflow.code_allocator.alloc(64, 64)
        testbed.host.cache.cpu_write(pointer, b"\x00" * 64)
        testbed.sandbox.hook_table.write_pointer("ingress", pointer)
        with pytest.raises(SandboxCrash):
            testbed.sandbox.run_hook("ingress", b"")
        assert testbed.sandbox.crashed
        assert testbed.sandbox.crash_reason

    def test_rollback_recovers_crashed_hook(self, testbed):
        """Deploy good, deploy corrupt (simulated), roll back, verify."""
        from repro.core.rollback import RollbackManager
        from repro.errors import SandboxCrash

        good = make_stress_program(100, seed=1, name="ext")
        bad = make_stress_program(100, seed=2, name="ext")
        testbed.sim.run_process(
            testbed.control.inject(testbed.codeflow, good, "ingress")
        )
        testbed.sim.run_process(
            testbed.control.inject(testbed.codeflow, bad, "ingress")
        )
        # Corrupt the live (bad) image in memory: data path crashes.
        record = testbed.codeflow.deployed["ext"]
        testbed.host.memory.write(record.code_addr + 9, b"\xff\xff")
        testbed.host.cache.flush(record.code_addr, record.code_len)
        with pytest.raises(SandboxCrash):
            testbed.sandbox.run_hook("ingress", bytes(256))

        manager = RollbackManager(testbed.codeflow)
        testbed.sim.run_process(manager.rollback("ext"))
        testbed.sandbox.crashed = False
        result, _ = testbed.sandbox.run_hook("ingress", bytes(256))
        from repro.ebpf.interpreter import Interpreter

        assert result.r0 == Interpreter().run(good.insns, bytes(256)).r0
