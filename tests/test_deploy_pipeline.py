"""Deploy fast-path tests: WR chains, batching, caches, compile dedup.

Covers the pipelined deploy machinery layer by layer:

* RNIC chain execution -- selective signaling (one CQE per doorbell),
  per-WR protection checks mid-chain, crash-torn MTU prefixes;
* ``RemoteSync.write_batch`` -- fault-hook integration and whole-batch
  retry under the RetryPolicy;
* the linked-image cache -- content keying (the CRC-residue trap),
  cross-target hits, and invalidation when address reuse after a warm
  reboot changes the GOT layout;
* single-flight compile dedup for concurrent injects of one program;
* remote-state equivalence between the serial and pipelined bodies.
"""

from __future__ import annotations

import pytest

from repro import params
from repro.core.faults import FaultInjector, FaultKind
from repro.core.xstate import XStateSpec
from repro.ebpf.maps import MapType
from repro.ebpf.stress import make_stress_program
from repro.errors import RdmaError, TransientFault
from repro.exp.harness import make_testbed
from repro.rdma.cq import WcStatus
from repro.rdma.qp import QpState, WorkRequest, WrOpcode
from repro.rdma.rnic import RNIC_MTU_BYTES


def _post(qp, wrs):
    completion = yield qp.post_send_batch(wrs)
    return completion


def _drain(cq):
    while cq.poll() is not None:
        pass


def _payload(length, phase=0):
    """Deterministic zero-free bytes (zeros mark never-written memory)."""
    return bytes((index + phase) % 255 + 1 for index in range(length))


class TestWrChaining:
    def test_chain_retires_under_one_cqe(self, testbed):
        bed = testbed
        sync = bed.codeflow.sync
        addr = bed.codeflow.code_allocator.alloc(3 * 64, align=64)
        wrs = [
            WorkRequest(
                opcode=WrOpcode.RDMA_WRITE, remote_addr=addr + i * 64,
                rkey=sync.rkey, data=_payload(64, phase=i),
            )
            for i in range(3)
        ]
        bed.sim.run()  # drain bootstrap traffic before counting CQEs
        _drain(sync.qp.cq)

        completion = bed.sim.run_process(_post(sync.qp, wrs))

        assert completion.status is WcStatus.SUCCESS
        assert completion.chained == 3
        assert completion.wr_id == wrs[-1].wr_id  # the signaled tail
        assert len(sync.qp.cq) == 1  # selective signaling: one CQE total
        for i in range(3):
            assert bed.host.memory.read(addr + i * 64, 64) == _payload(
                64, phase=i
            )

    def test_one_doorbell_beats_serial_writes(self, testbed):
        bed = testbed
        sync = bed.codeflow.sync
        addr = bed.codeflow.code_allocator.alloc(16 * 64, align=64)
        ops = [
            (addr + i * 64, _payload(64, phase=i)) for i in range(8)
        ]
        bed.sim.run()

        mark = bed.sim.now
        bed.sim.run_process(sync.write_batch(ops))
        batched_us = bed.sim.now - mark

        mark = bed.sim.now
        for op_addr, data in ops:
            bed.sim.run_process(sync.write(op_addr + 8 * 64, data))
        serial_us = bed.sim.now - mark

        # One doorbell + one first-byte latency + one ACK amortized over
        # the chain vs paid per WR: the chain must at least halve it.
        assert batched_us < serial_us / 2

    def test_empty_and_mixed_chains_rejected(self, testbed):
        sync = testbed.codeflow.sync
        with pytest.raises(RdmaError):
            sync.qp.post_send_batch([])
        mixed = [
            WorkRequest(
                opcode=WrOpcode.RDMA_WRITE, remote_addr=0, rkey=sync.rkey,
                data=b"x",
            ),
            WorkRequest(
                opcode=WrOpcode.RDMA_READ, remote_addr=0, rkey=sync.rkey,
                length=8,
            ),
        ]
        with pytest.raises(RdmaError):
            sync.qp.post_send_batch(mixed)

    def test_protection_error_mid_chain_keeps_prefix(self, testbed):
        bed = testbed
        sync = bed.codeflow.sync
        addr = bed.codeflow.code_allocator.alloc(3 * 64, align=64)
        wrs = [
            WorkRequest(
                opcode=WrOpcode.RDMA_WRITE, remote_addr=addr,
                rkey=sync.rkey, data=_payload(64),
            ),
            WorkRequest(  # bogus rkey: fails when the target NIC places it
                opcode=WrOpcode.RDMA_WRITE, remote_addr=addr + 64,
                rkey=0xDEAD, data=_payload(64, phase=1),
            ),
            WorkRequest(
                opcode=WrOpcode.RDMA_WRITE, remote_addr=addr + 128,
                rkey=sync.rkey, data=_payload(64, phase=2),
            ),
        ]
        bed.sim.run()

        completion = bed.sim.run_process(_post(sync.qp, wrs))

        assert completion.status is WcStatus.REMOTE_ACCESS_ERROR
        assert completion.chained == 3
        assert completion.wr_id == wrs[1].wr_id  # names the failed WR
        # WR 0 landed before the chain died; WR 2 never executed.
        assert bed.host.memory.read(addr, 64) == _payload(64)
        assert bed.host.memory.read(addr + 128, 64) == bytes(64)
        assert sync.qp.state is QpState.ERROR

    def test_crash_mid_chain_lands_exact_mtu_prefix(self, testbed):
        bed = testbed
        sync = bed.codeflow.sync
        total = 2 * RNIC_MTU_BYTES + 1808
        addr = bed.codeflow.code_allocator.alloc(total, align=64)
        payload = _payload(total)
        bed.sim.run()

        # Crash the target between the first and second chunk landing.
        first_land_us = (
            params.RDMA_DOORBELL_US + params.RNIC_OP_OVERHEAD_US
            + params.NET_BASE_LATENCY_US + params.RNIC_OP_OVERHEAD_US
            + RNIC_MTU_BYTES / params.RDMA_BANDWIDTH_BPUS
        )

        def crasher():
            yield bed.sim.timeout(
                first_land_us
                + RNIC_MTU_BYTES / params.RDMA_BANDWIDTH_BPUS / 2
            )
            bed.host.crash()

        proc = bed.sim.spawn(sync.write_batch([(addr, payload)]), name="torn")
        bed.sim.spawn(crasher(), name="crasher")
        bed.sim.run()

        with pytest.raises(TransientFault):
            _ = proc.value
        # Exactly one MTU chunk landed; the unACKed remainder is gone.
        assert bed.host.memory.read(addr, RNIC_MTU_BYTES) == payload[
            :RNIC_MTU_BYTES
        ]
        assert bed.host.memory.read(
            addr + RNIC_MTU_BYTES, total - RNIC_MTU_BYTES
        ) == bytes(total - RNIC_MTU_BYTES)

        # Whole-batch retry after recovery overwrites the torn prefix.
        bed.host.recover()
        bed.sim.run_process(sync.write_batch([(addr, payload)]))
        assert bed.host.memory.read(addr, total) == payload


class TestWriteBatchFaults:
    def test_transient_fault_retries_whole_batch(self, testbed):
        bed = testbed
        codeflow = bed.codeflow
        addr = codeflow.code_allocator.alloc(2 * 64, align=64)
        ops = [(addr, _payload(64)), (addr + 64, _payload(64, phase=1))]
        injector = FaultInjector(codeflow)
        injector.attach()
        injector.arm(FaultKind.TRANSIENT)
        bed.sim.run()

        mark = bed.sim.now
        try:
            bed.sim.run_process(codeflow.sync.write_batch(ops))
        finally:
            injector.detach()

        assert [r.kind for r in injector.injected] == [FaultKind.TRANSIENT]
        # The failed attempt burned the transport timeout before the
        # retry re-landed every WR of the batch.
        assert bed.sim.now - mark > params.RDMA_RETRY_TIMEOUT_US
        assert bed.host.memory.read(addr, 64) == _payload(64)
        assert bed.host.memory.read(addr + 64, 64) == _payload(64, phase=1)

    def test_torn_write_fault_tears_batched_image(self, testbed):
        bed = testbed
        codeflow = bed.codeflow
        total = 1000
        addr = codeflow.code_allocator.alloc(total, align=64)
        payload = _payload(total)
        injector = FaultInjector(codeflow)
        injector.attach()
        injector.arm(FaultKind.TORN_WRITE)
        bed.sim.run()

        try:
            bed.sim.run_process(codeflow.sync.write_batch([(addr, payload)]))
        finally:
            injector.detach()

        landed = bed.host.memory.read(addr, total)
        assert landed != payload
        cut = next(i for i in range(total) if landed[i] != payload[i])
        assert 0 < cut < total
        assert landed[cut:] == bytes(total - cut)  # prefix-only tear


class TestSingleFlightCompile:
    def test_concurrent_injects_compile_once(self, testbed2):
        """Two targets spawn the same inject concurrently: one compile."""
        bed = testbed2
        program = make_stress_program(600, seed=21, name="dup")
        procs = [
            bed.sim.spawn(
                bed.control.inject(codeflow, program, "ingress"),
                name=f"inject:{codeflow.sandbox.name}",
            )
            for codeflow in bed.codeflows
        ]
        bed.sim.run()

        for proc in procs:
            assert proc.value.total_us > 0  # both deploys completed
        assert bed.control.compiles_run == 1
        assert bed.control.validations_run == 1
        assert bed.control.prepare_coalesced == 1
        for sandbox in bed.sandboxes:
            execution, _ = sandbox.run_hook("ingress", bytes(256))
            assert execution is not None


class TestLinkedImageCache:
    @pytest.fixture(autouse=True)
    def _pin_pipelined(self):
        # Cache hit/miss counters only move on the fast path; keep these
        # tests meaningful under an RDX_PIPELINED_DEPLOY=0 ablation run.
        saved = params.RDX_PIPELINED_DEPLOY
        params.RDX_PIPELINED_DEPLOY = True
        yield
        params.RDX_PIPELINED_DEPLOY = saved

    def test_distinct_programs_get_distinct_keys(self, testbed):
        """Regression: keys must hash the payload, not the full image.

        Every JIT image ends with its own CRC32 trailer, and
        crc32(data + crc32(data)) is the same residue constant for any
        data -- hashing the full image once collapsed all cache keys
        onto one entry and served v1's bytes for v2.
        """
        bed = testbed
        codeflow = bed.codeflow
        entries = [
            bed.sim.run_process(
                bed.control.prepare_for(
                    codeflow, make_stress_program(600, seed=seed, name="app")
                )
            )
            for seed in (5, 6)
        ]
        keys = [codeflow._link_cache_key(e.binary) for e in entries]
        assert keys[0] != keys[1]
        assert keys[0][0] != keys[1][0]  # the content CRC itself differs

    def test_second_target_hits_cache(self, testbed2):
        bed = testbed2
        program = make_stress_program(600, seed=5, name="hit")
        for codeflow in bed.codeflows:
            bed.sim.run_process(
                bed.control.inject(codeflow, program, "ingress")
            )
        assert bed.control.link_cache_misses == 1
        assert bed.control.link_cache_hits == 1
        results = [
            sandbox.run_hook("ingress", bytes(256))[0]
            for sandbox in bed.sandboxes
        ]
        assert results[0] is not None and results[0] == results[1]

    def test_address_reuse_after_warm_reboot_misses(self, testbed):
        """Layout churn must miss: the fingerprint covers resolved addrs.

        A decoy XState pushes ``stress_map`` to the second scratchpad
        chunk; after a warm reboot only ``stress_map`` is redeployed, so
        it lands on the decoy's old address.  Serving the pre-reboot
        cached image would patch the map relocation with a stale
        address -- the new layout has to be a cache miss.
        """
        bed = testbed
        codeflow = bed.codeflow
        program = make_stress_program(600, seed=5, with_map=True, name="mapper")
        decoy = XStateSpec("decoy", MapType.ARRAY, 4, 8, 4)
        state = XStateSpec("stress_map", MapType.ARRAY, 4, 8, 4)

        bed.sim.run_process(codeflow.deploy_xstate(decoy))
        bed.sim.run_process(codeflow.deploy_xstate(state))
        old_addr = codeflow.scratchpad.by_name("stress_map").data_addr
        bed.sim.run_process(bed.control.inject(codeflow, program, "ingress"))
        assert bed.control.link_cache_misses == 1
        misses_before = bed.control.link_cache_misses
        hits_before = bed.control.link_cache_hits

        bed.sandbox.warm_reboot()
        codeflow.reset_after_reboot()
        bed.sim.run_process(codeflow.stamp_epoch(bed.control.epoch))
        bed.sim.run_process(codeflow.deploy_xstate(state))
        new_addr = codeflow.scratchpad.by_name("stress_map").data_addr
        assert new_addr != old_addr  # the reuse the fingerprint must catch

        bed.sim.run_process(bed.control.inject(codeflow, program, "ingress"))
        assert bed.control.link_cache_hits == hits_before
        assert bed.control.link_cache_misses == misses_before + 1
        execution, _ = bed.sandbox.run_hook("ingress", bytes(256))
        assert execution is not None


class TestModeEquivalence:
    def _deploy(self, pipelined):
        saved = params.RDX_PIPELINED_DEPLOY
        params.RDX_PIPELINED_DEPLOY = pipelined
        try:
            bed = make_testbed()
            program = make_stress_program(600, seed=9, name="same")
            bed.sim.run_process(
                bed.control.inject(bed.codeflow, program, "ingress")
            )
            record = bed.codeflow.deployed["same"]
            image = bed.host.memory.read(record.code_addr, record.code_len)
            hook = bed.sandbox.hook_table.read_pointer("ingress")
            execution, _ = bed.sandbox.run_hook("ingress", bytes(256))
            return record, image, hook == record.code_addr, execution
        finally:
            params.RDX_PIPELINED_DEPLOY = saved

    def test_serial_and_pipelined_land_identical_state(self):
        fast_record, fast_image, fast_hooked, fast_result = self._deploy(True)
        slow_record, slow_image, slow_hooked, slow_result = self._deploy(False)
        assert fast_image == slow_image
        assert fast_hooked and slow_hooked
        assert fast_result == slow_result
        assert fast_record.code_addr == slow_record.code_addr
        assert fast_record.metadata_slot == slow_record.metadata_slot
