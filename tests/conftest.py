"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.exp.harness import Testbed, make_testbed
from repro.sim.core import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def testbed() -> Testbed:
    """A small standard testbed: 1 data host + control host."""
    return make_testbed(n_hosts=1, cores_per_host=4)


@pytest.fixture
def testbed2() -> Testbed:
    """Two data hosts (for broadcast/migration tests)."""
    return make_testbed(n_hosts=2, cores_per_host=4)


@pytest.fixture(autouse=True)
def _hb_check():
    """Race-check every simulation a test touched (RDX_HB_CHECK=1).

    When checking is enabled, every sim that emitted an hb event is
    registered in :mod:`repro.hb.events`; at teardown each one's trace
    is run through the detectors and any finding fails the test.
    Tests that deliberately construct a race consume their sim first
    (``checker.consume(sim)``) so it is no longer registered here.
    """
    from repro.hb import checker, enabled

    if not enabled():
        yield
        return
    checker.reset_active()
    yield
    reports = checker.check_active()
    checker.reset_active()
    findings = [f for _sim, report in reports for f in report.findings]
    if findings:
        pytest.fail(
            "happens-before race(s) detected:\n"
            + checker.format_findings(findings),
            pytrace=False,
        )
