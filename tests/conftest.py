"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.exp.harness import Testbed, make_testbed
from repro.sim.core import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def testbed() -> Testbed:
    """A small standard testbed: 1 data host + control host."""
    return make_testbed(n_hosts=1, cores_per_host=4)


@pytest.fixture
def testbed2() -> Testbed:
    """Two data hosts (for broadcast/migration tests)."""
    return make_testbed(n_hosts=2, cores_per_host=4)
