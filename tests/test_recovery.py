"""Crash-recovery layer tests: journal, epochs, leases, reconciler.

Covers the control-plane survivability stack end to end:

* the intent journal's WAL semantics (begin/commit/abort, committed
  intent, in-flight detection, jsonl round-trip);
* epoch fencing -- a stale incarnation's deploys and broadcasts bounce
  off the CAS-stamped epoch word with ``StaleEpochError``;
* lease-based health detection and broadcast degradation;
* warm reboot + anti-entropy reconciliation: NODE_CRASH, then
  ``recover_target(reboot=True)``, then a reconcile pass, ending with
  a clean audit and an extension that answers data-path traffic;
* the bounded compile cache and ``close_codeflow``.
"""

import pytest

from repro import params
from repro.core.broadcast import CodeFlowGroup
from repro.core.faults import FaultInjector, FaultKind
from repro.core.health import HealthDetector, TargetHealth
from repro.core.introspect import RemoteIntrospector
from repro.core.journal import IntentJournal
from repro.core.reconcile import Reconciler, resume_control_plane
from repro.ebpf.stress import make_stress_program
from repro.errors import (
    BroadcastAborted,
    DeployError,
    SandboxCrash,
    StaleEpochError,
    TransientFault,
)
from repro.exp.harness import make_testbed
from repro.rdma.rnic import RNIC_MTU_BYTES


def programs_for(bed, version=1, size=120):
    return [
        make_stress_program(size, seed=version * 10 + i, name=f"app{i}")
        for i in range(len(bed.codeflows))
    ]


class TestIntentJournal:
    def test_commit_folds_into_intent(self):
        journal = IntentJournal()
        epoch = journal.claim_epoch()
        journal.begin(
            "t1", "deploy", epoch,
            target="node0", hook="ingress", name="app", tag="aa",
        )
        journal.commit(
            "t1", target="node0", hook="ingress", name="app", tag="aa"
        )
        intent = journal.committed_intent()["node0"]
        assert intent.programs == {"app": "aa"}
        assert intent.hooks == {"ingress": "aa"}
        assert not journal.in_flight()

    def test_abort_leaves_no_intent(self):
        journal = IntentJournal()
        epoch = journal.claim_epoch()
        journal.begin(
            "t1", "deploy", epoch,
            target="node0", hook="ingress", name="app", tag="aa",
        )
        journal.abort("t1", reason="boom")
        assert journal.committed_intent() == {}

    def test_dangling_intend_is_in_flight(self):
        journal = IntentJournal()
        epoch = journal.claim_epoch()
        journal.begin(
            "t1", "broadcast", epoch,
            hook="ingress",
            legs=[{"target": "node0", "hook": "ingress",
                   "name": "app", "tag": "aa"}],
        )
        journal.phase("t1", "bubbled")
        open_txns = journal.in_flight()
        assert [t.txn for t in open_txns] == ["t1"]
        assert "bubbled" in [
            record.detail.get("phase") for record in open_txns[0].phases
        ]

    def test_jsonl_round_trip_preserves_replay(self):
        journal = IntentJournal()
        epoch = journal.claim_epoch()
        journal.begin(
            "t1", "deploy", epoch,
            target="node0", hook="ingress", name="app", tag="aa",
        )
        journal.commit(
            "t1", target="node0", hook="ingress", name="app", tag="aa"
        )
        journal.begin(
            "t2", "deploy", epoch,
            target="node1", hook="egress", name="app2", tag="bb",
        )
        replayed = IntentJournal.from_jsonl(journal.to_jsonl())
        assert replayed.latest_epoch() == epoch
        assert replayed.committed_intent()["node0"].programs == {"app": "aa"}
        assert [t.txn for t in replayed.in_flight()] == ["t2"]
        # The reopened WAL can still abort the dangling transaction.
        replayed.abort("t2", reason="superseded")
        assert not replayed.in_flight()

    def test_epochs_are_monotonic(self):
        journal = IntentJournal()
        first = journal.claim_epoch()
        second = journal.claim_epoch()
        assert second == first + 1
        assert journal.latest_epoch() == second


class TestEpochFencing:
    def test_create_codeflow_stamps_epoch(self, testbed):
        assert testbed.sandbox.epoch() == testbed.control.epoch

    def test_stale_deploy_is_fenced(self, testbed):
        bed = testbed
        program = programs_for(bed)[0]
        # A successor incarnation takes over the same journal.
        plane, _ = bed.sim.run_process(
            resume_control_plane(
                bed.cluster.control_host, bed.control.journal, bed.sandboxes
            )
        )
        assert plane.epoch > bed.control.epoch
        with pytest.raises(StaleEpochError):
            bed.sim.run_process(bed.control.inject(
                bed.codeflow, program, "ingress"
            ))

    def test_stale_broadcast_aborts_without_landing(self, testbed2):
        bed = testbed2
        group = CodeFlowGroup(bed.codeflows)
        bed.sim.run_process(group.broadcast(programs_for(bed, 1), "ingress"))
        plane, codeflows = bed.sim.run_process(
            resume_control_plane(
                bed.cluster.control_host, bed.control.journal, bed.sandboxes
            )
        )
        reports = bed.sim.run_process(
            Reconciler(plane).reconcile_all(codeflows)
        )
        assert all(r.converged for r in reports)
        hooks = [
            sb.hook_table.read_pointer("ingress") for sb in bed.sandboxes
        ]
        with pytest.raises(BroadcastAborted) as excinfo:
            bed.sim.run_process(
                group.broadcast(programs_for(bed, 2), "ingress")
            )
        outcomes = excinfo.value.result.outcomes
        assert all(o.error_kind == "StaleEpochError" for o in outcomes)
        assert [
            sb.hook_table.read_pointer("ingress") for sb in bed.sandboxes
        ] == hooks
        # And the stale writer didn't lower the successor's bubbles
        # either -- its cleanup must be fenced too.
        assert all(not sb.bubble_active() for sb in bed.sandboxes)

    def test_crashed_plane_refuses_new_work(self, testbed):
        bed = testbed
        bed.control.crash()
        with pytest.raises(DeployError):
            bed.sim.run_process(bed.control.inject(
                bed.codeflow, programs_for(bed)[0], "ingress"
            ))


class TestHealthLeases:
    def test_lease_walks_alive_suspect_dead(self, testbed):
        bed = testbed
        detector = HealthDetector(bed.codeflows)
        target = bed.sandbox.name
        assert bed.sim.run_process(detector.probe(target)) is TargetHealth.ALIVE
        bed.host.crash()
        assert bed.sim.run_process(detector.probe(target)) is TargetHealth.SUSPECT
        for _ in range(detector.dead_after):
            bed.sim.run_process(detector.probe(target))
        assert detector.state_of(target) is TargetHealth.DEAD
        bed.host.recover()
        assert bed.sim.run_process(detector.probe(target)) is TargetHealth.ALIVE

    def test_broadcast_degrades_around_dead_lease(self, testbed2):
        bed = testbed2
        group = CodeFlowGroup(bed.codeflows)
        detector = HealthDetector(bed.codeflows)
        bed.sim.run_process(group.broadcast(programs_for(bed, 1), "ingress"))
        bed.sandboxes[1].host.crash()
        for _ in range(detector.dead_after):
            bed.sim.run_process(detector.probe_all())
        result = bed.sim.run_process(
            group.broadcast(
                programs_for(bed, 2), "ingress",
                allow_partial=True, health=detector,
            )
        )
        assert result.degraded
        assert result.outcomes[0].ok
        assert result.outcomes[1].error_kind == "HostUnreachable"


class TestWarmRebootReconcile:
    def test_node_crash_reboot_reconcile_serves_traffic(self, testbed2):
        """The tentpole invariant: NODE_CRASH -> recover(reboot=True)
        -> reconcile -> clean audit and the extension answers traffic."""
        bed = testbed2
        group = CodeFlowGroup(bed.codeflows)
        bed.sim.run_process(group.broadcast(programs_for(bed, 1), "ingress"))

        injector = FaultInjector(bed.codeflows[1], seed=0)
        injector.crash_target()
        injector.recover_target(reboot=True)
        rebooted = bed.sandboxes[1]
        assert rebooted.reboots == 1
        assert rebooted.hook_table.read_pointer("ingress") == 0

        reports = bed.sim.run_process(
            Reconciler(bed.control).reconcile_all(bed.codeflows)
        )
        assert all(r.converged for r in reports)
        assert all(r.audit.clean for r in reports)
        for sandbox in bed.sandboxes:
            execution, _ = sandbox.run_hook("ingress", bytes(256))
            assert execution is not None

    def test_resumed_plane_adopts_survivors(self, testbed):
        bed = testbed
        program = programs_for(bed)[0]
        bed.sim.run_process(bed.control.inject(
            bed.codeflow, program, "ingress"
        ))
        plane, codeflows = bed.sim.run_process(
            resume_control_plane(
                bed.cluster.control_host, bed.control.journal, bed.sandboxes
            )
        )
        reports = bed.sim.run_process(
            Reconciler(plane).reconcile_all(codeflows)
        )
        assert reports[0].converged
        kinds = [a.kind for a in reports[0].actions]
        assert "adopt" in kinds and "redeploy" not in kinds
        introspector = RemoteIntrospector(codeflows[0])
        introspector.snapshot_deployed()
        assert bed.sim.run_process(introspector.audit()).clean


class TestRegistryCapAndClose:
    def test_compile_cache_is_bounded(self, testbed):
        bed = testbed
        for i in range(params.RDX_REGISTRY_CAP + 5):
            program = make_stress_program(60, seed=i, name=f"p{i}")
            bed.sim.run_process(
                bed.control.prepare_for(bed.codeflow, program)
            )
        assert len(bed.control.registry) == params.RDX_REGISTRY_CAP
        assert bed.control.cache_evictions == 5

    def test_lru_touch_keeps_hot_entry(self, testbed):
        bed = testbed
        hot = make_stress_program(60, seed=1000, name="hot")
        bed.sim.run_process(bed.control.prepare_for(bed.codeflow, hot))
        for i in range(params.RDX_REGISTRY_CAP - 1):
            program = make_stress_program(60, seed=i, name=f"p{i}")
            bed.sim.run_process(
                bed.control.prepare_for(bed.codeflow, program)
            )
        # Touch the oldest entry, then overflow by one: the hot entry
        # must survive and the oldest untouched one must be evicted.
        bed.sim.run_process(bed.control.prepare_for(bed.codeflow, hot))
        overflow = make_stress_program(60, seed=2000, name="overflow")
        bed.sim.run_process(bed.control.prepare_for(bed.codeflow, overflow))
        tags = {key[0] for key in bed.control.registry}
        assert hot.tag() in tags

    def test_close_codeflow_releases_qps(self, testbed):
        bed = testbed
        plane = bed.control
        codeflow = bed.codeflow
        qp_counts_before = [ctx.qp_count for ctx, _qp in codeflow._qp_pair]
        assert all(count > 0 for count in qp_counts_before)
        plane.close_codeflow(codeflow)
        assert codeflow.closed
        assert codeflow not in plane.codeflows
        with pytest.raises(DeployError):
            plane.close_codeflow(codeflow)


class TestTornBatchRecovery:
    """Torn WR chains: prefix detection, CRC readback, and repair."""

    @pytest.fixture(autouse=True)
    def _pin_pipelined(self):
        # These scenarios tear a *batched* image mid-chain; keep them
        # meaningful under an RDX_PIPELINED_DEPLOY=0 ablation run.
        saved = params.RDX_PIPELINED_DEPLOY
        params.RDX_PIPELINED_DEPLOY = True
        yield
        params.RDX_PIPELINED_DEPLOY = saved

    def test_crash_mid_chain_strands_exact_mtu_prefix(self, testbed):
        """A target dying mid-chain keeps exactly the landed MTU chunks;
        the aborted transaction leaves committed intent at v1, and a
        re-inject after recovery overwrites the torn prefix whole."""
        bed = testbed
        codeflow = bed.codeflow
        v1 = make_stress_program(1_300, seed=7, name="app")
        bed.sim.run_process(bed.control.inject(codeflow, v1, "ingress"))
        bed.sim.run()
        baseline, _ = bed.sandbox.run_hook("ingress", bytes(256))

        # Fail-stop the target the instant the first full MTU chunk of
        # the v2 image lands: the chain dies with that prefix in DRAM.
        cache = bed.host.cache
        original = cache.dma_write
        seen = {}

        def crash_after_first_chunk(addr, data):
            original(addr, data)
            if len(data) == RNIC_MTU_BYTES and "addr" not in seen:
                seen["addr"] = addr
                bed.host.crash()

        cache.dma_write = crash_after_first_chunk
        v2 = make_stress_program(1_300, seed=8, name="app")
        try:
            with pytest.raises(TransientFault):
                bed.sim.run_process(
                    bed.control.inject(codeflow, v2, "ingress")
                )
        finally:
            cache.dma_write = original

        linked = list(bed.control.linked_images.values())[-1]
        assert len(linked.code) > RNIC_MTU_BYTES
        landed = bed.host.memory.read(seen["addr"], len(linked.code))
        assert landed[:RNIC_MTU_BYTES] == linked.code[:RNIC_MTU_BYTES]
        assert landed[RNIC_MTU_BYTES:] == bytes(
            len(linked.code) - RNIC_MTU_BYTES
        )

        # The deploy aborted cleanly: committed intent still names v1.
        assert not list(bed.control.journal.in_flight())
        intent = bed.control.journal.committed_intent()
        assert intent[bed.sandbox.name].programs["app"] == v1.tag()

        # After recovery the data path still serves v1, and a fresh
        # inject re-lands every WR of the batch over the torn prefix.
        bed.host.recover()
        assert bed.sandbox.run_hook("ingress", bytes(256))[0] == baseline
        bed.sim.run_process(bed.control.inject(codeflow, v2, "ingress"))
        assert codeflow.deployed["app"].program is v2
        assert bed.sim.run_process(RemoteIntrospector(codeflow).audit()).clean
        execution, _ = bed.sandbox.run_hook("ingress", bytes(256))
        assert execution is not None

    def test_torn_batched_image_crc_detected_and_redeployed(self, testbed):
        """A tear inside the batched image write commits a corrupt
        image; the reconciler's CRC readback refuses to adopt it and
        redeploys from the artifact catalog instead."""
        bed = testbed
        codeflow = bed.codeflow
        v1 = make_stress_program(1_300, seed=7, name="app")
        bed.sim.run_process(bed.control.inject(codeflow, v1, "ingress"))

        injector = FaultInjector(codeflow, seed=3)
        injector.arm(FaultKind.TORN_WRITE)
        injector.attach()
        v2 = make_stress_program(1_300, seed=8, name="app")
        try:
            bed.sim.run_process(bed.control.inject(codeflow, v2, "ingress"))
        finally:
            injector.detach()

        # The tear hit the wire, not the catalog: the hook points at a
        # corrupt image and the data path detects it.
        with pytest.raises(SandboxCrash):
            bed.sandbox.run_hook("ingress", bytes(256))
        bed.sandbox.crashed = False

        plane, codeflows = bed.sim.run_process(
            resume_control_plane(
                bed.cluster.control_host, bed.control.journal, bed.sandboxes
            )
        )
        reports = bed.sim.run_process(
            Reconciler(plane).reconcile_all(codeflows)
        )
        assert reports[0].converged
        kinds = [action.kind for action in reports[0].actions]
        assert "redeploy" in kinds  # CRC readback rejected the torn image
        assert "adopt" not in kinds
        assert reports[0].audit.clean
        execution, _ = bed.sandboxes[0].run_hook("ingress", bytes(256))
        assert execution is not None
