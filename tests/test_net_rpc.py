"""Tests for the TCP/gRPC-style RPC layer."""

import pytest

from repro import params
from repro.errors import ReproError
from repro.net.fabric import Fabric
from repro.net.rpc import RpcEndpoint, RpcError
from repro.net.topology import Host
from repro.sim.core import Simulator


@pytest.fixture
def endpoints():
    sim = Simulator()
    fabric = Fabric(sim)
    client_host = Host(sim, "client", dram_bytes=1 << 20)
    server_host = Host(sim, "server", dram_bytes=1 << 20)
    fabric.attach(client_host)
    fabric.attach(server_host)
    client = RpcEndpoint(client_host, "client")
    server = RpcEndpoint(server_host, "compute")
    return sim, client, server, client_host, server_host


class TestRpc:
    def test_call_returns_value(self, endpoints):
        sim, client, server, *_ = endpoints

        def double(args):
            yield sim.timeout(0)
            return args * 2

        server.register("double", double)

        def caller():
            value = yield client.call(server.host, "compute", "double", args=21)
            return value

        assert sim.run_process(caller()) == 42

    def test_latency_includes_stack_cost(self, endpoints):
        sim, client, server, *_ = endpoints
        server.register("noop", lambda args: (yield sim.timeout(0)))

        def caller():
            yield client.call(server.host, "compute", "noop")
            return sim.now

        elapsed = sim.run_process(caller())
        assert elapsed >= params.RPC_BASE_LATENCY_US

    def test_unknown_method_raises(self, endpoints):
        sim, client, server, *_ = endpoints

        def caller():
            yield client.call(server.host, "compute", "missing")

        process = sim.spawn(caller())
        sim.run()
        with pytest.raises(RpcError, match="no method"):
            _ = process.value

    def test_handler_error_propagates(self, endpoints):
        sim, client, server, *_ = endpoints

        def broken(args):
            yield sim.timeout(0)
            raise ReproError("handler exploded")

        server.register("broken", broken)

        def caller():
            yield client.call(server.host, "compute", "broken")

        process = sim.spawn(caller())
        sim.run()
        with pytest.raises(RpcError, match="handler exploded"):
            _ = process.value

    def test_handler_consumes_server_cpu(self, endpoints):
        sim, client, server, _client_host, server_host = endpoints

        def heavy(args):
            yield from server_host.cpu.run(500)
            return "done"

        server.register("heavy", heavy)

        def caller():
            value = yield client.call(server.host, "compute", "heavy")
            return value

        assert sim.run_process(caller()) == "done"
        assert server_host.cpu.busy_us == 500

    def test_plain_function_handler(self, endpoints):
        sim, client, server, *_ = endpoints
        server.register("plain", lambda args: args + 1)

        def caller():
            value = yield client.call(server.host, "compute", "plain", args=1)
            return value

        assert sim.run_process(caller()) == 2

    def test_concurrent_calls_multiplex(self, endpoints):
        sim, client, server, *_ = endpoints

        def echo(args):
            yield sim.timeout(args)
            return args

        server.register("echo", echo)

        def caller():
            calls = [
                client.call(server.host, "compute", "echo", args=delay)
                for delay in (30, 10, 20)
            ]
            values = yield sim.all_of(calls)
            return values

        assert sim.run_process(caller()) == [30, 10, 20]
        assert server.calls_served == 3

    def test_requires_fabric(self):
        sim = Simulator()
        host = Host(sim, "lonely", dram_bytes=1 << 20)
        with pytest.raises(ReproError):
            RpcEndpoint(host, "svc")
