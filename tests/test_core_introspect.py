"""Tests for remote memory introspection (§5 integrity)."""

import pytest

from repro.core.introspect import RemoteIntrospector, continuous_audit
from repro.core.xstate import XStateSpec
from repro.ebpf.maps import MapType
from repro.ebpf.stress import make_stress_program


@pytest.fixture
def audited(testbed):
    program = make_stress_program(300, seed=1, name="ext")
    testbed.sim.run_process(
        testbed.control.inject(testbed.codeflow, program, "ingress")
    )
    testbed.sim.run_process(
        testbed.codeflow.deploy_xstate(
            XStateSpec("kv", MapType.HASH, 4, 8, 8)
        )
    )
    introspector = RemoteIntrospector(testbed.codeflow)
    introspector.snapshot_deployed()
    return testbed, introspector


class TestCleanAudit:
    def test_clean_target_passes(self, audited):
        testbed, introspector = audited
        report = testbed.sim.run_process(introspector.audit())
        assert report.clean
        assert report.bytes_read > 0
        assert report.duration_us > 0

    def test_audit_uses_no_target_cpu(self, audited):
        testbed, introspector = audited
        before = testbed.host.cpu.busy_us
        testbed.sim.run_process(introspector.audit())
        assert testbed.host.cpu.busy_us == before


class TestTamperDetection:
    def test_code_tamper_detected(self, audited):
        testbed, introspector = audited
        record = testbed.codeflow.deployed["ext"]
        raw = testbed.host.memory.read(record.code_addr + 20, 1)
        testbed.host.memory.write(record.code_addr + 20, bytes([raw[0] ^ 0xFF]))
        report = testbed.sim.run_process(introspector.audit())
        assert any(f.plane == "code" for f in report.critical)

    def test_recrc_tamper_still_detected_by_hash(self, audited):
        """An attacker who fixes up the CRC is still caught by the
        shipped-binary hash."""
        import zlib

        testbed, introspector = audited
        record = testbed.codeflow.deployed["ext"]
        image = bytearray(
            testbed.host.memory.read(record.code_addr, record.code_len)
        )
        image[15] ^= 0x01
        # Recompute slot checksum + image CRC like a careful attacker.
        slot_start = 8 + ((15 - 8) // 10) * 10
        image[slot_start + 9] = sum(image[slot_start : slot_start + 9]) & 0xFF
        body = bytes(image[:-4])
        image[-4:] = (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
        testbed.host.memory.write(record.code_addr, bytes(image))
        report = testbed.sim.run_process(introspector.audit())
        assert any(
            "hash differs" in f.detail for f in report.critical
        )

    def test_hook_hijack_detected(self, audited):
        testbed, introspector = audited
        rogue_addr = testbed.codeflow.manifest.code_addr + 0x4000
        from repro.mem.layout import pack_qword

        testbed.host.memory.write(
            testbed.sandbox.hook_table.slot_addr("egress"),
            pack_qword(rogue_addr),
        )
        report = testbed.sim.run_process(introspector.audit())
        assert any(f.plane == "hook" for f in report.critical)

    def test_metadata_tamper_detected(self, audited):
        testbed, introspector = audited
        record = testbed.codeflow.deployed["ext"]
        slot_addr = (
            testbed.codeflow.manifest.metadata_addr
            + record.metadata_slot * 256
        )
        # Overwrite the descriptor's code_addr field (offset 16).
        testbed.host.memory.write(slot_addr + 16, (0xBAD0).to_bytes(8, "little"))
        report = testbed.sim.run_process(introspector.audit())
        assert any(f.plane == "metadata" for f in report.critical)

    def test_xstate_header_tamper_detected(self, audited):
        testbed, introspector = audited
        handle = testbed.codeflow.scratchpad.by_name("kv")
        testbed.host.memory.write(handle.header_addr, b"\x00")  # kill magic
        report = testbed.sim.run_process(introspector.audit())
        assert any(f.plane == "xstate" for f in report.critical)

    def test_xstate_meta_redirect_detected(self, audited):
        testbed, introspector = audited
        handle = testbed.codeflow.scratchpad.by_name("kv")
        meta_addr = testbed.codeflow.scratchpad.meta_entry_addr(
            handle.meta_index
        )
        testbed.host.memory.write(meta_addr, (0xDEAD000).to_bytes(8, "little"))
        report = testbed.sim.run_process(introspector.audit())
        assert any(
            f.plane == "xstate" and "meta entry" in f.detail
            for f in report.critical
        )


class TestContinuousAudit:
    def test_loop_stops_on_critical(self, audited):
        testbed, introspector = audited

        def tamper_later():
            yield testbed.sim.timeout(25_000)
            record = testbed.codeflow.deployed["ext"]
            raw = testbed.host.memory.read(record.code_addr + 30, 1)
            testbed.host.memory.write(
                record.code_addr + 30, bytes([raw[0] ^ 0x10])
            )

        testbed.sim.spawn(tamper_later())
        reports = testbed.sim.run_process(
            continuous_audit(introspector, interval_us=10_000,
                             duration_us=200_000)
        )
        assert reports[-1].critical  # loop ended on the detection
        assert all(r.clean for r in reports[:-1])
        # It stopped early rather than auditing the full duration.
        assert len(reports) < 20

    def test_clean_run_audits_for_full_duration(self, audited):
        testbed, introspector = audited
        start = testbed.sim.now
        reports = testbed.sim.run_process(
            continuous_audit(introspector, interval_us=10_000,
                             duration_us=100_000)
        )
        assert all(r.clean for r in reports)
        # One audit per interval, give or take the audit's own duration
        # eating into the window.
        assert 5 <= len(reports) <= 10
        assert testbed.sim.now - start >= 100_000

    def test_reports_are_ordered_in_time(self, audited):
        testbed, introspector = audited
        reports = testbed.sim.run_process(
            continuous_audit(introspector, interval_us=20_000,
                             duration_us=100_000)
        )
        ends = [r.finished_us for r in reports]
        assert ends == sorted(ends)
        assert all(r.bytes_read > 0 for r in reports)

    def test_audit_loop_feeds_metrics(self, audited):
        testbed, introspector = audited
        reports = testbed.sim.run_process(
            continuous_audit(introspector, interval_us=20_000,
                             duration_us=100_000)
        )
        registry = testbed.obs.registry
        assert registry.counter("rdx.audit.runs").value == len(reports)
        assert registry.get("rdx.audit.duration_us").count == len(reports)
