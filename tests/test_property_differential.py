"""Property-based differential tests over randomly generated programs.

Strategy-generated programs are safe by construction (the generators
track initialized registers / stack slots / stack depth), so they must
(a) pass the static verifier, (b) survive the JIT -> link -> decode
round trip byte-exactly in behaviour, and (c) compute identical
results through every execution route.
"""

from hypothesis import given, settings, strategies as st

from repro.ebpf import opcodes as op
from repro.ebpf.asm import Asm
from repro.ebpf.interpreter import Interpreter
from repro.ebpf.jit import decode_image, jit_compile
from repro.ebpf.program import BpfProgram
from repro.ebpf.verifier import verify
from repro.wasm.compiler import decode_wasm_image, wasm_compile
from repro.wasm.module import WasmBuilder, WOp
from repro.wasm.runtime import RequestContext, WasmRuntime
from repro.wasm.validator import wasm_validate

# ---------------------------------------------------------------------
# Random eBPF programs
# ---------------------------------------------------------------------

_SAFE_ALU = (
    op.BPF_ADD, op.BPF_SUB, op.BPF_MUL, op.BPF_OR, op.BPF_AND,
    op.BPF_XOR, op.BPF_RSH,
)


@st.composite
def ebpf_programs(draw):
    """Generate a safe program over scalar regs r0, r2..r5 + ctx loads."""
    asm = Asm()
    # Initialize the working registers.
    regs = [op.R0, op.R2, op.R3, op.R4, op.R5]
    for index, reg in enumerate(regs):
        asm.mov_imm(reg, draw(st.integers(0, 1 << 20)) + index)

    n_ops = draw(st.integers(1, 30))
    label_counter = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["alu_imm", "alu_reg", "ctx", "stack",
                                     "branch"]))
        dst = draw(st.sampled_from(regs))
        if kind == "alu_imm":
            alu = draw(st.sampled_from(_SAFE_ALU))
            imm = draw(st.integers(0, 63 if alu == op.BPF_RSH else (1 << 20)))
            asm.alu64_imm(alu, dst, imm)
        elif kind == "alu_reg":
            alu = draw(st.sampled_from(_SAFE_ALU[:6]))  # no reg shifts
            src = draw(st.sampled_from(regs))
            asm.alu64_reg(alu, dst, src)
        elif kind == "ctx":
            offset = draw(st.integers(0, 255))
            asm.ldx_b(dst, op.R1, offset)
        elif kind == "stack":
            slot = draw(st.sampled_from([-8, -16, -24, -32]))
            asm.stx_dw(op.R10, dst, slot)
            asm.ldx_dw(draw(st.sampled_from(regs)), op.R10, slot)
        else:  # branch over one op
            label_counter += 1
            label = f"b{label_counter}"
            jmp = draw(st.sampled_from([op.BPF_JEQ, op.BPF_JGT, op.BPF_JLE]))
            asm.jmp_imm(jmp, dst, draw(st.integers(0, 1 << 16)), label)
            asm.alu64_imm(op.BPF_ADD, dst, 1)
            asm.label(label)
    asm.mov_reg(op.R0, draw(st.sampled_from(regs)))
    asm.exit_()
    return BpfProgram(asm.build(), name="hyp")


class TestEbpfDifferential:
    @given(ebpf_programs(), st.binary(min_size=256, max_size=256))
    @settings(max_examples=80, deadline=None)
    def test_verifies_and_roundtrips(self, program, ctx):
        stats = verify(program)
        assert stats.insn_count == len(program.insns)

        direct = Interpreter().run(program.insns, ctx)

        for arch in ("x86_64", "arm64"):
            binary = jit_compile(program, arch=arch)
            assert binary.is_linked  # no external refs by construction
            insns = decode_image(
                binary.code, lambda a: None, lambda a: None, expect_arch=arch
            )
            via_jit = Interpreter().run(insns, ctx)
            assert via_jit.r0 == direct.r0
            assert via_jit.insns_executed == direct.insns_executed

    @given(ebpf_programs())
    @settings(max_examples=40, deadline=None)
    def test_image_bytes_deterministic(self, program):
        assert jit_compile(program).code == jit_compile(program).code

    @given(ebpf_programs(), st.integers(8, 2000), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_any_single_byte_corruption_detected(self, program, pos, bit):
        """Flipping any bit anywhere in the image must be detected."""
        import pytest
        from repro.errors import SandboxCrash

        binary = jit_compile(program)
        image = bytearray(binary.code)
        index = pos % len(image)
        image[index] ^= 1 << bit
        with pytest.raises(SandboxCrash):
            decode_image(bytes(image), lambda a: None, lambda a: None)


# ---------------------------------------------------------------------
# Random Wasm modules
# ---------------------------------------------------------------------

_WASM_ALU = (WOp.ADD, WOp.SUB, WOp.MUL, WOp.AND, WOp.OR, WOp.XOR,
             WOp.EQ, WOp.NE, WOp.LT_U, WOp.GT_U)


@st.composite
def wasm_modules(draw):
    """Generate a stack-safe module using args + locals + branches."""
    builder = WasmBuilder(name="hyp", n_locals=4)
    depth = 0
    n_ops = draw(st.integers(1, 40))
    label_counter = 0
    for _ in range(n_ops):
        choices = ["push", "local"]
        if depth >= 1:
            choices += ["dup", "set_local", "branch"]
        if depth >= 2:
            choices += ["alu", "drop"]
        kind = draw(st.sampled_from(choices))
        if kind == "push":
            builder.push(draw(st.integers(0, 1 << 30)))
            depth += 1
        elif kind == "local":
            builder.get_local(draw(st.integers(0, 1)))  # arg locals
            depth += 1
        elif kind == "dup":
            builder.emit(WOp.DUP)
            depth += 1
        elif kind == "set_local":
            builder.set_local(draw(st.integers(0, 1)))
            depth -= 1
        elif kind == "alu":
            builder.alu(draw(st.sampled_from(_WASM_ALU)))
            depth -= 1
        elif kind == "drop":
            builder.emit(WOp.DROP)
            depth -= 1
        else:  # branch over a push/drop pair (stack-neutral)
            label_counter += 1
            label = f"L{label_counter}"
            builder.br_if(label)
            depth -= 1
            builder.push(draw(st.integers(0, 100)))
            builder.emit(WOp.DROP)
            builder.label(label)
        if depth > 48:
            builder.emit(WOp.DROP)
            depth -= 1
    while depth > 1:
        builder.emit(WOp.DROP)
        depth -= 1
    if depth == 0:
        builder.push(0)
    builder.ret()
    return builder.build()


class TestWasmDifferential:
    @given(
        wasm_modules(),
        st.tuples(st.integers(0, 1 << 30), st.integers(0, 1 << 30)),
    )
    @settings(max_examples=80, deadline=None)
    def test_validates_and_roundtrips(self, module, args):
        wasm_validate(module)
        direct = WasmRuntime().run(module.insns, RequestContext(), args=args)
        binary = wasm_compile(module)
        instrs = decode_wasm_image(binary.code, host_call_at=lambda a: None)
        via = WasmRuntime().run(instrs, RequestContext(), args=args)
        assert via.value == direct.value
        assert via.insns_executed == direct.insns_executed

    @given(wasm_modules())
    @settings(max_examples=40, deadline=None)
    def test_arch_images_differ_but_agree(self, module):
        x86 = wasm_compile(module, arch="x86_64")
        arm = wasm_compile(module, arch="arm64")
        assert x86.code != arm.code
        a = decode_wasm_image(x86.code, lambda a: None, expect_arch="x86_64")
        b = decode_wasm_image(arm.code, lambda a: None, expect_arch="arm64")
        assert a == b
