"""Tests for fixed-width layout helpers."""

from hypothesis import given, strategies as st

from repro.mem.layout import (
    pack_qword,
    pack_u32,
    qword_at,
    store_qword,
    unpack_qword,
    unpack_u32,
)
from repro.mem.memory import PhysicalMemory


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_qword_roundtrip(value):
    assert unpack_qword(pack_qword(value)) == value


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_u32_roundtrip(value):
    assert unpack_u32(pack_u32(value)) == value


def test_qword_wraps_to_64_bits():
    assert unpack_qword(pack_qword(1 << 64)) == 0


def test_little_endian_layout():
    assert pack_qword(1) == b"\x01" + bytes(7)
    assert pack_u32(0x0102_0304) == b"\x04\x03\x02\x01"


def test_memory_qword_helpers():
    mem = PhysicalMemory(4096)
    store_qword(mem, mem.base + 16, 0xDEADBEEF)
    assert qword_at(mem, mem.base + 16) == 0xDEADBEEF
