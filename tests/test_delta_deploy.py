"""Delta-deploy tests: eligibility, ping-pong, fault paths, provenance.

Covers the chunk-level redeploy fast path end to end -- when it
engages, what it ships, how it unwinds -- plus the batched-write fault
fixes it leans on: dropped WRs re-entering the retry loop and the
empty batch costing nothing.
"""

import pytest

from repro import params
from repro.core.faults import FaultInjector, FaultKind, _HookAction
from repro.core.journal import REC_COMMIT
from repro.core.reconcile import Reconciler, resume_control_plane
from repro.ebpf.stress import make_stress_program, make_stress_variant
from repro.errors import DeployError, TransientFault
from repro.exp.fault_campaign import run_fault_campaign
from repro.exp.harness import make_testbed
from repro.hb import checker
from repro.mem.layout import pack_qword

INSNS = 400


@pytest.fixture
def delta_on(monkeypatch):
    monkeypatch.setattr(params, "RDX_DELTA_DEPLOY", True)


def _counter(bed, name, **labels):
    metric = bed.obs.registry.get(name, **labels)
    return metric.value if metric is not None else 0


def _deploy(bed, program, retain_history=False):
    return bed.sim.run_process(
        bed.control.inject(
            bed.codeflow, program, "ingress", retain_history=retain_history
        )
    )


def _chain(bed, n=3, seed=7, name="hotpatch"):
    """Deploy v1 (cold), v2 (registers baseline), ... vn; return reports."""
    base = make_stress_program(INSNS, seed=seed, name=name)
    versions = [base] + [
        make_stress_variant(base, imm) for imm in range(1, n)
    ]
    return [_deploy(bed, v) for v in versions]


class TestDeltaEngages:
    def test_third_deploy_ships_delta(self, testbed, delta_on):
        r1, r2, r3 = _chain(testbed, 3)
        assert (r1.mode, r2.mode, r3.mode) == ("full", "full", "delta")
        # One-instruction edit: the edited insn and the trailing CRC
        # land in one dirty chunk, trimmed to cache-line spans.
        assert r3.delta_chunks == 1
        assert r3.bytes_moved < r1.bytes_moved / 5
        assert r3.delta_base_version == 1
        # The two warm-up deploys were counted as fallbacks, by reason.
        assert _counter(testbed, "rdx.delta.fallback", reason="first-deploy") == 1
        assert _counter(testbed, "rdx.delta.fallback", reason="no-baseline") == 1
        assert _counter(testbed, "rdx.deploy.delta") == 1

    def test_extents_ping_pong(self, testbed, delta_on):
        r1, r2, r3, r4 = _chain(testbed, 4)
        # The delta writes into the baseline extent and flips to it, so
        # the two extents swap roles every generation.
        assert r3.mode == r4.mode == "delta"
        assert r3.code_addr == r1.code_addr
        assert r4.code_addr == r2.code_addr

    def test_zero_diff_redeploy_is_metadata_only(self, testbed, delta_on):
        _chain(testbed, 3)
        base = make_stress_program(INSNS, seed=7, name="hotpatch")
        # The diff base is the *baseline* -- the image superseded one
        # generation ago (v2, imm=1) -- so redeploying that exact
        # version is a zero-chunk delta: descriptor + CAS, no code.
        again = _deploy(testbed, make_stress_variant(base, 1))
        assert again.mode == "delta"
        assert again.delta_chunks == 0
        assert again.bytes_moved == 256  # just the descriptor

    def test_flag_off_never_deltas(self, testbed, monkeypatch):
        monkeypatch.setattr(params, "RDX_DELTA_DEPLOY", False)
        reports = _chain(testbed, 3)
        assert all(r.mode == "full" for r in reports)
        assert _counter(testbed, "rdx.deploy.delta") == 0

    def test_remote_image_matches_full_path(self, delta_on):
        """The delta-installed extent is byte-identical to a full
        install of the same version, and decodes identically."""
        payload = bytes(range(256))
        states = {}
        for delta in (True, False):
            params.RDX_DELTA_DEPLOY = delta
            bed = make_testbed(n_hosts=1, cores_per_host=4)
            report = _chain(bed, 3)[-1]
            record = bed.codeflow.deployed["hotpatch"]
            image = bed.sim.run_process(
                bed.codeflow.read_raw(report.code_addr, record.code_len)
            )
            execution, _ = bed.sandbox.run_hook("ingress", payload)
            states[delta] = (image, execution.r0)
        assert states[True] == states[False]


class TestFallbacks:
    def test_past_break_even_falls_back(self, testbed, delta_on, monkeypatch):
        monkeypatch.setattr(params, "RDX_DELTA_MAX_CHUNKS", 0)
        r3 = _chain(testbed, 3)[-1]
        assert r3.mode == "full"
        assert (
            _counter(testbed, "rdx.delta.fallback", reason="past-break-even")
            == 1
        )

    def test_unrelated_image_has_no_savings(self, testbed, delta_on):
        _chain(testbed, 3)
        # Same size, same layout, but almost every byte differs: the
        # trimmed spans cover the whole image, so shipping them as a
        # "delta" would move more than a full install.
        other = make_stress_program(INSNS, seed=99, name="hotpatch")
        report = _deploy(testbed, other)
        assert report.mode == "full"
        assert (
            _counter(testbed, "rdx.delta.fallback", reason="no-savings") == 1
        )

    def test_size_change_falls_back(self, testbed, delta_on):
        _chain(testbed, 3)
        grown = make_stress_program(INSNS + 6, seed=7, name="hotpatch")
        report = _deploy(testbed, grown)
        assert report.mode == "full"
        assert (
            _counter(testbed, "rdx.delta.fallback", reason="size-changed") == 1
        )


class TestBaselineLifetime:
    def test_superseded_extent_stays_resident(self, testbed, delta_on):
        """retain_history=False used to free the old extent at commit;
        it must stay allocated while registered as the diff baseline."""
        r1, _ = _chain(testbed, 2)
        allocator = testbed.codeflow.code_allocator
        record = testbed.codeflow.deployed["hotpatch"]
        assert record.baseline_addr == r1.code_addr
        assert allocator.size_of(r1.code_addr) is not None

    def test_cas_conflict_unwinds_and_heals(self, testbed, delta_on):
        _chain(testbed, 3)
        codeflow = testbed.codeflow
        record = codeflow.deployed["hotpatch"]
        hook_addr = testbed.sandbox.hook_table.slot_addr("ingress")
        live = record.code_addr

        # A concurrent writer moves the hook out from under the deploy.
        testbed.sim.run_process(
            codeflow.sync.write(hook_addr, pack_qword(0x7E57_0000))
        )
        base = make_stress_program(INSNS, seed=7, name="hotpatch")
        with pytest.raises(DeployError):
            _deploy(testbed, make_stress_variant(base, 3))
        # The baseline extent was half-rewritten by the body, so the
        # unwind poisons it: registration dropped, extent retired.
        assert record.baseline_addr is None
        assert record.baseline_image is None

        # Restore the pointer; the next deploy self-heals on the full
        # path (no-baseline fallback) and re-registers a baseline.
        testbed.sim.run_process(
            codeflow.sync.write(hook_addr, pack_qword(live))
        )
        healed = _deploy(testbed, make_stress_variant(base, 4))
        assert healed.mode == "full"
        assert (
            _counter(testbed, "rdx.delta.fallback", reason="no-baseline") >= 1
        )
        assert codeflow.deployed["hotpatch"].baseline_addr is not None
        # And the generation after that deltas again.
        assert _deploy(testbed, make_stress_variant(base, 5)).mode == "delta"
        checker.consume(testbed.sim)  # deliberate raw hook pokes above

    def test_reboot_adopt_reseeds_baseline(self, testbed, delta_on):
        """After a control-plane handover the reconciler's CRC readback
        re-learns the resident image; the first deploy ships full (the
        link layout is unknown) and the next one deltas again."""
        bed = testbed
        base = make_stress_program(INSNS, seed=7, name="hotpatch")
        _deploy(bed, base)
        plane, codeflows = bed.sim.run_process(
            resume_control_plane(
                bed.cluster.control_host, bed.control.journal, bed.sandboxes
            )
        )
        reports = bed.sim.run_process(Reconciler(plane).reconcile_all(codeflows))
        assert "adopt" in [a.kind for a in reports[0].actions]
        record = codeflows[0].deployed["hotpatch"]
        assert record.image is not None  # CRC-verified readback

        def redeploy(imm):
            return bed.sim.run_process(
                plane.inject(
                    codeflows[0], make_stress_variant(base, imm), "ingress",
                    retain_history=False,
                )
            )

        first = redeploy(1)
        assert first.mode == "full"
        assert first.code_addr != record.code_addr  # fresh extent
        second = redeploy(2)
        assert second.mode == "delta"
        # ...and the delta's base is the adopted pre-handover extent.
        assert second.code_addr == record.code_addr


class TestWriteBatchFaultPaths:
    def test_empty_batch_is_free(self, testbed):
        """Regression: an empty batch used to charge RDX_CC_EVENT_US;
        it must return immediately at zero simulated cost."""
        sync = testbed.codeflow.sync
        before = testbed.sim.now
        assert testbed.sim.run_process(sync.write_batch([])) is None
        assert testbed.sim.now == before

    def test_dropped_wr_reenters_retry_loop(self, testbed):
        """Regression: a dropped WR was silently skipped and the batch
        reported success with a chunk missing.  It must be charged the
        transport timeout, re-sent, and land."""
        sync = testbed.codeflow.sync
        addr = testbed.codeflow.manifest.scratchpad_addr
        ops = [(addr, b"\xaa" * 64), (addr + 64, b"\xbb" * 64)]
        state = {"drops": 1}

        def hook(op, target, data):
            if op == "write" and target == addr and state["drops"]:
                state["drops"] -= 1
                return _HookAction(drop=True)
            return None

        sync.fault_hook = hook
        before = testbed.sim.now
        try:
            testbed.sim.run_process(sync.write_batch(ops))
        finally:
            sync.fault_hook = None
        landed = testbed.sim.run_process(sync.read(addr, 128))
        assert landed == b"\xaa" * 64 + b"\xbb" * 64
        # The lost WR is indistinguishable from an unACKed write: it
        # costs a transport timeout before the re-send.
        assert testbed.sim.now - before >= params.RDMA_RETRY_TIMEOUT_US
        assert _counter(testbed, "rdx.retry.attempts", op="write_batch") == 1

    def test_all_dropped_exhausts_retry_budget(self, testbed):
        sync = testbed.codeflow.sync
        addr = testbed.codeflow.manifest.scratchpad_addr

        def hook(op, target, data):
            return _HookAction(drop=True) if op == "write" else None

        sync.fault_hook = hook
        try:
            with pytest.raises(TransientFault):
                testbed.sim.run_process(
                    sync.write_batch([(addr, b"\xcc" * 64)])
                )
        finally:
            sync.fault_hook = None
        assert _counter(testbed, "rdx.retry.exhausted", op="write_batch") == 1
        assert (
            _counter(testbed, "rdx.retry.attempts", op="write_batch")
            == sync.retry.max_attempts
        )

    def test_delta_rides_out_transient_fault(self, testbed, delta_on):
        """A flaky link during the delta's WR chain is absorbed by the
        retry policy: the deploy still commits as a delta."""
        _chain(testbed, 2)
        injector = FaultInjector(testbed.codeflow, seed=3)
        injector.arm(FaultKind.TRANSIENT)
        injector.attach()
        try:
            base = make_stress_program(INSNS, seed=7, name="hotpatch")
            report = _deploy(testbed, make_stress_variant(base, 2))
        finally:
            injector.detach()
            injector.disarm()
        assert report.mode == "delta"
        execution, _ = testbed.sandbox.run_hook("ingress", bytes(range(256)))
        assert execution is not None


class TestProvenance:
    def test_journal_commit_records_delta_base(self, testbed, delta_on):
        report = _chain(testbed, 3)[-1]
        commits = [
            record
            for record in testbed.control.journal.records
            if record.rec == REC_COMMIT and "deploy" in record.detail
        ]
        assert len(commits) == 1
        deploy = commits[0].detail["deploy"]
        assert deploy["mode"] == "delta"
        assert deploy["base_version"] == report.delta_base_version
        assert deploy["chunks"] == report.delta_chunks
        assert deploy["bytes_moved"] == report.bytes_moved

    def test_bytes_written_metric_counts_moved_bytes(self, testbed, delta_on):
        r1, r2, r3 = _chain(testbed, 3)
        written = _counter(testbed, "rdx.deploy.bytes_written")
        assert written == r1.bytes_moved + r2.bytes_moved + r3.bytes_moved
        assert r3.bytes_moved < r2.bytes_moved


class TestFaultCampaignDelta:
    def test_campaign_hotpatch_rounds_ship_deltas(self, delta_on):
        """The §4 invariants hold with every steady-state round on the
        delta path -- and deltas actually engage under the schedule."""
        result = run_fault_campaign(
            n_hosts=3, rounds=6, seed=0, hotpatch=True
        )
        assert result.stranded == 0
        assert result.delta_deploys > 0
        assert result.committed + result.aborts == result.rounds_run

    def test_campaign_hotpatch_full_arm(self):
        result = run_fault_campaign(
            n_hosts=2, rounds=4, seed=1, hotpatch=True
        )
        assert result.stranded == 0
        assert result.delta_deploys == 0
