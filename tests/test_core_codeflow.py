"""CodeFlow lifecycle tests: deploy, detach, flip, XState (§3.1-§3.4)."""

import pytest

from repro.errors import DeployError, SecurityError, XStateError
from repro.ebpf.interpreter import Interpreter
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.stress import make_stress_program
from repro.core.xstate import XStateSpec
from repro.exp.harness import make_testbed


def inject(testbed, program, hook="ingress", **kwargs):
    return testbed.sim.run_process(
        testbed.control.inject(testbed.codeflow, program, hook, **kwargs)
    )


class TestDeploy:
    def test_deploy_and_execute(self, testbed):
        program = make_stress_program(200, seed=4)
        report = inject(testbed, program)
        assert report.total_us > 0
        ctx = bytes(range(256))
        result, _ = testbed.sandbox.run_hook("ingress", ctx)
        assert result.r0 == Interpreter().run(program.insns, ctx).r0

    def test_no_target_cpu_used(self, testbed):
        before = testbed.host.cpu.busy_us
        inject(testbed, make_stress_program(1300, seed=4))
        testbed.sim.run()
        assert testbed.host.cpu.busy_us == before

    def test_compile_cache_hit_on_redeploy(self, testbed):
        program = make_stress_program(200, seed=4)
        inject(testbed, program)
        validations = testbed.control.validations_run
        inject(testbed, program)
        assert testbed.control.validations_run == validations
        assert testbed.control.cache_hits >= 1

    def test_replace_updates_hook(self, testbed):
        v1 = make_stress_program(100, seed=1, name="ext")
        v2 = make_stress_program(100, seed=2, name="ext")
        inject(testbed, v1)
        inject(testbed, v2)
        ctx = bytes(range(256))
        result, _ = testbed.sandbox.run_hook("ingress", ctx)
        assert result.r0 == Interpreter().run(v2.insns, ctx).r0

    def test_history_retained_for_rollback(self, testbed):
        v1 = make_stress_program(100, seed=1, name="ext")
        v2 = make_stress_program(100, seed=2, name="ext")
        inject(testbed, v1)
        record_v1_addr = testbed.codeflow.deployed["ext"].code_addr
        inject(testbed, v2)
        record = testbed.codeflow.deployed["ext"]
        assert record.history == [record_v1_addr]
        assert record.version == 2

    def test_retain_history_false_bounds_pages(self, testbed):
        program = make_stress_program(100, seed=1, name="ext")
        inject(testbed, program)
        extent = testbed.codeflow.code_allocator.bytes_live
        for _ in range(5):
            inject(testbed, program, retain_history=False)
        # The superseded extent stays resident as the delta baseline
        # and one generation-old extent awaits its deferred free (it
        # may still be under in-flight execs until this deploy's commit
        # became visible) -- but the footprint is bounded: live +
        # baseline + one pending free, never growing with deploy count.
        steady = testbed.codeflow.code_allocator.bytes_live
        assert steady <= 3 * extent
        inject(testbed, program, retain_history=False)
        assert testbed.codeflow.code_allocator.bytes_live == steady

    def test_unknown_hook_rejected(self, testbed):
        with pytest.raises(DeployError, match="no hook"):
            inject(testbed, make_stress_program(100, seed=1), hook="ghost")

    def test_unlinked_deploy_rejected(self, testbed):
        program = make_stress_program(100, seed=1, with_map=True)
        template = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")

        def flow():
            entry = yield from testbed.control.prepare(program, maps=[template])
            yield from testbed.codeflow.deploy_prog(program, entry.binary, "ingress")

        process = testbed.sim.spawn(flow())
        testbed.sim.run()
        with pytest.raises(DeployError, match="unresolved"):
            _ = process.value

    def test_detach(self, testbed):
        program = make_stress_program(100, seed=1)
        inject(testbed, program)
        testbed.sim.run_process(testbed.codeflow.detach(program.name))
        result, _ = testbed.sandbox.run_hook("ingress", bytes(256))
        assert result is None
        assert program.name not in testbed.codeflow.deployed

    def test_detach_unknown(self, testbed):
        def flow():
            yield from testbed.codeflow.detach("ghost")

        process = testbed.sim.spawn(flow())
        testbed.sim.run()
        with pytest.raises(DeployError):
            _ = process.value

    def test_deploy_report_phases(self, testbed):
        report = inject(testbed, make_stress_program(1300, seed=9))
        phases = report.phases()
        assert set(phases) == {"dispatch", "link", "write", "commit", "cc"}
        assert all(v >= 0 for v in phases.values())
        # RDX's injection path has no verify/JIT phase at all (Fig 4b).
        assert "verify" not in phases


class TestXState:
    SPEC = XStateSpec("kv", MapType.HASH, key_size=4, value_size=8, max_entries=8)

    def deploy_xstate(self, testbed, spec=None, initial=None):
        return testbed.sim.run_process(
            testbed.codeflow.deploy_xstate(spec or self.SPEC, initial=initial)
        )

    def test_deploy_writes_meta_entry(self, testbed):
        handle = self.deploy_xstate(testbed)
        meta_addr = testbed.codeflow.scratchpad.meta_entry_addr(handle.meta_index)
        from repro.mem.layout import unpack_qword

        stored = unpack_qword(testbed.host.memory.read(meta_addr, 8))
        assert stored == handle.header_addr

    def test_header_self_describes(self, testbed):
        from repro.core.xstate import decode_xstate_header

        handle = self.deploy_xstate(testbed)
        header = testbed.host.memory.read(handle.header_addr, 16)
        decoded = decode_xstate_header(header)
        assert decoded.map_type is MapType.HASH
        assert decoded.key_size == 4
        assert decoded.value_size == 8
        assert decoded.max_entries == 8

    def test_initial_contents_deployed(self, testbed):
        initial = BpfMap(MapType.HASH, 4, 8, 8, name="kv")
        initial.update((1).to_bytes(4, "little"), (77).to_bytes(8, "little"))
        handle = self.deploy_xstate(testbed, initial=initial)

        def flow():
            value = yield from testbed.codeflow.xstate_lookup(
                handle, (1).to_bytes(4, "little")
            )
            return value

        value = testbed.sim.run_process(flow())
        assert int.from_bytes(value, "little") == 77

    def test_remote_update_and_lookup(self, testbed):
        handle = self.deploy_xstate(testbed)

        def flow():
            yield from testbed.codeflow.xstate_update(
                handle, (5).to_bytes(4, "little"), (99).to_bytes(8, "little")
            )
            value = yield from testbed.codeflow.xstate_lookup(
                handle, (5).to_bytes(4, "little")
            )
            return value

        value = testbed.sim.run_process(flow())
        assert int.from_bytes(value, "little") == 99

    def test_duplicate_name_rejected(self, testbed):
        self.deploy_xstate(testbed)
        with pytest.raises(XStateError, match="already deployed"):
            self.deploy_xstate(testbed)

    def test_destroy_frees_slot(self, testbed):
        handle = self.deploy_xstate(testbed)
        testbed.sim.run_process(testbed.codeflow.destroy_xstate(handle))
        assert testbed.codeflow.scratchpad.live_count == 0
        # Redeploy under the same name is now fine.
        self.deploy_xstate(testbed)

    def test_data_path_adopts_remote_xstate(self, testbed):
        """The §3.4 payoff: extension code uses a map the control
        plane deployed, without any agent wiring it up."""
        spec = XStateSpec("stress_map", MapType.ARRAY, 4, 8, 4)
        initial = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
        initial.update((0).to_bytes(4, "little"), (123456).to_bytes(8, "little"))
        self.deploy_xstate(testbed, spec=spec, initial=initial)
        program = make_stress_program(100, seed=1, with_map=True)
        inject(testbed, program)
        result, _ = testbed.sandbox.run_hook("ingress", bytes(256))
        template = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
        template.update((0).to_bytes(4, "little"), (123456).to_bytes(8, "little"))
        expected = Interpreter(maps=[template]).run(program.insns, bytes(256)).r0
        assert result.r0 == expected

    def test_bad_geometry_update(self, testbed):
        handle = self.deploy_xstate(testbed)

        def flow():
            yield from testbed.codeflow.xstate_update(handle, b"xx", b"yy")

        process = testbed.sim.spawn(flow())
        testbed.sim.run()
        with pytest.raises(XStateError, match="geometry"):
            _ = process.value

    def test_meta_xstate_avoids_strawman_waste(self, testbed):
        """§3.4: indirection allocates only what each XState needs."""
        small = XStateSpec("small", MapType.HASH, 4, 8, 4)
        self.deploy_xstate(testbed, spec=small)
        used = testbed.codeflow.scratchpad.bytes_live
        assert used == small.total_bytes()


class TestControlPlane:
    def test_create_codeflow_requires_registration(self, testbed):
        from repro.sandbox.sandbox import Sandbox

        rogue = Sandbox(testbed.host, name="rogue", hooks=("h",),
                        code_bytes=1 << 20, scratchpad_bytes=1 << 20)

        def flow():
            yield from testbed.control.create_codeflow(rogue)

        process = testbed.sim.spawn(flow())
        testbed.sim.run()
        with pytest.raises(DeployError, match="ctx_register|stubs"):
            _ = process.value

    def test_program_limit_enforced(self, testbed):
        from repro.core.security import SecurityPolicy

        testbed.control.policy = SecurityPolicy(max_insns=50)
        with pytest.raises(SecurityError, match="instruction limit"):
            inject(testbed, make_stress_program(100, seed=1))

    def test_arch_specific_compilation(self, testbed2):
        """One program, two architectures: both cached separately."""
        program = make_stress_program(100, seed=1)
        bed = testbed2
        bed.sandboxes[1].arch = "arm64"  # pretend node1 is ARM
        bed.codeflows[1].manifest.arch = "arm64"
        bed.sim.run_process(
            bed.control.inject(bed.codeflows[0], program, "ingress")
        )
        bed.sim.run_process(
            bed.control.inject(bed.codeflows[1], program, "ingress")
        )
        assert (program.tag(), "x86_64") in bed.control.registry
        assert (program.tag(), "arm64") in bed.control.registry
        result, _ = bed.sandboxes[1].run_hook("ingress", bytes(256))
        assert result is not None
