"""Map semantics + serialization tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import XStateError
from repro.ebpf.maps import BPF_ANY, BPF_EXIST, BPF_NOEXIST, BpfMap, MapType


def key(i: int) -> bytes:
    return i.to_bytes(4, "little")


def value(i: int) -> bytes:
    return i.to_bytes(8, "little")


class TestHashMap:
    def test_lookup_missing(self):
        assert BpfMap(MapType.HASH, 4, 8, 4).lookup(key(1)) is None

    def test_update_lookup(self):
        m = BpfMap(MapType.HASH, 4, 8, 4)
        assert m.update(key(1), value(10)) == 0
        assert m.lookup(key(1)) == value(10)

    def test_delete(self):
        m = BpfMap(MapType.HASH, 4, 8, 4)
        m.update(key(1), value(10))
        assert m.delete(key(1)) == 0
        assert m.lookup(key(1)) is None
        assert m.delete(key(1)) == -2  # ENOENT

    def test_noexist_flag(self):
        m = BpfMap(MapType.HASH, 4, 8, 4)
        assert m.update(key(1), value(1), BPF_NOEXIST) == 0
        assert m.update(key(1), value(2), BPF_NOEXIST) == -17  # EEXIST

    def test_exist_flag(self):
        m = BpfMap(MapType.HASH, 4, 8, 4)
        assert m.update(key(1), value(1), BPF_EXIST) == -2
        m.update(key(1), value(1))
        assert m.update(key(1), value(2), BPF_EXIST) == 0

    def test_capacity_limit(self):
        m = BpfMap(MapType.HASH, 4, 8, 2)
        m.update(key(1), value(1))
        m.update(key(2), value(2))
        assert m.update(key(3), value(3)) == -7  # E2BIG
        # Replacing an existing key is still fine.
        assert m.update(key(1), value(9)) == 0

    def test_bad_key_size(self):
        m = BpfMap(MapType.HASH, 4, 8, 2)
        with pytest.raises(XStateError):
            m.lookup(b"\x01")

    def test_bad_value_size(self):
        m = BpfMap(MapType.HASH, 4, 8, 2)
        with pytest.raises(XStateError):
            m.update(key(1), b"short")


class TestArrayMap:
    def test_preinitialized_zero(self):
        m = BpfMap(MapType.ARRAY, 4, 8, 4)
        assert m.lookup(key(0)) == bytes(8)
        assert len(m) == 4

    def test_index_bounds(self):
        m = BpfMap(MapType.ARRAY, 4, 8, 4)
        with pytest.raises(XStateError):
            m.lookup(key(4))

    def test_delete_rejected(self):
        m = BpfMap(MapType.ARRAY, 4, 8, 4)
        assert m.delete(key(0)) == -22  # EINVAL

    def test_requires_u32_keys(self):
        with pytest.raises(XStateError):
            BpfMap(MapType.ARRAY, 8, 8, 4)

    def test_percpu_values(self):
        m = BpfMap(MapType.PERCPU_ARRAY, 4, 8, 2, n_cpus=4)
        assert len(m.lookup(key(0))) == 32
        m.update(key(0), bytes(range(32)))
        assert m.lookup(key(0)) == bytes(range(32))


class TestGeometryValidation:
    def test_positive_sizes(self):
        with pytest.raises(XStateError):
            BpfMap(MapType.HASH, 0, 8, 4)
        with pytest.raises(XStateError):
            BpfMap(MapType.HASH, 4, 8, 0)


class TestSerialization:
    def test_image_size(self):
        m = BpfMap(MapType.HASH, 4, 8, 16)
        assert m.image_bytes() == (8 + 4 + 8) * 16
        assert len(m.serialize()) == m.image_bytes()

    def test_roundtrip(self):
        m = BpfMap(MapType.HASH, 4, 8, 8)
        for i in range(5):
            m.update(key(i), value(i * 100))
        rebuilt = BpfMap.deserialize(m.serialize(), MapType.HASH, 4, 8, 8)
        for i in range(5):
            assert rebuilt.lookup(key(i)) == value(i * 100)
        assert rebuilt.lookup(key(7)) is None

    def test_roundtrip_array(self):
        m = BpfMap(MapType.ARRAY, 4, 8, 4)
        m.update(key(2), value(42))
        rebuilt = BpfMap.deserialize(m.serialize(), MapType.ARRAY, 4, 8, 4)
        assert rebuilt.lookup(key(2)) == value(42)

    def test_bad_image_size(self):
        with pytest.raises(XStateError):
            BpfMap.deserialize(b"\x00" * 10, MapType.HASH, 4, 8, 8)

    @given(
        st.dictionaries(
            st.integers(0, 200),
            st.integers(0, (1 << 64) - 1),
            max_size=16,
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, entries):
        m = BpfMap(MapType.HASH, 4, 8, 32)
        for k, v in entries.items():
            m.update(key(k), value(v))
        rebuilt = BpfMap.deserialize(m.serialize(), MapType.HASH, 4, 8, 32)
        for k, v in entries.items():
            assert rebuilt.lookup(key(k)) == value(v)
        assert len(rebuilt) == len(entries)
