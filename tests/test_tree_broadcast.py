"""Tree-broadcast fault paths and the cross-shard commit (rack scale).

The happy path is covered by the scale bench; what these tests pin
down is the *failure* matrix of the relay fan-out:

* a broken relay path (dead link, crashed parent host) falls back to
  direct delivery from the control plane -- the target still gets its
  update, the fallback is counted;
* a failed relay's whole subtree falls back rather than being
  stranded;
* an abort rolls back every reached subtree, all-or-nothing;
* a relayed leg fenced by a successor epoch propagates
  :class:`~repro.errors.StaleEpochError` -- never downgraded to a
  fallback, never force-fed direct bytes, and the lowering phase
  leaves the successor's bubble alone;
* the cross-shard coordinator commits/aborts/degrades on the global
  tally, and a forfeited shard never strands its siblings.
"""

import pytest

from repro import params
from repro.core.broadcast import CodeFlowGroup
from repro.core.codeflow import CodeFlow
from repro.core.shard import ShardCoordinator, partition
from repro.ebpf.stress import make_stress_program
from repro.errors import (
    BroadcastAborted,
    ConsistencyError,
    DeployError,
    HostUnreachable,
)
from repro.exp.harness import make_testbed
from repro.exp.scale import sharded_testbed
from repro.mem.layout import pack_qword


@pytest.fixture
def tree_params():
    """Force the tree arm with degree 2, so 9 targets give depth > 2
    (roots 0-1; e.g. position 8 is relayed via 3, itself via 0)."""
    saved = (params.RDX_TREE_BROADCAST, params.RDX_TREE_DEGREE)
    params.RDX_TREE_BROADCAST = True
    params.RDX_TREE_DEGREE = 2
    yield
    params.RDX_TREE_BROADCAST, params.RDX_TREE_DEGREE = saved


@pytest.fixture
def bed(tree_params):
    return make_testbed(
        n_hosts=9, cores_per_host=2, hooks=("ingress",),
        with_agents=False, seed=3,
    )


def programs_for(bed, size=150):
    return [
        make_stress_program(size, seed=i + 1, name=f"tb{i}")
        for i in range(len(bed.codeflows))
    ]


def fallback_count(bed, reason):
    metric = bed.obs.registry.get(
        "rdx.broadcast.relay_fallback", target="_all", reason=reason
    )
    return metric.value if metric is not None else 0


class TestTreeFanout:
    def test_tree_deploys_everywhere(self, bed):
        progs = programs_for(bed)
        result = bed.sim.run_process(
            CodeFlowGroup(bed.codeflows).broadcast(progs, "ingress")
        )
        assert result.group_size == 9
        assert all(outcome.ok for outcome in result.outcomes)
        for sandbox in bed.sandboxes:
            out, _ = sandbox.run_hook("ingress", bytes(256))
            assert out is not None
        assert all(not sb.bubble_active() for sb in bed.sandboxes)

    def test_broken_relay_path_falls_back_to_direct(self, bed):
        """A dead relay link is a *path* problem, not a target problem:
        the shard still owes the target its update, delivered direct."""
        victim = bed.codeflows[-1]
        original = CodeFlowGroup._relay_deploy

        def broken(self, parent, codeflow, *args, **kwargs):
            if codeflow is victim:
                raise HostUnreachable(
                    f"{codeflow.sandbox.name}: relay link dead"
                )
            return original(self, parent, codeflow, *args, **kwargs)

        CodeFlowGroup._relay_deploy = broken
        try:
            result = bed.sim.run_process(
                CodeFlowGroup(bed.codeflows).broadcast(
                    programs_for(bed), "ingress"
                )
            )
        finally:
            CodeFlowGroup._relay_deploy = original
        assert all(outcome.ok for outcome in result.outcomes)
        assert fallback_count(bed, "HostUnreachable") == 1
        out, _ = victim.sandbox.run_hook("ingress", bytes(256))
        assert out is not None

    def test_failed_relay_subtree_falls_back_not_stranded(self, bed):
        """When a relay's own deploy fails, its children must not wait
        on a parent that will never forward: they fall back to direct
        delivery (reason ``parent-failed``) and still succeed."""
        root = bed.codeflows[0]  # tree position 0: children are 2 and 3
        original = CodeFlow.deploy_prog

        def failing(self, program, linked, hook_name, **kwargs):
            if self is root:
                raise DeployError("root deploy blew up")
            report = yield from original(
                self, program, linked, hook_name, **kwargs
            )
            return report

        CodeFlow.deploy_prog = failing
        try:
            result = bed.sim.run_process(
                CodeFlowGroup(bed.codeflows).broadcast(
                    programs_for(bed), "ingress", allow_partial=True
                )
            )
        finally:
            CodeFlow.deploy_prog = original
        assert result.degraded
        assert not result.outcomes[0].ok
        assert all(outcome.ok for outcome in result.outcomes[1:])
        # Exactly the failed root's two children fell back; their own
        # subtrees relayed through them as usual.
        assert fallback_count(bed, "parent-failed") == 2

    def test_abort_rolls_back_reached_subtrees(self, bed):
        """A torn image on one leaf aborts the round after most of the
        tree already deployed: every reached subtree must roll back
        (all-or-nothing) and every bubble must drop."""
        from repro.core.faults import FaultInjector, FaultKind

        progs = programs_for(bed)
        injector = FaultInjector(bed.codeflows[-1], seed=11)
        injector.arm(FaultKind.TORN_WRITE)
        injector.attach()
        try:
            process = bed.sim.spawn(
                CodeFlowGroup(bed.codeflows).broadcast(progs, "ingress")
            )
            bed.sim.run()
        finally:
            injector.detach()
        with pytest.raises(BroadcastAborted) as excinfo:
            _ = process.value
        assert isinstance(excinfo.value, ConsistencyError)
        # No target -- root, relay, or leaf -- keeps the new image.
        for codeflow, prog in zip(bed.codeflows, progs):
            assert prog.name not in codeflow.deployed
        assert all(not sb.bubble_active() for sb in bed.sandboxes)

    def test_stale_epoch_relayed_leg_fenced_not_fallback(self, bed):
        """A successor incarnation claims a target mid-broadcast: the
        relayed leg's fence read sees the newer epoch and the leg fails
        with StaleEpochError -- a deploy-semantics failure that must
        propagate, not trigger direct fallback (the control plane has
        no more right to those bytes than the relay did)."""
        progs = programs_for(bed)
        victim = bed.codeflows[-1]  # deep in the tree: a relayed leg
        original = CodeFlowGroup._relay_deploy

        def fencing(self, parent, codeflow, *args, **kwargs):
            if codeflow is victim:
                # Successor bumps the fencing word between the bubble
                # raise and the relayed deploy (write-through, so the
                # relay QP's 8-byte fence read observes it).
                codeflow.sandbox.host.cache.cpu_write(
                    codeflow.sandbox.epoch_addr,
                    pack_qword(codeflow.epoch + 1),
                )
            return original(self, parent, codeflow, *args, **kwargs)

        CodeFlowGroup._relay_deploy = fencing
        try:
            process = bed.sim.spawn(
                CodeFlowGroup(bed.codeflows).broadcast(progs, "ingress")
            )
            bed.sim.run()
        finally:
            CodeFlowGroup._relay_deploy = original
        with pytest.raises(BroadcastAborted) as excinfo:
            _ = process.value
        result = excinfo.value.result
        outcome = next(
            o for o in result.outcomes if o.target == victim.sandbox.name
        )
        assert outcome.error_kind == "StaleEpochError"
        # Fenced != fallback: no direct-delivery retry was counted.
        assert fallback_count(bed, "StaleEpochError") == 0
        # The abort rolled everyone else back and dropped their
        # bubbles; the fenced target's bubble belongs to the successor
        # now and the stale plane left it alone.
        for codeflow in bed.codeflows:
            if codeflow is not victim:
                assert not codeflow.sandbox.bubble_active()


class TestCrossShardCommit:
    def _programs(self, bed):
        return [
            make_stress_program(150, seed=i + 1, name=f"sh{i}")
            for i in range(len(bed.codeflows))
        ]

    def test_commit_when_every_shard_is_clean(self, tree_params):
        bed = sharded_testbed(8, shards=2, cores_per_host=2, seed=5)
        result = bed.sim.run_process(
            bed.sharded.broadcast(self._programs(bed), "ingress")
        )
        assert result.group_size == 8
        assert all(outcome.ok for outcome in result.outcomes)
        assert result.bubble_window_us > 0
        decisions = bed.obs.registry.counter(
            "rdx.shard.decisions", decision="commit"
        )
        assert decisions.value == 1

    def test_sibling_shard_failure_aborts_clean_shard(self, tree_params):
        """All-or-nothing spans shards: shard 0's clean legs roll back
        because a target in shard 1 failed."""
        bed = sharded_testbed(8, shards=2, cores_per_host=2, seed=5)
        progs = self._programs(bed)
        victim = bed.codeflows[-1]  # owned by shard 1
        original = CodeFlow.deploy_prog

        def failing(self, program, linked, hook_name, **kwargs):
            if self is victim:
                raise DeployError("shard1 target blew up")
            report = yield from original(
                self, program, linked, hook_name, **kwargs
            )
            return report

        CodeFlow.deploy_prog = failing
        try:
            process = bed.sim.spawn(
                bed.sharded.broadcast(progs, "ingress")
            )
            bed.sim.run()
        finally:
            CodeFlow.deploy_prog = original
        with pytest.raises(BroadcastAborted):
            _ = process.value
        for codeflow, prog in zip(bed.codeflows, progs):
            assert prog.name not in codeflow.deployed
        assert all(not sb.bubble_active() for sb in bed.sandboxes)
        abort = bed.obs.registry.counter(
            "rdx.shard.decisions", decision="abort"
        )
        assert abort.value == 1

    def test_quorum_degrades_on_the_global_tally(self, tree_params):
        bed = sharded_testbed(8, shards=2, cores_per_host=2, seed=5)
        progs = self._programs(bed)
        victim = bed.codeflows[-1]
        original = CodeFlow.deploy_prog

        def failing(self, program, linked, hook_name, **kwargs):
            if self is victim:
                raise DeployError("shard1 target blew up")
            report = yield from original(
                self, program, linked, hook_name, **kwargs
            )
            return report

        CodeFlow.deploy_prog = failing
        try:
            result = bed.sim.run_process(
                bed.sharded.broadcast(progs, "ingress", allow_partial=True)
            )
        finally:
            CodeFlow.deploy_prog = original
        assert result.degraded
        survivors = [o for o in result.outcomes if o.ok]
        assert len(survivors) == 7
        # Survivors on *both* shards kept the new logic.
        for codeflow, prog in zip(bed.codeflows, progs):
            if codeflow is not victim:
                assert prog.name in codeflow.deployed


class TestShardCoordinator:
    def test_forfeit_counts_as_all_failed(self, sim):
        coordinator = ShardCoordinator(sim, shards=["a", "b"])

        def voter():
            decision = yield from coordinator.vote(
                "a", ok=["t0", "t1"], failed=[]
            )
            return decision

        process = sim.spawn(voter())
        sim.run()
        assert process.is_alive  # blocked: shard b has not voted
        coordinator.forfeit("b")
        sim.run()
        assert process.value == "abort"

    def test_unknown_and_double_votes_rejected(self, sim):
        coordinator = ShardCoordinator(sim, shards=["a"])
        with pytest.raises(ConsistencyError):
            sim.run_process(coordinator.vote("ghost", ok=[], failed=[]))
        assert sim.run_process(
            coordinator.vote("a", ok=["t0"], failed=[])
        ) == "commit"
        with pytest.raises(ConsistencyError):
            sim.run_process(coordinator.vote("a", ok=["t0"], failed=[]))

    def test_partition_is_contiguous_and_never_empty(self):
        assert partition(list(range(10)), 3) == [
            [0, 1, 2, 3], [4, 5, 6], [7, 8, 9]
        ]
        assert partition([1, 2], 5) == [[1], [2]]
        with pytest.raises(ValueError):
            partition([1], 0)
