"""Unit + property tests for sparse DRAM and the region allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryError_
from repro.mem.memory import MemoryRegion, PhysicalMemory, RegionAllocator


class TestMemoryRegion:
    def test_contains(self):
        region = MemoryRegion(addr=100, size=50)
        assert region.contains(100)
        assert region.contains(149)
        assert region.contains(100, 50)
        assert not region.contains(99)
        assert not region.contains(149, 2)

    def test_overlaps(self):
        a = MemoryRegion(0, 10)
        assert a.overlaps(MemoryRegion(5, 10))
        assert not a.overlaps(MemoryRegion(10, 10))


class TestPhysicalMemory:
    def test_zero_initialized(self):
        mem = PhysicalMemory(4096)
        assert mem.read(mem.base, 64) == bytes(64)

    def test_write_read_roundtrip(self):
        mem = PhysicalMemory(4096)
        mem.write(mem.base + 10, b"hello world")
        assert mem.read(mem.base + 10, 11) == b"hello world"

    def test_cross_page_write(self):
        mem = PhysicalMemory(3 * PhysicalMemory.PAGE)
        data = bytes(range(256)) * 40  # 10240 bytes, spans 3+ pages
        mem.write(mem.base + 100, data)
        assert mem.read(mem.base + 100, len(data)) == data

    def test_sparse_residency(self):
        mem = PhysicalMemory(1 << 30)  # 1 GiB virtual
        assert mem.resident_pages == 0
        mem.write(mem.base + (500 << 20), b"x")
        assert mem.resident_pages == 1

    def test_bounds_low(self):
        mem = PhysicalMemory(4096)
        with pytest.raises(MemoryError_):
            mem.read(mem.base - 1, 1)

    def test_bounds_high(self):
        mem = PhysicalMemory(4096)
        with pytest.raises(MemoryError_):
            mem.write(mem.end - 1, b"ab")

    def test_negative_length(self):
        mem = PhysicalMemory(4096)
        with pytest.raises(MemoryError_):
            mem.read(mem.base, -1)

    def test_zero_length_read(self):
        mem = PhysicalMemory(4096)
        assert mem.read(mem.base, 0) == b""

    def test_fill_zero_drops_pages(self):
        mem = PhysicalMemory(8 * PhysicalMemory.PAGE)
        mem.write(mem.base, b"\xff" * (4 * PhysicalMemory.PAGE))
        before = mem.resident_pages
        mem.fill(mem.base, 4 * PhysicalMemory.PAGE, 0)
        assert mem.read(mem.base, 16) == bytes(16)
        assert mem.resident_pages < before

    def test_fill_nonzero(self):
        mem = PhysicalMemory(4096)
        mem.fill(mem.base + 8, 16, 0xAB)
        assert mem.read(mem.base + 8, 16) == b"\xab" * 16

    def test_write_epoch_increments(self):
        mem = PhysicalMemory(4096)
        epoch = mem.write_epoch
        mem.write(mem.base, b"x")
        assert mem.write_epoch == epoch + 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30_000),
                st.binary(min_size=1, max_size=400),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_matches_flat_model(self, writes):
        """Sparse memory behaves exactly like one big bytearray."""
        size = 32 << 10
        mem = PhysicalMemory(size, base=0)
        model = bytearray(size)
        for offset, data in writes:
            if offset + len(data) > size:
                continue
            mem.write(offset, data)
            model[offset : offset + len(data)] = data
        assert mem.read(0, size) == bytes(model)


class TestRegionAllocator:
    def test_alloc_returns_aligned(self):
        alloc = RegionAllocator(0x1000, 1 << 16)
        addr = alloc.alloc(100, align=64)
        assert addr % 64 == 0

    def test_alloc_disjoint(self):
        alloc = RegionAllocator(0, 1 << 16)
        regions = [(alloc.alloc(100), 100) for _ in range(20)]
        for i, (a, asize) in enumerate(regions):
            for b, bsize in regions[i + 1 :]:
                assert a + asize <= b or b + bsize <= a

    def test_free_and_reuse(self):
        alloc = RegionAllocator(0, 1024)
        first = alloc.alloc(512)
        with pytest.raises(MemoryError_):
            alloc.alloc(1024)
        alloc.free(first)
        assert alloc.alloc(1024) == 0

    def test_coalescing(self):
        alloc = RegionAllocator(0, 1024)
        a = alloc.alloc(256)
        b = alloc.alloc(256)
        c = alloc.alloc(256)
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)  # middle free must merge all three
        assert alloc.alloc(1024) == 0
        del c

    def test_double_free_rejected(self):
        alloc = RegionAllocator(0, 1024)
        addr = alloc.alloc(64)
        alloc.free(addr)
        with pytest.raises(MemoryError_):
            alloc.free(addr)

    def test_free_unknown_rejected(self):
        alloc = RegionAllocator(0, 1024)
        with pytest.raises(MemoryError_):
            alloc.free(12345)

    def test_out_of_space(self):
        alloc = RegionAllocator(0, 128)
        with pytest.raises(MemoryError_):
            alloc.alloc(256)

    def test_accounting(self):
        alloc = RegionAllocator(0, 1024)
        addr = alloc.alloc(100, align=1)
        assert alloc.bytes_live == 100
        assert alloc.bytes_free == 924
        assert alloc.live_count == 1
        assert alloc.size_of(addr) == 100
        alloc.free(addr)
        assert alloc.bytes_live == 0
        assert alloc.bytes_free == 1024

    def test_bad_alignment(self):
        alloc = RegionAllocator(0, 1024)
        with pytest.raises(ValueError):
            alloc.alloc(10, align=3)

    def test_bad_size(self):
        alloc = RegionAllocator(0, 1024)
        with pytest.raises(ValueError):
            alloc.alloc(0)

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 400)),
                st.tuples(st.just("free"), st.integers(0, 30)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_no_overlap_invariant(self, operations):
        """Live allocations never overlap; free bytes are conserved."""
        window = 8 << 10
        alloc = RegionAllocator(0, window)
        live: list[tuple[int, int]] = []
        for op, arg in operations:
            if op == "alloc":
                try:
                    addr = alloc.alloc(arg)
                except MemoryError_:
                    continue
                live.append((addr, arg))
            elif live:
                addr, _size = live.pop(arg % len(live))
                alloc.free(addr)
        live.sort()
        for (a, asize), (b, _bsize) in zip(live, live[1:]):
            assert a + asize <= b
        assert alloc.bytes_live == sum(size for _addr, size in live)
        assert alloc.bytes_free + alloc.bytes_live <= window
