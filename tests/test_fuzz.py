"""Schedule fuzzer: plans, perturbation hooks, minimization, corpus."""

import json

import pytest

from repro import params
from repro.fuzz import corpus as fuzz_corpus
from repro.fuzz import hooks
from repro.fuzz.engine import fuzz, run_plan
from repro.fuzz.minimize import minimize_decisions
from repro.fuzz.plan import DELAY_STEPS, Decision, SchedulePlan
from repro.fuzz.scenarios import GUARDED, KNOWN_BAD, SCENARIOS, get
from repro.hb import events as hb_events
from repro.hb.detect import RaceFinding
from repro.hb.events import HbEvent
from repro.net.fabric import Message
from repro.net.topology import Cluster
from repro.sim.core import Simulator
from repro.sim.rand import derive_rng, stable_seed


class TestSeeding:
    def test_stable_seed_deterministic(self):
        assert stable_seed(1, "rnic.service", 0) == stable_seed(
            1, "rnic.service", 0
        )

    def test_stable_seed_decorrelated(self):
        # Distinct sites, seeds, and hits all produce distinct streams.
        seeds = {
            stable_seed(s, site, hit)
            for s in range(4)
            for site in ("a", "b", "a.b")
            for hit in range(4)
        }
        assert len(seeds) == 4 * 3 * 4

    def test_stable_seed_no_concat_aliasing(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_derive_rng_reproducible(self):
        a = derive_rng(3, "mesh.workload")
        b = derive_rng(3, "mesh.workload")
        c = derive_rng(3, "mem.cache")
        run_a = [a.random() for _ in range(8)]
        assert run_a == [b.random() for _ in range(8)]
        assert run_a != [c.random() for _ in range(8)]


class TestSchedulePlan:
    def test_generate_mode_is_pure(self):
        # Same seed, same consult sequence -> identical tape; and the
        # choice at a site does not depend on what other sites chose.
        a = SchedulePlan(seed=11)
        b = SchedulePlan(seed=11)
        for plan in (a, b):
            for i in range(6):
                plan.choose(f"site{i % 3}", 5)
        assert a.decisions == b.decisions

    def test_generate_records_only_nonzero(self):
        plan = SchedulePlan(seed=2)
        choices = [plan.choose("s", 5) for _ in range(40)]
        assert any(choices), "40 draws from a 5-menu never nonzero?"
        assert len(plan.decisions) == sum(1 for c in choices if c)

    def test_frozen_defaults_to_unperturbed(self):
        plan = SchedulePlan(
            seed=0, decisions=[Decision("s", 2, 3)], frozen=True
        )
        assert [plan.choose("s", 5) for _ in range(4)] == [0, 0, 3, 0]
        assert plan.choose("other", 5) == 0

    def test_reset_regenerates_identically(self):
        plan = SchedulePlan(seed=9)
        first = [plan.choose("x", 4) for _ in range(10)]
        tape = list(plan.decisions)
        plan.reset()
        assert plan.decisions == []
        assert [plan.choose("x", 4) for _ in range(10)] == first
        assert plan.decisions == tape

    def test_json_round_trip(self):
        plan = SchedulePlan(seed=7, scenario="bubble-sweep")
        for i in range(12):
            plan.choose(f"site{i}", 5)
        loaded = SchedulePlan.loads(plan.dumps())
        assert loaded.seed == plan.seed
        assert loaded.scenario == plan.scenario
        assert loaded.decisions == plan.decisions

    def test_delay_steps_reserve_zero(self):
        assert DELAY_STEPS[0] == 0.0
        plan = SchedulePlan(seed=0, decisions=[], frozen=True)
        assert plan.delay_us("any", 100.0) == 0.0


class TestSerialization:
    def test_hb_event_round_trip(self):
        event = HbEvent(
            3, 12.5, "land",
            {"kind": "WRITE", "addr": 0x2000, "length": 64, "epoch": 2},
        )
        assert HbEvent.from_dict(
            json.loads(json.dumps(event.to_dict()))
        ) == event

    def test_race_finding_round_trip(self):
        finding = RaceFinding(
            kind="bubble-race",
            target="h0",
            range=(0x1000, 0x1008),
            first=HbEvent(1, 1.0, "land", {"kind": "WRITE", "addr": 0x1000}),
            second=HbEvent(2, 2.0, "land", {"kind": "WRITE", "addr": 0x1000}),
            missing_edge="serialize the owners",
        )
        restored = RaceFinding.from_dict(
            json.loads(json.dumps(finding.to_dict()))
        )
        assert restored == finding


class TestMinimizer:
    def test_needs_pair(self):
        decisions = [Decision(s, 0, 1) for s in "abcdef"]
        need = {("a", 0), ("d", 0)}

        def test_fn(subset):
            return need <= {(d.site, d.hit) for d in subset}

        result = minimize_decisions(decisions, test_fn)
        assert {(d.site, d.hit) for d in result} == need

    def test_structural_shrinks_to_empty(self):
        decisions = [Decision(s, 0, 1) for s in "abcd"]
        assert minimize_decisions(decisions, lambda subset: True) == []

    def test_budget_caps_runs(self):
        decisions = [Decision(f"s{i}", 0, 1) for i in range(64)]
        runs = 0

        def test_fn(subset):
            nonlocal runs
            runs += 1
            return Decision("s63", 0, 1) in subset

        minimize_decisions(decisions, test_fn, budget=10)
        assert runs <= 10


class TestEngine:
    def test_same_seed_identical_run(self):
        scenario = get("bubble-sweep")
        a = run_plan(scenario, SchedulePlan(seed=4, scenario=scenario.name))
        b = run_plan(scenario, SchedulePlan(seed=4, scenario=scenario.name))
        assert a.digest == b.digest
        assert a.decisions == b.decisions
        assert a.kinds == b.kinds

    def test_different_seeds_differ(self):
        scenario = get("bubble-sweep")
        digests = {
            run_plan(
                scenario, SchedulePlan(seed=s, scenario=scenario.name)
            ).digest
            for s in range(4)
        }
        assert len(digests) > 1

    def test_run_plan_restores_globals(self):
        saved_check, saved_fuzz = params.RDX_HB_CHECK, params.RDX_FUZZ
        run_plan(get("bubble-sweep"), SchedulePlan(seed=0))
        assert params.RDX_HB_CHECK == saved_check
        assert params.RDX_FUZZ == saved_fuzz
        # Teardown dropped the fuzzed simulator from the hb registry:
        # the autouse checker fixture must not re-flag its findings.
        assert hb_events.active_sims() == []

    def test_truncation_is_inconclusive_never_clean(self):
        scenario = get("bubble-sweep")
        result = run_plan(scenario, SchedulePlan(seed=0), max_events=4)
        assert result.truncated
        assert result.verdict == "inconclusive"

    def test_guarded_scenario_clean_under_perturbation(self):
        scenario = get("single-deploy")
        for i in range(2):
            result = run_plan(
                scenario,
                SchedulePlan(
                    seed=stable_seed(0, scenario.name, i),
                    scenario=scenario.name,
                ),
            )
            assert result.verdict == "clean", (
                result.verdict, result.kinds, result.failures
            )


class TestFuzzLoop:
    def test_rediscovers_known_bad_classes(self):
        # The acceptance bar: >= 3 of the 5 hb_schedules bug classes
        # rediscovered within a bounded budget.  (All 5 fall out; the
        # assert leaves slack so a retuned simulator does not flake.)
        rediscovered = 0
        for name in KNOWN_BAD:
            scenario = get(name)
            report = fuzz(scenario, iterations=4, seed=0)
            if scenario.expect in report.kinds_found:
                rediscovered += 1
        assert rediscovered >= 3, f"only {rediscovered}/5 classes rediscovered"

    def test_minimized_schedule_replays_from_json(self):
        # fenceless-writer is the genuinely schedule-dependent class:
        # its minimized tape is non-empty, and replaying it from
        # serialized JSON must re-trip the same detector class.
        scenario = get("fenceless-writer")
        report = fuzz(scenario, iterations=6, seed=0)
        failures = [f for f in report.failures if f.kind == scenario.expect]
        assert failures, report.verdicts
        failure = failures[0]
        assert failure.minimized_decisions >= 1
        assert failure.minimized_decisions <= failure.original_decisions
        entry = fuzz_corpus.CorpusEntry.from_failure(failure, workload_seed=0)
        round_tripped = fuzz_corpus.CorpusEntry.from_dict(
            json.loads(json.dumps(entry.to_dict()))
        )
        result, ok = fuzz_corpus.replay(round_tripped)
        assert ok
        assert scenario.expect in result.kinds

    def test_structural_race_minimizes_to_empty_tape(self):
        # bubble-race needs no special schedule: the minimal tape is
        # empty, which is the finding (any interleaving trips it).
        scenario = get("bubble-sweep")
        report = fuzz(scenario, iterations=1, seed=0)
        assert report.failures
        assert report.failures[0].minimized_decisions == 0

    def test_corpus_save_load_dir(self, tmp_path):
        scenario = get("bubble-sweep")
        report = fuzz(scenario, iterations=1, seed=0)
        entry = fuzz_corpus.CorpusEntry.from_failure(
            report.failures[0], workload_seed=0
        )
        path = fuzz_corpus.save(entry, str(tmp_path))
        assert path.endswith("bubble-sweep.bubble-race.json")
        entries = fuzz_corpus.load_dir(str(tmp_path))
        assert [e.filename for e in entries] == [entry.filename]
        result, ok = fuzz_corpus.replay(entries[0])
        assert ok and "bubble-race" in result.kinds

    def test_rejects_wrong_schema(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            fuzz_corpus.CorpusEntry.from_dict({"schema": "bogus"})


class TestHooks:
    def test_fabric_delay_site_consulted(self):
        # RDMA-heavy scenarios rarely exercise the fabric choice
        # point; pin it directly: a frozen tape entry stretches one
        # message's propagation.
        saved = params.RDX_FUZZ
        params.RDX_FUZZ = True
        try:
            sim = Simulator()
            plan = SchedulePlan(
                seed=0,
                decisions=[Decision("fabric.delay:node0", 0, 4)],
                frozen=True,
            )
            recorder = hooks.bind(sim, plan, max_events=1000)
            cluster = Cluster(sim, n_hosts=2, cores_per_host=1)
            fabric = cluster.fabric
            src, dst = cluster.hosts[0].name, cluster.hosts[1].name

            def ping():
                yield fabric.send(Message(src, dst, "ctl", 64))

            t0 = sim.now
            sim.run_process(ping())
            perturbed = sim.now - t0
            assert plan.consulted == 1
            sim2 = Simulator()
            plan2 = SchedulePlan(seed=0, decisions=[], frozen=True)
            hooks.bind(sim2, plan2, max_events=1000)
            cluster2 = Cluster(sim2, n_hosts=2, cores_per_host=1)

            def ping2():
                yield cluster2.fabric.send(Message(src, dst, "ctl", 64))

            t0 = sim2.now
            sim2.run_process(ping2())
            baseline = sim2.now - t0
            assert perturbed == pytest.approx(
                baseline + DELAY_STEPS[4] * params.RDX_FUZZ_NET_DELAY_US
            )
            recorder.clear()
        finally:
            params.RDX_FUZZ = saved

    def test_bind_refuses_existing_hub(self):
        from repro.obs import telemetry_of

        sim = Simulator()
        telemetry_of(sim)  # autovivify the default hub
        with pytest.raises(RuntimeError):
            hooks.bind(sim, SchedulePlan(seed=0), max_events=10)


class TestRegistry:
    def test_scenarios_partition(self):
        assert set(GUARDED) | set(KNOWN_BAD) == set(SCENARIOS)
        assert not set(GUARDED) & set(KNOWN_BAD)
        for name in KNOWN_BAD:
            assert SCENARIOS[name].expect
            assert SCENARIOS[name].schedule_class

    def test_known_bad_covers_hb_schedule_classes(self):
        # Each known-bad scenario names the hb_schedules class it
        # reconstructs; all five must reference real schedule names.
        import inspect

        from repro.exp import hb_schedules

        source = inspect.getsource(hb_schedules)
        known = {
            s.schedule_class for s in SCENARIOS.values() if s.known_bad
        }
        assert len(known) == 5
        for schedule_class in known:
            assert f'"{schedule_class}"' in source, schedule_class
