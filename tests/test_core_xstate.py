"""XState header codec + remote scratchpad allocator tests (§3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import params
from repro.core.xstate import (
    RemoteScratchpad,
    XStateSpec,
    decode_xstate_header,
    encode_xstate_header,
)
from repro.ebpf.maps import MapType
from repro.errors import XStateError


def spec(name="s", map_type=MapType.HASH, key=4, value=8, entries=16):
    return XStateSpec(name, map_type, key, value, entries)


class TestHeaderCodec:
    def test_roundtrip(self):
        header = encode_xstate_header(spec(), version=3)
        assert len(header) == params.XSTATE_HEADER_BYTES
        decoded = decode_xstate_header(header)
        assert decoded.map_type is MapType.HASH
        assert decoded.key_size == 4
        assert decoded.value_size == 8
        assert decoded.max_entries == 16
        assert decoded.version == 3

    def test_bad_magic_returns_none(self):
        header = bytearray(encode_xstate_header(spec()))
        header[0] = 0x00
        assert decode_xstate_header(bytes(header)) is None

    def test_bad_type_returns_none(self):
        header = bytearray(encode_xstate_header(spec()))
        header[1] = 0x7F
        assert decode_xstate_header(bytes(header)) is None

    def test_short_buffer_returns_none(self):
        assert decode_xstate_header(b"\xa5\x01") is None

    @given(
        st.sampled_from(list(MapType)),
        st.integers(1, 64),
        st.integers(1, 256),
        st.integers(1, 10_000),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, map_type, key, value, entries):
        s = XStateSpec("p", map_type, key, value, entries)
        decoded = decode_xstate_header(encode_xstate_header(s))
        assert (decoded.map_type, decoded.key_size, decoded.value_size,
                decoded.max_entries) == (map_type, key, value, entries)


class TestSpecSizing:
    def test_data_bytes(self):
        s = spec(key=4, value=8, entries=10)
        assert s.slot_bytes() == 8 + 4 + 8
        assert s.data_bytes() == 20 * 10
        assert s.total_bytes() == s.data_bytes() + params.XSTATE_HEADER_BYTES


class TestRemoteScratchpad:
    def make(self, size=1 << 20, meta_slots=16):
        return RemoteScratchpad(0x10000, size, meta_slots=meta_slots)

    def test_allocate_assigns_meta_and_chunk(self):
        pad = self.make()
        handle = pad.allocate(spec())
        assert handle.meta_index == 0
        assert handle.data_addr == handle.header_addr + params.XSTATE_HEADER_BYTES
        assert pad.by_name("s") is handle
        assert pad.live_count == 1

    def test_heap_starts_after_meta_index(self):
        pad = self.make(meta_slots=16)
        handle = pad.allocate(spec())
        assert handle.header_addr >= 0x10000 + 16 * 8

    def test_duplicate_name(self):
        pad = self.make()
        pad.allocate(spec())
        with pytest.raises(XStateError, match="already"):
            pad.allocate(spec())

    def test_meta_slots_exhaust(self):
        pad = self.make(meta_slots=2)
        pad.allocate(spec(name="a"))
        pad.allocate(spec(name="b"))
        with pytest.raises(XStateError, match="full"):
            pad.allocate(spec(name="c"))

    def test_release_recycles(self):
        pad = self.make(meta_slots=1)
        handle = pad.allocate(spec(name="a"))
        pad.release(handle)
        assert pad.live_count == 0
        pad.allocate(spec(name="a"))  # both slot and name reusable

    def test_release_unknown(self):
        pad = self.make()
        handle = pad.allocate(spec())
        pad.release(handle)
        with pytest.raises(XStateError):
            pad.release(handle)

    def test_too_small_scratchpad(self):
        with pytest.raises(XStateError):
            RemoteScratchpad(0, 64, meta_slots=4096)

    @given(
        st.lists(
            st.tuples(
                st.integers(1, 16),  # key size
                st.integers(1, 64),  # value size
                st.integers(1, 64),  # entries
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_allocations_never_overlap(self, geometries):
        pad = self.make(size=4 << 20, meta_slots=64)
        handles = []
        for index, (key, value, entries) in enumerate(geometries):
            try:
                handles.append(
                    pad.allocate(spec(name=f"x{index}", key=key, value=value,
                                      entries=entries))
                )
            except XStateError:
                break
        spans = sorted(
            (h.header_addr, h.header_addr + h.spec.total_bytes()) for h in handles
        )
        for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start
        meta_indices = [h.meta_index for h in handles]
        assert len(set(meta_indices)) == len(meta_indices)
