"""Tests for the remote synchronization primitives (§3.5)."""

import pytest

from repro.errors import RdmaError
from repro.ebpf.jit import jit_compile
from repro.ebpf.asm import Asm
from repro.ebpf import opcodes as op
from repro.ebpf.program import BpfProgram
from repro.mem.layout import pack_qword, unpack_qword


class TestRawOps:
    def test_write_and_read(self, testbed):
        addr = testbed.codeflow.manifest.scratchpad_addr

        def flow():
            yield from testbed.codeflow.sync.write(addr, b"sync-bytes")
            data = yield from testbed.codeflow.sync.read(addr, 10)
            return data

        assert testbed.sim.run_process(flow()) == b"sync-bytes"

    def test_cas(self, testbed):
        addr = testbed.sandbox.lock_addr

        def flow():
            prior1 = yield from testbed.codeflow.sync.cas(addr, 0, 5)
            prior2 = yield from testbed.codeflow.sync.cas(addr, 0, 9)
            return prior1, prior2

        prior1, prior2 = testbed.sim.run_process(flow())
        assert prior1 == 0
        assert prior2 == 5  # second CAS failed

    def test_fetch_add(self, testbed):
        # The epoch word now carries the control plane's fencing token,
        # so borrow the (still-zero) bubble word as the scratch qword.
        addr = testbed.sandbox.bubble_addr

        def flow():
            yield from testbed.codeflow.sync.fetch_add(addr, 3)
            prior = yield from testbed.codeflow.sync.fetch_add(addr, 3)
            return prior

        assert testbed.sim.run_process(flow()) == 3


class TestRdxTx:
    def test_atomic_visibility_flip(self, testbed):
        """A polling reader never decodes a partial image through the
        committed pointer -- §3.5 issue (1)."""
        sandbox = testbed.sandbox
        sim = testbed.sim
        program = BpfProgram(Asm().mov_imm(op.R0, 7).exit_().build(), name="tx")
        binary = jit_compile(program, arch=sandbox.arch)
        linked = binary.link(lambda r: sandbox.got.address_of(r.symbol))

        code_addr = testbed.codeflow.code_allocator.alloc(len(linked.code), 64)
        hook_addr = sandbox.hook_table.slot_addr("ingress")

        observations = []

        def poller():
            for _ in range(400):
                pointer = unpack_qword(sandbox.host.memory.read(hook_addr, 8))
                if pointer:
                    # Pointer visible => image must decode completely.
                    result, _ = sandbox.run_hook("ingress", b"\x00" * 64)
                    observations.append(result.r0)
                yield sim.timeout(0.25)

        def injector():
            yield sim.timeout(5)
            yield from testbed.codeflow.sync.tx(
                obj_addr=code_addr,
                obj_bytes=linked.code,
                qword_addr=hook_addr,
                new_qword=code_addr,
                expect=0,
            )
            yield from testbed.codeflow.sync.cc_event(hook_addr, 8)

        sim.spawn(poller(), name="poller")
        sim.run_process(injector())
        sim.run()
        assert observations, "pointer never became visible"
        assert set(observations) == {7}
        assert not sandbox.crashed

    def test_tx_cas_abort_on_mismatch(self, testbed):
        addr = testbed.codeflow.manifest.scratchpad_addr
        qword = testbed.sandbox.bubble_addr

        def flow():
            prior = yield from testbed.codeflow.sync.tx(
                obj_addr=addr, obj_bytes=b"x", qword_addr=qword,
                new_qword=0x42, expect=999,
            )
            return prior

        prior = testbed.sim.run_process(flow())
        assert prior == 0  # observed value returned
        # And the swap did NOT happen.
        assert unpack_qword(testbed.host.memory.read(qword, 8)) == 0

    def test_tx_counts(self, testbed):
        addr = testbed.codeflow.manifest.scratchpad_addr

        def flow():
            yield from testbed.codeflow.sync.tx(
                obj_addr=addr, obj_bytes=b"y", qword_addr=testbed.sandbox.bubble_addr,
                new_qword=1, expect=0,
            )

        testbed.sim.run_process(flow())
        assert testbed.codeflow.sync.tx_count == 1


class TestCcEvent:
    def test_flush_exposes_dma_bytes(self, testbed):
        sandbox = testbed.sandbox
        addr = testbed.codeflow.manifest.scratchpad_addr
        # CPU caches the line with old bytes.
        sandbox.host.cache.cpu_read(addr, 8)

        def flow():
            yield from testbed.codeflow.sync.write(addr, b"NEWBYTES")
            stale = sandbox.host.cache.cpu_read(addr, 8)
            yield from testbed.codeflow.sync.cc_event(addr, 8)
            fresh = sandbox.host.cache.cpu_read(addr, 8)
            return stale, fresh

        stale, fresh = testbed.sim.run_process(flow())
        assert stale == bytes(8)
        assert fresh == b"NEWBYTES"

    def test_cc_event_is_microseconds(self, testbed):
        addr = testbed.codeflow.manifest.scratchpad_addr

        def flow():
            start = testbed.sim.now
            yield from testbed.codeflow.sync.cc_event(addr, 64)
            return testbed.sim.now - start

        assert testbed.sim.run_process(flow()) < 5.0

    def test_no_target_cpu_charged(self, testbed):
        addr = testbed.codeflow.manifest.scratchpad_addr
        before = testbed.host.cpu.busy_us

        def flow():
            yield from testbed.codeflow.sync.write(addr, b"z" * 4096)
            yield from testbed.codeflow.sync.cc_event(addr, 4096)

        testbed.sim.run_process(flow())
        testbed.sim.run()
        assert testbed.host.cpu.busy_us == before


class TestMutualExclusion:
    def test_lock_unlock(self, testbed):
        def flow():
            attempts = yield from testbed.codeflow.sync.lock(0xAA)
            yield from testbed.codeflow.sync.unlock(0xAA)
            return attempts

        assert testbed.sim.run_process(flow()) == 1

    def test_lock_blocks_cpu_side(self, testbed):
        def flow():
            yield from testbed.codeflow.sync.lock(0xAA)

        testbed.sim.run_process(flow())
        assert not testbed.sandbox.cpu_try_lock(owner=2)

    def test_cpu_lock_blocks_rnic_side(self, testbed):
        assert testbed.sandbox.cpu_try_lock(owner=3)

        def flow():
            attempts = yield from testbed.codeflow.sync.lock(0xAA, max_attempts=3)
            return attempts

        process = testbed.sim.spawn(flow())
        testbed.sim.run()
        with pytest.raises(RdmaError, match="not acquired"):
            _ = process.value

    def test_lock_retries_until_released(self, testbed):
        sandbox = testbed.sandbox
        assert sandbox.cpu_try_lock(owner=3)

        def releaser():
            yield testbed.sim.timeout(20)
            sandbox.cpu_unlock(owner=3)

        def flow():
            attempts = yield from testbed.codeflow.sync.lock(0xAA, max_attempts=50)
            return attempts

        testbed.sim.spawn(releaser())
        attempts = testbed.sim.run_process(flow())
        assert attempts > 1

    def test_two_contenders_both_acquire(self, testbed):
        """Regression: contenders back off with seeded jitter, so two
        of them never retry in lockstep until exhaustion -- both must
        eventually hold the lock."""
        sync = testbed.codeflow.sync
        acquisitions = []

        def contender(token):
            attempts = yield from sync.lock(token, max_attempts=64)
            acquisitions.append((token, attempts))
            yield testbed.sim.timeout(10)
            yield from sync.unlock(token)

        testbed.sim.spawn(contender(0xAA))
        testbed.sim.spawn(contender(0xBB))
        testbed.sim.run()
        assert {token for token, _ in acquisitions} == {0xAA, 0xBB}
        # The loser retried (contended) but did not exhaust its budget.
        assert max(attempts for _, attempts in acquisitions) > 1

    def test_contender_backoffs_are_decorrelated(self):
        """Two tokens seed different jitter streams: their backoff
        schedules diverge, which is what breaks lockstep retries."""
        import random

        from repro.core.retry import RetryPolicy

        policy = RetryPolicy(
            max_attempts=8, backoff_base_us=2.0, backoff_max_us=32.0,
            jitter_frac=0.5,
        )
        rng_a = random.Random(0xAA * 0x9E3779B1)
        rng_b = random.Random(0xBB * 0x9E3779B1)
        a = [policy.backoff_us(i, rng_a) for i in range(1, 6)]
        b = [policy.backoff_us(i, rng_b) for i in range(1, 6)]
        assert a != b
        # And the schedule is reproducible for a given token.
        rng_a2 = random.Random(0xAA * 0x9E3779B1)
        again = [policy.backoff_us(i, rng_a2) for i in range(1, 6)]
        assert a == again

    def test_unlock_by_wrong_owner(self, testbed):
        def flow():
            yield from testbed.codeflow.sync.lock(0xAA)
            yield from testbed.codeflow.sync.unlock(0xBB)

        process = testbed.sim.spawn(flow())
        testbed.sim.run()
        with pytest.raises(RdmaError, match="held by"):
            _ = process.value
