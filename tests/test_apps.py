"""Tests for the workload applications: Redis-like KV, serverless pool."""

import pytest

from repro.apps.rediskv import RedisLikeServer
from repro.apps.serverless import WarmPool
from repro.agent.daemon import NodeAgent
from repro.core.api import bootstrap_sandbox
from repro.core.control_plane import RdxControlPlane
from repro.core.migration import MigrationManager
from repro.errors import WorkloadError
from repro.exp.harness import make_testbed
from repro.mesh.proxy import SidecarProxy
from repro.net.fabric import Fabric
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_header_filter


class TestRedis:
    @pytest.fixture
    def server(self):
        sim = Simulator()
        host = Host(sim, "redis", cores=2, dram_bytes=1 << 20)
        return sim, host, RedisLikeServer(host, n_workers=2)

    def test_functional_set_get(self, server):
        _sim, _host, redis = server
        redis.set_(1, 100)
        assert redis.get(1) == 100
        assert redis.get(2) is None
        assert len(redis) == 1

    def test_keyspace_wraps(self, server):
        _sim, _host, redis = server
        redis.set_(redis.keyspace + 1, 5)
        assert redis.get(1) == 5

    def test_throughput_tracks_capacity(self, server):
        sim, host, redis = server
        result = sim.run_process(redis.run_load(10_000))
        # 2 workers on 2 cores at ~2.2us/op -> ~0.9 Mops/s.
        expected = redis.n_workers / redis.op_service_us * 1e6
        assert result.throughput_ops_s == pytest.approx(expected, rel=0.1)

    def test_contention_reduces_throughput(self, server):
        sim, host, redis = server

        def burner():
            while sim.now < 10_000:
                yield from host.cpu.run(100, priority=-1)
                yield sim.timeout(1)

        sim.spawn(burner())
        contended = sim.run_process(redis.run_load(10_000))
        fresh_sim = Simulator()
        fresh_host = Host(fresh_sim, "redis", cores=2, dram_bytes=1 << 20)
        clean = fresh_sim.run_process(
            RedisLikeServer(fresh_host, n_workers=2).run_load(10_000)
        )
        assert contended.throughput_ops_s < clean.throughput_ops_s

    def test_hit_rate(self, server):
        sim, _host, redis = server
        result = sim.run_process(redis.run_load(20_000, write_ratio=0.5))
        assert 0 <= result.hit_rate <= 1

    def test_needs_workers(self):
        sim = Simulator()
        host = Host(sim, "x", dram_bytes=1 << 20)
        with pytest.raises(WorkloadError):
            RedisLikeServer(host, n_workers=0)


class TestWarmPool:
    def _mesh_rig(self):
        sim = Simulator()
        fabric = Fabric(sim)
        src_host = Host(sim, "src", cores=4, dram_bytes=32 * 2**20)
        dst_host = Host(sim, "dst", cores=4, dram_bytes=32 * 2**20)
        control_host = Host(sim, "ctl", cores=8, dram_bytes=32 * 2**20)
        for host in (src_host, dst_host, control_host):
            fabric.attach(host)
        src = SidecarProxy(src_host, name="src.sc")
        dst = SidecarProxy(dst_host, name="dst.sc")
        return sim, src, dst, control_host

    def test_agent_scale_out_dominated_by_filter_reload(self):
        sim, src, dst, _ctl = self._mesh_rig()
        agent = NodeAgent(dst.host, dst.sandbox)
        pool = WarmPool(sim, [dst])
        replica = pool.take_replica()
        filters = [make_header_filter(version=1, padding=2_000)]
        report = sim.run_process(
            pool.scale_out_agent(replica, agent, filters, ["filter0"])
        )
        assert report.mode == "agent"
        assert report.filter_share > 0.5  # the §4 bottleneck
        assert pool.available == 0

    def test_rdx_scale_out_filter_cost_negligible(self):
        sim, src, dst, control_host = self._mesh_rig()
        bootstrap_sandbox(src.sandbox)
        bootstrap_sandbox(dst.sandbox)
        control = RdxControlPlane(control_host)
        src_flow = sim.run_process(control.create_codeflow(src.sandbox))
        dst_flow = sim.run_process(control.create_codeflow(dst.sandbox))
        module = make_header_filter(version=1, padding=2_000)
        sim.run_process(control.inject(src_flow, module, "filter0"))

        pool = WarmPool(sim, [dst])
        replica = pool.take_replica()
        migration = MigrationManager(control)
        report = sim.run_process(
            pool.scale_out_rdx(src_flow, dst_flow, migration, [module.name])
        )
        assert report.mode == "rdx"
        assert report.filter_share < 0.5
        # And the filter actually works on the replica.
        from repro.wasm.runtime import RequestContext

        ctx = RequestContext()
        verdict, _ = dst.process_request(ctx)
        assert dst.versions_seen(ctx) == 1

    def test_rdx_beats_agent_scale_out(self):
        # Agent path.
        sim_a, _src, dst_a, _ = self._mesh_rig()
        agent = NodeAgent(dst_a.host, dst_a.sandbox)
        pool_a = WarmPool(sim_a, [dst_a])
        agent_report = sim_a.run_process(
            pool_a.scale_out_agent(
                pool_a.take_replica(), agent,
                [make_header_filter(version=1, padding=2_000)], ["filter0"],
            )
        )
        # RDX path.
        sim_b, src_b, dst_b, ctl_b = self._mesh_rig()
        bootstrap_sandbox(src_b.sandbox)
        bootstrap_sandbox(dst_b.sandbox)
        control = RdxControlPlane(ctl_b)
        src_flow = sim_b.run_process(control.create_codeflow(src_b.sandbox))
        dst_flow = sim_b.run_process(control.create_codeflow(dst_b.sandbox))
        module = make_header_filter(version=1, padding=2_000)
        sim_b.run_process(control.inject(src_flow, module, "filter0"))
        pool_b = WarmPool(sim_b, [dst_b])
        rdx_report = sim_b.run_process(
            pool_b.scale_out_rdx(
                src_flow, dst_flow, MigrationManager(control), [module.name]
            )
        )
        assert rdx_report.total_us < agent_report.total_us / 5

    def test_pool_exhaustion(self):
        sim, _src, dst, _ = self._mesh_rig()
        pool = WarmPool(sim, [dst])
        pool.take_replica()
        with pytest.raises(WorkloadError):
            pool.take_replica()
