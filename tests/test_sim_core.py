"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5)
            return sim.now

        assert sim.run_process(proc()) == 5.0

    def test_timeout_value_passthrough(self):
        sim = Simulator()

        def proc():
            value = yield sim.timeout(1, value="hello")
            return value

        assert sim.run_process(proc()) == "hello"

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_zero_timeout_fires_same_instant(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0)
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        sim.spawn(iter_timeouts(sim, [10, 10, 10]))
        sim.run(until=15)
        assert sim.now == 15

    def test_run_until_past_is_error(self):
        sim = Simulator()
        sim.run(until=10)
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_run_until_with_no_events_advances_clock(self):
        sim = Simulator()
        sim.run(until=42)
        assert sim.now == 42


def iter_timeouts(sim, delays):
    for delay in delays:
        yield sim.timeout(delay)


class TestEventOrdering:
    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        order = []

        def maker(tag):
            yield sim.timeout(5)
            order.append(tag)

        for tag in range(10):
            sim.spawn(maker(tag))
        sim.run()
        assert order == list(range(10))

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
    def test_events_process_in_time_order(self, delays):
        sim = Simulator()
        seen = []

        def waiter(delay):
            yield sim.timeout(delay)
            seen.append(sim.now)

        for delay in delays:
            sim.spawn(waiter(delay))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestEvents:
    def test_manual_succeed(self, sim):
        event = sim.event()

        def proc():
            value = yield event
            return value

        process = sim.spawn(proc())
        event.succeed(99)
        sim.run()
        assert process.value == 99

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_propagates_into_waiter(self, sim):
        event = sim.event()

        def proc():
            yield event

        process = sim.spawn(proc())
        event.fail(RuntimeError("boom"))
        sim.run()
        with pytest.raises(RuntimeError, match="boom"):
            _ = process.value

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_is_error(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_yield_already_processed_event(self, sim):
        event = sim.event()
        event.succeed("early")
        sim.run()

        def proc():
            value = yield event
            return value

        assert sim.run_process(proc()) == "early"

    def test_yield_non_event_fails_process(self, sim):
        def proc():
            yield "not an event"

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(SimulationError):
            _ = process.value

    def test_bare_number_yield_is_a_timeout(self, sim):
        """``yield 42`` sleeps 42us via the process's reusable tick --
        the allocation-free shorthand the CPU slice loop uses."""

        def proc():
            yield 42
            yield 0.5
            return sim.now

        assert sim.run_process(proc()) == 42.5

    def test_negative_bare_number_yield_fails(self, sim):
        def proc():
            yield -1.0

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(SimulationError, match="negative"):
            _ = process.value


class TestProcesses:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_nested_yield_from(self, sim):
        def inner():
            yield sim.timeout(3)
            return 7

        def outer():
            value = yield from inner()
            return value * 2

        assert sim.run_process(outer()) == 14

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(10)
            return "child-result"

        def parent():
            result = yield sim.spawn(child())
            return result

        assert sim.run_process(parent()) == "child-result"

    def test_exception_propagates_to_parent(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("child died")

        def parent():
            yield sim.spawn(child())

        process = sim.spawn(parent())
        sim.run()
        with pytest.raises(ValueError, match="child died"):
            _ = process.value

    def test_failed_processes_recorded(self, sim):
        def doomed():
            yield sim.timeout(1)
            raise RuntimeError("unobserved")

        sim.spawn(doomed(), name="doomed")
        sim.run()
        assert any(name == "doomed" for name, _exc in sim.failed_processes)

    def test_interrupt_raises_in_process(self, sim):
        caught = []

        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                caught.append((intr.cause, sim.now))

        process = sim.spawn(victim())
        def killer():
            yield sim.timeout(5)
            process.interrupt("stop now")

        sim.spawn(killer())
        sim.run()
        assert caught == [("stop now", 5.0)]
        assert not process.is_alive

    def test_interrupt_completed_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1)

        process = sim.spawn(quick())
        sim.run()
        process.interrupt("too late")  # must not raise
        sim.run()

    def test_interrupts_not_counted_as_failures(self, sim):
        def victim():
            yield sim.timeout(100)

        process = sim.spawn(victim(), name="victim")
        def killer():
            yield sim.timeout(1)
            process.interrupt()

        sim.spawn(killer())
        sim.run()
        assert not sim.failed_processes

    def test_run_process_detects_deadlock(self, sim):
        never = sim.event()

        def stuck():
            yield never

        with pytest.raises(SimulationError, match="never completed"):
            sim.run_process(stuck())


class TestConditions:
    def test_all_of_collects_values(self, sim):
        def proc():
            events = [sim.timeout(d, value=d) for d in (3, 1, 2)]
            values = yield sim.all_of(events)
            return values

        assert sim.run_process(proc()) == [3, 1, 2]

    def test_all_of_waits_for_slowest(self, sim):
        def proc():
            yield sim.all_of([sim.timeout(1), sim.timeout(9)])
            return sim.now

        assert sim.run_process(proc()) == 9

    def test_all_of_empty_fires_immediately(self, sim):
        def proc():
            value = yield sim.all_of([])
            return value

        assert sim.run_process(proc()) == []

    def test_any_of_returns_first(self, sim):
        def proc():
            fast = sim.timeout(1, value="fast")
            slow = sim.timeout(50, value="slow")
            event, value = yield sim.any_of([slow, fast])
            return value, sim.now

        value, when = sim.run_process(proc())
        assert value == "fast"
        assert when == 1

    def test_all_of_propagates_failure(self, sim):
        bad = sim.event()

        def proc():
            yield sim.all_of([sim.timeout(5), bad])

        process = sim.spawn(proc())
        bad.fail(RuntimeError("nope"))
        sim.run()
        with pytest.raises(RuntimeError):
            _ = process.value
