"""Tests for the BPF-selftest-style stress program generator."""

import pytest

from repro.errors import ReproError
from repro.ebpf.interpreter import Interpreter
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.stress import STRESS_SIZES, make_stress_program
from repro.ebpf.verifier import MapGeometry, verify


class TestGenerator:
    @pytest.mark.parametrize("size", [20, 100, 1300, 5000])
    def test_exact_size(self, size):
        assert len(make_stress_program(size).insns) == size

    @pytest.mark.parametrize("size", [50, 1300])
    def test_exact_size_with_map(self, size):
        program = make_stress_program(size, with_map=True)
        assert len(program.insns) == size
        assert program.map_names == ("stress_map",)

    def test_minimum_size_enforced(self):
        with pytest.raises(ReproError):
            make_stress_program(5)

    def test_deterministic(self):
        a = make_stress_program(500, seed=3)
        b = make_stress_program(500, seed=3)
        assert a.image() == b.image()

    def test_seed_changes_program(self):
        a = make_stress_program(500, seed=3)
        b = make_stress_program(500, seed=4)
        assert a.image() != b.image()

    def test_paper_sizes_all_verify(self):
        # The two smallest paper sizes (95K takes ~2s; covered in bench).
        for size in STRESS_SIZES[:2]:
            program = make_stress_program(size, with_map=True)
            stats = verify(program, {0: MapGeometry(4, 8)})
            # Verifier state pruning must hold exploration near-linear.
            assert stats.states_visited < 2 * size

    def test_executes_deterministically(self):
        program = make_stress_program(1300, seed=5)
        ctx = bytes(range(256))
        first = Interpreter().run(program.insns, ctx).r0
        second = Interpreter().run(program.insns, ctx).r0
        assert first == second

    def test_result_depends_on_packet(self):
        program = make_stress_program(1300, seed=5)
        a = Interpreter().run(program.insns, bytes(256)).r0
        b = Interpreter().run(program.insns, bytes([1]) * 256).r0
        assert a != b

    def test_map_block_reads_map(self):
        program = make_stress_program(100, seed=1, with_map=True)
        bpf_map = BpfMap(MapType.ARRAY, 4, 8, 4, name="stress_map")
        zero = Interpreter(maps=[bpf_map]).run(program.insns, bytes(256)).r0
        bpf_map.update((0).to_bytes(4, "little"), (1 << 20).to_bytes(8, "little"))
        nonzero = Interpreter(maps=[bpf_map]).run(program.insns, bytes(256)).r0
        assert zero != nonzero
