"""UDF tests: expression evaluation, validation, compilation, engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import VerifierError, WorkloadError
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.udf.compiler import compile_udf
from repro.udf.engine import Query, QueryEngine
from repro.udf.expr import Arg, BinOp, Call, Const, node_count, udf_eval
from repro.udf.validator import udf_validate
from repro.wasm.runtime import WasmRuntime

U32 = (1 << 32) - 1


class TestEval:
    def test_const(self):
        assert udf_eval(Const(5), []) == 5

    def test_arg(self):
        assert udf_eval(Arg(1), [10, 20]) == 20

    def test_binop(self):
        assert udf_eval(BinOp("*", Arg(0), Const(3)), [7]) == 21

    def test_builtins(self):
        assert udf_eval(Call("min", Const(3), Const(9)), []) == 3
        assert udf_eval(Call("max", Const(3), Const(9)), []) == 9
        assert udf_eval(Call("clamp", Const(50), Const(0), Const(10)), []) == 10
        assert udf_eval(Call("abs", Const(5)), []) == 5

    def test_division_by_zero(self):
        assert udf_eval(BinOp("/", Const(9), Const(0) if False else Arg(0)), [0]) == 0

    def test_node_count(self):
        expr = BinOp("+", Arg(0), Call("min", Const(1), Const(2)))
        assert node_count(expr) == 5


class TestValidator:
    def test_accepts_normal(self):
        stats = udf_validate(BinOp("+", Arg(0), Const(1)), row_width=4)
        assert stats.nodes == 3
        assert stats.args_used == (0,)

    def test_arg_beyond_row(self):
        with pytest.raises(VerifierError, match="row width"):
            udf_validate(Arg(9), row_width=4)

    def test_unknown_operator(self):
        with pytest.raises(VerifierError, match="operator"):
            udf_validate(BinOp("**", Arg(0), Const(2)))

    def test_unknown_builtin(self):
        with pytest.raises(VerifierError, match="builtin"):
            udf_validate(Call("sqrt", Arg(0)))

    def test_wrong_arity(self):
        with pytest.raises(VerifierError, match="expects"):
            udf_validate(Call("min", Arg(0)))

    def test_const_zero_divisor(self):
        with pytest.raises(VerifierError, match="zero"):
            udf_validate(BinOp("/", Arg(0), Const(0)))

    def test_depth_limit(self):
        expr = Arg(0)
        for _ in range(100):
            expr = BinOp("+", expr, Const(1))
        with pytest.raises(VerifierError, match="deep"):
            udf_validate(expr)


def expr_strategy(max_depth=4):
    leaves = st.one_of(
        st.builds(Const, st.integers(0, 1000)),
        st.builds(Arg, st.integers(0, 3)),
    )

    def extend(children):
        return st.one_of(
            st.builds(
                BinOp,
                st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>"]),
                children,
                children,
            ),
            st.builds(lambda a, b: Call("min", a, b), children, children),
            st.builds(lambda a, b: Call("max", a, b), children, children),
            st.builds(
                lambda a, b, c: Call("clamp", a, b, c), children, children, children
            ),
        )

    return st.recursive(leaves, extend, max_leaves=12)


class TestCompiler:
    def test_simple_compile_runs(self):
        module = compile_udf(BinOp("+", Arg(0), Const(5)), row_width=4)
        result = WasmRuntime().run(module.insns, None, args=(10, 0, 0, 0), n_locals=6)
        assert result.value == 15

    def test_clamp_lowering(self):
        expr = Call("clamp", Arg(0), Const(10), Const(20))
        module = compile_udf(expr, row_width=2)
        for value, expected in [(5, 10), (15, 15), (50, 20)]:
            got = WasmRuntime().run(
                module.insns, None, args=(value, 0), n_locals=4
            ).value
            assert got == expected

    def test_fully_inline(self):
        from repro.wasm.compiler import wasm_compile

        module = compile_udf(BinOp("*", Arg(0), Const(2)), row_width=2)
        binary = wasm_compile(module)
        assert binary.relocations == []  # UDFs need no linking (§3.3)

    def test_invalid_rejected_before_compile(self):
        with pytest.raises(VerifierError):
            compile_udf(Arg(99), row_width=4)

    @given(expr_strategy(), st.lists(st.integers(0, U32), min_size=4, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_differential_vs_reference(self, expr, row):
        """Compiled stack code computes exactly what udf_eval computes."""
        try:
            udf_validate(expr, row_width=4)
        except VerifierError:
            return
        module = compile_udf(expr, row_width=4)
        got = WasmRuntime().run(module.insns, None, args=tuple(row), n_locals=6).value
        assert got == udf_eval(expr, row)


class TestEngine:
    @pytest.fixture
    def engine(self):
        sim = Simulator()
        host = Host(sim, "db", cores=4, dram_bytes=1 << 20)
        engine = QueryEngine(host, row_width=4)
        engine.load_table(
            "t", [(i, i * 2, i * 3, 0) for i in range(50)]
        )
        return sim, engine

    def test_local_query_correct(self, engine):
        sim, eng = engine
        query = Query(udf=BinOp("+", Arg(0), Arg(1)), table="t")
        result = sim.run_process(eng.run_query_local(query))
        assert result.values == [i + i * 2 for i in range(50)]

    def test_rdx_query_correct(self, engine):
        sim, eng = engine
        query = Query(udf=Call("max", Arg(0), Arg(2)), table="t")
        result = sim.run_process(eng.run_query_rdx(query, udf_key="max02"))
        assert result.values == [max(i, i * 3) & U32 for i in range(50)]

    def test_rdx_injection_is_microseconds(self, engine):
        sim, eng = engine
        query = Query(udf=BinOp("+", Arg(0), Const(1)), table="t")
        # Warm the compile cache, then measure.
        sim.run_process(eng.run_query_rdx(query, udf_key="k"))
        repeat = Query(udf=BinOp("+", Arg(0), Const(1)), table="t")
        result = sim.run_process(eng.run_query_rdx(repeat, udf_key="k"))
        assert result.inject_us < 100

    def test_local_injection_slower_than_rdx(self, engine):
        sim, eng = engine
        expr = Call("clamp", BinOp("*", Arg(0), Const(3)), Const(0), Const(99))
        local = sim.run_process(eng.run_query_local(Query(udf=expr, table="t")))
        sim.run_process(eng.run_query_rdx(Query(udf=expr, table="t"), "warm"))
        rdx = sim.run_process(eng.run_query_rdx(Query(udf=expr, table="t"), "warm"))
        assert local.inject_us > rdx.inject_us

    def test_unknown_table(self, engine):
        sim, eng = engine
        with pytest.raises(WorkloadError):
            sim.run_process(eng.run_query_local(Query(udf=Arg(0), table="nope")))

    def test_row_width_enforced(self, engine):
        _sim, eng = engine
        with pytest.raises(WorkloadError):
            eng.load_table("bad", [(1, 2)])

    def test_reference_helper(self, engine):
        _sim, eng = engine
        query = Query(udf=BinOp("+", Arg(0), Arg(1)), table="t")
        rows = [(1, 2, 3, 4), (5, 6, 7, 8)]
        assert QueryEngine.reference(query, rows) == [3, 11]
