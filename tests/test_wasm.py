"""Wasm substrate tests: module, validator, runtime, compiler, filters."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import JitError, ReproError, SandboxCrash, SandboxError, VerifierError
from repro.ebpf.jit import PLACEHOLDER
from repro.wasm.compiler import decode_wasm_image, wasm_compile
from repro.wasm.filters import (
    VERSION_HEADER_KEY,
    make_header_filter,
    make_rate_limit_filter,
    make_routing_filter,
    make_telemetry_filter,
)
from repro.wasm.hostcalls import HOST_CALLS
from repro.wasm.module import WInstr, WOp, WasmBuilder
from repro.wasm.runtime import CONTINUE, DENY, RequestContext, WasmRuntime
from repro.wasm.validator import wasm_validate

HOSTCALL_ADDR = {hc.name: 0xBB00_0000 + hc.call_id * 0x40 for hc in HOST_CALLS.values()}
ADDR_TO_ID = {addr: next(h.call_id for h in HOST_CALLS.values() if h.name == name)
              for name, addr in HOSTCALL_ADDR.items()}


def run_module(module, ctx=None, args=()):
    return WasmRuntime().run(module.insns, ctx or RequestContext(), args=args)


class TestModuleEncoding:
    @given(
        st.sampled_from(list(WOp)),
        st.integers(0, 0xFFFF),
        st.integers(-(2**31), 2**31 - 1),
    )
    def test_instr_roundtrip(self, wop, aux, imm):
        instr = WInstr(op=wop, aux=aux, imm=imm)
        assert WInstr.decode(instr.encode()) == instr

    def test_bad_opcode_rejected(self):
        with pytest.raises(ReproError):
            WInstr.decode(b"\xf9" + bytes(7))

    def test_tag_changes_with_body(self):
        a = WasmBuilder().push(1).ret().build()
        b = WasmBuilder().push(2).ret().build()
        assert a.tag() != b.tag()

    def test_builder_label_errors(self):
        with pytest.raises(ReproError):
            WasmBuilder().label("x").label("x")
        with pytest.raises(ReproError):
            WasmBuilder().br("nowhere").ret().build()

    def test_unknown_host_call_rejected_by_builder(self):
        with pytest.raises(ReproError):
            WasmBuilder().call_host("no_such_call")


class TestValidator:
    def test_minimal_accepts(self):
        module = WasmBuilder().push(0).ret().build()
        stats = wasm_validate(module)
        assert stats.insn_count == 2

    def test_empty_rejected(self):
        from repro.wasm.module import WasmModule

        with pytest.raises(VerifierError, match="empty"):
            wasm_validate(WasmModule(insns=[]))

    def test_stack_underflow_rejected(self):
        module = WasmBuilder().emit(WOp.DROP).push(0).ret().build()
        with pytest.raises(VerifierError, match="underflow"):
            wasm_validate(module)

    def test_return_needs_exactly_one_value(self):
        module = WasmBuilder().push(1).push(2).ret().build()
        with pytest.raises(VerifierError, match="depth"):
            wasm_validate(module)

    def test_missing_return_rejected(self):
        module = WasmBuilder().push(1).emit(WOp.DROP).build()
        with pytest.raises(VerifierError, match="fallthrough"):
            wasm_validate(module)

    def test_backward_branch_rejected(self):
        builder = WasmBuilder().label("top").push(1).emit(WOp.DROP)
        builder._fixups.append((len(builder._insns), "top"))
        builder.emit(WOp.BR)
        builder.push(0).ret()
        with pytest.raises(VerifierError, match="backward"):
            wasm_validate(builder.build())

    def test_uninitialized_local_rejected(self):
        module = WasmBuilder(n_locals=8).get_local(5).ret().build()
        with pytest.raises(VerifierError, match="uninitialized local"):
            wasm_validate(module)

    def test_arg_locals_preinitialized(self):
        module = WasmBuilder(n_locals=4).get_local(0).ret().build()
        wasm_validate(module)

    def test_local_out_of_range(self):
        module = WasmBuilder(n_locals=2).push(1).set_local(5).push(0).ret().build()
        with pytest.raises(VerifierError, match="out of range"):
            wasm_validate(module)

    def test_host_call_arity_checked(self):
        # proxy_set_header needs 2 args; give it 1.
        builder = WasmBuilder().push(1)
        builder._imports.append("proxy_set_header")
        builder.emit(WOp.CALL_HOST, imm=2).ret()
        with pytest.raises(VerifierError, match="underflow"):
            wasm_validate(builder.build())

    def test_unimported_host_call_rejected(self):
        builder = WasmBuilder().push(1)
        builder.emit(WOp.CALL_HOST, imm=5).ret()  # proxy_log, not imported
        with pytest.raises(VerifierError, match="not imported"):
            wasm_validate(builder.build())

    def test_unreachable_rejected(self):
        module = WasmBuilder().push(0).ret().push(1).ret().build()
        with pytest.raises(VerifierError, match="unreachable"):
            wasm_validate(module)

    def test_inconsistent_branch_depths_ok_when_merged(self):
        module = (
            WasmBuilder()
            .push(1)
            .br_if("other")
            .push(10)
            .ret()
            .label("other")
            .push(20)
            .ret()
            .build()
        )
        wasm_validate(module)


class TestRuntime:
    def test_arithmetic(self):
        module = WasmBuilder().push(6).push(7).alu(WOp.MUL).ret().build()
        assert run_module(module).value == 42

    def test_division_by_zero_yields_zero(self):
        module = WasmBuilder().push(5).push(0).alu(WOp.DIV_U).ret().build()
        assert run_module(module).value == 0

    def test_locals_and_args(self):
        module = (
            WasmBuilder()
            .get_local(0)
            .get_local(1)
            .alu(WOp.ADD)
            .ret()
            .build()
        )
        assert run_module(module, args=(30, 12)).value == 42

    def test_branching(self):
        module = (
            WasmBuilder()
            .get_local(0)
            .push(10)
            .alu(WOp.GT_U)
            .br_if("big")
            .push(0)
            .ret()
            .label("big")
            .push(1)
            .ret()
            .build()
        )
        assert run_module(module, args=(5,)).value == 0
        assert run_module(module, args=(50,)).value == 1

    def test_host_call_effects(self):
        module = make_header_filter(version=3)
        ctx = RequestContext()
        result = run_module(module, ctx)
        assert result.value == CONTINUE
        assert ctx.headers[VERSION_HEADER_KEY] == 3

    def test_budget(self):
        module = WasmBuilder().push(0).ret().build()
        with pytest.raises(SandboxError, match="budget"):
            WasmRuntime(insn_budget=1).run(module.insns, RequestContext())

    def test_32bit_wrapping(self):
        module = (
            WasmBuilder().push(0x7FFFFFFF).push(0x7FFFFFFF).alu(WOp.ADD)
            .ret().build()
        )
        assert run_module(module).value == (0x7FFFFFFF * 2) & 0xFFFFFFFF


class TestFilters:
    def test_routing_filter(self):
        module = make_routing_filter(n_routes=4, version=1)
        ctx = RequestContext(path_hash=9)
        run_module(module, ctx)
        assert ctx.route == (9 + 1) % 4

    def test_rate_limit_filter(self):
        module = make_rate_limit_filter(limit=3)
        ctx = RequestContext()
        verdicts = [run_module(module, ctx).value for _ in range(5)]
        assert verdicts == [CONTINUE] * 3 + [DENY] * 2

    def test_telemetry_filter(self):
        module = make_telemetry_filter(counter_slot=2)
        ctx = RequestContext()
        run_module(module, ctx)
        run_module(module, ctx)
        assert ctx.counters[2] == 2
        assert ctx.log == [1, 2]

    def test_padding_changes_size_not_behaviour(self):
        small = make_header_filter(version=2)
        big = make_header_filter(version=2, padding=100)
        assert len(big.insns) == len(small.insns) + 200
        ctx_a, ctx_b = RequestContext(), RequestContext()
        assert run_module(small, ctx_a).value == run_module(big, ctx_b).value
        assert ctx_a.headers == ctx_b.headers


class TestCompiler:
    def test_roundtrip(self):
        module = make_routing_filter(n_routes=3, version=2)
        linked = wasm_compile(module).link(lambda r: HOSTCALL_ADDR[r.symbol])
        instrs = decode_wasm_image(linked.code, host_call_at=ADDR_TO_ID.get)
        ctx_direct, ctx_jit = RequestContext(path_hash=7), RequestContext(path_hash=7)
        direct = WasmRuntime().run(module.insns, ctx_direct)
        via = WasmRuntime().run(instrs, ctx_jit)
        assert direct.value == via.value
        assert ctx_direct.route == ctx_jit.route

    def test_unlinked_crashes(self):
        binary = wasm_compile(make_header_filter())
        with pytest.raises(SandboxCrash, match="unresolved"):
            decode_wasm_image(binary.code, host_call_at=ADDR_TO_ID.get)

    def test_corruption_crashes(self):
        linked = wasm_compile(make_header_filter()).link(
            lambda r: HOSTCALL_ADDR[r.symbol]
        )
        corrupt = bytearray(linked.code)
        corrupt[15] ^= 0x80
        with pytest.raises(SandboxCrash):
            decode_wasm_image(bytes(corrupt), host_call_at=ADDR_TO_ID.get)

    def test_ebpf_image_rejected_as_wasm(self):
        from repro.ebpf.jit import jit_compile
        from repro.ebpf.asm import Asm
        from repro.ebpf import opcodes as op
        from repro.ebpf.program import BpfProgram

        ebpf = jit_compile(BpfProgram(Asm().mov_imm(op.R0, 0).exit_().build()))
        with pytest.raises(SandboxCrash, match="not a wasm image"):
            decode_wasm_image(ebpf.code, host_call_at=ADDR_TO_ID.get)

    def test_arch_mismatch(self):
        binary = wasm_compile(make_header_filter(), arch="arm64")
        linked = binary.link(lambda r: HOSTCALL_ADDR[r.symbol])
        with pytest.raises(SandboxCrash, match="mismatch"):
            decode_wasm_image(
                linked.code, host_call_at=ADDR_TO_ID.get, expect_arch="x86_64"
            )

    def test_unknown_arch_rejected(self):
        with pytest.raises(JitError):
            wasm_compile(make_header_filter(), arch="mips")
