"""Tests for the sandbox-resident telemetry segment (seqlock plane)."""

import struct

import pytest

from repro.obs.segment import (
    COUNTER_SLOTS,
    GAUGE_SLOTS,
    HIST_BUCKETS,
    LAYOUT,
    OFF_EPOCH,
    OFF_SEQ,
    SEGMENT_MAGIC,
    TelemetrySegment,
    bucket_of,
    decode_segment,
    segment_region,
)


@pytest.fixture
def segment(testbed):
    return testbed.sandbox.telemetry


class TestLayout:
    def test_fields_do_not_overlap(self):
        spans = sorted(
            (offset, offset + 8) for offset, _fmt in LAYOUT.fields.values()
        )
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            assert start >= prev_end

    def test_size_is_cacheline_tiled(self):
        assert LAYOUT.size_bytes % 64 == 0
        assert LAYOUT.size_bytes >= max(
            offset + 8 for offset, _ in LAYOUT.fields.values()
        )

    def test_every_slot_has_a_field(self):
        for name in COUNTER_SLOTS + GAUGE_SLOTS:
            assert name in LAYOUT.fields
        for bucket in range(HIST_BUCKETS):
            assert f"exec_us.bucket{bucket}" in LAYOUT.fields

    def test_bucket_of_log2_boundaries(self):
        assert bucket_of(0.0) == 0
        assert bucket_of(0.9) == 0
        assert bucket_of(1.0) == 1
        assert bucket_of(2.0) == 2
        assert bucket_of(3.0) == 2
        assert bucket_of(4.0) == 3
        # The top bucket absorbs everything.
        assert bucket_of(10**9) == HIST_BUCKETS - 1

    def test_region_covers_layout(self):
        start, end = segment_region(1000)
        assert (start, end) == (1000, 1000 + LAYOUT.size_bytes)


class TestSegmentWrites:
    def test_magic_and_epoch_written_at_init(self, testbed, segment):
        raw = bytes(
            testbed.sandbox.host.memory.read(
                segment.base_addr, LAYOUT.size_bytes
            )
        )
        assert raw[:4] == SEGMENT_MAGIC
        snapshot = decode_segment(raw)
        assert snapshot.valid and snapshot.consistent
        assert snapshot.epoch == 1

    def test_inc_and_gauge_land_in_dram(self, segment):
        segment.inc("exec.crashes", 3)
        segment.set_gauge("last_exec_us", 42.5)
        snapshot = segment.snapshot_local()
        assert snapshot.values["exec.crashes"] == 3
        assert snapshot.values["last_exec_us"] == 42.5
        assert snapshot.consistent

    def test_observe_fills_log_buckets(self, segment):
        for value in (0.5, 3.0, 3.5, 100.0):
            segment.observe("exec_us", value)
        hist = segment.snapshot_local().histogram("exec_us")
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(107.0)
        assert hist["buckets"][bucket_of(0.5)] == 1
        assert hist["buckets"][bucket_of(3.0)] == 2
        assert hist["buckets"][bucket_of(100.0)] == 1

    def test_note_exec_detects_install(self, segment):
        first = segment.note_exec("ingress", 0x5000, 120, 1.5, now_us=10.0)
        again = segment.note_exec("ingress", 0x5000, 120, 1.5, now_us=20.0)
        newer = segment.note_exec("ingress", 0x6000, 120, 1.5, now_us=30.0)
        assert (first, again, newer) == (True, False, True)
        values = segment.snapshot_local().values
        assert values["exec.count"] == 3
        assert values["install.observed"] == 2
        assert values["first_exec_us"] == 30.0
        assert values["last_install_addr"] == 0x6000


class TestSeqlock:
    def _seq_in_dram(self, testbed, segment):
        raw = testbed.sandbox.host.memory.read(segment.base_addr + OFF_SEQ, 8)
        return struct.unpack("<Q", bytes(raw))[0]

    def test_bracket_goes_odd_then_even(self, testbed, segment):
        before = self._seq_in_dram(testbed, segment)
        assert before % 2 == 0
        segment.begin_update()
        assert self._seq_in_dram(testbed, segment) % 2 == 1
        segment.end_update()
        after = self._seq_in_dram(testbed, segment)
        assert after % 2 == 0 and after == before + 2

    def test_bracket_is_reentrant(self, testbed, segment):
        with segment:
            segment.inc("exec.count")  # nested bracket: no extra bumps
            assert self._seq_in_dram(testbed, segment) % 2 == 1
        assert self._seq_in_dram(testbed, segment) % 2 == 0

    def test_unbalanced_end_raises(self, segment):
        with pytest.raises(RuntimeError):
            segment.end_update()

    def test_open_bracket_reads_as_inconsistent(self, testbed, segment):
        segment.begin_update()
        try:
            raw = bytes(
                testbed.sandbox.host.memory.read(
                    segment.base_addr, LAYOUT.size_bytes
                )
            )
            assert not decode_segment(raw).consistent
        finally:
            segment.end_update()

    def test_short_or_garbage_read_is_invalid(self):
        assert not decode_segment(b"").valid
        assert not decode_segment(b"\x00" * LAYOUT.size_bytes).valid


class TestReset:
    def test_reset_zeroes_and_stamps_epoch(self, testbed, segment):
        segment.note_exec("ingress", 0x5000, 10, 1.0, now_us=5.0)
        segment.reset(epoch=7)
        snapshot = segment.snapshot_local()
        assert snapshot.epoch == 7
        assert all(v == 0 for v in snapshot.values.values())
        raw = testbed.sandbox.host.memory.read(
            segment.base_addr + OFF_EPOCH, 8
        )
        assert struct.unpack("<Q", bytes(raw))[0] == 7
        # Install tracking restarts: the same pointer is "new" again.
        assert segment.note_exec("ingress", 0x5000, 10, 1.0, now_us=6.0)

    def test_warm_reboot_resets_segment(self, testbed):
        sandbox = testbed.sandbox
        sandbox.telemetry.inc("exec.count", 9)
        sandbox.warm_reboot()
        snapshot = sandbox.telemetry.snapshot_local()
        assert snapshot.epoch == 2
        assert snapshot.values["exec.count"] == 0
        assert snapshot.values["reboots"] == 1.0
