"""Tests for the declarative orchestration language (§7 item 1)."""

import pytest

from repro.core.orchestrator import (
    ExtensionSpec,
    Fleet,
    OrchestrationIntent,
    Plan,
    Selector,
    Strategy,
    execute_plan,
    plan_intent,
)
from repro.ebpf.stress import make_stress_program
from repro.errors import ConsistencyError, DeployError
from repro.exp.harness import make_testbed


@pytest.fixture
def fleet_bed():
    bed = make_testbed(n_hosts=3, cores_per_host=4)
    fleet = Fleet(
        codeflows={
            flow.sandbox.host.name: flow for flow in bed.codeflows
        },
        labels={
            "node0": {"tier": "web"},
            "node1": {"tier": "web"},
            "node2": {"tier": "db"},
        },
    )
    return bed, fleet


def spec(name, seed, targets=Selector(), after=(), hook="ingress"):
    return ExtensionSpec(
        name=name,
        program=make_stress_program(100, seed=seed, name=name),
        hook=hook,
        targets=targets,
        after=after,
    )


class TestSelector:
    def test_empty_matches_all(self):
        assert Selector().matches("anything", {})

    def test_name_selection(self):
        selector = Selector(names=("a", "b"))
        assert selector.matches("a", {})
        assert not selector.matches("c", {})

    def test_label_selection(self):
        selector = Selector(labels={"tier": "web"})
        assert selector.matches("x", {"tier": "web", "az": "1"})
        assert not selector.matches("x", {"tier": "db"})

    def test_combined(self):
        selector = Selector(names=("a",), labels={"tier": "web"})
        assert selector.matches("a", {"tier": "web"})
        assert not selector.matches("a", {"tier": "db"})


class TestPlanner:
    def test_plan_resolves_targets(self, fleet_bed):
        _bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[spec("web_ext", 1, Selector(labels={"tier": "web"}))],
        )
        plan = plan_intent(intent, fleet)
        assert plan.steps[0].targets == ["node0", "node1"]

    def test_dependency_ordering(self, fleet_bed):
        _bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[
                spec("caller", 1, after=("callee",)),
                spec("callee", 2, hook="egress"),
            ],
        )
        plan = plan_intent(intent, fleet)
        assert [s.extension.name for s in plan.steps] == ["callee", "caller"]

    def test_cycle_rejected(self, fleet_bed):
        _bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[
                spec("a", 1, after=("b",)),
                spec("b", 2, after=("a",), hook="egress"),
            ],
        )
        with pytest.raises(ConsistencyError, match="cycle"):
            plan_intent(intent, fleet)

    def test_unknown_dependency(self, fleet_bed):
        _bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i", extensions=[spec("a", 1, after=("ghost",))]
        )
        with pytest.raises(ConsistencyError, match="unknown"):
            plan_intent(intent, fleet)

    def test_duplicate_names_rejected(self, fleet_bed):
        _bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i", extensions=[spec("a", 1), spec("a", 2)]
        )
        with pytest.raises(ConsistencyError, match="duplicate"):
            plan_intent(intent, fleet)

    def test_empty_selection_rejected(self, fleet_bed):
        _bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[spec("a", 1, Selector(labels={"tier": "gpu"}))],
        )
        with pytest.raises(DeployError, match="no targets"):
            plan_intent(intent, fleet)

    def test_summary_lists_waves(self, fleet_bed):
        _bed, fleet = fleet_bed
        intent = OrchestrationIntent(name="demo", extensions=[spec("a", 1)])
        plan = plan_intent(intent, fleet)
        text = plan.summary()
        assert "demo" in text and "wave 0" in text

    def test_unknown_strategy(self):
        with pytest.raises(ConsistencyError):
            Strategy(kind="yolo")


class TestExecutor:
    def test_bbu_execution_deploys_everywhere(self, fleet_bed):
        bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[spec("web_ext", 1, Selector(labels={"tier": "web"}))],
        )
        plan = plan_intent(intent, fleet)
        outcome = bed.sim.run_process(
            execute_plan(bed.control, fleet, plan)
        )
        assert len(outcome.waves) == 1
        assert outcome.waves[0].window_us > 0
        for name in ("node0", "node1"):
            sandbox = fleet.codeflows[name].sandbox
            result, _ = sandbox.run_hook("ingress", bytes(256))
            assert result is not None
        db_sandbox = fleet.codeflows["node2"].sandbox
        result, _ = db_sandbox.run_hook("ingress", bytes(256))
        assert result is None  # selector excluded the db tier

    def test_multi_wave_order(self, fleet_bed):
        bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[
                spec("second", 1, after=("first",)),
                spec("first", 2, hook="egress"),
            ],
        )
        plan = plan_intent(intent, fleet)
        outcome = bed.sim.run_process(execute_plan(bed.control, fleet, plan))
        assert [w.extension for w in outcome.waves] == ["first", "second"]

    def test_canary_promotes_on_health(self, fleet_bed):
        bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[spec("ext", 1)],
            strategy=Strategy(kind="canary", canary_count=1),
        )
        plan = plan_intent(intent, fleet)
        outcome = bed.sim.run_process(execute_plan(bed.control, fleet, plan))
        assert outcome.waves[0].canary_passed is True
        for flow in fleet.codeflows.values():
            result, _ = flow.sandbox.run_hook("ingress", bytes(256))
            assert result is not None

    def test_canary_halts_on_failure(self, fleet_bed):
        bed, fleet = fleet_bed
        intent = OrchestrationIntent(
            name="i",
            extensions=[spec("ext", 1)],
            strategy=Strategy(kind="canary", canary_count=1),
        )
        plan = plan_intent(intent, fleet)
        outcome = bed.sim.run_process(
            execute_plan(
                bed.control, fleet, plan, health_check=lambda flow: False
            )
        )
        assert outcome.waves[0].canary_passed is False
        # Only the canary got the extension.
        deployed = sum(
            1
            for flow in fleet.codeflows.values()
            if flow.sandbox.run_hook("ingress", bytes(256))[0] is not None
        )
        assert deployed == 1
