"""Tests for one-sided telemetry scraping (seqlock read protocol)."""

import pytest

from repro import params
from repro.core.health import HealthDetector, TargetHealth
from repro.ebpf.stress import make_stress_program
from repro.obs.scrape import TelemetryScraper, TornSnapshotError


def _deploy_and_run(bed, insns=400, execs=3):
    """Install a program and execute its hook a few times."""
    program = make_stress_program(insns, seed=7)
    bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
    for _ in range(execs):
        bed.sandbox.run_hook("ingress", b"\x00" * 256)
    return program


class TestScrapeProtocol:
    def test_scrape_matches_local_truth(self, testbed):
        _deploy_and_run(testbed, execs=4)
        scraper = TelemetryScraper(testbed.codeflows)
        result = testbed.sim.run_process(
            scraper.scrape(testbed.sandbox.name)
        )
        local = testbed.sandbox.telemetry.snapshot_local()
        assert result.epoch == 1
        assert result.snapshot.values == local.values
        assert result.snapshot.values["exec.count"] == 4
        assert result.snapshot.values["install.observed"] == 1
        assert result.retries == 0

    def test_scrape_is_agentless_zero_sandbox_cpu(self, testbed):
        """The scrape property: no target CPU time, tasks, or events."""
        _deploy_and_run(testbed)
        scraper = TelemetryScraper(testbed.codeflows)
        cpu = testbed.sandbox.host.cpu
        before = (cpu.busy_us, cpu.tasks_run, testbed.sandbox.events_executed)
        for _ in range(5):
            testbed.sim.run_process(scraper.scrape(testbed.sandbox.name))
        after = (cpu.busy_us, cpu.tasks_run, testbed.sandbox.events_executed)
        assert after == before

    def test_torn_schedule_observes_seqlock_retry(self, testbed):
        """A writer holding the bracket open forces bounded retries.

        The scrape must spin (counted retries), then accept a snapshot
        taken strictly after the bracket closed -- never the mid-write
        payload.
        """
        _deploy_and_run(testbed, execs=2)
        segment = testbed.sandbox.telemetry
        scraper = TelemetryScraper(testbed.codeflows)
        sim = testbed.sim

        def slow_writer():
            segment.begin_update()
            segment.inc("exec.count", 100)  # mid-write state: 102
            yield sim.timeout(params.RDX_SCRAPE_RETRY_US * 3)
            segment.inc("exec.count", 1)  # final state: 103
            segment.end_update()

        sim.spawn(slow_writer(), name="torn-writer")
        result = sim.run_process(scraper.scrape(testbed.sandbox.name))
        assert result.retries > 0
        assert result.snapshot.values["exec.count"] == 103
        assert scraper.obs.registry.counter("rdx.scrape.retries").value > 0

    def test_exhausted_retries_never_export(self, testbed):
        """never-export-torn: budget exhaustion raises, publishes nothing."""
        _deploy_and_run(testbed)
        segment = testbed.sandbox.telemetry
        scraper = TelemetryScraper(testbed.codeflows, max_retries=2)
        segment.begin_update()
        try:
            with pytest.raises(TornSnapshotError):
                testbed.sim.run_process(
                    scraper.scrape(testbed.sandbox.name)
                )
        finally:
            segment.end_update()
        registry = scraper.obs.registry
        assert registry.counter("rdx.scrape.torn").value == 1
        assert not [
            row for row in registry.snapshot()
            if row["name"].startswith("sandbox.")
        ]

    def test_never_mixed_epoch_snapshot(self, testbed):
        """A reset racing the scrape yields the *new* epoch atomically.

        The writer holds the bracket across a warm-reboot-style reset;
        the accepted snapshot must be entirely post-reset (epoch 2,
        counters zeroed) -- old counters under the new epoch would be
        the mixed-epoch bug the in-bracket epoch word prevents.
        """
        _deploy_and_run(testbed, execs=5)
        segment = testbed.sandbox.telemetry
        scraper = TelemetryScraper(testbed.codeflows)
        sim = testbed.sim

        def rebooter():
            segment.begin_update()
            yield sim.timeout(params.RDX_SCRAPE_RETRY_US * 2)
            segment.reset(epoch=2)
            segment.end_update()

        sim.spawn(rebooter(), name="rebooter")
        result = sim.run_process(scraper.scrape(testbed.sandbox.name))
        assert result.retries > 0
        assert result.epoch == 2
        assert result.snapshot.values["exec.count"] == 0


class TestRegistryPublication:
    def test_series_carry_target_and_epoch_labels(self, testbed):
        _deploy_and_run(testbed, execs=2)
        scraper = TelemetryScraper(testbed.codeflows)
        testbed.sim.run_process(scraper.scrape(testbed.sandbox.name))
        counter = scraper.obs.registry.counter(
            "sandbox.exec.count", target=testbed.sandbox.name, epoch="1"
        )
        assert counter.value == 2

    def test_counters_publish_deltas_not_totals(self, testbed):
        _deploy_and_run(testbed, execs=2)
        scraper = TelemetryScraper(testbed.codeflows)
        name = testbed.sandbox.name
        testbed.sim.run_process(scraper.scrape(name))
        testbed.sandbox.run_hook("ingress", b"\x00" * 256)
        second = testbed.sim.run_process(scraper.scrape(name))
        assert second.deltas["exec.count"] == 1
        counter = scraper.obs.registry.counter(
            "sandbox.exec.count", target=name, epoch="1"
        )
        assert counter.value == 3  # 2 + 1, not 2 + 3

    def test_epoch_bump_retires_old_series(self, testbed):
        """Satellite: pre-reboot counters can't leak into the new epoch."""
        _deploy_and_run(testbed, execs=3)
        scraper = TelemetryScraper(testbed.codeflows)
        name = testbed.sandbox.name
        testbed.sim.run_process(scraper.scrape(name))
        testbed.sandbox.warm_reboot()
        testbed.sim.run_process(scraper.scrape(name))
        rows = {
            (row["name"], row["labels"].get("epoch"))
            for row in scraper.obs.registry.snapshot()
            if row["name"] == "sandbox.exec.count"
        }
        assert rows == {("sandbox.exec.count", "2")}


class TestHealthPiggyback:
    def test_probe_scrapes_after_renewal(self, testbed2):
        for codeflow in testbed2.codeflows:
            program = make_stress_program(300, seed=11)
            testbed2.sim.run_process(
                testbed2.control.inject(codeflow, program, "ingress")
            )
        scraper = TelemetryScraper(testbed2.codeflows)
        health = HealthDetector(testbed2.codeflows, scraper=scraper)
        states = testbed2.sim.run_process(health.probe_all())
        assert all(s is TargetHealth.ALIVE for s in states.values())
        assert len(scraper.results) == len(testbed2.codeflows)
        assert scraper.obs.registry.counter("rdx.scrape.count").value == 2

    def test_torn_scrape_is_not_a_lease_miss(self, testbed):
        scraper = TelemetryScraper(testbed.codeflows, max_retries=0)
        health = HealthDetector(testbed.codeflows, scraper=scraper)
        testbed.sandbox.telemetry.begin_update()
        try:
            state = testbed.sim.run_process(
                health.probe(testbed.sandbox.name)
            )
        finally:
            testbed.sandbox.telemetry.end_update()
        assert state is TargetHealth.ALIVE
        assert health.lease_of(testbed.sandbox.name).consecutive_misses == 0
        assert scraper.obs.registry.counter("rdx.scrape.torn").value == 1
