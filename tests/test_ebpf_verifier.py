"""Verifier tests: what must pass, what must be rejected, and why."""

import pytest

from repro.errors import VerifierError
from repro.ebpf import opcodes as op
from repro.ebpf.asm import Asm
from repro.ebpf.insn import Insn
from repro.ebpf.program import BpfProgram
from repro.ebpf.verifier import MapGeometry, verify

GEO = {0: MapGeometry(key_size=4, value_size=8)}


def prog(asm: Asm, maps=()) -> BpfProgram:
    return BpfProgram(asm.build(), map_names=tuple(maps))


def accept(asm: Asm, maps=None):
    return verify(prog(asm, tuple(maps or ())), maps=GEO if maps else {})


def reject(asm: Asm, match: str, maps=None):
    with pytest.raises(VerifierError, match=match):
        verify(prog(asm, tuple(maps or ())), maps=GEO if maps else {})


class TestBasicAcceptance:
    def test_minimal_program(self):
        stats = accept(Asm().mov_imm(op.R0, 0).exit_())
        assert stats.insn_count == 2
        assert stats.states_visited >= 2

    def test_ctx_load(self):
        accept(Asm().ldx_b(op.R0, op.R1, 0).exit_())

    def test_stack_store_load(self):
        accept(
            Asm()
            .mov_imm(op.R2, 7)
            .stx_dw(op.R10, op.R2, -8)
            .ldx_dw(op.R0, op.R10, -8)
            .exit_()
        )

    def test_forward_branch_both_paths(self):
        accept(
            Asm()
            .mov_imm(op.R0, 0)
            .jmp_imm(op.BPF_JEQ, op.R0, 0, "skip")
            .mov_imm(op.R0, 1)
            .label("skip")
            .exit_()
        )

    def test_lddw_scalar(self):
        accept(Asm().lddw(op.R0, 0x1234567890).exit_())

    def test_map_lookup_with_null_check(self):
        asm = (
            Asm()
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .jmp_imm(op.BPF_JEQ, op.R0, 0, "out")
            .ldx_w(op.R3, op.R0, 0)
            .label("out")
            .mov_imm(op.R0, 0)
            .exit_()
        )
        stats = accept(asm, maps=["m"])
        assert "bpf_map_lookup_elem" in stats.helpers_called

    def test_pointer_spill_and_fill(self):
        accept(
            Asm()
            .stx_dw(op.R10, op.R1, -8)  # spill ctx pointer
            .ldx_dw(op.R2, op.R10, -8)  # fill it back
            .ldx_b(op.R0, op.R2, 0)     # use as ctx pointer
            .exit_()
        )


class TestRejections:
    def test_empty_program(self):
        with pytest.raises(VerifierError, match="empty"):
            verify(BpfProgram([]))

    def test_uninitialized_register(self):
        reject(Asm().mov_reg(op.R0, op.R5).exit_(), "read_ok")

    def test_exit_without_r0(self):
        reject(Asm().mov_imm(op.R1, 0).exit_(), "R0 !read_ok")

    def test_fallthrough_off_end(self):
        reject(Asm().mov_imm(op.R0, 0), "out of range|jump out")

    def test_backward_jump(self):
        asm = Asm().label("top").mov_imm(op.R0, 0)
        asm._fixups.append((len(asm._insns), "top"))
        asm.raw(Insn(op.BPF_JMP | op.BPF_JA))
        asm.exit_()
        reject(asm, "back-edge")

    def test_write_to_frame_pointer(self):
        reject(Asm().mov_imm(op.R10, 0).exit_(), "read-only")

    def test_stack_out_of_bounds_low(self):
        reject(
            Asm().mov_imm(op.R2, 1).stx_dw(op.R10, op.R2, -520).mov_imm(op.R0, 0).exit_(),
            "stack access",
        )

    def test_stack_positive_offset(self):
        reject(
            Asm().mov_imm(op.R2, 1).stx_dw(op.R10, op.R2, 8).mov_imm(op.R0, 0).exit_(),
            "stack access",
        )

    def test_read_uninitialized_stack(self):
        reject(
            Asm().ldx_dw(op.R0, op.R10, -8).exit_(),
            "uninitialized stack",
        )

    def test_ctx_out_of_bounds(self):
        reject(Asm().ldx_w(op.R0, op.R1, 254).exit_(), "ctx access")

    def test_ctx_store_rejected(self):
        reject(
            Asm().mov_imm(op.R2, 0).stx(op.BPF_W, op.R1, op.R2, 0)
            .mov_imm(op.R0, 0).exit_(),
            "read-only",
        )

    def test_division_by_zero_const(self):
        reject(
            Asm().mov_imm(op.R0, 10).alu64_imm(op.BPF_DIV, op.R0, 0).exit_(),
            "division by zero",
        )

    def test_oversized_shift(self):
        reject(
            Asm().mov_imm(op.R0, 1).alu64_imm(op.BPF_LSH, op.R0, 64).exit_(),
            "invalid shift",
        )

    def test_pointer_arithmetic_mul(self):
        reject(
            Asm().alu64_imm(op.BPF_MUL, op.R1, 2).mov_imm(op.R0, 0).exit_(),
            "arithmetic",
        )

    def test_pointer_as_scalar_operand(self):
        reject(
            Asm().mov_imm(op.R0, 0).alu64_reg(op.BPF_ADD, op.R0, op.R1).exit_(),
            "pointer used as scalar",
        )

    def test_map_value_deref_without_null_check(self):
        asm = (
            Asm()
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .ldx_w(op.R3, op.R0, 0)  # no null check!
            .mov_imm(op.R0, 0)
            .exit_()
        )
        reject(asm, "NULL", maps=["m"])

    def test_map_value_out_of_bounds(self):
        asm = (
            Asm()
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .jmp_imm(op.BPF_JEQ, op.R0, 0, "out")
            .ldx_dw(op.R3, op.R0, 4)  # 8-byte read at offset 4 of 8-byte value
            .label("out")
            .mov_imm(op.R0, 0)
            .exit_()
        )
        reject(asm, "map value access", maps=["m"])

    def test_unknown_helper(self):
        reject(Asm().call(999).exit_(), "unknown helper")

    def test_helper_bad_arg_type(self):
        # map_lookup expects a map pointer in R1, not a scalar.
        asm = (
            Asm()
            .mov_imm(op.R1, 0)
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .call(1)
            .exit_()
        )
        reject(asm, "expects map pointer", maps=["m"])

    def test_helper_uninitialized_key(self):
        asm = (
            Asm()
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .mov_imm(op.R0, 0)
            .exit_()
        )
        reject(asm, "uninitialized stack", maps=["m"])

    def test_caller_saved_clobbered_by_call(self):
        asm = (
            Asm()
            .mov_imm(op.R3, 5)
            .mov_imm(op.R8, 0)
            .stx(op.BPF_W, op.R10, op.R8, -4)
            .mov_reg(op.R2, op.R10)
            .alu64_imm(op.BPF_ADD, op.R2, -4)
            .ld_map_fd(op.R1, 0)
            .call(1)
            .mov_reg(op.R0, op.R3)  # R3 was clobbered by the call
            .exit_()
        )
        reject(asm, "R3 !read_ok", maps=["m"])

    def test_unknown_map_slot(self):
        reject(
            Asm().ld_map_fd(op.R1, 7).mov_imm(op.R0, 0).exit_(),
            "unknown map slot",
        )

    def test_unreachable_code(self):
        asm = Asm().mov_imm(op.R0, 0).exit_().mov_imm(op.R0, 1).exit_()
        reject(asm, "unreachable")

    def test_lddw_at_end(self):
        asm = Asm().mov_imm(op.R0, 0)
        asm.raw(Insn(op.LDDW, dst=0, imm=0))
        reject(asm, "LDDW at end")

    def test_jump_into_lddw_middle(self):
        asm = Asm()
        asm.jmp_imm(op.BPF_JEQ, op.R1, 0, "mid")  # R1 is ptr; use JA instead
        asm._fixups.clear()
        asm._insns.clear()
        asm.ja("mid")
        asm.lddw(op.R0, 5)
        # "mid" lands on the second half of the LDDW.
        asm._labels["mid"] = 2
        asm.exit_()
        reject(asm, "middle of LDDW|nonzero opcode|unreachable")

    def test_neg_on_pointer(self):
        reject(Asm().neg(op.R1).mov_imm(op.R0, 0).exit_(), "NEG on pointer")


class TestComplexity:
    def test_linear_states_on_branchy_program(self):
        asm = Asm().mov_imm(op.R0, 0)
        for index in range(100):
            asm.ldx_b(op.R2, op.R1, index % 200)
            asm.jmp_imm(op.BPF_JGT, op.R2, 128, f"skip{index}")
            asm.alu64_imm(op.BPF_ADD, op.R0, 1)
            asm.label(f"skip{index}")
        asm.exit_()
        stats = accept(asm)
        # State merging must keep exploration near-linear.
        assert stats.states_visited < 3 * stats.insn_count

    def test_too_large_program(self):
        insns = [Insn(op.BPF_ALU64 | op.BPF_MOV | op.BPF_K, dst=0, imm=0)] * (
            op.MAX_INSNS + 1
        )
        with pytest.raises(VerifierError, match="too large"):
            verify(BpfProgram(insns))
