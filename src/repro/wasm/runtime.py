"""The Wasm-filter stack interpreter and request context."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SandboxError
from repro.wasm.hostcalls import host_call_by_id
from repro.wasm.module import WInstr, WOp
from repro.wasm.validator import MAX_STACK_DEPTH, N_ARG_LOCALS

_U32 = (1 << 32) - 1

#: Filter return codes (proxy-wasm FilterHeadersStatus analogue).
CONTINUE = 0
PAUSE = 1
DENY = 2


@dataclass
class RequestContext:
    """The L7 request a filter chain operates on."""

    path_hash: int = 0
    headers: dict[int, int] = field(default_factory=dict)
    status: int = 200
    route: int = 0
    now_us: float = 0.0
    counters: dict[int, int] = field(default_factory=dict)
    log: list[int] = field(default_factory=list)


@dataclass
class WasmResult:
    """Outcome of one filter invocation."""

    value: int
    insns_executed: int

    @property
    def verdict(self) -> int:
        return self.value


class WasmRuntime:
    """Executes validated (or decoded) filter bytecode on a request."""

    def __init__(self, insn_budget: int = 1_000_000):
        self.insn_budget = insn_budget

    def run(
        self,
        insns: list[WInstr],
        ctx: RequestContext,
        args: tuple[int, ...] = (),
        n_locals: int = 8,
    ) -> WasmResult:
        """Run the filter; returns its RETURN value (the verdict)."""
        stack: list[int] = []
        locals_ = [0] * max(n_locals, N_ARG_LOCALS)
        for index, arg in enumerate(args[: len(locals_)]):
            locals_[index] = arg & _U32
        pc = 0
        executed = 0
        while True:
            if executed >= self.insn_budget:
                raise SandboxError("wasm instruction budget exhausted")
            if not 0 <= pc < len(insns):
                raise SandboxError(f"wasm pc {pc} out of range")
            instr = insns[pc]
            executed += 1
            op = instr.op

            if op is WOp.NOP:
                pc += 1
            elif op is WOp.PUSH:
                stack.append(instr.imm & _U32)
                pc += 1
            elif op is WOp.DROP:
                self._pop(stack)
                pc += 1
            elif op is WOp.DUP:
                stack.append(self._peek(stack))
                pc += 1
            elif op is WOp.GET_LOCAL:
                if instr.aux >= len(locals_):
                    raise SandboxError(f"local {instr.aux} out of range")
                stack.append(locals_[instr.aux])
                pc += 1
            elif op is WOp.SET_LOCAL:
                if instr.aux >= len(locals_):
                    raise SandboxError(f"local {instr.aux} out of range")
                locals_[instr.aux] = self._pop(stack)
                pc += 1
            elif op is WOp.BR:
                pc += 1 + instr.imm
            elif op is WOp.BR_IF:
                taken = self._pop(stack)
                pc += 1 + instr.imm if taken else 1
            elif op is WOp.CALL_HOST:
                call = host_call_by_id(instr.imm)
                if call is None:
                    raise SandboxError(f"unknown host call {instr.imm}")
                call_args = [self._pop(stack) for _ in range(call.n_args)]
                call_args.reverse()
                result = call.impl(ctx, *call_args)
                if call.returns:
                    stack.append((result or 0) & _U32)
                pc += 1
            elif op is WOp.RETURN:
                return WasmResult(value=self._pop(stack), insns_executed=executed)
            else:
                result = self._alu(op, stack)
                stack.append(result)
                pc += 1
            if len(stack) > MAX_STACK_DEPTH:
                raise SandboxError("wasm stack overflow")

    @staticmethod
    def _pop(stack: list[int]) -> int:
        if not stack:
            raise SandboxError("wasm stack underflow")
        return stack.pop()

    @staticmethod
    def _peek(stack: list[int]) -> int:
        if not stack:
            raise SandboxError("wasm stack underflow")
        return stack[-1]

    def _alu(self, op: WOp, stack: list[int]) -> int:
        right = self._pop(stack)
        left = self._pop(stack)
        if op is WOp.ADD:
            return (left + right) & _U32
        if op is WOp.SUB:
            return (left - right) & _U32
        if op is WOp.MUL:
            return (left * right) & _U32
        if op is WOp.DIV_U:
            return (left // right) & _U32 if right else 0
        if op is WOp.REM_U:
            return (left % right) & _U32 if right else left
        if op is WOp.AND:
            return left & right
        if op is WOp.OR:
            return left | right
        if op is WOp.XOR:
            return left ^ right
        if op is WOp.SHL:
            return (left << (right % 32)) & _U32
        if op is WOp.SHR_U:
            return left >> (right % 32)
        if op is WOp.EQ:
            return int(left == right)
        if op is WOp.NE:
            return int(left != right)
        if op is WOp.LT_U:
            return int(left < right)
        if op is WOp.GT_U:
            return int(left > right)
        if op is WOp.LE_U:
            return int(left <= right)
        if op is WOp.GE_U:
            return int(left >= right)
        raise SandboxError(f"unsupported wasm ALU op {op}")
