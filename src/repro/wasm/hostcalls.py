"""Host-function imports available to Wasm filters (proxy-wasm ABI).

Like eBPF helpers, host calls are the filter's window into the local
runtime: their addresses are per-sandbox, so each call site in a
compiled image carries a relocation that must be linked against the
target GOT (§3.3 applies to Wasm exactly as to eBPF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class HostCall:
    """One importable host function."""

    call_id: int
    name: str
    n_args: int
    returns: bool
    impl: Callable


def _get_header(ctx, key):
    return ctx.headers.get(key, 0)


def _set_header(ctx, key, value):
    ctx.headers[key] = value
    return 0


def _get_path_hash(ctx):
    return ctx.path_hash


def _set_route(ctx, route):
    ctx.route = route
    return 0


def _log(ctx, value):
    ctx.log.append(value)
    return 0


def _counter_incr(ctx, slot):
    ctx.counters[slot] = ctx.counters.get(slot, 0) + 1
    return ctx.counters[slot]


def _counter_get(ctx, slot):
    return ctx.counters.get(slot, 0)


def _get_status(ctx):
    return ctx.status


def _set_status(ctx, status):
    ctx.status = status
    return 0


def _now_us(ctx):
    return int(ctx.now_us)


HOST_CALLS: dict[int, HostCall] = {
    1: HostCall(1, "proxy_get_header", 1, True, _get_header),
    2: HostCall(2, "proxy_set_header", 2, True, _set_header),
    3: HostCall(3, "proxy_get_path_hash", 0, True, _get_path_hash),
    4: HostCall(4, "proxy_set_route", 1, True, _set_route),
    5: HostCall(5, "proxy_log", 1, True, _log),
    6: HostCall(6, "proxy_counter_incr", 1, True, _counter_incr),
    7: HostCall(7, "proxy_counter_get", 1, True, _counter_get),
    8: HostCall(8, "proxy_get_status", 0, True, _get_status),
    9: HostCall(9, "proxy_set_status", 1, True, _set_status),
    10: HostCall(10, "proxy_now_us", 0, True, _now_us),
}

_BY_NAME = {hc.name: hc for hc in HOST_CALLS.values()}


def host_call_by_id(call_id: int) -> Optional[HostCall]:
    return HOST_CALLS.get(call_id)


def host_call_by_name(name: str) -> Optional[HostCall]:
    return _BY_NAME.get(name)
