"""A compact Wasm-filter substrate (proxy-wasm analogue).

Service meshes attach Wasm filters to sidecar proxies for L7 policy
(paper §2.1).  This package mirrors the eBPF substrate's shape with a
stack machine instead of a register machine:

* :mod:`~repro.wasm.module` -- fixed-width stack bytecode + builder,
* :mod:`~repro.wasm.validator` -- stack-discipline type checking,
  forward-only control flow, host-call arity checks,
* :mod:`~repro.wasm.compiler` -- native-image emission with host-call
  relocations (same slot container as the eBPF JIT, wasm arch ids),
* :mod:`~repro.wasm.runtime` -- the sandboxed stack interpreter over a
  request context,
* :mod:`~repro.wasm.filters` -- ready-made header/route/rate-limit
  filters used by the mesh experiments.

Validation+compilation is ~:data:`repro.params.WASM_COMPILE_FACTOR`x
costlier per instruction than eBPF, matching the paper's observation
that Wasm agents (Envoy sidecars) are heavier than eBPF agents.
"""

from repro.wasm.module import WInstr, WasmModule, WasmBuilder, WOp
from repro.wasm.validator import WasmValidationStats, wasm_validate
from repro.wasm.compiler import decode_wasm_image, wasm_compile
from repro.wasm.runtime import RequestContext, WasmRuntime
from repro.wasm.filters import (
    make_header_filter,
    make_rate_limit_filter,
    make_routing_filter,
    make_telemetry_filter,
)
from repro.wasm.hostcalls import HOST_CALLS, HostCall

__all__ = [
    "HOST_CALLS",
    "HostCall",
    "RequestContext",
    "WInstr",
    "WOp",
    "WasmBuilder",
    "WasmModule",
    "WasmRuntime",
    "WasmValidationStats",
    "decode_wasm_image",
    "make_header_filter",
    "make_rate_limit_filter",
    "make_routing_filter",
    "make_telemetry_filter",
    "wasm_compile",
    "wasm_validate",
]
