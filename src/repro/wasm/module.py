"""Wasm-filter bytecode: a fixed-width stack machine.

Each instruction encodes to 8 bytes (``opcode u8, flags u8, aux u16,
imm i32``) so images serialize exactly like other extension binaries.
Control flow is structured-by-construction: only forward branches,
expressed as relative instruction offsets (the validator enforces it).
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import struct
from dataclasses import dataclass, field

from repro.errors import ReproError

_WINSTR = struct.Struct("<BBHi")
_module_ids = itertools.count(1)


class WOp(enum.IntEnum):
    """Stack-machine opcodes."""

    NOP = 0x00
    PUSH = 0x01  # push imm
    DROP = 0x02
    DUP = 0x03
    GET_LOCAL = 0x10  # aux = local index
    SET_LOCAL = 0x11
    ADD = 0x20
    SUB = 0x21
    MUL = 0x22
    DIV_U = 0x23
    REM_U = 0x24
    AND = 0x25
    OR = 0x26
    XOR = 0x27
    SHL = 0x28
    SHR_U = 0x29
    EQ = 0x30
    NE = 0x31
    LT_U = 0x32
    GT_U = 0x33
    LE_U = 0x34
    GE_U = 0x35
    BR = 0x40  # unconditional forward branch, imm = skip count
    BR_IF = 0x41  # pop cond; branch if nonzero
    CALL_HOST = 0x50  # imm = host-call id; pops args, pushes result
    RETURN = 0x60  # pop result, end execution


@dataclass(frozen=True)
class WInstr:
    """One encoded stack instruction."""

    op: WOp
    aux: int = 0
    imm: int = 0

    def encode(self) -> bytes:
        return _WINSTR.pack(int(self.op), 0, self.aux & 0xFFFF, self.imm)

    @classmethod
    def decode(cls, data: bytes) -> "WInstr":
        opcode, _flags, aux, imm = _WINSTR.unpack(data)
        try:
            op = WOp(opcode)
        except ValueError:
            raise ReproError(f"bad wasm opcode {opcode:#x}") from None
        return cls(op=op, aux=aux, imm=imm)


@dataclass
class WasmModule:
    """A filter module: instructions + declared locals + host imports.

    Exposes the same duck-typed surface the RDX control plane expects
    of a deployable program (``name``, ``prog_id``, ``insns``,
    ``tag()``, ``size_bytes()``, ``map_names``).
    """

    insns: list[WInstr]
    name: str = "filter"
    n_locals: int = 4
    #: Host calls the module imports (validated against HOST_CALLS).
    imports: tuple[str, ...] = ()
    map_names: tuple[str, ...] = ()
    prog_id: int = field(default_factory=lambda: next(_module_ids))

    def image(self) -> bytes:
        return b"".join(instr.encode() for instr in self.insns)

    def tag(self) -> str:
        return hashlib.sha1(b"wasm" + self.image()).hexdigest()[:16]

    def size_bytes(self) -> int:
        return len(self.insns) * 8

    def __len__(self) -> int:
        return len(self.insns)


class WasmBuilder:
    """Fluent builder with label-based forward branches."""

    def __init__(self, name: str = "filter", n_locals: int = 4):
        self.name = name
        self.n_locals = n_locals
        self._insns: list[WInstr] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []
        self._imports: list[str] = []

    def emit(self, op: WOp, aux: int = 0, imm: int = 0) -> "WasmBuilder":
        self._insns.append(WInstr(op=op, aux=aux, imm=imm))
        return self

    def push(self, imm: int) -> "WasmBuilder":
        return self.emit(WOp.PUSH, imm=imm)

    def get_local(self, index: int) -> "WasmBuilder":
        return self.emit(WOp.GET_LOCAL, aux=index)

    def set_local(self, index: int) -> "WasmBuilder":
        return self.emit(WOp.SET_LOCAL, aux=index)

    def alu(self, op: WOp) -> "WasmBuilder":
        return self.emit(op)

    def call_host(self, name: str) -> "WasmBuilder":
        from repro.wasm.hostcalls import HOST_CALLS

        match = next(
            (hc for hc in HOST_CALLS.values() if hc.name == name), None
        )
        if match is None:
            raise ReproError(f"unknown host call {name!r}")
        if name not in self._imports:
            self._imports.append(name)
        return self.emit(WOp.CALL_HOST, imm=match.call_id)

    def label(self, name: str) -> "WasmBuilder":
        if name in self._labels:
            raise ReproError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)
        return self

    def br(self, label: str) -> "WasmBuilder":
        self._fixups.append((len(self._insns), label))
        return self.emit(WOp.BR)

    def br_if(self, label: str) -> "WasmBuilder":
        self._fixups.append((len(self._insns), label))
        return self.emit(WOp.BR_IF)

    def ret(self) -> "WasmBuilder":
        return self.emit(WOp.RETURN)

    def build(self) -> WasmModule:
        insns = list(self._insns)
        for index, label in self._fixups:
            target = self._labels.get(label)
            if target is None:
                raise ReproError(f"undefined label {label!r}")
            old = insns[index]
            insns[index] = WInstr(op=old.op, aux=old.aux, imm=target - index - 1)
        return WasmModule(
            insns=insns,
            name=self.name,
            n_locals=self.n_locals,
            imports=tuple(self._imports),
        )
