"""Wasm filter validation: stack discipline + bounded control flow.

Checks (all static, before any compilation):

* stack depth is consistent along every path and never negative,
* every path ends in RETURN with exactly one value on the stack,
* branches are strictly forward (termination by construction),
* locals are within the declared count; reads-before-writes are
  rejected for locals above the argument window,
* host calls exist and get the right number of stack operands,
* a stack-depth cap (sandbox resource bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VerifierError
from repro.wasm.hostcalls import host_call_by_id
from repro.wasm.module import WInstr, WasmModule, WOp

MAX_STACK_DEPTH = 64
MAX_INSNS = 500_000

#: Locals [0, N_ARG_LOCALS) are pre-initialized argument slots.
N_ARG_LOCALS = 2

_ALU_2 = {
    WOp.ADD, WOp.SUB, WOp.MUL, WOp.DIV_U, WOp.REM_U, WOp.AND, WOp.OR,
    WOp.XOR, WOp.SHL, WOp.SHR_U, WOp.EQ, WOp.NE, WOp.LT_U, WOp.GT_U,
    WOp.LE_U, WOp.GE_U,
}


@dataclass
class WasmValidationStats:
    """Outcome of a successful validation."""

    insn_count: int
    states_visited: int = 0
    max_stack_seen: int = 0
    host_calls: tuple[str, ...] = ()


def wasm_validate(module: WasmModule) -> WasmValidationStats:
    """Validate ``module``; raises :class:`VerifierError` on rejection."""
    insns = module.insns
    if not insns:
        raise VerifierError("empty wasm module")
    if len(insns) > MAX_INSNS:
        raise VerifierError(f"module too large: {len(insns)}")
    stats = WasmValidationStats(insn_count=len(insns))
    host_calls: set[str] = set()

    # (pc, depth, initialized-locals-frozenset)
    seen: dict[int, set] = {}
    stack = [(0, 0, frozenset(range(min(N_ARG_LOCALS, module.n_locals))))]
    reached: set[int] = set()

    while stack:
        pc, depth, inited = stack.pop()
        key = (depth, inited)
        if key in seen.setdefault(pc, set()):
            continue
        seen[pc].add(key)
        stats.states_visited += 1
        if stats.states_visited > MAX_INSNS * 4:
            raise VerifierError("wasm validation state budget exceeded")
        if pc >= len(insns):
            raise VerifierError(f"fallthrough off the end at {pc}")
        reached.add(pc)
        instr = insns[pc]
        stats.max_stack_seen = max(stats.max_stack_seen, depth)
        successors = _step(module, pc, instr, depth, inited, host_calls)
        stack.extend(successors)

    index = 0
    while index < len(insns):
        if index not in reached:
            raise VerifierError(f"unreachable wasm instruction at {index}")
        index += 1
    stats.host_calls = tuple(sorted(host_calls))
    return stats


def _step(module, pc: int, instr: WInstr, depth: int, inited, host_calls):
    op = instr.op

    def need(n: int) -> None:
        if depth < n:
            raise VerifierError(f"stack underflow at {pc} ({op.name})")

    def grown(delta: int) -> int:
        new_depth = depth + delta
        if new_depth > MAX_STACK_DEPTH:
            raise VerifierError(f"stack overflow at {pc}")
        return new_depth

    if op is WOp.NOP:
        return [(pc + 1, depth, inited)]
    if op is WOp.PUSH:
        return [(pc + 1, grown(1), inited)]
    if op is WOp.DROP:
        need(1)
        return [(pc + 1, depth - 1, inited)]
    if op is WOp.DUP:
        need(1)
        return [(pc + 1, grown(1), inited)]
    if op is WOp.GET_LOCAL:
        if instr.aux >= module.n_locals:
            raise VerifierError(f"local {instr.aux} out of range at {pc}")
        if instr.aux not in inited:
            raise VerifierError(f"read of uninitialized local {instr.aux} at {pc}")
        return [(pc + 1, grown(1), inited)]
    if op is WOp.SET_LOCAL:
        if instr.aux >= module.n_locals:
            raise VerifierError(f"local {instr.aux} out of range at {pc}")
        need(1)
        return [(pc + 1, depth - 1, inited | {instr.aux})]
    if op in _ALU_2:
        need(2)
        return [(pc + 1, depth - 1, inited)]
    if op is WOp.BR:
        target = pc + 1 + instr.imm
        _check_forward(module, pc, target)
        return [(target, depth, inited)]
    if op is WOp.BR_IF:
        need(1)
        target = pc + 1 + instr.imm
        _check_forward(module, pc, target)
        return [(target, depth - 1, inited), (pc + 1, depth - 1, inited)]
    if op is WOp.CALL_HOST:
        call = host_call_by_id(instr.imm)
        if call is None:
            raise VerifierError(f"unknown host call id {instr.imm} at {pc}")
        if call.name not in module.imports:
            raise VerifierError(
                f"host call {call.name} not imported by module at {pc}"
            )
        need(call.n_args)
        host_calls.add(call.name)
        new_depth = depth - call.n_args + (1 if call.returns else 0)
        if new_depth > MAX_STACK_DEPTH:
            raise VerifierError(f"stack overflow at {pc}")
        return [(pc + 1, new_depth, inited)]
    if op is WOp.RETURN:
        need(1)
        if depth != 1:
            raise VerifierError(
                f"RETURN with stack depth {depth} (want 1) at {pc}"
            )
        return []
    raise VerifierError(f"unsupported wasm op {op} at {pc}")


def _check_forward(module, pc: int, target: int) -> None:
    if target <= pc:
        raise VerifierError(f"backward wasm branch {pc} -> {target}")
    if target > len(module.insns):
        raise VerifierError(f"branch out of range {pc} -> {target}")
