"""Wasm -> native image compilation with host-call relocations.

Reuses the slot-container of :mod:`repro.ebpf.jit` (header, 10-byte
checksummed slots, trailing CRC) with wasm-specific architecture ids,
so RDX's deployment path, torn-write detection, and linking machinery
apply to Wasm filters unchanged -- the paper's claim that CodeFlow
generalizes across extension frameworks.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Optional

from repro.errors import JitError, SandboxCrash
from repro.ebpf.jit import JitBinary, PLACEHOLDER, Relocation, RelocKind
from repro.wasm.hostcalls import host_call_by_id
from repro.wasm.module import WInstr, WasmModule, WOp

MAGIC = b"RJ"
VERSION = 1
_HEADER = struct.Struct("<2sBBI")
_SLOT_BYTES = 10

_WASM_ARCH_IDS = {"x86_64": 3, "arm64": 4}
_WASM_ARCH_NAMES = {v: k for k, v in _WASM_ARCH_IDS.items()}
_WASM_PREFIX = {"x86_64": (0x9C, 0x9D), "arm64": (0xAC, 0xAD)}


def wasm_compile(module: WasmModule, arch: str = "x86_64") -> JitBinary:
    """Compile a validated module for ``arch``; returns a JitBinary."""
    try:
        insn_prefix, operand_prefix = _WASM_PREFIX[arch]
    except KeyError:
        raise JitError(f"unsupported wasm target {arch!r}") from None

    slots: list[bytes] = []
    relocations: list[Relocation] = []
    symbols: dict[str, list[int]] = {}

    def emit(prefix: int, payload: bytes) -> int:
        offset = _HEADER.size + len(slots) * _SLOT_BYTES + 1
        checksum = (prefix + sum(payload)) & 0xFF
        slots.append(bytes([prefix]) + payload + bytes([checksum]))
        return offset

    for instr in module.insns:
        emit(insn_prefix, instr.encode())
        if instr.op is WOp.CALL_HOST:
            call = host_call_by_id(instr.imm)
            if call is None:
                raise JitError(f"unknown host call id {instr.imm}")
            offset = emit(operand_prefix, PLACEHOLDER.to_bytes(8, "little"))
            relocations.append(
                Relocation(offset=offset, kind=RelocKind.HELPER, symbol=call.name)
            )
            symbols.setdefault(call.name, []).append(offset)

    header = _HEADER.pack(MAGIC, VERSION, _WASM_ARCH_IDS[arch], len(slots))
    body = header + b"".join(slots)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return JitBinary(
        code=body + crc.to_bytes(4, "little"),
        arch=arch,
        insn_cnt=len(module.insns),
        relocations=relocations,
        symbols=symbols,
    )


def decode_wasm_image(
    code: bytes,
    host_call_at: Callable[[int], Optional[int]],
    expect_arch: str = "x86_64",
) -> list[WInstr]:
    """Decode a linked wasm image back to instructions.

    ``host_call_at`` reverse-maps a resolved local address to a host
    call id.  Raises :class:`SandboxCrash` on corruption, placeholder
    operands, or unknown addresses.
    """
    if len(code) < _HEADER.size + 4:
        raise SandboxCrash("wasm image too short")
    magic, version, arch_id, slot_count = _HEADER.unpack_from(code)
    if magic != MAGIC or version != VERSION:
        raise SandboxCrash("bad wasm image magic/version")
    arch = _WASM_ARCH_NAMES.get(arch_id)
    if arch is None:
        raise SandboxCrash(f"not a wasm image (arch id {arch_id})")
    if arch != expect_arch:
        raise SandboxCrash(f"wasm architecture mismatch: image={arch}")
    expected_len = _HEADER.size + slot_count * _SLOT_BYTES + 4
    if len(code) != expected_len:
        raise SandboxCrash("wasm image length mismatch")
    if zlib.crc32(code[:-4]) & 0xFFFFFFFF != int.from_bytes(code[-4:], "little"):
        raise SandboxCrash("wasm image CRC mismatch (torn or corrupt write)")

    insn_prefix, operand_prefix = _WASM_PREFIX[arch]
    instrs: list[WInstr] = []
    index = 0
    raw_slots = []
    for slot_index in range(slot_count):
        start = _HEADER.size + slot_index * _SLOT_BYTES
        slot = code[start : start + _SLOT_BYTES]
        if (slot[0] + sum(slot[1:9])) & 0xFF != slot[9]:
            raise SandboxCrash(f"wasm slot {slot_index} checksum mismatch")
        raw_slots.append((slot[0], slot[1:9]))

    while index < len(raw_slots):
        prefix, payload = raw_slots[index]
        if prefix != insn_prefix:
            raise SandboxCrash(f"unexpected wasm operand slot at {index}")
        instr = WInstr.decode(payload)
        if instr.op is WOp.CALL_HOST:
            index += 1
            if index >= len(raw_slots):
                raise SandboxCrash("truncated wasm host-call operand")
            prefix2, operand = raw_slots[index]
            if prefix2 != operand_prefix:
                raise SandboxCrash("expected wasm operand slot")
            address = int.from_bytes(operand, "little")
            if address == PLACEHOLDER:
                raise SandboxCrash("unresolved wasm host-call relocation")
            call_id = host_call_at(address)
            if call_id is None:
                raise SandboxCrash(f"host-call address {address:#x} unknown")
            instr = WInstr(op=instr.op, aux=instr.aux, imm=call_id)
        instrs.append(instr)
        index += 1
    return instrs
