"""Ready-made Wasm filters for the mesh experiments.

Each factory builds a validated module implementing one of the common
sidecar policies the paper's §2.1 enumerates (L7 routing, security
headers, rate limiting, telemetry).  A ``version`` parameter changes
the module's behaviour *and* its tag, so rollout experiments can
distinguish old from new logic on the data path -- which is how the
consistency probe detects mixed-version windows.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.wasm.module import WasmBuilder, WasmModule, WOp
from repro.wasm.validator import wasm_validate

#: Header key filters use to stamp the logic version they ran.
VERSION_HEADER_KEY = 0xBEEF

#: Verdicts (mirrors runtime.CONTINUE/PAUSE/DENY).
CONTINUE = 0
DENY = 2


def make_header_filter(
    version: int = 1, name: str = "hdr", padding: int = 0
) -> WasmModule:
    """Stamp the request with this filter's logic version and continue.

    The mesh consistency probe reads the stamped value to detect mixed
    old/new logic along a request's path.  ``padding`` appends that
    many PUSH/DROP instruction pairs x2, sizing the module like a real
    production filter (hundreds of KB) so validation/compile costs are
    realistic in rollout experiments.
    """
    builder = (
        WasmBuilder(name=f"{name}_v{version}")
        .push(VERSION_HEADER_KEY)
        .push(version)
        .call_host("proxy_set_header")
        .emit(WOp.DROP)
    )
    for index in range(padding):
        builder.push((index * 2_654_435_761 + version) & 0x7FFFFFFF)
        builder.emit(WOp.DROP)
    builder.push(CONTINUE).ret()
    module = builder.build()
    wasm_validate(module)
    return module


def make_routing_filter(
    n_routes: int = 4, version: int = 1, name: str = "route"
) -> WasmModule:
    """L7 routing: route = (path_hash + version) % n_routes."""
    if n_routes < 1:
        raise ReproError("need at least one route")
    module = (
        WasmBuilder(name=f"{name}_v{version}")
        .call_host("proxy_get_path_hash")
        .push(version)
        .alu(WOp.ADD)
        .push(n_routes)
        .alu(WOp.REM_U)
        .call_host("proxy_set_route")
        .emit(WOp.DROP)
        .push(VERSION_HEADER_KEY)
        .push(version)
        .call_host("proxy_set_header")
        .emit(WOp.DROP)
        .push(CONTINUE)
        .ret()
        .build()
    )
    wasm_validate(module)
    return module


def make_rate_limit_filter(
    limit: int,
    counter_slot: int = 1,
    version: int = 1,
    name: str = "rl",
    padding: int = 0,
) -> WasmModule:
    """Deny once the per-chain counter exceeds ``limit``.

    ``padding`` sizes the module like a production filter (see
    :func:`make_header_filter`).
    """
    builder = WasmBuilder(name=f"{name}_v{version}")
    for index in range(padding):
        builder.push((index * 40_503 + version) & 0x7FFFFFFF)
        builder.emit(WOp.DROP)
    (
        builder
        .push(counter_slot)
        .call_host("proxy_counter_incr")
        .push(limit)
        .alu(WOp.GT_U)
        .br_if("deny")
        .push(VERSION_HEADER_KEY)
        .push(version)
        .call_host("proxy_set_header")
        .emit(WOp.DROP)
        .push(CONTINUE)
        .ret()
        .label("deny")
        .push(DENY)
        .ret()
    )
    module = builder.build()
    wasm_validate(module)
    return module


def make_telemetry_filter(
    counter_slot: int = 7, version: int = 1, name: str = "telemetry"
) -> WasmModule:
    """Count requests and log the running total (Pixie-style)."""
    module = (
        WasmBuilder(name=f"{name}_v{version}")
        .push(counter_slot)
        .call_host("proxy_counter_incr")
        .call_host("proxy_log")
        .emit(WOp.DROP)
        .push(VERSION_HEADER_KEY)
        .push(version)
        .call_host("proxy_set_header")
        .emit(WOp.DROP)
        .push(CONTINUE)
        .ret()
        .build()
    )
    wasm_validate(module)
    return module
