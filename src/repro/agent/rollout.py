"""Cluster-wide rollouts over microservice dependency DAGs (§2.2 Obs 2).

An application update touches a set of interdependent services whose
extensions form a DAG (callers depend on callees).  The agent baseline
offers eventual consistency: every agent applies when its CPU allows,
so between the first and last apply the data path runs *mixed* logic.
The inconsistency window measured here feeds Fig 2b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

import networkx as nx

from repro.errors import ConsistencyError
from repro.ebpf.program import BpfProgram
from repro.agent.controller import AgentController
from repro.agent.daemon import NodeAgent


@dataclass
class RolloutPlan:
    """What to update: one (agent, programs) entry per service.

    ``dependencies`` maps a service to the services it calls; the
    rollout is safe only if a callee runs new logic before its callers
    (which eventual consistency cannot guarantee).
    """

    services: dict[str, NodeAgent]
    programs: dict[str, list[BpfProgram]]
    dependencies: dict[str, list[str]] = field(default_factory=dict)
    hook_name: str = "ingress"

    def __post_init__(self):
        graph = self.graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ConsistencyError("service dependencies contain a cycle")
        for service in self.programs:
            if service not in self.services:
                raise ConsistencyError(f"no agent for service {service!r}")

    def graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(self.services)
        for caller, callees in self.dependencies.items():
            for callee in callees:
                graph.add_edge(caller, callee)
        return graph

    def dependency_order(self) -> list[str]:
        """Callees before callers (safe application order)."""
        return list(reversed(list(nx.topological_sort(self.graph()))))


@dataclass
class RolloutResult:
    """Timing of one rollout."""

    initiated_us: float
    applied_us: dict[str, float]
    mode: str

    @property
    def first_applied_us(self) -> float:
        return min(self.applied_us.values())

    @property
    def last_applied_us(self) -> float:
        return max(self.applied_us.values())

    @property
    def inconsistency_window_us(self) -> float:
        """First service on new logic -> last service on new logic."""
        return self.last_applied_us - self.first_applied_us

    @property
    def update_interval_us(self) -> float:
        """Initiation -> completion (the paper's §2.2 definition)."""
        return self.last_applied_us - self.initiated_us

    def violations(self, plan: RolloutPlan) -> list[tuple[str, str]]:
        """(caller, callee) pairs where the caller updated first.

        Each such pair is a window where new-caller -> old-callee calls
        could fail (§2.2's service-A/B example).
        """
        out = []
        for caller, callees in plan.dependencies.items():
            for callee in callees:
                if self.applied_us[caller] < self.applied_us[callee]:
                    out.append((caller, callee))
        return out


def rollout_eventual(
    controller: AgentController, plan: RolloutPlan
) -> Generator:
    """Push everything at once; agents apply as CPU allows (baseline)."""
    initiated = controller.sim.now
    procs = {}
    for service, agent in plan.services.items():
        procs[service] = controller.sim.spawn(
            _apply_service(controller, plan, service, agent),
            name=f"rollout:{service}",
        )
    yield controller.sim.all_of(list(procs.values()))
    applied = {service: proc.value for service, proc in procs.items()}
    return RolloutResult(initiated_us=initiated, applied_us=applied, mode="eventual")


def rollout_planned(
    controller: AgentController, plan: RolloutPlan
) -> Generator:
    """Manual-planning baseline: apply in dependency order, serially.

    Safe (no violations) but the update interval grows with DAG depth
    -- the "error-prone manual planning" §2.2 describes, automated.
    """
    initiated = controller.sim.now
    applied: dict[str, float] = {}
    for service in plan.dependency_order():
        agent = plan.services[service]
        applied[service] = yield from _apply_service(
            controller, plan, service, agent
        )
    return RolloutResult(initiated_us=initiated, applied_us=applied, mode="planned")


def _apply_service(
    controller: AgentController,
    plan: RolloutPlan,
    service: str,
    agent: NodeAgent,
) -> Generator:
    """Apply every program of one service; returns the apply-done time."""
    for program in plan.programs.get(service, []):
        yield from controller.push(agent, program, plan.hook_name)
    return controller.sim.now
