"""The agent-based baseline (paper Fig 1a, §2).

Each node runs a user-space agent daemon that receives extension specs
from a central controller over RPC, then validates, JIT-compiles,
links, and attaches them **on the local host's CPU** -- sharing cores
with the data path.  This package reproduces all three §2.2 pathologies:

* millisecond injection delay dominated by verify+JIT (Obs 1),
* eventual-consistency rollouts with long mixed-logic windows (Obs 2),
* mutual control/data-path contention and lockout (Obs 3).
"""

from repro.agent.daemon import AgentStats, NodeAgent
from repro.agent.controller import AgentController, PushResult
from repro.agent.rollout import RolloutPlan, RolloutResult

__all__ = [
    "AgentController",
    "AgentStats",
    "NodeAgent",
    "PushResult",
    "RolloutPlan",
    "RolloutResult",
]
