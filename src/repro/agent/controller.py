"""The central controller of the agent baseline (Kubernetes-style).

Pushes extension specs to node agents over RPC with config batching
(debounce), then waits for each agent's local pipeline.  Offers only
eventual consistency: nodes apply whenever their agent gets CPU, so a
multi-node update exposes a mixed-logic window (§2.2 Obs 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro import params
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.net.rpc import RpcEndpoint
from repro.net.topology import Host
from repro.sim.resources import Resource
from repro.sim.trace import TraceRecorder
from repro.agent.daemon import NodeAgent


@dataclass
class PushResult:
    """Outcome of pushing one extension to one node."""

    node: str
    program_name: str
    issued_us: float
    applied_us: float

    @property
    def latency_us(self) -> float:
        return self.applied_us - self.issued_us


class AgentController:
    """Central config pusher for a fleet of node agents.

    ``max_concurrent_pushes`` models the management server's limited
    stream workers (an XDS pilot pushes config over a bounded worker
    pool): with more services than workers, rollouts apply in waves,
    which is where the Fig 2b inconsistency spread comes from.
    """

    def __init__(
        self,
        host: Host,
        trace: Optional[TraceRecorder] = None,
        max_concurrent_pushes: int = 4,
    ):
        self.host = host
        self.sim = host.sim
        self.trace = trace or TraceRecorder(enabled=False)
        self.rpc = RpcEndpoint(host, "controller")
        self.pushes: list[PushResult] = []
        self._push_slots = Resource(host.sim, capacity=max_concurrent_pushes)

    def push(
        self,
        agent: NodeAgent,
        program: BpfProgram,
        hook_name: str,
        maps: Sequence[BpfMap] = (),
        batch_delay_us: float = params.CONTROLLER_BATCH_DELAY_US,
    ) -> Generator:
        """Push one extension to one agent; returns a PushResult."""
        issued = self.sim.now
        if batch_delay_us:
            yield self.sim.timeout(batch_delay_us)
        slot = self._push_slots.request()
        yield slot
        try:
            payload_bytes = 256 + program.size_bytes()
            yield self.rpc.call(
                agent.host,
                agent.service,
                "load",
                args=(program, hook_name, tuple(maps)),
                size_bytes=payload_bytes,
            )
        finally:
            self._push_slots.release(slot)
        result = PushResult(
            node=agent.host.name,
            program_name=program.name,
            issued_us=issued,
            applied_us=self.sim.now,
        )
        self.pushes.append(result)
        self.trace.record(
            self.sim.now,
            "controller.push.done",
            node=result.node,
            program=program.name,
            latency_us=result.latency_us,
        )
        return result

    def push_many(
        self,
        assignments: Sequence[tuple[NodeAgent, BpfProgram, str]],
        maps: Sequence[BpfMap] = (),
        batch_delay_us: float = params.CONTROLLER_BATCH_DELAY_US,
    ) -> Generator:
        """Push to many agents concurrently (eventual consistency).

        One shared batching delay, then all pushes race.  Returns the
        list of PushResults ordered as given.
        """
        if batch_delay_us:
            yield self.sim.timeout(batch_delay_us)
        procs = [
            self.sim.spawn(
                self.push(agent, program, hook, maps, batch_delay_us=0),
                name=f"push:{agent.host.name}",
            )
            for agent, program, hook in assignments
        ]
        results = yield self.sim.all_of(procs)
        return list(results)
