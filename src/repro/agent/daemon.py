"""The per-node agent daemon (sidecar / eBPF controller analogue).

Every operation charges host CPU at the same priority as application
work: that shared-resource coupling is exactly what the paper's Fig 2c
and the Redis experiment measure.  The functional steps are real --
the verifier genuinely runs, the JIT genuinely emits the image, the
link genuinely resolves against the local sandbox GOT -- so an agent
and RDX deploy *identical* data-path artifacts by different routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro import params
from repro.errors import DeployError
from repro.ebpf.jit import Relocation, RelocKind
from repro.ebpf.loader import LocalLoader
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.net.rpc import RpcEndpoint
from repro.net.topology import Host
from repro.sandbox.sandbox import Sandbox
from repro.sim.trace import TraceRecorder


@dataclass
class AgentStats:
    """Counters + per-phase CPU time burned by one agent."""

    injections: int = 0
    removals: int = 0
    polls: int = 0
    verify_cpu_us: float = 0.0
    jit_cpu_us: float = 0.0
    attach_cpu_us: float = 0.0
    fixed_cpu_us: float = 0.0
    poll_cpu_us: float = 0.0

    @property
    def total_cpu_us(self) -> float:
        return (
            self.verify_cpu_us
            + self.jit_cpu_us
            + self.attach_cpu_us
            + self.fixed_cpu_us
            + self.poll_cpu_us
        )


@dataclass
class InjectionBreakdown:
    """Per-phase wall-clock times of one agent injection (Fig 4b)."""

    program_name: str
    rpc_us: float = 0.0
    fixed_us: float = 0.0
    verify_us: float = 0.0
    jit_us: float = 0.0
    attach_us: float = 0.0
    total_us: float = 0.0

    def phases(self) -> dict[str, float]:
        return {
            "rpc": self.rpc_us,
            "fixed": self.fixed_us,
            "verify": self.verify_us,
            "jit": self.jit_us,
            "attach": self.attach_us,
        }


class NodeAgent:
    """Agent daemon managing one sandbox on one host."""

    def __init__(
        self,
        host: Host,
        sandbox: Sandbox,
        service: Optional[str] = None,
        trace: Optional[TraceRecorder] = None,
        priority: int = 0,
    ):
        self.host = host
        self.sandbox = sandbox
        self.sim = host.sim
        self.loader = LocalLoader(arch=sandbox.arch)
        self.stats = AgentStats()
        self.trace = trace or TraceRecorder(enabled=False)
        self.priority = priority
        #: Preemption quantum for long compile phases, microseconds.
        self.quantum_us = 1_000.0
        self.breakdowns: list[InjectionBreakdown] = []
        self.service = service or f"agent:{sandbox.name}"
        self.rpc = RpcEndpoint(host, self.service)
        self.rpc.register("load", self._rpc_load)
        self.rpc.register("remove", self._rpc_remove)
        self._poll_proc = None

    # -- injection (the §2.2 Obs 1 path) -------------------------------------

    def inject(
        self,
        program: BpfProgram,
        hook_name: str,
        maps: Sequence[BpfMap] = (),
    ) -> Generator:
        """Validate + JIT + link + attach locally; returns the breakdown.

        Every phase consumes host CPU, so under data-path load these
        steps queue behind (and slow down) application work.
        """
        breakdown = InjectionBreakdown(program_name=program.name)
        start = self.sim.now
        self.trace.record(start, "agent.inject.start", ext_id=program.prog_id)

        # Fixed agent overhead: config parse, fd setup, bookkeeping.
        mark = self.sim.now
        yield from self.host.cpu.run(
            params.AGENT_FIXED_OVERHEAD_US, self.priority
        )
        self.stats.fixed_cpu_us += params.AGENT_FIXED_OVERHEAD_US
        breakdown.fixed_us = self.sim.now - mark

        # Verify + JIT: the real toolchain runs; simulated cost charged
        # in preemptible 1 ms slices (a fair scheduler would not let
        # the verifier monopolize a core under data-path load).
        binary, verify_cost, jit_cost = self._compile(program, maps)
        mark = self.sim.now
        yield from self.host.cpu.run(
            verify_cost, self.priority, quantum_us=self.quantum_us
        )
        self.stats.verify_cpu_us += verify_cost
        breakdown.verify_us = self.sim.now - mark

        mark = self.sim.now
        yield from self.host.cpu.run(
            jit_cost, self.priority, quantum_us=self.quantum_us
        )
        self.stats.jit_cpu_us += jit_cost
        breakdown.jit_us = self.sim.now - mark

        # Link against the local GOT and attach.
        mark = self.sim.now
        linked = binary.link(self._resolve_local)
        yield from self.host.cpu.run(params.AGENT_ATTACH_US, self.priority)
        self.stats.attach_cpu_us += params.AGENT_ATTACH_US
        self.sandbox.install_local(program, linked, hook_name)
        breakdown.attach_us = self.sim.now - mark

        breakdown.total_us = self.sim.now - start
        self.stats.injections += 1
        self.breakdowns.append(breakdown)
        self.trace.record(
            self.sim.now,
            "agent.inject.done",
            ext_id=program.prog_id,
            total_us=breakdown.total_us,
        )
        return breakdown

    def _compile(self, program, maps: Sequence[BpfMap]):
        """Run the right toolchain for the extension family.

        Returns (unlinked binary, verify_cost_us, jit_cost_us).  Wasm
        modules cost :data:`repro.params.WASM_COMPILE_FACTOR` x more
        per instruction than eBPF (heavier validation + codegen).
        """
        from repro.wasm.compiler import wasm_compile
        from repro.wasm.module import WasmModule
        from repro.wasm.validator import wasm_validate

        if isinstance(program, WasmModule):
            wasm_validate(program)
            binary = wasm_compile(program, arch=self.sandbox.arch)
            factor = params.WASM_COMPILE_FACTOR
            verify_cost = params.verify_cost_us(len(program.insns)) * factor
            jit_cost = params.jit_cost_us(len(program.insns)) * factor
            return binary, verify_cost, jit_cost
        result = self.loader.verify_and_jit(program, maps)
        return result.binary, result.verify_cost_us, result.jit_cost_us

    def _resolve_local(self, reloc: Relocation) -> int:
        if reloc.kind is RelocKind.HELPER:
            return self.sandbox.got.address_of(reloc.symbol)
        if reloc.kind is RelocKind.MAP:
            symbol = self.sandbox.got.lookup(reloc.symbol)
            if symbol is None:
                raise DeployError(
                    f"agent on {self.host.name}: no local map {reloc.symbol!r}"
                )
            return symbol.address
        raise DeployError(f"unknown relocation {reloc.kind}")

    def remove(self, program: BpfProgram) -> Generator:
        """Detach an extension (ref-counted ctx_teardown path)."""
        yield from self.host.cpu.run(
            params.AGENT_FIXED_OVERHEAD_US / 2, self.priority
        )
        self.stats.fixed_cpu_us += params.AGENT_FIXED_OVERHEAD_US / 2
        self.sandbox.ctx_teardown(program.prog_id)
        self.stats.removals += 1

    # -- RPC surface (controller-driven path) ------------------------------------

    def _rpc_load(self, args) -> Generator:
        program, hook_name, maps = args
        breakdown = yield from self.inject(program, hook_name, maps)
        return breakdown.total_us

    def _rpc_remove(self, args) -> Generator:
        (program,) = args
        yield from self.remove(program)
        return True

    # -- periodic state polling (§2.2 Obs 3 second channel) ------------------------

    def start_state_polling(
        self,
        interval_us: float = params.AGENT_STATE_POLL_INTERVAL_US,
        cost_us: float = params.AGENT_STATE_POLL_US,
        duration_us: Optional[float] = None,
    ) -> None:
        """Poll extension XState on the local CPU every ``interval_us``."""

        def poller():
            started = self.sim.now
            while duration_us is None or self.sim.now - started < duration_us:
                yield self.sim.timeout(interval_us)
                yield from self.host.cpu.run(cost_us, self.priority)
                self.stats.polls += 1
                self.stats.poll_cpu_us += cost_us

        self._poll_proc = self.sim.spawn(poller(), name=f"{self.service}.poll")

    def stop_state_polling(self) -> None:
        if self._poll_proc is not None and self._poll_proc.is_alive:
            self._poll_proc.interrupt("stop polling")
        self._poll_proc = None
