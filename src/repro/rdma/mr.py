"""Protection domains and registered memory regions (ibv_pd / ibv_mr)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import ProtectionError, RdmaError

_key_source = itertools.count(0x1000)


class AccessFlags(enum.IntFlag):
    """Subset of IBV_ACCESS_* flags the simulator enforces."""

    LOCAL_WRITE = 1
    REMOTE_READ = 2
    REMOTE_WRITE = 4
    REMOTE_ATOMIC = 8


@dataclass(frozen=True)
class MemoryRegionMr:
    """A registered window of host memory, addressable by rkey."""

    addr: int
    length: int
    lkey: int
    rkey: int
    access: AccessFlags
    pd_handle: int

    @property
    def end(self) -> int:
        return self.addr + self.length

    def covers(self, addr: int, n: int) -> bool:
        return self.addr <= addr and addr + n <= self.end

    def check_remote(self, addr: int, n: int, need: AccessFlags) -> None:
        """Validate a remote access against range and permissions."""
        if not self.covers(addr, n):
            raise ProtectionError(
                f"remote access [{addr:#x},+{n}) outside MR "
                f"[{self.addr:#x},+{self.length})"
            )
        if need & ~self.access:
            raise ProtectionError(
                f"MR rkey={self.rkey:#x} lacks {need & ~self.access!r}"
            )


class ProtectionDomain:
    """An isolation scope for MRs and QPs (ibv_pd)."""

    _handles = itertools.count(1)

    def __init__(self, device_name: str):
        self.handle = next(self._handles)
        self.device_name = device_name
        self._mrs: dict[int, MemoryRegionMr] = {}

    def reg_mr(self, addr: int, length: int, access: AccessFlags) -> MemoryRegionMr:
        """Register [addr, addr+length) with the given access flags."""
        if length <= 0:
            raise RdmaError("MR length must be positive")
        mr = MemoryRegionMr(
            addr=addr,
            length=length,
            lkey=next(_key_source),
            rkey=next(_key_source),
            access=access,
            pd_handle=self.handle,
        )
        self._mrs[mr.rkey] = mr
        return mr

    def dereg_mr(self, mr: MemoryRegionMr) -> None:
        if self._mrs.pop(mr.rkey, None) is None:
            raise RdmaError(f"MR rkey={mr.rkey:#x} not registered")

    def lookup_rkey(self, rkey: int) -> Optional[MemoryRegionMr]:
        return self._mrs.get(rkey)

    @property
    def mr_count(self) -> int:
        return len(self._mrs)
