"""The RNIC model: WQE processing, DMA, and wire timing.

Two properties matter for the paper and are modeled exactly:

1. **CPU bypass** -- executing a remote WR consumes *no* cycles on the
   target host's CPU; payloads are DMA'd straight into its memory
   (through the cache model, which leaves stale CPU cache lines behind
   -- the Fig 5 incoherence).
2. **Non-atomic large writes** -- a WRITE larger than one MTU lands
   chunk by chunk over the transfer window, so a concurrently polling
   CPU can observe a *partially written* object.  This is issue (1) of
   §3.5 and the reason ``rdx_tx`` exists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import params
from repro.errors import ProtectionError, RdmaError
from repro.fuzz import hooks as fuzz_hooks
from repro.hb import events as hb
from repro.mem.layout import pack_qword, unpack_qword
from repro.net.topology import Host
from repro.obs import telemetry_of
from repro.rdma.cq import Completion, WcStatus
from repro.rdma.mr import AccessFlags
from repro.rdma.qp import QpState, QueuePair, WorkRequest, WrOpcode
from repro.sim.core import Event
from repro.sim.resources import Resource

#: Wire MTU for chunked DMA landing of large writes.
RNIC_MTU_BYTES = 4096


class _Unreachable(Exception):
    """Internal: target stopped ACKing mid-operation (crash/partition)."""


class Rnic:
    """One RDMA NIC attached to a host."""

    def __init__(self, host: Host, name: str = ""):
        self.host = host
        self.sim = host.sim
        self.name = name or f"{host.name}.rnic"
        # The send pipeline serializes WQE execution per NIC, which is
        # how a real RNIC's processing units behave under one QP-per-CF.
        self._pipeline = Resource(self.sim, capacity=4)
        self.wrs_processed = 0
        self.bytes_dma = 0
        #: QPs created on this NIC so far; gives each QP a stable
        #: per-RNIC ordinal for schedule-fuzz site keys.
        self.qps_created = 0
        host.nic = self
        # Metric handles are resolved once and cached: the WR path is
        # the simulator's hottest loop, so per-op registry lookups are
        # kept off it.
        obs = telemetry_of(self.sim)
        self._m_verbs = {
            opcode: obs.counter("rdma.verbs", rnic=self.name, op=opcode.value)
            for opcode in WrOpcode
        }
        self._m_bytes = obs.counter("rdma.bytes_dma", rnic=self.name)
        self._m_cq_depth = obs.histogram("rdma.cq.depth")
        self._m_errors = obs.counter("rdma.wr_errors", rnic=self.name)
        self._m_chain = obs.histogram("rdma.wrs_per_doorbell")

    # -- submission ------------------------------------------------------

    def submit(self, qp: QueuePair, wr: WorkRequest) -> Event:
        """Queue a WR for processing; event fires with its Completion."""
        if params.RDX_HB_CHECK:
            hb.emit_post(self.sim, qp, wr, chain=None, signaled=True)
        done = self.sim.event()
        self.sim.spawn(self._process(qp, wr, done), name=f"wqe:{wr.opcode.value}")
        return done

    def _process(self, qp: QueuePair, wr: WorkRequest, done: Event):
        grant = self._pipeline.request()
        yield grant
        if params.RDX_FUZZ:
            # Schedule-fuzz choice point: stall this WR *while holding
            # its pipeline slot*, so WRs on sibling QPs overtake it --
            # true service reorder, not just added latency.
            extra = fuzz_hooks.perturb_us(
                self.sim, qp.fuzz_site("rnic.service"),
                params.RDX_FUZZ_WR_DELAY_US,
            )
            if extra:
                yield self.sim.timeout(extra)
        bytes_before = self.bytes_dma
        try:
            if qp.state is QpState.ERROR:
                completion = Completion(
                    wr_id=wr.wr_id,
                    opcode=wr.opcode.value,
                    status=WcStatus.WR_FLUSH_ERROR,
                    error="QP in error state",
                )
            else:
                completion = yield from self._execute(qp, wr)
        finally:
            self._pipeline.release(grant)
        if params.RDX_FUZZ:
            # Choice point two: delay CQE delivery after the remote
            # effect landed -- the window where "it completed" and "the
            # initiator knows it completed" diverge.
            extra = fuzz_hooks.perturb_us(
                self.sim, qp.fuzz_site("rnic.complete"),
                params.RDX_FUZZ_WR_DELAY_US,
            )
            if extra:
                yield self.sim.timeout(extra)
        qp.completed += 1
        self.wrs_processed += 1
        self._m_verbs[wr.opcode].inc()
        self._m_bytes.inc(self.bytes_dma - bytes_before)
        if completion.status is not WcStatus.SUCCESS:
            self._m_errors.inc()
        qp.cq.push(completion)
        self._m_cq_depth.observe(len(qp.cq))
        if params.RDX_HB_CHECK:
            hb.emit_comp(self.sim, qp, wr.wr_id, status=completion.status.value)
        done.succeed(completion)

    def submit_batch(self, qp: QueuePair, wrs: list[WorkRequest]) -> Event:
        """Queue a chained WR list; event fires with ONE Completion.

        Selective signaling: the chain retires under a single CQE
        carrying the last WR's id (``chained`` counts the batch).  Only
        WRITE chains are supported -- the deploy fast path is all
        one-sided WRITEs, and mixing opcodes would complicate the
        failure model for no caller.

        Observability: per-WR remote address ranges and signaled flags
        are surfaced as ``hb.post`` events (one per chained WR, not one
        per doorbell) -- only the tail WR is signaled, so nothing but
        the chain's single CQE can be mistaken for an ordering point.
        """
        for wr in wrs:
            if wr.opcode is not WrOpcode.RDMA_WRITE:
                raise RdmaError(
                    f"WR chains support RDMA_WRITE only, got {wr.opcode}"
                )
        chain = None
        if params.RDX_HB_CHECK:
            chain = hb.new_chain_id()
            for wr in wrs:
                hb.emit_post(
                    self.sim, qp, wr, chain=chain, signaled=wr is wrs[-1]
                )
        done = self.sim.event()
        self.sim.spawn(
            self._process_batch(qp, wrs, done, chain),
            name=f"wqe-chain:{len(wrs)}",
        )
        return done

    def _process_batch(
        self, qp: QueuePair, wrs: list[WorkRequest], done: Event, chain=None
    ):
        grant = self._pipeline.request()
        yield grant
        if params.RDX_FUZZ:
            # Chains perturb as one unit: the doorbell batch is a
            # single schedulable entity (SQ FIFO inside it is fixed).
            extra = fuzz_hooks.perturb_us(
                self.sim, qp.fuzz_site("rnic.service"),
                params.RDX_FUZZ_WR_DELAY_US,
            )
            if extra:
                yield self.sim.timeout(extra)
        bytes_before = self.bytes_dma
        try:
            if qp.state is QpState.ERROR:
                completion = Completion(
                    wr_id=wrs[-1].wr_id,
                    opcode=wrs[-1].opcode.value,
                    status=WcStatus.WR_FLUSH_ERROR,
                    error="QP in error state",
                    chained=len(wrs),
                )
            else:
                completion = yield from self._execute_chain(qp, wrs, chain)
        finally:
            self._pipeline.release(grant)
        if params.RDX_FUZZ:
            extra = fuzz_hooks.perturb_us(
                self.sim, qp.fuzz_site("rnic.complete"),
                params.RDX_FUZZ_WR_DELAY_US,
            )
            if extra:
                yield self.sim.timeout(extra)
        qp.completed += len(wrs)
        self.wrs_processed += len(wrs)
        self._m_verbs[wrs[0].opcode].inc(len(wrs))
        self._m_bytes.inc(self.bytes_dma - bytes_before)
        self._m_chain.observe(len(wrs))
        if completion.status is not WcStatus.SUCCESS:
            self._m_errors.inc()
        qp.cq.push(completion)
        self._m_cq_depth.observe(len(qp.cq))
        if params.RDX_HB_CHECK:
            hb.emit_comp(
                self.sim,
                qp,
                completion.wr_id,
                status=completion.status.value,
                chain=chain,
                chained=len(wrs),
            )
        done.succeed(completion)

    # -- execution ---------------------------------------------------------

    def _execute(self, qp: QueuePair, wr: WorkRequest):
        remote_qp = qp.remote
        assert remote_qp is not None
        remote_host = remote_qp.rnic.host

        # Doorbell + WQE fetch + initiator NIC processing.
        yield self.sim.timeout(params.RDMA_DOORBELL_US + params.RNIC_OP_OVERHEAD_US)

        try:
            self._check_reachable(remote_host)
            if wr.opcode is WrOpcode.RDMA_WRITE:
                result = yield from self._do_write(qp, wr, remote_qp, remote_host)
            elif wr.opcode is WrOpcode.RDMA_READ:
                result = yield from self._do_read(qp, wr, remote_qp, remote_host)
            elif wr.opcode in (WrOpcode.COMP_SWAP, WrOpcode.FETCH_ADD):
                result = yield from self._do_atomic(qp, wr, remote_qp, remote_host)
            elif wr.opcode is WrOpcode.SEND:
                result = yield from self._do_send(qp, wr, remote_qp, remote_host)
            else:
                raise RdmaError(f"unsupported opcode {wr.opcode}")
        except ProtectionError as err:
            qp.modify(QpState.ERROR)
            return Completion(
                wr_id=wr.wr_id,
                opcode=wr.opcode.value,
                status=WcStatus.REMOTE_ACCESS_ERROR,
                error=str(err),
            )
        except _Unreachable as err:
            # The target never ACKs: the initiator burns its RC
            # retransmit budget, then surfaces a retryable completion.
            # The QP stays usable -- upper layers decide whether to
            # retry (RetryPolicy) or declare the target dead.
            yield self.sim.timeout(params.RDMA_RETRY_TIMEOUT_US)
            return Completion(
                wr_id=wr.wr_id,
                opcode=wr.opcode.value,
                status=WcStatus.RETRY_EXC_ERROR,
                error=str(err),
            )
        return Completion(
            wr_id=wr.wr_id,
            opcode=wr.opcode.value,
            status=WcStatus.SUCCESS,
            byte_len=wr.wire_bytes(),
            result=result,
        )

    def _execute_chain(self, qp: QueuePair, wrs: list[WorkRequest], chain=None):
        """Service a WRITE chain as one pipelined stream.

        Cost model: one doorbell + one WQE-list fetch at the initiator,
        one first-byte latency + remote NIC overhead for the stream,
        then pure serialization per MTU chunk, then one ACK for the
        signaled tail.  Torn-write semantics are preserved exactly as
        in :meth:`_do_write`: chunks land one by one, reachability is
        re-checked per chunk, and a crash mid-chain strands the prefix
        in target DRAM while later WRs never execute.
        """
        remote_qp = qp.remote
        assert remote_qp is not None
        remote_host = remote_qp.rnic.host

        # One doorbell + one WQE-list fetch covers the whole chain --
        # the doorbell coalescing being measured.
        yield self.sim.timeout(
            params.RDMA_DOORBELL_US + params.RNIC_OP_OVERHEAD_US
        )
        landed = 0
        try:
            self._check_reachable(remote_host)
            # First byte of the stream reaches the target once.
            yield self.sim.timeout(
                params.NET_BASE_LATENCY_US + params.RNIC_OP_OVERHEAD_US
            )
            for wr in wrs:
                # Per-WR protection check happens when the target NIC
                # starts placing that WR, not up front: earlier WRs in
                # the chain have already landed by then.
                self._check_remote(
                    remote_qp, wr, len(wr.data), AccessFlags.REMOTE_WRITE
                )
                offset = 0
                while offset < len(wr.data):
                    chunk = wr.data[offset : offset + RNIC_MTU_BYTES]
                    yield self.sim.timeout(len(chunk) / params.RDMA_BANDWIDTH_BPUS)
                    self._check_reachable(remote_host)
                    remote_host.cache.dma_write(wr.remote_addr + offset, chunk)
                    self.bytes_dma += len(chunk)
                    offset += len(chunk)
                landed += 1
                if params.RDX_HB_CHECK:
                    self._emit_write_land(qp, wr, chain)
            # Single ACK for the signaled tail WR.
            yield self.sim.timeout(params.NET_BASE_LATENCY_US)
        except ProtectionError as err:
            qp.modify(QpState.ERROR)
            return Completion(
                wr_id=wrs[landed].wr_id,
                opcode=wrs[landed].opcode.value,
                status=WcStatus.REMOTE_ACCESS_ERROR,
                error=str(err),
                chained=len(wrs),
            )
        except _Unreachable as err:
            yield self.sim.timeout(params.RDMA_RETRY_TIMEOUT_US)
            return Completion(
                wr_id=wrs[min(landed, len(wrs) - 1)].wr_id,
                opcode=wrs[0].opcode.value,
                status=WcStatus.RETRY_EXC_ERROR,
                error=str(err),
                chained=len(wrs),
            )
        return Completion(
            wr_id=wrs[-1].wr_id,
            opcode=wrs[-1].opcode.value,
            status=WcStatus.SUCCESS,
            byte_len=sum(wr.wire_bytes() for wr in wrs),
            chained=len(wrs),
        )

    def _emit_write_land(self, qp: QueuePair, wr: WorkRequest, chain=None):
        """Record a fully landed WRITE; 8-byte writes carry the qword
        now in DRAM so reads-from edges can be recovered."""
        value = None
        if len(wr.data) == 8:
            value = unpack_qword(wr.data)
        hb.emit_land(self.sim, qp, wr, chain=chain, value=value)

    def _check_reachable(self, remote_host: Host) -> None:
        """Raise :class:`_Unreachable` when the target cannot ACK."""
        if remote_host.crashed:
            raise _Unreachable(f"{remote_host.name} crashed (no ACK)")
        fabric = self.host.fabric
        if (
            fabric is not None
            and remote_host.fabric is fabric
            and not fabric.reachable(self.host.name, remote_host.name)
        ):
            raise _Unreachable(
                f"{remote_host.name} unreachable from {self.host.name} "
                f"(link partitioned)"
            )

    def _check_remote(
        self, remote_qp: QueuePair, wr: WorkRequest, n: int, need: AccessFlags
    ):
        mr = remote_qp.pd.lookup_rkey(wr.rkey)
        if mr is None:
            raise ProtectionError(f"rkey {wr.rkey:#x} unknown at target")
        mr.check_remote(wr.remote_addr, n, need)
        return mr

    def _do_write(self, qp, wr: WorkRequest, remote_qp, remote_host: Host):
        self._check_remote(remote_qp, wr, len(wr.data), AccessFlags.REMOTE_WRITE)
        # First byte arrives after one-way latency + remote NIC overhead.
        yield self.sim.timeout(
            params.NET_BASE_LATENCY_US + params.RNIC_OP_OVERHEAD_US
        )
        # Chunked landing: each MTU lands after its serialization time,
        # so a large object is visible *partially written* in between.
        offset = 0
        while offset < len(wr.data):
            chunk = wr.data[offset : offset + RNIC_MTU_BYTES]
            yield self.sim.timeout(len(chunk) / params.RDMA_BANDWIDTH_BPUS)
            # A crash mid-transfer loses the unACKed remainder: chunks
            # already landed stay (DMA'd DRAM survives), the rest never
            # arrives -- exactly the torn state rdx_tx protects against.
            self._check_reachable(remote_host)
            remote_host.cache.dma_write(wr.remote_addr + offset, chunk)
            self.bytes_dma += len(chunk)
            offset += len(chunk)
        if params.RDX_HB_CHECK:
            self._emit_write_land(qp, wr)
        # ACK back to the initiator.
        yield self.sim.timeout(params.NET_BASE_LATENCY_US)
        return None

    def _do_read(self, qp, wr: WorkRequest, remote_qp, remote_host: Host):
        self._check_remote(remote_qp, wr, wr.length, AccessFlags.REMOTE_READ)
        yield self.sim.timeout(
            params.NET_BASE_LATENCY_US + params.RNIC_OP_OVERHEAD_US
        )
        data = remote_host.cache.dma_read(wr.remote_addr, wr.length)
        self.bytes_dma += wr.length
        if params.RDX_HB_CHECK:
            value = unpack_qword(data) if wr.length == 8 else None
            hb.emit_land(self.sim, qp, wr, value=value)
        # Response serialization + return latency.
        yield self.sim.timeout(
            wr.length / params.RDMA_BANDWIDTH_BPUS + params.NET_BASE_LATENCY_US
        )
        return data

    def _do_atomic(self, qp, wr: WorkRequest, remote_qp, remote_host: Host):
        if wr.remote_addr % 8:
            raise ProtectionError("atomic target must be 8-byte aligned")
        self._check_remote(remote_qp, wr, 8, AccessFlags.REMOTE_ATOMIC)
        # Atomics are RTT-bound, independent of payload.
        yield self.sim.timeout(params.RDMA_ATOMIC_RTT_US)
        original = unpack_qword(remote_host.memory.read(wr.remote_addr, 8))
        if wr.opcode is WrOpcode.COMP_SWAP:
            success = original == wr.compare
            if success:
                remote_host.cache.dma_write(wr.remote_addr, pack_qword(wr.swap_or_add))
            if params.RDX_HB_CHECK:
                hb.emit_land(
                    self.sim, qp, wr,
                    value=wr.swap_or_add if success else None,
                    success=success,
                )
        else:  # FETCH_ADD
            remote_host.cache.dma_write(
                wr.remote_addr, pack_qword(original + wr.swap_or_add)
            )
            if params.RDX_HB_CHECK:
                hb.emit_land(
                    self.sim, qp, wr,
                    value=original + wr.swap_or_add, success=True,
                )
        self.bytes_dma += 8
        return original

    def _do_send(self, qp, wr: WorkRequest, remote_qp, remote_host: Host):
        if not remote_qp.recv_queue:
            raise ProtectionError("receiver not ready (no posted recv)")
        addr, length = remote_qp.recv_queue.pop(0)
        if len(wr.data) > length:
            raise ProtectionError(
                f"SEND of {len(wr.data)} bytes into {length}-byte recv buffer"
            )
        yield self.sim.timeout(
            params.NET_BASE_LATENCY_US
            + params.RNIC_OP_OVERHEAD_US
            + len(wr.data) / params.RDMA_BANDWIDTH_BPUS
        )
        remote_host.cache.dma_write(addr, wr.data)
        self.bytes_dma += len(wr.data)
        remote_qp.cq.push(
            Completion(
                wr_id=wr.wr_id,
                opcode="recv",
                status=WcStatus.SUCCESS,
                byte_len=len(wr.data),
                result=addr,
            )
        )
        yield self.sim.timeout(params.NET_BASE_LATENCY_US)
        return None
