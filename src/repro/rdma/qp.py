"""Reliable-connected queue pairs and work requests (ibv_qp / ibv_wr)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import RdmaError
from repro.rdma.cq import CompletionQueue
from repro.rdma.mr import ProtectionDomain

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdma.rnic import Rnic

_qp_numbers = itertools.count(0x11)
_wr_ids = itertools.count(1)


class QpState(enum.Enum):
    """The RC QP state machine (RESET -> INIT -> RTR -> RTS -> ERROR)."""

    RESET = "reset"
    INIT = "init"
    RTR = "rtr"  # ready to receive
    RTS = "rts"  # ready to send
    ERROR = "error"


class WrOpcode(enum.Enum):
    """Work-request opcodes the simulator implements."""

    RDMA_WRITE = "write"
    RDMA_READ = "read"
    COMP_SWAP = "cas"
    FETCH_ADD = "fetch_add"
    SEND = "send"


@dataclass
class WorkRequest:
    """One posted work request.

    For WRITE/SEND, ``data`` carries the payload bytes.  For READ,
    ``length`` names how many bytes to fetch.  For atomics, ``compare``
    / ``swap_or_add`` are the 64-bit operands and the target must be an
    8-byte-aligned qword.
    """

    opcode: WrOpcode
    remote_addr: int = 0
    rkey: int = 0
    data: bytes = b""
    length: int = 0
    compare: int = 0
    swap_or_add: int = 0
    #: When True the RNIC orders this WR after all prior WRs (fence).
    fence: bool = False
    wr_id: int = field(default_factory=lambda: next(_wr_ids))
    #: Happens-before annotations attached by the sync layer when
    #: :data:`repro.params.RDX_HB_CHECK` is on (epoch tag, control-word
    #: label, transaction id, published range).  ``None`` in normal
    #: runs; the RNIC copies it into the ``hb.*`` trace events.
    hb: Optional[dict] = None

    def wire_bytes(self) -> int:
        """Payload bytes this WR moves on the wire (excludes headers)."""
        if self.opcode in (WrOpcode.RDMA_WRITE, WrOpcode.SEND):
            return len(self.data)
        if self.opcode is WrOpcode.RDMA_READ:
            return self.length
        return 8  # atomics move one qword


class QueuePair:
    """One side of a reliable connection.

    Created through :class:`~repro.rdma.verbs.VerbsContext`; wired to a
    peer with :func:`~repro.rdma.verbs.connect_qps`.
    """

    def __init__(self, rnic: "Rnic", pd: ProtectionDomain, cq: CompletionQueue):
        self.rnic = rnic
        self.pd = pd
        self.cq = cq
        self.qpn = next(_qp_numbers)
        #: Creation ordinal *within this RNIC*.  Unlike ``qpn`` (a
        #: process-global stream any earlier test may have advanced),
        #: the ordinal is a pure function of the simulation's own
        #: construction order -- the stable identity schedule-fuzz
        #: decision tapes key on.
        self.ordinal = rnic.qps_created
        rnic.qps_created += 1
        self.state = QpState.RESET
        self.remote: Optional["QueuePair"] = None
        self.posted = 0
        self.completed = 0
        #: Receive buffers posted for two-sided SENDs.
        self.recv_queue: list[tuple[int, int]] = []  # (addr, length)

    def __repr__(self) -> str:
        return f"QP(qpn={self.qpn:#x}, state={self.state.value})"

    def fuzz_site(self, stage: str) -> str:
        """A stable schedule-fuzz site key for this QP's ``stage``
        choice point, e.g. ``"rnic.service:h0.rnic.q1"``."""
        return f"{stage}:{self.rnic.name}.q{self.ordinal}"

    def modify(self, state: QpState) -> None:
        """Advance the state machine, validating legal transitions."""
        legal = {
            QpState.RESET: {QpState.INIT, QpState.ERROR},
            QpState.INIT: {QpState.RTR, QpState.ERROR, QpState.RESET},
            QpState.RTR: {QpState.RTS, QpState.ERROR, QpState.RESET},
            QpState.RTS: {QpState.ERROR, QpState.RESET},
            QpState.ERROR: {QpState.RESET},
        }
        if state not in legal[self.state]:
            raise RdmaError(f"illegal QP transition {self.state} -> {state}")
        self.state = state

    def post_recv(self, addr: int, length: int) -> None:
        """Post a receive buffer for an incoming SEND."""
        self.recv_queue.append((addr, length))

    def post_send(self, wr: WorkRequest):
        """Hand a work request to the RNIC; completion lands in ``cq``.

        Returns the event that fires when the completion is generated
        (convenience mirroring ibv_post_send + poll).
        """
        if self.state not in (QpState.RTS, QpState.ERROR):
            raise RdmaError(f"post_send on QP in state {self.state}")
        if self.remote is None:
            raise RdmaError("QP has no connected peer")
        # Posting to an ERROR-state QP is allowed; the RNIC flushes the
        # WR with WR_FLUSH_ERROR (ibverbs semantics).
        self.posted += 1
        return self.rnic.submit(self, wr)

    def post_send_batch(self, wrs: "list[WorkRequest]"):
        """Post a chained WR list: one doorbell, one signaled completion.

        Selective signaling -- only the last WR generates a CQE
        (``Completion.chained`` counts the whole batch).  The RNIC
        services the chain as one pipelined stream; a failure mid-chain
        surfaces in the single completion and the remaining WRs never
        execute (chunks already landed stay landed).  Returns the event
        that fires with that completion.
        """
        if not wrs:
            raise RdmaError("post_send_batch of empty WR list")
        if self.state not in (QpState.RTS, QpState.ERROR):
            raise RdmaError(f"post_send_batch on QP in state {self.state}")
        if self.remote is None:
            raise RdmaError("QP has no connected peer")
        self.posted += len(wrs)
        return self.rnic.submit_batch(self, wrs)
