"""Completion queues and work completions (ibv_cq / ibv_wc)."""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.core import Event, Simulator


class WcStatus(enum.Enum):
    """Work-completion status codes (subset of ibv_wc_status)."""

    SUCCESS = "success"
    REMOTE_ACCESS_ERROR = "remote_access_error"
    REMOTE_OP_ERROR = "remote_op_error"
    WR_FLUSH_ERROR = "wr_flush_error"
    #: Transport retries exhausted: the target never ACKed (crashed
    #: host or partitioned link).  Retryable at the initiator.
    RETRY_EXC_ERROR = "retry_exc_error"


@dataclass
class Completion:
    """One completion-queue entry."""

    wr_id: int
    opcode: str
    status: WcStatus
    byte_len: int = 0
    #: For READ/CAS/FETCH_ADD: the returned data / original value.
    result: Any = None
    error: str = ""
    #: Number of WRs this completion retires.  Selective signaling posts
    #: a chain of WRs with only the last one signaled, so one CQE can
    #: stand for a whole batch (``wr_id`` names the signaled WR).
    chained: int = 1


class CompletionQueue:
    """A FIFO of completions with blocking poll support."""

    def __init__(self, sim: Simulator, depth: int = 4096):
        self.sim = sim
        self.depth = depth
        self._entries: deque[Completion] = deque()
        self._waiters: deque[Event] = deque()
        self.total_completions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        """Add a completion (called by the RNIC)."""
        if len(self._entries) >= self.depth:
            # A full CQ on real hardware is a fatal async event; here we
            # surface it loudly rather than silently dropping.
            raise OverflowError("completion queue overrun")
        self.total_completions += 1
        if self._waiters:
            self._waiters.popleft().succeed(completion)
        else:
            self._entries.append(completion)

    def poll(self) -> Optional[Completion]:
        """Non-blocking poll: one completion or None."""
        if self._entries:
            return self._entries.popleft()
        return None

    def wait(self) -> Event:
        """Blocking poll: event fires with the next completion."""
        if self._entries:
            event = self.sim.event()
            event.succeed(self._entries.popleft())
            return event
        waiter = self.sim.event()
        self._waiters.append(waiter)
        return waiter
