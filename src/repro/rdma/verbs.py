"""The user-facing verbs API (ibv_open_device and friends).

Typical use::

    ctx = open_device(host)                      # ibv_open_device
    pd = ctx.alloc_pd()                          # ibv_alloc_pd
    mr = pd.reg_mr(addr, length, AccessFlags.REMOTE_WRITE | ...)
    cq = ctx.create_cq()
    qp = ctx.create_qp(pd, cq)
    connect_qps(qp_a, qp_b)                      # out-of-band exchange
    completion = yield qp.post_send(WorkRequest(...))
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RdmaError
from repro.net.topology import Host
from repro.rdma.cq import CompletionQueue
from repro.rdma.mr import AccessFlags, ProtectionDomain
from repro.rdma.qp import QpState, QueuePair
from repro.rdma.rnic import Rnic


class VerbsContext:
    """Per-host device context (ibv_context)."""

    def __init__(self, rnic: Rnic):
        self.rnic = rnic
        self.host = rnic.host
        self._pds: list[ProtectionDomain] = []
        self._qps: list[QueuePair] = []

    def alloc_pd(self) -> ProtectionDomain:
        pd = ProtectionDomain(self.rnic.name)
        self._pds.append(pd)
        return pd

    def create_cq(self, depth: int = 4096) -> CompletionQueue:
        return CompletionQueue(self.rnic.sim, depth=depth)

    def create_qp(self, pd: ProtectionDomain, cq: CompletionQueue) -> QueuePair:
        if pd.device_name != self.rnic.name:
            raise RdmaError(
                f"PD belongs to device {pd.device_name!r}, not {self.rnic.name!r}"
            )
        qp = QueuePair(self.rnic, pd, cq)
        qp.modify(QpState.INIT)
        self._qps.append(qp)
        return qp

    def destroy_qp(self, qp: QueuePair) -> None:
        """ibv_destroy_qp: drain to RESET and sever the connection."""
        if qp not in self._qps:
            raise RdmaError("QP does not belong to this context")
        if qp.state is not QpState.RESET:
            qp.modify(QpState.RESET)
        if qp.remote is not None and qp.remote.remote is qp:
            qp.remote.remote = None
        qp.remote = None
        self._qps.remove(qp)

    @property
    def qp_count(self) -> int:
        return len(self._qps)


def open_device(host: Host) -> VerbsContext:
    """Open (creating if needed) the host's RNIC and return a context."""
    if host.nic is None:
        Rnic(host)
    assert host.nic is not None
    return VerbsContext(host.nic)


def connect_qps(a: QueuePair, b: QueuePair) -> None:
    """Wire two INIT-state QPs into a reliable connection (RTR->RTS).

    Stands in for the out-of-band QP-number/GID exchange real
    deployments do over TCP or RDMA-CM.
    """
    if a.remote is not None or b.remote is not None:
        raise RdmaError("QP already connected")
    a.remote = b
    b.remote = a
    for qp in (a, b):
        qp.modify(QpState.RTR)
        qp.modify(QpState.RTS)
