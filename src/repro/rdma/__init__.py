"""RDMA verbs over the simulated fabric.

A faithful miniature of the ibverbs object model: devices (RNICs),
protection domains, registered memory regions with r/lkeys, reliable
connected queue pairs, completion queues, and one-sided WRITE / READ /
CAS / FETCH_ADD work requests.  One-sided operations DMA into the
target host's memory through its :class:`~repro.mem.cache.CacheModel`
-- consuming **zero** target-host CPU, which is the entire point of the
paper's agentless architecture.
"""

from repro.rdma.mr import AccessFlags, MemoryRegionMr, ProtectionDomain
from repro.rdma.qp import QueuePair, QpState, WorkRequest, WrOpcode
from repro.rdma.cq import Completion, CompletionQueue, WcStatus
from repro.rdma.rnic import Rnic
from repro.rdma.verbs import VerbsContext, connect_qps, open_device

__all__ = [
    "AccessFlags",
    "Completion",
    "CompletionQueue",
    "MemoryRegionMr",
    "ProtectionDomain",
    "QpState",
    "QueuePair",
    "Rnic",
    "VerbsContext",
    "WcStatus",
    "WorkRequest",
    "WrOpcode",
    "connect_qps",
    "open_device",
]
