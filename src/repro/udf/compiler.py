"""Compile UDF expression trees to the stack ISA.

The output module has **no external references** -- a UDF is fully
inline, which is the easy case of paper §3.3 ("if one extension is
fully inline ... RDX just needs to remotely write the binary").  Tests
use this contrast: UDF deploys skip linking, eBPF/Wasm deploys cannot.
"""

from __future__ import annotations

import itertools

from repro.errors import ReproError
from repro.udf.expr import Arg, BinOp, Call, Const, UdfExpr, node_count
from repro.udf.validator import udf_validate
from repro.wasm.module import WasmBuilder, WasmModule, WOp

_BINOP_TO_WOP = {
    "+": WOp.ADD,
    "-": WOp.SUB,
    "*": WOp.MUL,
    "/": WOp.DIV_U,
    "%": WOp.REM_U,
    "&": WOp.AND,
    "|": WOp.OR,
    "^": WOp.XOR,
    "<<": WOp.SHL,
    ">>": WOp.SHR_U,
}

_label_ids = itertools.count(1)


def compile_udf(
    expr: UdfExpr, row_width: int = 8, name: str = "udf"
) -> WasmModule:
    """Validate + compile ``expr`` into a stack-ISA module.

    Row columns arrive as locals [0, row_width); two scratch locals are
    appended for min/max lowering.
    """
    udf_validate(expr, row_width=row_width)
    builder = WasmBuilder(name=name, n_locals=row_width + 2)
    scratch_a = row_width
    scratch_b = row_width + 1
    _emit(builder, _rewrite(expr), scratch_a, scratch_b)
    builder.ret()
    module = builder.build()
    module_nodes = node_count(expr)
    if len(module.insns) < module_nodes:
        raise ReproError("compiler bug: fewer insns than AST nodes")
    return module


def _rewrite(expr: UdfExpr) -> UdfExpr:
    """Lower compound builtins to min/max primitives."""
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, Call):
        args = tuple(_rewrite(arg) for arg in expr.args)
        if expr.func == "abs":
            return args[0]  # unsigned identity
        if expr.func == "clamp":
            value, low, high = args
            return Call("min", Call("max", value, low), high)
        return Call(expr.func, *args)
    return expr


def _emit(builder: WasmBuilder, expr: UdfExpr, ta: int, tb: int) -> None:
    if isinstance(expr, Const):
        builder.push(expr.value)
        return
    if isinstance(expr, Arg):
        builder.get_local(expr.index)
        return
    if isinstance(expr, BinOp):
        _emit(builder, expr.left, ta, tb)
        _emit(builder, expr.right, ta, tb)
        builder.alu(_BINOP_TO_WOP[expr.op])
        return
    if isinstance(expr, Call):
        if expr.func in ("min", "max"):
            _emit_minmax(builder, expr, ta, tb)
            return
    raise ReproError(f"cannot compile node {expr!r}")


def _emit_minmax(builder: WasmBuilder, expr: Call, ta: int, tb: int) -> None:
    compare = WOp.LE_U if expr.func == "min" else WOp.GE_U
    uid = next(_label_ids)
    take_left = f"_{expr.func}_l{uid}"
    end = f"_{expr.func}_e{uid}"
    _emit(builder, expr.args[0], ta, tb)
    _emit(builder, expr.args[1], ta, tb)
    builder.set_local(tb)
    builder.set_local(ta)
    builder.get_local(ta)
    builder.get_local(tb)
    builder.alu(compare)
    builder.br_if(take_left)
    builder.get_local(tb)
    builder.br(end)
    builder.label(take_left)
    builder.get_local(ta)
    builder.label(end)
