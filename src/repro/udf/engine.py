"""A per-query UDF engine (BigQuery/PolarDB-style data processing).

Each query ships a UDF that must be injected before the scan runs and
detached after.  With agent-style local injection the validate+compile
cost lands on the engine host per query; with RDX the control plane
injects a cached binary in microseconds (§2.2 Obs 1's per-query
motivation, quantified by ``benchmarks/bench_udf_pipeline.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro import params
from repro.errors import WorkloadError
from repro.net.topology import Host
from repro.udf.compiler import compile_udf
from repro.udf.expr import UdfExpr, node_count, udf_eval
from repro.udf.validator import udf_validate
from repro.wasm.runtime import WasmRuntime

_query_ids = itertools.count(1)

#: Engine-side scan cost per row, microseconds.
ROW_SCAN_US = 0.05


@dataclass
class Query:
    """One scan query with an attached per-query UDF."""

    udf: UdfExpr
    table: str
    query_id: int = field(default_factory=lambda: next(_query_ids))


@dataclass
class QueryResult:
    """Query outcome + where the time went."""

    query_id: int
    values: list[int]
    inject_us: float
    scan_us: float

    @property
    def total_us(self) -> float:
        return self.inject_us + self.scan_us


class QueryEngine:
    """Executes queries on one host; injection mode is pluggable."""

    def __init__(self, host: Host, row_width: int = 8):
        self.host = host
        self.sim = host.sim
        self.row_width = row_width
        self.tables: dict[str, list[tuple[int, ...]]] = {}
        #: Compile cache used by the RDX path (validate once, §3.2).
        self._compiled: dict[str, object] = {}
        self.queries_run = 0

    def load_table(self, name: str, rows: Sequence[Sequence[int]]) -> None:
        """Register a table of fixed-width integer rows."""
        converted = []
        for row in rows:
            if len(row) != self.row_width:
                raise WorkloadError(
                    f"row width {len(row)} != engine width {self.row_width}"
                )
            converted.append(tuple(int(v) for v in row))
        self.tables[name] = converted

    # -- agent-style path: validate+compile locally, per query -----------------

    def run_query_local(self, query: Query) -> Generator:
        """Local injection: the engine host pays validate+compile."""
        rows = self._rows(query)
        mark = self.sim.now
        stats = udf_validate(query.udf, row_width=self.row_width)
        module = compile_udf(query.udf, row_width=self.row_width)
        inject_cost = (
            params.AGENT_FIXED_OVERHEAD_US
            + params.UDF_PER_NODE_US * stats.nodes
        )
        yield from self.host.cpu.run(inject_cost)
        inject_us = self.sim.now - mark
        result = yield from self._scan(query, module, rows)
        return QueryResult(
            query_id=query.query_id,
            values=result,
            inject_us=inject_us,
            scan_us=self.sim.now - mark - inject_us,
        )

    # -- RDX-style path: cached binary, microsecond injection -------------------

    def run_query_rdx(self, query: Query, udf_key: str) -> Generator:
        """RDX injection: compile once (keyed), then deploy in ~us.

        The remote validate/compile happens on first use of
        ``udf_key`` and is charged to *this* generator's caller (the
        control plane in a full deployment); repeats pay only the
        one-sided write time.
        """
        rows = self._rows(query)
        mark = self.sim.now
        module = self._compiled.get(udf_key)
        if module is None:
            udf_validate(query.udf, row_width=self.row_width)
            module = compile_udf(query.udf, row_width=self.row_width)
            self._compiled[udf_key] = module
        image_bytes = module.size_bytes() + module.size_bytes() // 4 + 12
        inject_cost = (
            params.RDX_DISPATCH_US
            + params.rdma_transfer_us(image_bytes)
            + params.RDX_TX_COMMIT_US
            + params.RDX_CC_EVENT_US
        )
        yield self.sim.timeout(inject_cost)
        inject_us = self.sim.now - mark
        result = yield from self._scan(query, module, rows)
        return QueryResult(
            query_id=query.query_id,
            values=result,
            inject_us=inject_us,
            scan_us=self.sim.now - mark - inject_us,
        )

    # -- shared -----------------------------------------------------------------

    def _rows(self, query: Query) -> list[tuple[int, ...]]:
        rows = self.tables.get(query.table)
        if rows is None:
            raise WorkloadError(f"unknown table {query.table!r}")
        return rows

    def _scan(self, query: Query, module, rows) -> Generator:
        runtime = WasmRuntime()
        values = []
        for row in rows:
            outcome = runtime.run(
                module.insns, ctx=None, args=tuple(row),
                n_locals=self.row_width + 2,
            )
            values.append(outcome.value)
        yield from self.host.cpu.run(ROW_SCAN_US * len(rows))
        self.queries_run += 1
        return values

    @staticmethod
    def reference(query: Query, rows: Sequence[Sequence[int]]) -> list[int]:
        """Pure-Python reference results for correctness checks."""
        return [udf_eval(query.udf, row) for row in rows]
