"""UDF expression trees (the user-facing surface).

A UDF is a pure integer expression over row columns::

    Call("clamp", BinOp("*", Arg(0), Const(3)), Const(0), Const(100))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import ReproError

_U32 = (1 << 32) - 1

#: Builtin function -> arity.
BUILTINS = {"abs": 1, "min": 2, "max": 2, "clamp": 3}

#: Binary operators supported in expressions.
BINOPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")


@dataclass(frozen=True)
class Const:
    value: int


@dataclass(frozen=True)
class Arg:
    """Row column reference (0-based)."""

    index: int


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "UdfExpr"
    right: "UdfExpr"


@dataclass(frozen=True)
class Call:
    """Builtin call; see :data:`BUILTINS`."""

    func: str
    args: tuple

    def __init__(self, func: str, *args: "UdfExpr"):
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(args))


UdfExpr = Union[Const, Arg, BinOp, Call]


def node_count(expr: UdfExpr) -> int:
    """Total AST nodes (drives the validation/compile cost model)."""
    if isinstance(expr, (Const, Arg)):
        return 1
    if isinstance(expr, BinOp):
        return 1 + node_count(expr.left) + node_count(expr.right)
    if isinstance(expr, Call):
        return 1 + sum(node_count(arg) for arg in expr.args)
    raise ReproError(f"unknown expression node {expr!r}")


def udf_eval(expr: UdfExpr, row: Sequence[int]) -> int:
    """Reference evaluator (32-bit unsigned semantics)."""
    if isinstance(expr, Const):
        return expr.value & _U32
    if isinstance(expr, Arg):
        if expr.index >= len(row):
            raise ReproError(f"arg {expr.index} beyond row width {len(row)}")
        return row[expr.index] & _U32
    if isinstance(expr, BinOp):
        left = udf_eval(expr.left, row)
        right = udf_eval(expr.right, row)
        return _apply(expr.op, left, right)
    if isinstance(expr, Call):
        values = [udf_eval(arg, row) for arg in expr.args]
        if expr.func == "abs":
            return values[0]  # unsigned domain: identity
        if expr.func == "min":
            return min(values)
        if expr.func == "max":
            return max(values)
        if expr.func == "clamp":
            return min(max(values[0], values[1]), values[2])
    raise ReproError(f"unknown expression node {expr!r}")


def _apply(op: str, left: int, right: int) -> int:
    if op == "+":
        return (left + right) & _U32
    if op == "-":
        return (left - right) & _U32
    if op == "*":
        return (left * right) & _U32
    if op == "/":
        return (left // right) & _U32 if right else 0
    if op == "%":
        return (left % right) & _U32 if right else left
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return (left << (right % 32)) & _U32
    if op == ">>":
        return left >> (right % 32)
    raise ReproError(f"unknown operator {op!r}")
