"""User-defined functions: the third extension family (paper §1, §2.1).

UDFs are short-lived, per-query extensions (BigQuery/PolarDB style):
a query arrives with its UDF attached, the engine validates + compiles
+ injects it, runs the scan, and detaches.  At that cadence the
injection path *is* the latency floor -- the paper's microsecond-scale
motivation (§2.2 Obs 1).

UDF expressions compile to the same stack ISA as Wasm filters
(:mod:`repro.wasm.module`), so the whole CodeFlow pipeline -- and the
torn-write/relocation machinery -- applies unchanged.
"""

from repro.udf.expr import Arg, BinOp, Call, Const, UdfExpr, udf_eval
from repro.udf.validator import UdfValidationStats, udf_validate
from repro.udf.compiler import compile_udf
from repro.udf.engine import Query, QueryEngine, QueryResult

__all__ = [
    "Arg",
    "BinOp",
    "Call",
    "Const",
    "Query",
    "QueryEngine",
    "QueryResult",
    "UdfExpr",
    "UdfValidationStats",
    "compile_udf",
    "udf_eval",
    "udf_validate",
]
