"""Static validation of UDF expressions before compilation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VerifierError
from repro.udf.expr import Arg, BINOPS, BinOp, BUILTINS, Call, Const, UdfExpr

MAX_NODES = 10_000
MAX_DEPTH = 64


@dataclass
class UdfValidationStats:
    nodes: int
    depth: int
    args_used: tuple[int, ...]


def udf_validate(expr: UdfExpr, row_width: int = 8) -> UdfValidationStats:
    """Validate ``expr``; raises :class:`VerifierError` on rejection.

    Checks node/depth budgets, operator and builtin validity (incl.
    arity), argument indices against the table's row width, and
    statically-zero divisors.
    """
    nodes = 0
    max_depth = 0
    args_used: set[int] = set()

    def walk(node: UdfExpr, depth: int) -> None:
        nonlocal nodes, max_depth
        nodes += 1
        max_depth = max(max_depth, depth)
        if nodes > MAX_NODES:
            raise VerifierError("UDF too large")
        if depth > MAX_DEPTH:
            raise VerifierError("UDF too deep")
        if isinstance(node, Const):
            if not -(2**31) <= node.value < 2**32:
                raise VerifierError(f"constant {node.value} out of range")
            return
        if isinstance(node, Arg):
            if not 0 <= node.index < row_width:
                raise VerifierError(
                    f"arg {node.index} outside row width {row_width}"
                )
            args_used.add(node.index)
            return
        if isinstance(node, BinOp):
            if node.op not in BINOPS:
                raise VerifierError(f"unknown operator {node.op!r}")
            if node.op in ("/", "%") and isinstance(node.right, Const):
                if node.right.value == 0:
                    raise VerifierError("division by constant zero")
            walk(node.left, depth + 1)
            walk(node.right, depth + 1)
            return
        if isinstance(node, Call):
            arity = BUILTINS.get(node.func)
            if arity is None:
                raise VerifierError(f"unknown builtin {node.func!r}")
            if len(node.args) != arity:
                raise VerifierError(
                    f"{node.func} expects {arity} args, got {len(node.args)}"
                )
            for arg in node.args:
                walk(arg, depth + 1)
            return
        raise VerifierError(f"unknown node type {type(node).__name__}")

    walk(expr, 1)
    return UdfValidationStats(
        nodes=nodes, depth=max_depth, args_used=tuple(sorted(args_used))
    )
