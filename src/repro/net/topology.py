"""Hosts and clusters mirroring the paper's §6 testbed.

A :class:`Host` bundles the per-server hardware: CPU cores, DRAM, the
cache model, and (attached later by :mod:`repro.rdma`) an RNIC.  A
:class:`Cluster` is a rack of hosts sharing one fabric, with one host
optionally designated as the RDX remote control plane.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import params
from repro.mem.cache import CacheModel
from repro.mem.memory import PhysicalMemory, RegionAllocator
from repro.sim.core import Simulator
from repro.sim.resources import CPU

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.fabric import Fabric
    from repro.rdma.rnic import Rnic


class Host:
    """One server: cores + DRAM + cache + (optional) RNIC.

    Memory is carved from a single physical bank via ``allocator`` so
    that sandboxes, scratchpads, and application heaps never overlap.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cores: int = params.HOST_CORES,
        dram_bytes: int = 256 * 2**20,
        cpki: float = 5.0,
        seed: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.cpu = CPU(sim, cores=cores, name=f"{name}.cpu")
        self.memory = PhysicalMemory(dram_bytes)
        self.allocator = RegionAllocator(
            self.memory.base, dram_bytes, label=f"{name}.dram"
        )
        self.cache = CacheModel(sim, self.memory, cpki=cpki, seed=seed)
        self.nic: Optional["Rnic"] = None
        self.fabric: Optional["Fabric"] = None
        self._handlers: dict[str, object] = {}
        #: Node-crash fault state: a crashed host stops ACKing; one-sided
        #: ops against it time out and messages to it are lost in flight.
        self.crashed = False
        self.crashed_at_us: Optional[float] = None

    def __repr__(self) -> str:
        return f"Host({self.name})"

    def crash(self) -> None:
        """Fail-stop this host (fault-injection hook)."""
        if not self.crashed:
            self.crashed = True
            self.crashed_at_us = self.sim.now

    def recover(self) -> None:
        """Bring the host back after a crash (memory survives, as DRAM
        in the simulator is never cleared -- model of a warm reboot)."""
        self.crashed = False

    def attach_fabric(self, fabric: "Fabric") -> None:
        self.fabric = fabric

    def register_handler(self, channel: str, handler) -> None:
        """Register a callable for messages addressed to ``channel``."""
        self._handlers[channel] = handler

    def handler_for(self, channel: str):
        return self._handlers.get(channel)


class Cluster:
    """A rack of hosts plus, optionally, a dedicated control-plane host.

    >>> from repro.sim import Simulator
    >>> cluster = Cluster(Simulator(), n_hosts=3)
    >>> [h.name for h in cluster.hosts]
    ['node0', 'node1', 'node2']
    """

    def __init__(
        self,
        sim: Simulator,
        n_hosts: int,
        cores_per_host: int = params.HOST_CORES,
        dram_bytes: int = 256 * 2**20,
        cpki: float = 5.0,
        with_control_host: bool = True,
        seed: int = 0,
    ):
        from repro.net.fabric import Fabric

        if n_hosts < 1:
            raise ValueError("cluster needs at least one host")
        self.sim = sim
        self.fabric = Fabric(sim)
        self.hosts: list[Host] = []
        for index in range(n_hosts):
            host = Host(
                sim,
                f"node{index}",
                cores=cores_per_host,
                dram_bytes=dram_bytes,
                cpki=cpki,
                seed=seed * 7919 + index,
            )
            self.fabric.attach(host)
            self.hosts.append(host)
        self.control_host: Optional[Host] = None
        if with_control_host:
            self.control_host = Host(
                sim,
                "control",
                cores=cores_per_host,
                dram_bytes=dram_bytes,
                cpki=cpki,
                seed=seed * 7919 + n_hosts,
            )
            self.fabric.attach(self.control_host)

    def host(self, name: str) -> Host:
        """Look up a host (including the control host) by name."""
        for candidate in self.all_hosts():
            if candidate.name == name:
                return candidate
        raise KeyError(f"no host named {name!r}")

    def all_hosts(self) -> list[Host]:
        hosts = list(self.hosts)
        if self.control_host is not None:
            hosts.append(self.control_host)
        return hosts
