"""Network substrate: hosts, rack fabric, message delivery, and RPC.

The fabric carries two traffic classes used throughout the paper:

* control RPCs (TCP/gRPC-like; traverse the kernel stack and consume
  host CPU on both ends) -- the agent baseline's transport, and
* RDMA verbs traffic (kernel-bypass; consumes RNIC cycles only) --
  RDX's transport, layered on top by :mod:`repro.rdma`.
"""

from repro.net.topology import Cluster, Host
from repro.net.fabric import Fabric, Message
from repro.net.rpc import RpcEndpoint, RpcError, RpcRequest, RpcResponse

__all__ = [
    "Cluster",
    "Fabric",
    "Host",
    "Message",
    "RpcEndpoint",
    "RpcError",
    "RpcRequest",
    "RpcResponse",
]
