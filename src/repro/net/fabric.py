"""In-rack message fabric with latency + bandwidth accounting.

One switch, full bisection: any host pair is one switched hop apart.
The fabric delivers :class:`Message` objects after propagation plus
serialization delay; per-link queueing is modeled by serializing each
sender's egress port.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import params
from repro.errors import ReproError
from repro.net.topology import Host
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource

_message_ids = itertools.count(1)


@dataclass
class Message:
    """One fabric datagram."""

    src: str
    dst: str
    channel: str
    size_bytes: int
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))


class Fabric:
    """Single-rack switching fabric shared by every attached host."""

    def __init__(
        self,
        sim: Simulator,
        base_latency_us: float = params.NET_BASE_LATENCY_US,
        bandwidth_bpus: float = params.RDMA_BANDWIDTH_BPUS,
    ):
        self.sim = sim
        self.base_latency_us = base_latency_us
        self.bandwidth_bpus = bandwidth_bpus
        self._hosts: dict[str, Host] = {}
        self._egress: dict[str, Resource] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    def attach(self, host: Host) -> None:
        """Connect a host to the rack switch."""
        if host.name in self._hosts:
            raise ReproError(f"host {host.name!r} already attached")
        self._hosts[host.name] = host
        self._egress[host.name] = Resource(self.sim, capacity=1)
        host.attach_fabric(self)

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise ReproError(f"unknown host {name!r}") from None

    def send(self, message: Message) -> Event:
        """Transmit ``message``; the returned event fires at delivery.

        The event's value is the message.  Delivery also invokes the
        destination's registered channel handler, if any.
        """
        if message.dst not in self._hosts:
            raise ReproError(f"unknown destination {message.dst!r}")
        if message.src not in self._hosts:
            raise ReproError(f"unknown source {message.src!r}")
        if message.size_bytes < 0:
            raise ReproError("negative message size")
        done = self.sim.event()
        self.sim.spawn(self._transmit(message, done), name=f"xmit#{message.msg_id}")
        return done

    def _transmit(self, message: Message, done: Event):
        egress = self._egress[message.src]
        grant = egress.request()
        yield grant
        try:
            serialize_us = message.size_bytes / self.bandwidth_bpus
            yield self.sim.timeout(serialize_us)
        finally:
            egress.release(grant)
        yield self.sim.timeout(self.base_latency_us)
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        handler = self._hosts[message.dst].handler_for(message.channel)
        if handler is not None:
            result = handler(message)
            # Handlers may return a generator to run as a process.
            if hasattr(result, "send") and hasattr(result, "throw"):
                self.sim.spawn(result, name=f"handler:{message.channel}")
        done.succeed(message)

    def one_way_delay_us(self, size_bytes: int) -> float:
        """Closed-form minimum delivery time for a message (no queueing)."""
        return self.base_latency_us + size_bytes / self.bandwidth_bpus
