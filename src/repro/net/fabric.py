"""In-rack message fabric with latency + bandwidth accounting.

One switch, full bisection: any host pair is one switched hop apart.
The fabric delivers :class:`Message` objects after propagation plus
serialization delay; per-link queueing is modeled by serializing each
sender's egress port.

The fabric is also the home of the *network* half of the fault model:
node crashes (a crashed host stops ACKing; in-flight messages to it
are lost), link partitions between host pairs, and per-host extra
delay.  Waiters on a dropped message get
:class:`~repro.errors.HostUnreachable` thrown into them rather than
hanging forever.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro import params
from repro.errors import HostUnreachable, ReproError
from repro.fuzz import hooks as fuzz_hooks
from repro.net.topology import Host
from repro.obs import telemetry_of
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource


@dataclass
class Message:
    """One fabric datagram.

    ``msg_id`` is assigned by the owning :class:`Fabric` at send time
    (per-fabric counter), so two simulators in one process produce
    identical, independent ID sequences -- trace output stays
    deterministic regardless of test ordering.
    """

    src: str
    dst: str
    channel: str
    size_bytes: int
    payload: Any = None
    msg_id: int = 0


class Fabric:
    """Single-rack switching fabric shared by every attached host."""

    def __init__(
        self,
        sim: Simulator,
        base_latency_us: float = params.NET_BASE_LATENCY_US,
        bandwidth_bpus: float = params.RDMA_BANDWIDTH_BPUS,
    ):
        self.sim = sim
        self.base_latency_us = base_latency_us
        self.bandwidth_bpus = bandwidth_bpus
        self._hosts: dict[str, Host] = {}
        self._egress: dict[str, Resource] = {}
        self._message_ids = itertools.count(1)
        #: Severed host pairs (unordered) -- see :meth:`partition`.
        self._partitions: set[frozenset[str]] = set()
        #: Extra one-way delay per host (slow/degraded link model).
        self._extra_delay_us: dict[str, float] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    def attach(self, host: Host) -> None:
        """Connect a host to the rack switch."""
        if host.name in self._hosts:
            raise ReproError(f"host {host.name!r} already attached")
        self._hosts[host.name] = host
        self._egress[host.name] = Resource(self.sim, capacity=1)
        host.attach_fabric(self)

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise ReproError(f"unknown host {name!r}") from None

    # -- fault model -----------------------------------------------------

    def crash_host(self, name: str) -> None:
        """Fail-stop ``name``: no ACKs, in-flight messages to it lost."""
        self.host(name).crash()

    def recover_host(self, name: str) -> None:
        self.host(name).recover()

    def partition(self, a: str, b: str) -> None:
        """Sever the link between hosts ``a`` and ``b`` (both ways)."""
        self.host(a), self.host(b)  # validate names
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore a previously severed link (no-op if not severed)."""
        self._partitions.discard(frozenset((a, b)))

    def set_extra_delay(self, name: str, extra_us: float) -> None:
        """Add ``extra_us`` one-way delay to every message touching
        ``name`` (0 clears it)."""
        if extra_us < 0:
            raise ReproError(f"negative extra delay: {extra_us}")
        self.host(name)  # validate
        if extra_us == 0:
            self._extra_delay_us.pop(name, None)
        else:
            self._extra_delay_us[name] = extra_us

    def reachable(self, src: str, dst: str) -> bool:
        """Can a message currently get from ``src`` to ``dst``?"""
        if self.host(src).crashed or self.host(dst).crashed:
            return False
        return frozenset((src, dst)) not in self._partitions

    def extra_delay_us(self, src: str, dst: str) -> float:
        return self._extra_delay_us.get(src, 0.0) + self._extra_delay_us.get(
            dst, 0.0
        )

    # -- transmission ----------------------------------------------------

    def send(self, message: Message) -> Event:
        """Transmit ``message``; the returned event fires at delivery.

        The event's value is the message.  Delivery also invokes the
        destination's registered channel handler, if any.  If the
        destination crashes or the link partitions while the message
        is in flight, the event *fails* with
        :class:`~repro.errors.HostUnreachable` so waiters unblock.
        """
        if message.dst not in self._hosts:
            raise ReproError(f"unknown destination {message.dst!r}")
        if message.src not in self._hosts:
            raise ReproError(f"unknown source {message.src!r}")
        if message.size_bytes < 0:
            raise ReproError("negative message size")
        if not message.msg_id:
            message.msg_id = next(self._message_ids)
        done = self.sim.event()
        self.sim.spawn(self._transmit(message, done), name=f"xmit#{message.msg_id}")
        return done

    def _transmit(self, message: Message, done: Event):
        egress = self._egress[message.src]
        grant = egress.request()
        yield grant
        try:
            serialize_us = message.size_bytes / self.bandwidth_bpus
            yield self.sim.timeout(serialize_us)
        finally:
            egress.release(grant)
        propagation_us = self.base_latency_us + self.extra_delay_us(
            message.src, message.dst
        )
        if params.RDX_FUZZ:
            # Schedule-fuzz choice point: stretch propagation after the
            # egress port is released, so a later message from the same
            # sender can arrive first -- in-fabric reorder, which RoCE
            # permits across flows and the control plane must tolerate.
            propagation_us += fuzz_hooks.perturb_us(
                self.sim, f"fabric.delay:{message.src}",
                params.RDX_FUZZ_NET_DELAY_US,
            )
        yield self.sim.timeout(propagation_us)
        # Reachability is evaluated at delivery time: a destination that
        # crashed (or a link that partitioned) while the bytes were in
        # flight eats the message.
        if not self.reachable(message.src, message.dst):
            self.messages_dropped += 1
            telemetry_of(self.sim).counter(
                "net.fabric.dropped", dst=message.dst
            ).inc()
            done.fail(
                HostUnreachable(
                    f"message #{message.msg_id} {message.src}->{message.dst} "
                    f"lost (destination crashed or link partitioned)"
                )
            )
            return
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        handler = self._hosts[message.dst].handler_for(message.channel)
        if handler is not None:
            result = handler(message)
            # Handlers may return a generator to run as a process.
            if hasattr(result, "send") and hasattr(result, "throw"):
                self.sim.spawn(result, name=f"handler:{message.channel}")
        done.succeed(message)

    def one_way_delay_us(self, size_bytes: int) -> float:
        """Closed-form minimum delivery time for a message (no queueing)."""
        return self.base_latency_us + size_bytes / self.bandwidth_bpus
