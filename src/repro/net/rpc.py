"""TCP/gRPC-style request/response RPC over the fabric.

This is the *agent baseline's* control transport: unlike RDMA verbs it
traverses the kernel network stack, so every call charges fixed stack
latency plus host-CPU time at the receiver (paper §2.2, Obs 3 -- this
is one of the contention channels between control and data paths).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro import params
from repro.errors import ReproError
from repro.net.fabric import Fabric, Message
from repro.net.topology import Host
from repro.sim.core import Event

_rpc_ids = itertools.count(1)


class RpcError(ReproError):
    """The remote handler raised, or the method is unknown."""


@dataclass
class RpcRequest:
    """One in-flight RPC call."""

    method: str
    args: Any
    size_bytes: int
    reply_to: str
    rpc_id: int = field(default_factory=lambda: next(_rpc_ids))


@dataclass
class RpcResponse:
    """The reply to an :class:`RpcRequest`."""

    rpc_id: int
    value: Any = None
    error: Optional[str] = None
    size_bytes: int = 128


class RpcEndpoint:
    """Per-host RPC server + client stub.

    Handlers are generator functions ``handler(args) -> value`` run as
    simulation processes on the host, so they can consume CPU time via
    ``yield host.cpu.run(...)``.
    """

    def __init__(self, host: Host, service: str):
        if host.fabric is None:
            raise ReproError(f"host {host.name} is not attached to a fabric")
        self.host = host
        self.service = service
        self.channel = f"rpc:{service}"
        self._methods: dict[str, Callable[[Any], Generator]] = {}
        self._pending: dict[int, Event] = {}
        host.register_handler(self.channel, self._on_message)
        self.calls_served = 0

    def register(self, method: str, handler: Callable[[Any], Generator]) -> None:
        """Expose ``handler`` (a generator function) as ``method``."""
        self._methods[method] = handler

    # -- client side ---------------------------------------------------

    def call(
        self,
        dst: Host,
        service: str,
        method: str,
        args: Any = None,
        size_bytes: int = 256,
    ) -> Event:
        """Invoke ``service.method`` on ``dst``; event fires with the value.

        Raises :class:`RpcError` (into the awaiting process) if the
        remote handler failed.
        """
        fabric = self.host.fabric
        assert fabric is not None
        done = self.host.sim.event()
        request = RpcRequest(
            method=method,
            args=args,
            size_bytes=size_bytes,
            reply_to=self.channel,
        )
        self._pending[request.rpc_id] = done
        message = Message(
            src=self.host.name,
            dst=dst.name,
            channel=f"rpc:{service}",
            size_bytes=size_bytes,
            payload=request,
        )
        self.host.sim.spawn(
            self._send_after_stack_delay(fabric, message),
            name=f"rpc-call:{method}",
        )
        return done

    def _send_after_stack_delay(self, fabric: Fabric, message: Message):
        # Sender-side kernel stack + serialization cost.
        yield self.host.sim.timeout(params.RPC_BASE_LATENCY_US / 2)
        yield fabric.send(message)

    # -- server side ---------------------------------------------------

    def _on_message(self, message: Message):
        payload = message.payload
        if isinstance(payload, RpcResponse):
            return self._complete(payload)
        if isinstance(payload, RpcRequest):
            return self._serve(message.src, payload)
        raise RpcError(f"unexpected payload on {self.channel}: {payload!r}")

    def _complete(self, response: RpcResponse):
        waiter = self._pending.pop(response.rpc_id, None)
        if waiter is None:
            return None
        if response.error is not None:
            waiter.fail(RpcError(response.error))
        else:
            waiter.succeed(response.value)
        return None

    def _serve(self, src_name: str, request: RpcRequest) -> Generator:
        # Receiver-side kernel stack cost before the handler runs.
        yield self.host.sim.timeout(params.RPC_BASE_LATENCY_US / 2)
        handler = self._methods.get(request.method)
        response = RpcResponse(rpc_id=request.rpc_id)
        if handler is None:
            response.error = f"{self.service}: no method {request.method!r}"
        else:
            try:
                result = handler(request.args)
                if hasattr(result, "send") and hasattr(result, "throw"):
                    proc = self.host.sim.spawn(
                        result, name=f"rpc-serve:{request.method}"
                    )
                    yield proc
                    response.value = proc.value
                else:
                    response.value = result
            except ReproError as err:
                response.error = str(err)
        self.calls_served += 1
        fabric = self.host.fabric
        assert fabric is not None
        yield fabric.send(
            Message(
                src=self.host.name,
                dst=src_name,
                channel=request.reply_to,
                size_bytes=response.size_bytes,
                payload=response,
            )
        )
