"""Fixed-width encode/decode helpers for in-memory structures.

Everything the control plane writes into remote memory (XState headers,
Meta-XState index entries, hook-table slots, GOT entries) is encoded
little-endian with these helpers so both the local sandbox and the
remote control plane agree on layout.
"""

from __future__ import annotations

import struct

from repro.mem.memory import PhysicalMemory

_QWORD = struct.Struct("<Q")
_U32 = struct.Struct("<I")


def pack_qword(value: int) -> bytes:
    """Encode an unsigned 64-bit little-endian qword."""
    return _QWORD.pack(value & 0xFFFFFFFFFFFFFFFF)


def unpack_qword(data: bytes) -> int:
    """Decode an unsigned 64-bit little-endian qword."""
    return _QWORD.unpack_from(data)[0]


def pack_u32(value: int) -> bytes:
    """Encode an unsigned 32-bit little-endian word."""
    return _U32.pack(value & 0xFFFFFFFF)


def unpack_u32(data: bytes) -> int:
    """Decode an unsigned 32-bit little-endian word."""
    return _U32.unpack_from(data)[0]


def qword_at(memory: PhysicalMemory, addr: int) -> int:
    """Read a qword directly from DRAM (no cache semantics)."""
    return unpack_qword(memory.read(addr, 8))


def store_qword(memory: PhysicalMemory, addr: int, value: int) -> None:
    """Write a qword directly to DRAM (no cache semantics)."""
    memory.write(addr, pack_qword(value))
