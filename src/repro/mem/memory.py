"""Byte-addressable simulated DRAM with a first-fit region allocator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MemoryError_


@dataclass(frozen=True)
class MemoryRegion:
    """A [addr, addr+size) window of physical memory."""

    addr: int
    size: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int, n: int = 1) -> bool:
        """True if [addr, addr+n) lies entirely inside this region."""
        return self.addr <= addr and addr + n <= self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        return self.addr < other.end and other.addr < self.end


class PhysicalMemory:
    """A contiguous bank of simulated DRAM, sparsely backed.

    Addresses are plain ints starting at ``base``.  Reads/writes are
    instantaneous data moves (timing is charged by the caller: the CPU
    model, the RNIC DMA engine, or the cache model).

    Backing storage is demand-paged (4 KiB pages in a dict), so large
    simulated DRAM banks across many hosts cost real memory only for
    the pages actually touched.
    """

    PAGE = 4096

    def __init__(self, size: int, base: int = 0x1000):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.base = base
        self.size = size
        self._pages: dict[int, bytearray] = {}
        #: Monotone per-write counter, useful for staleness assertions.
        self.write_epoch = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def _check(self, addr: int, n: int) -> int:
        if n < 0:
            raise MemoryError_(f"negative access length {n}")
        if addr < self.base or addr + n > self.end:
            raise MemoryError_(
                f"access [{addr:#x}, {addr + n:#x}) outside "
                f"[{self.base:#x}, {self.end:#x})"
            )
        return addr - self.base

    def read(self, addr: int, n: int) -> bytes:
        """Read ``n`` bytes at ``addr`` (bounds-checked)."""
        off = self._check(addr, n)
        if n == 0:
            return b""
        first, last = off // self.PAGE, (off + n - 1) // self.PAGE
        if first == last:
            page = self._pages.get(first)
            start = off % self.PAGE
            if page is None:
                return bytes(n)
            return bytes(page[start : start + n])
        out = bytearray()
        cursor = off
        remaining = n
        while remaining > 0:
            page_no, start = divmod(cursor, self.PAGE)
            take = min(self.PAGE - start, remaining)
            page = self._pages.get(page_no)
            if page is None:
                out += bytes(take)
            else:
                out += page[start : start + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` (bounds-checked)."""
        off = self._check(addr, len(data))
        cursor = off
        index = 0
        while index < len(data):
            page_no, start = divmod(cursor, self.PAGE)
            take = min(self.PAGE - start, len(data) - index)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self.PAGE)
                self._pages[page_no] = page
            page[start : start + take] = data[index : index + take]
            cursor += take
            index += take
        self.write_epoch += 1

    def fill(self, addr: int, n: int, byte: int = 0) -> None:
        """memset ``n`` bytes at ``addr``."""
        self._check(addr, n)
        if byte == 0:
            # Drop fully covered pages back to the zero default.
            cursor = addr - self.base
            end = cursor + n
            while cursor < end:
                page_no, start = divmod(cursor, self.PAGE)
                take = min(self.PAGE - start, end - cursor)
                if take == self.PAGE:
                    self._pages.pop(page_no, None)
                else:
                    page = self._pages.get(page_no)
                    if page is not None:
                        page[start : start + take] = bytes(take)
                cursor += take
            self.write_epoch += 1
            return
        self.write(addr, bytes([byte]) * n)


class RegionAllocator:
    """First-fit allocator over a :class:`PhysicalMemory` window.

    Used both for host-wide carve-outs (sandbox code pages, scratchpads)
    and inside the XState scratchpad (paper §3.4), where its free-list
    behaviour is exactly what the Meta-XState indirection manages.
    """

    def __init__(self, base: int, size: int, label: str = "heap"):
        if size <= 0:
            raise ValueError("allocator window must be positive")
        self.base = base
        self.size = size
        self.label = label
        # Free list of (addr, size), sorted by addr, coalesced.
        self._free: list[tuple[int, int]] = [(base, size)]
        self._live: dict[int, int] = {}

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def bytes_free(self) -> int:
        return sum(size for _addr, size in self._free)

    @property
    def bytes_live(self) -> int:
        return sum(self._live.values())

    @property
    def live_count(self) -> int:
        return len(self._live)

    @staticmethod
    def _align_up(addr: int, align: int) -> int:
        return (addr + align - 1) & ~(align - 1)

    def alloc(self, size: int, align: int = 8) -> int:
        """Allocate ``size`` bytes aligned to ``align``; returns address.

        Raises :class:`MemoryError_` when no free range fits.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        for index, (addr, free_size) in enumerate(self._free):
            start = self._align_up(addr, align)
            pad = start - addr
            if free_size < pad + size:
                continue
            remainder = free_size - pad - size
            pieces = []
            if pad:
                pieces.append((addr, pad))
            if remainder:
                pieces.append((start + size, remainder))
            self._free[index : index + 1] = pieces
            self._live[start] = size
            return start
        raise MemoryError_(
            f"{self.label}: out of space (want {size}, free {self.bytes_free})"
        )

    def reserve(self, addr: int, size: int) -> int:
        """Claim a specific ``[addr, addr+size)`` range from the free list.

        For adopting allocations that already exist in the underlying
        memory -- e.g. a restarted control plane discovering live code
        images on a target it must re-own without moving them.  Raises
        :class:`MemoryError_` when the range is not wholly free.
        """
        if size <= 0:
            raise ValueError("reservation size must be positive")
        for index, (start, free_size) in enumerate(self._free):
            if start <= addr and addr + size <= start + free_size:
                pieces = []
                if addr > start:
                    pieces.append((start, addr - start))
                tail = start + free_size - (addr + size)
                if tail:
                    pieces.append((addr + size, tail))
                self._free[index : index + 1] = pieces
                self._live[addr] = size
                return addr
        raise MemoryError_(
            f"{self.label}: cannot reserve {addr:#x}+{size} "
            "(overlaps a live allocation or lies outside the window)"
        )

    def free(self, addr: int) -> None:
        """Release a previous allocation (must be an exact start address)."""
        size = self._live.pop(addr, None)
        if size is None:
            raise MemoryError_(f"{self.label}: free of unallocated {addr:#x}")
        self._free.append((addr, size))
        self._free.sort()
        self._coalesce()

    def _coalesce(self) -> None:
        merged: list[tuple[int, int]] = []
        for addr, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                prev_addr, prev_size = merged[-1]
                merged[-1] = (prev_addr, prev_size + size)
            else:
                merged.append((addr, size))
        self._free = merged

    def size_of(self, addr: int) -> Optional[int]:
        """Size of the live allocation at ``addr``, or None."""
        return self._live.get(addr)
