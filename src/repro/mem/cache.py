"""CPU cache model with RNIC/DMA incoherence (paper §3.5, Fig 5).

Real x86 servers keep RNIC DMA coherent through DDIO only for a small
LLC slice, and even then the *polling core's* private cache can hold a
stale copy of a line the RNIC just wrote to DRAM.  The paper measures
the resulting "incoherence window": the time between a one-sided RDMA
write landing and the CPU actually observing the new bytes.

We model the mechanism directly:

* CPU loads snapshot the line's bytes into the cache and assign it a
  stochastic eviction deadline drawn from the workload's cache-pressure
  level (CPKI -- cache misses per 1000 instructions).
* DMA writes update DRAM only; cached snapshots go stale.
* A CPU read hits the (possibly stale) snapshot until the line's
  eviction deadline passes or the line is explicitly flushed
  (``clflush``), which is what ``rdx_cc_event`` triggers remotely.

With eviction modeled as a Poisson process of rate
``CPKI/1000 * insn_rate / effective_lines``, the median incoherence
window at CPKI=5 calibrates to ~746 us and falls as ~1/CPKI -- matching
Fig 5's "vanilla RDMA" curve, while an explicit flush gives the ~2 us
flat RDX line.
"""

from __future__ import annotations

import math
from repro.sim.rand import derive_rng
from dataclasses import dataclass, field

from repro import params
from repro.mem.memory import PhysicalMemory
from repro.sim.core import Simulator


@dataclass
class CacheStats:
    """Hit/miss/staleness counters for one cache model."""

    loads: int = 0
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    flushes: int = 0
    evictions_observed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.loads if self.loads else 0.0


@dataclass
class _Line:
    snapshot: bytes
    loaded_at: float
    evict_at: float
    dirty: bool = False
    stale: bool = False


class CacheModel:
    """Per-host CPU cache with CPKI-driven eviction pressure.

    All CPU-side reads of DMA-shared memory should go through
    :meth:`cpu_read`; the RNIC writes through :meth:`dma_write`.
    """

    def __init__(
        self,
        sim: Simulator,
        memory: PhysicalMemory,
        cpki: float = 5.0,
        seed: int = 0,
        line_bytes: int = params.CACHE_LINE_BYTES,
        effective_lines: int = params.CACHE_EFFECTIVE_LINES,
    ):
        if cpki < 0:
            raise ValueError("CPKI must be non-negative")
        self.sim = sim
        self.memory = memory
        self.line_bytes = line_bytes
        self.effective_lines = effective_lines
        self._rng = derive_rng(seed, "mem.cache")
        self._lines: dict[int, _Line] = {}
        self.stats = CacheStats()
        self._cpki = cpki

    @property
    def cpki(self) -> float:
        """Cache misses per 1000 instructions of the running workload."""
        return self._cpki

    @cpki.setter
    def cpki(self, value: float) -> None:
        if value < 0:
            raise ValueError("CPKI must be non-negative")
        self._cpki = value

    def _eviction_rate(self) -> float:
        """Per-line eviction rate (events per microsecond)."""
        if self._cpki == 0:
            return 0.0
        fills_per_us = self._cpki / 1000.0 * params.CPU_INSN_PER_US
        return fills_per_us / self.effective_lines

    def _sample_residency(self) -> float:
        """Draw how long a freshly loaded line survives before eviction."""
        rate = self._eviction_rate()
        if rate <= 0:
            return math.inf
        return self._rng.expovariate(rate)

    def _line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    # -- CPU side ------------------------------------------------------

    def cpu_read(self, addr: int, n: int) -> bytes:
        """Read ``n`` bytes as the CPU sees them (possibly stale)."""
        out = bytearray()
        cursor = addr
        remaining = n
        while remaining > 0:
            line_addr = self._line_addr(cursor)
            offset = cursor - line_addr
            take = min(self.line_bytes - offset, remaining)
            line = self._load_line(line_addr)
            out += line.snapshot[offset : offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def cpu_write(self, addr: int, data: bytes) -> None:
        """CPU store: write-through to DRAM and refresh the snapshot."""
        self.memory.write(addr, data)
        cursor = addr
        remaining = len(data)
        while remaining > 0:
            line_addr = self._line_addr(cursor)
            offset = cursor - line_addr
            take = min(self.line_bytes - offset, remaining)
            line = self._lines.get(line_addr)
            if line is not None and self.sim.now < line.evict_at:
                fresh = self.memory.read(line_addr, self.line_bytes)
                line.snapshot = fresh
                line.stale = False
            cursor += take
            remaining -= take

    def _load_line(self, line_addr: int) -> _Line:
        self.stats.loads += 1
        line = self._lines.get(line_addr)
        if line is not None:
            if self.sim.now < line.evict_at:
                self.stats.hits += 1
                if line.stale:
                    self.stats.stale_hits += 1
                return line
            self.stats.evictions_observed += 1
        # Miss: fill from DRAM with a fresh eviction deadline.
        self.stats.misses += 1
        snapshot = self.memory.read(line_addr, self.line_bytes)
        line = _Line(
            snapshot=snapshot,
            loaded_at=self.sim.now,
            evict_at=self.sim.now + self._sample_residency(),
        )
        self._lines[line_addr] = line
        return line

    # -- RNIC / DMA side ------------------------------------------------

    def dma_write(self, addr: int, data: bytes) -> None:
        """One-sided RDMA write: DRAM updated, cached copies go stale."""
        self.memory.write(addr, data)
        cursor = addr
        remaining = len(data)
        while remaining > 0:
            line_addr = self._line_addr(cursor)
            take = min(self.line_bytes - (cursor - line_addr), remaining)
            line = self._lines.get(line_addr)
            if line is not None and self.sim.now < line.evict_at:
                line.stale = True
            cursor += take
            remaining -= take

    def dma_read(self, addr: int, n: int) -> bytes:
        """One-sided RDMA read: always sees DRAM (write-through CPU)."""
        return self.memory.read(addr, n)

    # -- coherence control ------------------------------------------------

    def flush(self, addr: int, n: int) -> None:
        """clflush a byte range: cached lines are dropped immediately.

        The next CPU read misses and refills from DRAM, observing any
        DMA-written bytes.  This is the local effect of
        ``rdx_cc_event`` (paper Table 1).
        """
        cursor = self._line_addr(addr)
        end = addr + n
        while cursor < end:
            if self._lines.pop(cursor, None) is not None:
                self.stats.flushes += 1
            cursor += self.line_bytes

    def flush_all(self) -> None:
        """Drop the entire cache (used between experiment trials)."""
        self._lines.clear()

    def is_stale(self, addr: int) -> bool:
        """True if the CPU would currently read stale bytes at ``addr``."""
        line = self._lines.get(self._line_addr(addr))
        return bool(line and self.sim.now < line.evict_at and line.stale)
