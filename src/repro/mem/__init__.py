"""Simulated host memory: DRAM, allocator, and the CPU cache model.

The cache model implements the precise incoherence RDX's synchronization
primitives exist to fix (paper §3.5): RNIC DMA writes land in DRAM but
do **not** invalidate CPU cache lines, so a polling CPU keeps reading
stale data until the line is evicted (workload-pressure dependent) or
explicitly flushed.
"""

from repro.mem.memory import MemoryRegion, PhysicalMemory, RegionAllocator
from repro.mem.cache import CacheModel, CacheStats
from repro.mem.layout import (
    pack_qword,
    unpack_qword,
    pack_u32,
    unpack_u32,
    qword_at,
    store_qword,
)

__all__ = [
    "CacheModel",
    "CacheStats",
    "MemoryRegion",
    "PhysicalMemory",
    "RegionAllocator",
    "pack_qword",
    "pack_u32",
    "qword_at",
    "store_qword",
    "unpack_qword",
    "unpack_u32",
]
