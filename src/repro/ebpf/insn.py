"""The 8-byte eBPF instruction and program-level encode/decode."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.ebpf import opcodes as op

_INSN = struct.Struct("<BBhi")  # opcode, dst|src<<4, off, imm


@dataclass(frozen=True)
class Insn:
    """One eBPF instruction.

    ``imm64`` is only meaningful on the first half of an LDDW pair; the
    encoder splits it into the two 32-bit immediates automatically.
    """

    opcode: int
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0

    def __post_init__(self):
        if not 0 <= self.dst <= op.MAX_REG:
            raise ReproError(f"bad dst register r{self.dst}")
        if not 0 <= self.src <= 15:
            raise ReproError(f"bad src register field {self.src}")
        if not -(2**15) <= self.off < 2**15:
            raise ReproError(f"offset {self.off} out of s16 range")
        if not -(2**31) <= self.imm < 2**32:
            raise ReproError(f"imm {self.imm} out of 32-bit range")

    @property
    def is_lddw(self) -> bool:
        return self.opcode == op.LDDW

    def encode(self) -> bytes:
        imm = self.imm if self.imm < 2**31 else self.imm - 2**32
        return _INSN.pack(self.opcode, (self.src << 4) | self.dst, self.off, imm)

    @classmethod
    def decode(cls, data: bytes) -> "Insn":
        if len(data) != 8:
            raise ReproError(f"instruction must be 8 bytes, got {len(data)}")
        opcode, regs, off, imm = _INSN.unpack(data)
        return cls(opcode=opcode, dst=regs & 0xF, src=regs >> 4, off=off, imm=imm)

    def __repr__(self) -> str:
        return (
            f"Insn(op={self.opcode:#04x}, dst=r{self.dst}, src=r{self.src}, "
            f"off={self.off}, imm={self.imm})"
        )


def encode_program(insns: list[Insn]) -> bytes:
    """Serialize a program to its flat 8-bytes-per-insn image."""
    return b"".join(insn.encode() for insn in insns)


def decode_program(data: bytes) -> list[Insn]:
    """Parse a flat instruction image back into :class:`Insn` objects."""
    if len(data) % 8:
        raise ReproError(f"program image not a multiple of 8 bytes: {len(data)}")
    return [Insn.decode(data[i : i + 8]) for i in range(0, len(data), 8)]


def lddw_pair(dst: int, imm64: int, src: int = 0) -> list[Insn]:
    """Build the two-instruction load-64-bit-immediate sequence.

    With ``src=PSEUDO_MAP_FD`` the immediate is a map reference to be
    resolved at load/link time rather than a literal.
    """
    low = imm64 & 0xFFFFFFFF
    high = (imm64 >> 32) & 0xFFFFFFFF
    return [
        Insn(opcode=op.LDDW, dst=dst, src=src, imm=low),
        Insn(opcode=0, dst=0, src=0, imm=high),
    ]
