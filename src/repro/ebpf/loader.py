"""The host-local load pipeline (what a per-node agent runs).

``LocalLoader`` performs the *functional* steps -- verify, JIT, link --
exactly as the kernel + libbpf would on the local host.  It knows
nothing about simulated time; the agent daemon (:mod:`repro.agent`)
wraps each step with the CPU-time charges from :mod:`repro.params`,
because those cycles burning on the local host are exactly what the
paper's agent baseline pays for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro import params
from repro.ebpf.jit import JitBinary, Relocation, jit_compile
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.ebpf.verifier import MapGeometry, VerifierStats, verify


@dataclass
class LoadResult:
    """Everything produced by a local verify+JIT+link pass."""

    program: BpfProgram
    stats: VerifierStats
    binary: JitBinary
    #: Simulated host-CPU cost of each phase, microseconds.
    verify_cost_us: float = 0.0
    jit_cost_us: float = 0.0

    @property
    def total_compile_cost_us(self) -> float:
        return self.verify_cost_us + self.jit_cost_us


class LocalLoader:
    """Verify + JIT + (optionally) link a program on the local host."""

    def __init__(self, arch: str = "x86_64", ctx_size: int = 256):
        self.arch = arch
        self.ctx_size = ctx_size
        # Functional memoization only: verification is deterministic,
        # so re-running it on an identical image is pure waste for the
        # *host machine running the simulation*.  The simulated CPU
        # cost is still charged in full on every load -- real agents
        # have no cross-load verifier cache.
        self._memo: dict[tuple[str, str], LoadResult] = {}

    def geometry_for(self, maps: Sequence[BpfMap]) -> dict[int, MapGeometry]:
        return {
            slot: MapGeometry(key_size=m.key_size, value_size=m.value_size)
            for slot, m in enumerate(maps)
        }

    def verify_and_jit(
        self, program: BpfProgram, maps: Sequence[BpfMap] = ()
    ) -> LoadResult:
        """Run the full local pipeline; raises on rejection.

        The returned :class:`LoadResult` carries both the functional
        artifacts and the simulated CPU costs the caller must charge.
        """
        memo_key = (program.tag(), self.arch)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        stats = verify(program, self.geometry_for(maps), ctx_size=self.ctx_size)
        binary = jit_compile(program, arch=self.arch)
        assert program.metadata is not None
        program.metadata.verified_insns = stats.states_visited
        program.metadata.jited = True
        program.metadata.jited_len = len(binary.code)
        program.metadata.xlated_len = program.size_bytes()
        result = LoadResult(
            program=program,
            stats=stats,
            binary=binary,
            verify_cost_us=params.verify_cost_us(len(program.insns)),
            jit_cost_us=params.jit_cost_us(len(program.insns)),
        )
        self._memo[memo_key] = result
        return result

    @staticmethod
    def link(
        binary: JitBinary, resolve: Callable[[Relocation], Optional[int]]
    ) -> JitBinary:
        """Link against a resolver (typically a sandbox GOT lookup)."""
        return binary.link(resolve)
