"""Synthetic Socket Filter stress programs (paper §6).

The paper deploys "synthetic Socket Filter eBPF programs from the
official Linux eBPF stress test" with instruction counts from 1.3K to
95K.  This generator produces verifier-clean programs of an *exact*
requested size that mix straight-line arithmetic, forward branches,
and (optionally) map lookups -- the three shapes that exercise the
verifier's state exploration, the JIT's relocation paths, and the
interpreter.

Programs are deterministic: the same (size, seed) always produces the
same instructions and, for a given packet, the same result.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.ebpf import opcodes as op
from repro.ebpf.asm import Asm
from repro.ebpf.program import BpfProgram, ProgType

#: The instruction sizes used across Fig 2a / Fig 4a.
STRESS_SIZES = (1_300, 11_000, 26_000, 49_000, 76_000, 95_000)

_PROLOGUE_LEN = 3
_EPILOGUE_LEN = 2
_ARITH_BLOCK_LEN = 6
_BRANCH_BLOCK_LEN = 5
_MAP_BLOCK_LEN = 13

#: Default readable context window (probe packet size).
CTX_SIZE = 256


def make_stress_program(
    n_insns: int,
    seed: int = 1,
    with_map: bool = False,
    name: str = "",
    ctx_size: int = CTX_SIZE,
) -> BpfProgram:
    """Build a verifier-clean socket filter of exactly ``n_insns``.

    With ``with_map`` the program references one array map in slot 0
    (4-byte key, 8-byte value) via ``bpf_map_lookup_elem``, exercising
    the relocation path end to end.
    """
    minimum = _PROLOGUE_LEN + _EPILOGUE_LEN + _ARITH_BLOCK_LEN
    if with_map:
        minimum += _MAP_BLOCK_LEN
    if n_insns < minimum:
        raise ReproError(f"stress program needs >= {minimum} insns")

    asm = Asm()
    # Prologue: preserve ctx in r6 (helpers clobber r1-r5), seed the
    # accumulator, and make r0 readable for early exits.
    asm.mov_reg(op.R6, op.R1)
    asm.mov_imm(op.R7, seed & 0x7FFFFFFF)
    asm.mov_imm(op.R0, 0)

    budget = n_insns - _PROLOGUE_LEN - _EPILOGUE_LEN
    block_index = 0
    offset_cursor = seed % ctx_size
    map_emitted = False

    while budget >= _ARITH_BLOCK_LEN:
        block_index += 1
        want_map = with_map and not map_emitted and budget >= _MAP_BLOCK_LEN
        want_branch = block_index % 7 == 0 and budget >= _BRANCH_BLOCK_LEN

        if want_map:
            _emit_map_block(asm, block_index)
            map_emitted = True
            budget -= _MAP_BLOCK_LEN
        elif want_branch:
            offset_cursor = _emit_branch_block(
                asm, block_index, offset_cursor, ctx_size
            )
            budget -= _BRANCH_BLOCK_LEN
        else:
            offset_cursor = _emit_arith_block(
                asm, block_index, offset_cursor, ctx_size, seed
            )
            budget -= _ARITH_BLOCK_LEN

    # Pad to the exact target with accumulator no-ops.
    while budget > 0:
        asm.alu64_imm(op.BPF_ADD, op.R7, 0)
        budget -= 1

    # Epilogue: return the accumulator.
    asm.mov_reg(op.R0, op.R7)
    asm.exit_()

    insns = asm.build()
    if len(insns) != n_insns:
        raise ReproError(
            f"generator bug: built {len(insns)} insns, wanted {n_insns}"
        )
    return BpfProgram(
        insns=insns,
        name=name or f"stress_{n_insns}_{seed}",
        prog_type=ProgType.SOCKET_FILTER,
        map_names=("stress_map",) if with_map else (),
    )


def make_stress_variant(
    base: BpfProgram, imm: int, name: str = ""
) -> BpfProgram:
    """A one-instruction edit of ``base``: the production hotpatch shape.

    Rewrites the last padding no-op (``r7 += 0``) to ``r7 += imm``,
    leaving every other instruction -- and therefore the linked image
    layout -- untouched.  Raises when ``base`` has no padding to edit
    (sizes that divide evenly into generator blocks).
    """
    from dataclasses import replace

    pad = Asm()
    pad.alu64_imm(op.BPF_ADD, op.R7, 0)
    (pad_insn,) = pad.build()
    insns = list(base.insns)
    for index in range(len(insns) - _EPILOGUE_LEN - 1, -1, -1):
        if insns[index] == pad_insn:
            insns[index] = replace(insns[index], imm=imm)
            break
    else:
        raise ReproError(f"{base.name}: no padding no-op to edit")
    return BpfProgram(
        insns=insns,
        name=name or base.name,
        prog_type=base.prog_type,
        map_names=base.map_names,
    )


def _emit_arith_block(
    asm: Asm, block: int, offset: int, ctx_size: int, seed: int
) -> int:
    asm.ldx_b(op.R8, op.R6, offset)
    asm.alu64_reg(op.BPF_ADD, op.R7, op.R8)
    asm.alu64_imm(op.BPF_XOR, op.R7, (block * 2_654_435_761 + seed) & 0x7FFFFFFF)
    asm.alu64_imm(op.BPF_MUL, op.R7, (block % 13) * 2 + 3)
    asm.alu64_imm(op.BPF_RSH, op.R7, 1)
    asm.alu64_imm(op.BPF_AND, op.R7, 0x7FFF_FFFF)
    return (offset + 7) % ctx_size


def _emit_branch_block(asm: Asm, block: int, offset: int, ctx_size: int) -> int:
    alt = f"alt_{block}"
    join = f"join_{block}"
    asm.ldx_b(op.R8, op.R6, offset)
    asm.jmp_imm(op.BPF_JGT, op.R8, 127, alt)
    asm.alu64_imm(op.BPF_ADD, op.R7, 3)
    asm.ja(join)
    asm.label(alt)
    asm.alu64_imm(op.BPF_XOR, op.R7, 0x55)
    asm.label(join)
    return (offset + 11) % ctx_size


def _emit_map_block(asm: Asm, block: int) -> None:
    null = f"mnull_{block}"
    join = f"mjoin_{block}"
    # key = 0 on the stack at r10-4
    asm.mov_imm(op.R8, 0)
    asm.stx(op.BPF_W, op.R10, op.R8, -4)
    asm.mov_reg(op.R2, op.R10)
    asm.alu64_imm(op.BPF_ADD, op.R2, -4)
    asm.ld_map_fd(op.R1, 0)  # 2 insns
    asm.call(1)  # bpf_map_lookup_elem
    asm.jmp_imm(op.BPF_JEQ, op.R0, 0, null)
    asm.ldx_w(op.R8, op.R0, 0)
    asm.alu64_reg(op.BPF_ADD, op.R7, op.R8)
    asm.mov_imm(op.R0, 0)
    asm.ja(join)
    asm.label(null)
    asm.mov_imm(op.R0, 0)
    asm.label(join)
