"""Static verifier: abstract interpretation over the program CFG.

Models the kernel verifier's essentials (the parts whose *cost* the
paper measures and whose *function* RDX must relocate off the host):

* register typing (scalar vs ctx/stack/map-value pointers),
* stack-slot initialization and spill tracking,
* bounds checks on every memory access,
* null-check enforcement for ``bpf_map_lookup_elem`` results,
* helper-call signature checking,
* loop rejection (back edges) and a complexity budget,
* dead-code and fallthrough-off-the-end rejection.

State exploration uses per-pc memoization (the kernel's state pruning):
``states_visited`` is the cost driver that the agent baseline charges
to the host CPU via :func:`repro.params.verify_cost_us`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import VerifierError
from repro.ebpf import opcodes as op
from repro.ebpf.helpers import ArgType, RetType, helper_by_id
from repro.ebpf.insn import Insn
from repro.ebpf.program import BpfProgram

#: Kernel-style complexity budget (1M state visits).
MAX_STATES = 1_000_000


class RegType(enum.Enum):
    UNINIT = "uninit"
    SCALAR = "scalar"
    PTR_CTX = "ptr_ctx"
    PTR_STACK = "ptr_stack"
    CONST_PTR_MAP = "const_ptr_map"
    PTR_MAP_VALUE = "ptr_map_value"
    PTR_MAP_VALUE_OR_NULL = "ptr_map_value_or_null"
    NULL = "null"


@dataclass(frozen=True)
class Reg:
    """Abstract state of one register."""

    type: RegType = RegType.UNINIT
    #: Byte offset for stack/map-value pointers.
    off: int = 0
    #: Map slot index for map pointers.
    map_slot: int = -1

    @classmethod
    def scalar(cls) -> "Reg":
        return cls(type=RegType.SCALAR)


_SCALAR = Reg.scalar()
_UNINIT = Reg()


@dataclass(frozen=True)
class _State:
    """Abstract machine state at one program point."""

    regs: tuple[Reg, ...]
    #: Sorted tuple of initialized stack byte offsets (negative ints).
    stack_init: tuple[int, ...]
    #: Spilled registers: ((slot_off, Reg), ...) for 8-byte aligned slots.
    spills: tuple[tuple[int, Reg], ...]

    def with_reg(self, index: int, reg: Reg) -> "_State":
        regs = list(self.regs)
        regs[index] = reg
        return replace(self, regs=tuple(regs))


@dataclass
class VerifierStats:
    """Outcome of a successful verification."""

    insn_count: int
    states_visited: int = 0
    peak_queue: int = 0
    helpers_called: tuple[str, ...] = ()

    @property
    def complexity(self) -> int:
        return self.states_visited


@dataclass(frozen=True)
class MapGeometry:
    """What the verifier needs to know about each referenced map."""

    key_size: int
    value_size: int


class _Verifier:
    def __init__(
        self,
        program: BpfProgram,
        maps: dict[int, MapGeometry],
        ctx_size: int,
    ):
        self.insns = program.insns
        self.maps = maps
        self.ctx_size = ctx_size
        self.stats = VerifierStats(insn_count=len(self.insns))
        self.helpers_used: set[str] = set()
        self._seen: dict[int, set[_State]] = {}
        self._reached: set[int] = set()

    # -- entry -----------------------------------------------------------

    def run(self) -> VerifierStats:
        if not self.insns:
            raise VerifierError("empty program")
        if len(self.insns) > op.MAX_INSNS:
            raise VerifierError(f"program too large: {len(self.insns)} insns")
        self._check_lddw_pairing()
        regs = [_UNINIT] * 11
        regs[op.R1] = Reg(type=RegType.PTR_CTX)
        regs[op.R10] = Reg(type=RegType.PTR_STACK, off=0)
        initial = _State(regs=tuple(regs), stack_init=(), spills=())
        stack: list[tuple[int, _State]] = [(0, initial)]
        while stack:
            self.stats.peak_queue = max(self.stats.peak_queue, len(stack))
            pc, state = stack.pop()
            if state in self._seen.setdefault(pc, set()):
                continue
            self._seen[pc].add(state)
            self.stats.states_visited += 1
            if self.stats.states_visited > MAX_STATES:
                raise VerifierError("BPF program is too large (state budget)")
            for successor in self._step(pc, state):
                stack.append(successor)
        self._check_unreachable()
        self.stats.helpers_called = tuple(sorted(self.helpers_used))
        return self.stats

    def _check_lddw_pairing(self) -> None:
        index = 0
        while index < len(self.insns):
            if self.insns[index].opcode == op.LDDW:
                if index + 1 >= len(self.insns):
                    raise VerifierError("LDDW at end of program")
                if self.insns[index + 1].opcode != 0:
                    raise VerifierError("LDDW second half has nonzero opcode")
                index += 2
            else:
                index += 1

    def _check_unreachable(self) -> None:
        index = 0
        while index < len(self.insns):
            if index not in self._reached:
                raise VerifierError(f"unreachable instruction at {index}")
            index += 2 if self.insns[index].opcode == op.LDDW else 1

    # -- single step ---------------------------------------------------

    def _step(self, pc: int, state: _State) -> list[tuple[int, _State]]:
        if pc < 0 or pc >= len(self.insns):
            raise VerifierError(f"jump out of range to {pc}")
        self._reached.add(pc)
        insn = self.insns[pc]
        cls = op.insn_class(insn.opcode)
        if insn.opcode == op.LDDW:
            return self._do_lddw(pc, insn, state)
        if insn.opcode == 0:
            raise VerifierError(f"jump into the middle of LDDW at {pc}")
        if cls in (op.BPF_ALU, op.BPF_ALU64):
            return [(pc + 1, self._do_alu(pc, insn, state, cls))]
        if cls == op.BPF_LDX:
            return [(pc + 1, self._do_ldx(pc, insn, state))]
        if cls in (op.BPF_ST, op.BPF_STX):
            return [(pc + 1, self._do_store(pc, insn, state, cls))]
        if cls == op.BPF_JMP:
            return self._do_jmp(pc, insn, state)
        if cls == op.BPF_JMP32:
            return self._do_jmp(pc, insn, state)
        raise VerifierError(f"unsupported opcode {insn.opcode:#04x} at {pc}")

    # -- ALU ---------------------------------------------------------------

    def _read_reg(self, state: _State, index: int, pc: int) -> Reg:
        reg = state.regs[index]
        if reg.type is RegType.UNINIT:
            raise VerifierError(f"R{index} !read_ok at insn {pc}")
        return reg

    def _do_alu(self, pc: int, insn: Insn, state: _State, cls: int) -> _State:
        operation = op.alu_op(insn.opcode)
        if insn.dst == op.R10:
            raise VerifierError(f"frame pointer is read-only (insn {pc})")
        use_reg = bool(insn.opcode & op.BPF_X)

        if operation == op.BPF_MOV:
            if use_reg:
                src = self._read_reg(state, insn.src, pc)
                if cls == op.BPF_ALU and src.type is not RegType.SCALAR:
                    # 32-bit mov truncates pointers into scalars.
                    src = _SCALAR
                return state.with_reg(insn.dst, src)
            return state.with_reg(insn.dst, _SCALAR)

        if operation == op.BPF_NEG:
            dst = self._read_reg(state, insn.dst, pc)
            if dst.type is not RegType.SCALAR:
                raise VerifierError(f"NEG on pointer R{insn.dst} at {pc}")
            return state

        if operation == op.BPF_END:
            dst = self._read_reg(state, insn.dst, pc)
            if dst.type is not RegType.SCALAR:
                raise VerifierError(f"byte swap on pointer at {pc}")
            return state

        dst = self._read_reg(state, insn.dst, pc)
        src_type = RegType.SCALAR
        if use_reg:
            src = self._read_reg(state, insn.src, pc)
            src_type = src.type

        if operation in (op.BPF_DIV, op.BPF_MOD) and not use_reg and insn.imm == 0:
            raise VerifierError(f"division by zero constant at {pc}")
        if operation in (op.BPF_LSH, op.BPF_RSH, op.BPF_ARSH) and not use_reg:
            width = 64 if cls == op.BPF_ALU64 else 32
            if not 0 <= insn.imm < width:
                raise VerifierError(f"invalid shift {insn.imm} at {pc}")

        # Pointer arithmetic: only +/- constant on stack/map-value ptrs.
        if dst.type in (RegType.PTR_STACK, RegType.PTR_MAP_VALUE):
            if cls != op.BPF_ALU64 or use_reg or operation not in (
                op.BPF_ADD,
                op.BPF_SUB,
            ):
                raise VerifierError(
                    f"invalid pointer arithmetic on R{insn.dst} at {pc}"
                )
            delta = insn.imm if operation == op.BPF_ADD else -insn.imm
            return state.with_reg(insn.dst, replace(dst, off=dst.off + delta))
        if dst.type is not RegType.SCALAR:
            raise VerifierError(
                f"arithmetic on {dst.type.value} pointer R{insn.dst} at {pc}"
            )
        if src_type is not RegType.SCALAR:
            raise VerifierError(f"pointer used as scalar operand at {pc}")
        return state.with_reg(insn.dst, _SCALAR)

    # -- memory ------------------------------------------------------------

    def _check_stack_access(
        self, pc: int, reg: Reg, off: int, size: int
    ) -> int:
        slot = reg.off + off
        if slot >= 0 or slot < -op.STACK_SIZE or slot + size > 0:
            raise VerifierError(
                f"stack access [{slot}, {slot + size}) out of bounds at {pc}"
            )
        return slot

    def _do_lddw(self, pc: int, insn: Insn, state: _State):
        if insn.src == op.PSEUDO_MAP_FD:
            if insn.imm not in self.maps:
                raise VerifierError(
                    f"LDDW references unknown map slot {insn.imm} at {pc}"
                )
            reg = Reg(type=RegType.CONST_PTR_MAP, map_slot=insn.imm)
        elif insn.src == 0:
            reg = _SCALAR
        else:
            raise VerifierError(f"unsupported LDDW src {insn.src} at {pc}")
        self._reached.add(pc + 1)
        return [(pc + 2, state.with_reg(insn.dst, reg))]

    def _do_ldx(self, pc: int, insn: Insn, state: _State) -> _State:
        if (insn.opcode & op.MODE_MASK) != op.BPF_MEM:
            raise VerifierError(f"unsupported load mode at {pc}")
        size = op.SIZE_BYTES[insn.opcode & op.SIZE_MASK]
        base = self._read_reg(state, insn.src, pc)
        if base.type is RegType.PTR_CTX:
            addr = base.off + insn.off
            if addr < 0 or addr + size > self.ctx_size:
                raise VerifierError(
                    f"ctx access [{addr}, {addr + size}) out of bounds at {pc}"
                )
            return state.with_reg(insn.dst, _SCALAR)
        if base.type is RegType.PTR_STACK:
            slot = self._check_stack_access(pc, base, insn.off, size)
            spills = dict(state.spills)
            if size == 8 and slot % 8 == 0 and slot in spills:
                return state.with_reg(insn.dst, spills[slot])
            for byte in range(slot, slot + size):
                if byte not in state.stack_init:
                    raise VerifierError(
                        f"read of uninitialized stack byte {byte} at {pc}"
                    )
            return state.with_reg(insn.dst, _SCALAR)
        if base.type is RegType.PTR_MAP_VALUE:
            geometry = self.maps[base.map_slot]
            addr = base.off + insn.off
            if addr < 0 or addr + size > geometry.value_size:
                raise VerifierError(
                    f"map value access [{addr}, {addr + size}) "
                    f"outside value_size={geometry.value_size} at {pc}"
                )
            return state.with_reg(insn.dst, _SCALAR)
        if base.type is RegType.PTR_MAP_VALUE_OR_NULL:
            raise VerifierError(
                f"R{insn.src} possibly NULL, deref without check at {pc}"
            )
        raise VerifierError(
            f"load from non-pointer R{insn.src} ({base.type.value}) at {pc}"
        )

    def _do_store(self, pc: int, insn: Insn, state: _State, cls: int) -> _State:
        if (insn.opcode & op.MODE_MASK) != op.BPF_MEM:
            raise VerifierError(f"unsupported store mode at {pc}")
        size = op.SIZE_BYTES[insn.opcode & op.SIZE_MASK]
        base = self._read_reg(state, insn.dst, pc)
        if cls == op.BPF_STX:
            value = self._read_reg(state, insn.src, pc)
        else:
            value = _SCALAR
        if base.type is RegType.PTR_STACK:
            slot = self._check_stack_access(pc, base, insn.off, size)
            init = set(state.stack_init)
            init.update(range(slot, slot + size))
            spills = dict(state.spills)
            if size == 8 and slot % 8 == 0 and value.type is not RegType.SCALAR:
                spills[slot] = value
            else:
                if value.type is not RegType.SCALAR:
                    raise VerifierError(f"partial pointer spill at {pc}")
                spills.pop(slot - slot % 8, None)
            return replace(
                state,
                stack_init=tuple(sorted(init)),
                spills=tuple(sorted(spills.items())),
            )
        if base.type is RegType.PTR_MAP_VALUE:
            if value.type is not RegType.SCALAR:
                raise VerifierError(f"storing pointer into map value at {pc}")
            geometry = self.maps[base.map_slot]
            addr = base.off + insn.off
            if addr < 0 or addr + size > geometry.value_size:
                raise VerifierError(f"map value store out of bounds at {pc}")
            return state
        if base.type is RegType.PTR_CTX:
            raise VerifierError(f"ctx is read-only for this program type ({pc})")
        if base.type is RegType.PTR_MAP_VALUE_OR_NULL:
            raise VerifierError(f"store via possibly-NULL pointer at {pc}")
        raise VerifierError(f"store to non-pointer R{insn.dst} at {pc}")

    # -- control flow ----------------------------------------------------

    def _do_jmp(self, pc: int, insn: Insn, state: _State):
        operation = op.alu_op(insn.opcode)
        if operation == op.BPF_EXIT:
            reg0 = state.regs[op.R0]
            if reg0.type is RegType.UNINIT:
                raise VerifierError(f"R0 !read_ok at exit ({pc})")
            return []
        if operation == op.BPF_CALL:
            return [(pc + 1, self._do_call(pc, insn, state))]
        if operation == op.BPF_JA:
            target = pc + 1 + insn.off
            self._check_forward(pc, target)
            return [(target, state)]

        # Conditional jump.
        target = pc + 1 + insn.off
        self._check_forward(pc, target)
        dst = self._read_reg(state, insn.dst, pc)
        use_reg = bool(insn.opcode & op.BPF_X)
        if use_reg:
            self._read_reg(state, insn.src, pc)

        taken, fallthrough = state, state
        null_check = (
            dst.type is RegType.PTR_MAP_VALUE_OR_NULL
            and not use_reg
            and insn.imm == 0
            and operation in (op.BPF_JEQ, op.BPF_JNE)
        )
        if null_check:
            as_value = state.with_reg(
                insn.dst, Reg(type=RegType.PTR_MAP_VALUE, map_slot=dst.map_slot)
            )
            as_null = state.with_reg(insn.dst, Reg(type=RegType.NULL))
            if operation == op.BPF_JEQ:
                taken, fallthrough = as_null, as_value
            else:
                taken, fallthrough = as_value, as_null
        elif dst.type not in (
            RegType.SCALAR,
            RegType.NULL,
            RegType.PTR_MAP_VALUE_OR_NULL,
        ):
            raise VerifierError(
                f"comparison on {dst.type.value} pointer R{insn.dst} at {pc}"
            )
        return [(target, taken), (pc + 1, fallthrough)]

    def _check_forward(self, pc: int, target: int) -> None:
        if target <= pc:
            raise VerifierError(f"back-edge from insn {pc} to {target} (loop)")
        if target >= len(self.insns):
            raise VerifierError(f"jump out of range: {pc} -> {target}")

    def _do_call(self, pc: int, insn: Insn, state: _State) -> _State:
        helper = helper_by_id(insn.imm)
        if helper is None:
            raise VerifierError(f"unknown helper id {insn.imm} at {pc}")
        self.helpers_used.add(helper.name)
        key_size_hint: Optional[int] = None
        value_size_hint: Optional[int] = None
        for position, arg_type in enumerate(helper.args, start=1):
            reg = state.regs[position]
            if arg_type is ArgType.ANYTHING:
                continue
            if reg.type is RegType.UNINIT:
                raise VerifierError(
                    f"R{position} !read_ok for {helper.name} at {pc}"
                )
            if arg_type is ArgType.SCALAR:
                if reg.type is not RegType.SCALAR:
                    raise VerifierError(
                        f"{helper.name} arg{position} expects scalar at {pc}"
                    )
            elif arg_type is ArgType.CONST_MAP_PTR:
                if reg.type is not RegType.CONST_PTR_MAP:
                    raise VerifierError(
                        f"{helper.name} arg{position} expects map pointer at {pc}"
                    )
                geometry = self.maps[reg.map_slot]
                key_size_hint = geometry.key_size
                value_size_hint = geometry.value_size
            elif arg_type in (
                ArgType.MAP_KEY_PTR,
                ArgType.MAP_VALUE_PTR,
                ArgType.STACK_PTR,
            ):
                if reg.type is not RegType.PTR_STACK:
                    raise VerifierError(
                        f"{helper.name} arg{position} expects stack pointer at {pc}"
                    )
                need = 1
                if arg_type is ArgType.MAP_KEY_PTR and key_size_hint:
                    need = key_size_hint
                if arg_type is ArgType.MAP_VALUE_PTR and value_size_hint:
                    need = value_size_hint
                slot = self._check_stack_access(pc, reg, 0, need)
                for byte in range(slot, slot + need):
                    if byte not in state.stack_init:
                        raise VerifierError(
                            f"{helper.name} reads uninitialized stack "
                            f"byte {byte} at {pc}"
                        )
        # Return value + caller-saved clobbers.
        regs = list(state.regs)
        if helper.ret is RetType.MAP_VALUE_OR_NULL:
            slot = next(
                (
                    reg.map_slot
                    for reg in state.regs[1:6]
                    if reg.type is RegType.CONST_PTR_MAP
                ),
                -1,
            )
            regs[op.R0] = Reg(type=RegType.PTR_MAP_VALUE_OR_NULL, map_slot=slot)
        elif helper.ret is RetType.SCALAR:
            regs[op.R0] = _SCALAR
        else:
            regs[op.R0] = _UNINIT
        for index in range(1, 6):
            regs[index] = _UNINIT
        return replace(state, regs=tuple(regs))


def verify(
    program: BpfProgram,
    maps: Optional[dict[int, MapGeometry]] = None,
    ctx_size: int = 256,
) -> VerifierStats:
    """Verify ``program``; returns stats or raises :class:`VerifierError`.

    ``maps`` describes the geometry of each map slot the program's
    ``ld_map_fd`` instructions reference; ``ctx_size`` is the readable
    context window for the program type (packet bytes for socket
    filters).
    """
    return _Verifier(program, maps or {}, ctx_size).run()
