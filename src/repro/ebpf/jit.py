"""JIT compiler: bytecode -> "native" binary + relocation records.

The emitted binary is a deterministic pseudo-machine-code format that
preserves the properties the paper depends on (§3.2-§3.3):

* **real byte blob** -- deployments move actual bytes whose corruption
  (partial RDMA writes, §3.5 issue 1) is *detected at execution time*
  via per-slot checksums and a whole-image CRC;
* **unresolved external references** -- helper calls and map accesses
  are emitted as 8-byte placeholder operands plus relocation records;
  executing an unlinked binary crashes the sandbox, so
  ``rdx_link_code`` is load-bearing, not decorative;
* **per-architecture output** -- x86_64 and arm64 images differ, so the
  control plane's cross-architecture compile cache is exercised.

Image layout::

    [magic 'RJ'][ver u8][arch u8][slot_count u32]   -- 8-byte header
    slot*N                                          -- 10 bytes each
    [crc32 u32]                                     -- whole-image CRC

Slot layout: ``[prefix u8][payload 8B][checksum u8]`` where checksum is
the byte sum of prefix+payload.  Prefix ``INSN`` slots carry one eBPF
instruction; ``OPERAND`` slots carry a 64-bit address operand (helper
address or map address) referenced by the preceding instruction.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import JitError, SandboxCrash
from repro.ebpf import opcodes as op
from repro.ebpf.helpers import helper_by_id
from repro.ebpf.insn import Insn
from repro.ebpf.program import BpfProgram

MAGIC = b"RJ"
VERSION = 1
_HEADER = struct.Struct("<2sBBI")
_SLOT_BYTES = 10

#: Placeholder operand emitted for every unresolved external reference.
PLACEHOLDER = 0xDEAD_BEEF_DEAD_BEEF

_ARCH_PREFIX = {
    "x86_64": (0x9A, 0x9B),  # (insn slot, operand slot)
    "arm64": (0xAA, 0xAB),
}


class RelocKind(enum.Enum):
    HELPER = "helper"
    MAP = "map"


@dataclass(frozen=True)
class Relocation:
    """One unresolved external reference in the emitted image."""

    offset: int  # byte offset of the 8-byte operand within the image
    kind: RelocKind
    symbol: str


@dataclass
class JitBinary:
    """JIT output: image + relocations + symbol table (paper §3.2)."""

    code: bytes
    arch: str
    insn_cnt: int
    relocations: list[Relocation] = field(default_factory=list)
    #: symbol -> ordered operand offsets (the paper's "symbol table").
    symbols: dict[str, list[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.code)

    @property
    def is_linked(self) -> bool:
        """True when no placeholder operands remain."""
        for reloc in self.relocations:
            operand = self.code[reloc.offset : reloc.offset + 8]
            if int.from_bytes(operand, "little") == PLACEHOLDER:
                return False
        return True

    def link(self, resolve: Callable[[Relocation], int]) -> "JitBinary":
        """Return a new image with every placeholder patched.

        ``resolve`` maps a relocation to the target-local address of
        its symbol.  Raises :class:`JitError` on unresolvable symbols.
        """
        image = bytearray(self.code)
        for reloc in self.relocations:
            address = resolve(reloc)
            if address is None:
                raise JitError(f"unresolved symbol {reloc.symbol!r}")
            image[reloc.offset : reloc.offset + 8] = address.to_bytes(8, "little")
            # Re-checksum the patched slot.
            slot_start = reloc.offset - 1
            checksum = sum(image[slot_start : slot_start + 9]) & 0xFF
            image[slot_start + 9] = checksum
        # Recompute the whole-image CRC.
        body = bytes(image[:-4])
        crc = zlib.crc32(body) & 0xFFFFFFFF
        image[-4:] = crc.to_bytes(4, "little")
        return JitBinary(
            code=bytes(image),
            arch=self.arch,
            insn_cnt=self.insn_cnt,
            relocations=list(self.relocations),
            symbols={name: list(offs) for name, offs in self.symbols.items()},
        )


def jit_compile(program: BpfProgram, arch: str = "x86_64") -> JitBinary:
    """Compile a (verified) program for ``arch``."""
    try:
        insn_prefix, operand_prefix = _ARCH_PREFIX[arch]
    except KeyError:
        raise JitError(f"unsupported target architecture {arch!r}") from None

    slots: list[bytes] = []
    relocations: list[Relocation] = []
    symbols: dict[str, list[int]] = {}

    def emit(prefix: int, payload: bytes) -> int:
        """Append one slot; returns the byte offset of its payload."""
        if len(payload) != 8:
            raise JitError("slot payload must be 8 bytes")
        offset = _HEADER.size + len(slots) * _SLOT_BYTES + 1
        checksum = (prefix + sum(payload)) & 0xFF
        slots.append(bytes([prefix]) + payload + bytes([checksum]))
        return offset

    def emit_reloc(kind: RelocKind, symbol: str) -> None:
        offset = emit(operand_prefix, PLACEHOLDER.to_bytes(8, "little"))
        relocations.append(Relocation(offset=offset, kind=kind, symbol=symbol))
        symbols.setdefault(symbol, []).append(offset)

    index = 0
    insns = program.insns
    while index < len(insns):
        insn = insns[index]
        if insn.opcode == op.LDDW:
            if index + 1 >= len(insns):
                raise JitError("truncated LDDW pair")
            if insn.src == op.PSEUDO_MAP_FD:
                slot_index = insn.imm
                if slot_index >= len(program.map_names):
                    raise JitError(f"map slot {slot_index} out of range")
                emit(insn_prefix, insn.encode())
                emit_reloc(RelocKind.MAP, program.map_names[slot_index])
            else:
                emit(insn_prefix, insn.encode())
                emit(insn_prefix, insns[index + 1].encode())
            index += 2
            continue
        if (
            op.insn_class(insn.opcode) == op.BPF_JMP
            and op.alu_op(insn.opcode) == op.BPF_CALL
        ):
            helper = helper_by_id(insn.imm)
            if helper is None:
                raise JitError(f"call to unknown helper id {insn.imm}")
            emit(insn_prefix, insn.encode())
            emit_reloc(RelocKind.HELPER, helper.name)
            index += 1
            continue
        emit(insn_prefix, insn.encode())
        index += 1

    header = _HEADER.pack(MAGIC, VERSION, _arch_id(arch), len(slots))
    body = header + b"".join(slots)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return JitBinary(
        code=body + crc.to_bytes(4, "little"),
        arch=arch,
        insn_cnt=len(insns),
        relocations=relocations,
        symbols=symbols,
    )


def _arch_id(arch: str) -> int:
    return {"x86_64": 1, "arm64": 2}[arch]


def _arch_name(arch_id: int) -> str:
    try:
        return {1: "x86_64", 2: "arm64"}[arch_id]
    except KeyError:
        raise SandboxCrash(f"unknown architecture id {arch_id}") from None


def decode_image(
    code: bytes,
    helper_at: Callable[[int], Optional[int]],
    map_slot_at: Callable[[int], Optional[int]],
    expect_arch: str = "x86_64",
) -> list[Insn]:
    """Decode a *linked* image back to instructions for execution.

    ``helper_at``/``map_slot_at`` are the sandbox's reverse GOT: they
    translate a resolved local address back to a helper id / map slot.
    Raises :class:`SandboxCrash` on corruption, truncation, unresolved
    placeholders, wrong-architecture images, or addresses the sandbox
    does not know -- i.e. every way an injection can go wrong.
    """
    if len(code) < _HEADER.size + 4:
        raise SandboxCrash("image too short")
    magic, version, arch_id, slot_count = _HEADER.unpack_from(code)
    if magic != MAGIC or version != VERSION:
        raise SandboxCrash("bad image magic/version")
    arch = _arch_name(arch_id)
    if arch != expect_arch:
        raise SandboxCrash(f"architecture mismatch: image={arch}")
    expected_len = _HEADER.size + slot_count * _SLOT_BYTES + 4
    if len(code) != expected_len:
        raise SandboxCrash(
            f"image length {len(code)} != expected {expected_len}"
        )
    crc = int.from_bytes(code[-4:], "little")
    if zlib.crc32(code[:-4]) & 0xFFFFFFFF != crc:
        raise SandboxCrash("image CRC mismatch (torn or corrupt write)")

    insn_prefix, operand_prefix = _ARCH_PREFIX[arch]
    slots: list[tuple[int, bytes]] = []
    for slot_index in range(slot_count):
        start = _HEADER.size + slot_index * _SLOT_BYTES
        slot = code[start : start + _SLOT_BYTES]
        if (slot[0] + sum(slot[1:9])) & 0xFF != slot[9]:
            raise SandboxCrash(f"slot {slot_index} checksum mismatch")
        slots.append((slot[0], slot[1:9]))

    insns: list[Insn] = []
    index = 0
    while index < len(slots):
        prefix, payload = slots[index]
        if prefix != insn_prefix:
            raise SandboxCrash(f"unexpected operand slot at {index}")
        insn = Insn.decode(payload)
        if insn.opcode == op.LDDW and insn.src == op.PSEUDO_MAP_FD:
            index += 1
            prefix2, operand = _expect_operand(slots, index, operand_prefix)
            address = int.from_bytes(operand, "little")
            if address == PLACEHOLDER:
                raise SandboxCrash("unresolved map relocation")
            slot = map_slot_at(address)
            if slot is None:
                raise SandboxCrash(f"map address {address:#x} unknown")
            insns.append(
                Insn(opcode=insn.opcode, dst=insn.dst, src=op.PSEUDO_MAP_FD, imm=slot)
            )
            insns.append(Insn(opcode=0))
        elif insn.opcode == op.LDDW:
            index += 1
            prefix2, payload2 = slots[index]
            if prefix2 != insn_prefix:
                raise SandboxCrash("LDDW second half missing")
            insns.append(insn)
            insns.append(Insn.decode(payload2))
        elif (
            op.insn_class(insn.opcode) == op.BPF_JMP
            and op.alu_op(insn.opcode) == op.BPF_CALL
        ):
            index += 1
            _prefix2, operand = _expect_operand(slots, index, operand_prefix)
            address = int.from_bytes(operand, "little")
            if address == PLACEHOLDER:
                raise SandboxCrash("unresolved helper relocation")
            helper_id = helper_at(address)
            if helper_id is None:
                raise SandboxCrash(f"helper address {address:#x} unknown")
            insns.append(
                Insn(opcode=insn.opcode, dst=insn.dst, src=insn.src, imm=helper_id)
            )
        else:
            insns.append(insn)
        index += 1
    return insns


def _expect_operand(slots, index: int, operand_prefix: int):
    if index >= len(slots):
        raise SandboxCrash("truncated operand slot")
    prefix, payload = slots[index]
    if prefix != operand_prefix:
        raise SandboxCrash("expected operand slot")
    return prefix, payload
