"""eBPF opcode constants, mirroring <linux/bpf_common.h> + <linux/bpf.h>.

Only the names are re-derived here; the numeric layout is the kernel's:
the low 3 bits select the instruction class, and the meaning of the
high bits depends on the class (ALU/JMP: operation + source bit;
LD/ST: size + mode).
"""

from __future__ import annotations

# -- instruction classes (low 3 bits) --------------------------------

BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_JMP32 = 0x06
BPF_ALU64 = 0x07

CLASS_MASK = 0x07

# -- ALU / JMP source bit ---------------------------------------------

BPF_K = 0x00  # immediate operand
BPF_X = 0x08  # register operand
SRC_MASK = 0x08

# -- ALU operations (high 4 bits) --------------------------------------

BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80
BPF_MOD = 0x90
BPF_XOR = 0xA0
BPF_MOV = 0xB0
BPF_ARSH = 0xC0
BPF_END = 0xD0

# -- JMP operations -----------------------------------------------------

BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40
BPF_JNE = 0x50
BPF_JSGT = 0x60
BPF_JSGE = 0x70
BPF_CALL = 0x80
BPF_EXIT = 0x90
BPF_JLT = 0xA0
BPF_JLE = 0xB0
BPF_JSLT = 0xC0
BPF_JSLE = 0xD0

OP_MASK = 0xF0

# -- LD/ST size (bits 3-4) ----------------------------------------------

BPF_W = 0x00  # 4 bytes
BPF_H = 0x08  # 2 bytes
BPF_B = 0x10  # 1 byte
BPF_DW = 0x18  # 8 bytes

SIZE_MASK = 0x18

SIZE_BYTES = {BPF_W: 4, BPF_H: 2, BPF_B: 1, BPF_DW: 8}

# -- LD/ST mode (bits 5-7) ------------------------------------------------

BPF_IMM = 0x00
BPF_ABS = 0x20
BPF_IND = 0x40
BPF_MEM = 0x60

MODE_MASK = 0xE0

# -- registers ---------------------------------------------------------

R0 = 0  # return value
R1 = 1  # arg1 / ctx pointer on entry
R2 = 2
R3 = 3
R4 = 4
R5 = 5
R6 = 6  # callee-saved from here
R7 = 7
R8 = 8
R9 = 9
R10 = 10  # frame pointer (read-only)

MAX_REG = 10

#: Pseudo source register marking an LDDW as a map reference
#: (BPF_PSEUDO_MAP_FD in the kernel).
PSEUDO_MAP_FD = 1

#: Composite opcode of the 16-byte load-double-word-immediate.
LDDW = BPF_LD | BPF_DW | BPF_IMM  # 0x18

#: Stack size available below R10.
STACK_SIZE = 512

#: Kernel-style complexity budget enforced by the verifier.
MAX_INSNS = 1_000_000


def insn_class(opcode: int) -> int:
    return opcode & CLASS_MASK


def alu_op(opcode: int) -> int:
    return opcode & OP_MASK


def is_alu(opcode: int) -> bool:
    return insn_class(opcode) in (BPF_ALU, BPF_ALU64)


def is_jump(opcode: int) -> bool:
    return insn_class(opcode) in (BPF_JMP, BPF_JMP32)


def is_load(opcode: int) -> bool:
    return insn_class(opcode) in (BPF_LD, BPF_LDX)


def is_store(opcode: int) -> bool:
    return insn_class(opcode) in (BPF_ST, BPF_STX)
