"""Program objects and the `struct bpf_program`-like metadata block.

The paper's §3.1 stresses that an extension is far more than its code:
``struct bpf_program`` carries 30+ fields that local agents fill in
from local context.  We model that metadata explicitly because RDX's
management stubs exist precisely to avoid handcrafting it remotely.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field, fields
from typing import Optional

from repro.ebpf.insn import Insn, encode_program

_prog_ids = itertools.count(1)


class ProgType(enum.Enum):
    """Program types (hook families) the simulator supports."""

    SOCKET_FILTER = "socket_filter"
    XDP = "xdp"
    TRACEPOINT = "tracepoint"
    CGROUP_SKB = "cgroup_skb"


@dataclass
class BpfProgMetadata:
    """The descriptor a loader must populate (cf. `struct bpf_program`).

    Field names follow libbpf where a counterpart exists.  Every field
    the agent fills locally must be fillable by RDX remotely -- that is
    the §3.1 challenge this reproduction exercises.
    """

    name: str = ""
    prog_type: ProgType = ProgType.SOCKET_FILTER
    insn_cnt: int = 0
    license: str = "GPL"
    kern_version: int = 0x050F00
    prog_flags: int = 0
    expected_attach_type: int = 0
    attach_hook: str = ""
    ifindex: int = 0
    log_level: int = 0
    prog_fd: int = -1
    jited: bool = False
    jited_len: int = 0
    xlated_len: int = 0
    load_time_ns: int = 0
    uid: int = 0
    map_slots: tuple[int, ...] = ()
    btf_id: int = 0
    func_cnt: int = 1
    verified_insns: int = 0
    tag: str = ""
    gpl_compatible: bool = True
    run_ctx_addr: int = 0
    jit_addr: int = 0
    got_base: int = 0
    ref_count: int = 0
    priority: int = 0
    sleepable: bool = False
    exception_cb: int = 0
    recursion_ok: bool = False
    stats_enabled: bool = False

    @classmethod
    def field_count(cls) -> int:
        """The paper cites 'no less than 30 variables'; we match that."""
        return len(fields(cls))


@dataclass
class BpfProgram:
    """An eBPF program: instructions + declared map slots + metadata."""

    insns: list[Insn]
    name: str = "prog"
    prog_type: ProgType = ProgType.SOCKET_FILTER
    #: Names of maps the program references, indexed by map slot.
    map_names: tuple[str, ...] = ()
    prog_id: int = field(default_factory=lambda: next(_prog_ids))
    metadata: Optional[BpfProgMetadata] = None

    def __post_init__(self):
        if self.metadata is None:
            self.metadata = BpfProgMetadata(
                name=self.name,
                prog_type=self.prog_type,
                insn_cnt=len(self.insns),
                map_slots=tuple(range(len(self.map_names))),
                tag=self.tag(),
            )

    def __len__(self) -> int:
        return len(self.insns)

    def image(self) -> bytes:
        """The flat bytecode image (what a verifier/JIT consumes)."""
        return encode_program(self.insns)

    def tag(self) -> str:
        """Kernel-style 8-byte program tag (truncated SHA-1 of the image)."""
        return hashlib.sha1(self.image()).hexdigest()[:16]

    def size_bytes(self) -> int:
        return len(self.insns) * 8
