"""eBPF maps -- the canonical XState (paper §3.4).

Maps have a fixed key/value size and a maximum entry count, so they
serialize to a flat memory image: ``[slot_used:u8 pad:7][key][value]``
per slot.  That flat layout is what RDX's XState machinery allocates
from the remote scratchpad and accesses via one-sided RDMA.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.errors import XStateError

_map_ids = itertools.count(1)

#: bpf_map_update_elem flags (kernel ABI).
BPF_ANY = 0
BPF_NOEXIST = 1
BPF_EXIST = 2

_SLOT_HEADER = 8  # used flag + padding


class MapType(enum.Enum):
    HASH = "hash"
    ARRAY = "array"
    PERCPU_ARRAY = "percpu_array"


class BpfMap:
    """A fixed-geometry key/value map."""

    def __init__(
        self,
        map_type: MapType,
        key_size: int,
        value_size: int,
        max_entries: int,
        name: str = "",
        n_cpus: int = 1,
    ):
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise XStateError("map geometry must be positive")
        if map_type is MapType.ARRAY and key_size != 4:
            raise XStateError("array maps require 4-byte keys")
        self.map_id = next(_map_ids)
        self.map_type = map_type
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        self.n_cpus = n_cpus if map_type is MapType.PERCPU_ARRAY else 1
        self.name = name or f"map{self.map_id}"
        self._slots: dict[bytes, bytes] = {}
        if map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
            zero = bytes(value_size * self.n_cpus)
            for index in range(max_entries):
                self._slots[index.to_bytes(4, "little")] = zero

    def __len__(self) -> int:
        return len(self._slots)

    def _check_key(self, key: bytes) -> bytes:
        if len(key) != self.key_size:
            raise XStateError(
                f"{self.name}: key size {len(key)} != {self.key_size}"
            )
        if self.map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
            index = int.from_bytes(key, "little")
            if index >= self.max_entries:
                raise XStateError(f"{self.name}: array index {index} out of range")
        return bytes(key)

    def lookup(self, key: bytes) -> bytes | None:
        """Return the value bytes, or None when absent."""
        return self._slots.get(self._check_key(key))

    def update(self, key: bytes, value: bytes, flags: int = BPF_ANY) -> int:
        """Insert/replace; returns 0 on success, negative errno style."""
        key = self._check_key(key)
        expected = self.value_size * self.n_cpus
        if len(value) != expected:
            raise XStateError(
                f"{self.name}: value size {len(value)} != {expected}"
            )
        exists = key in self._slots
        if flags == BPF_NOEXIST and exists:
            return -17  # -EEXIST
        if flags == BPF_EXIST and not exists:
            return -2  # -ENOENT
        if (
            not exists
            and self.map_type is MapType.HASH
            and len(self._slots) >= self.max_entries
        ):
            return -7  # -E2BIG
        self._slots[key] = bytes(value)
        return 0

    def delete(self, key: bytes) -> int:
        key = self._check_key(key)
        if self.map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
            return -22  # -EINVAL: array entries cannot be deleted
        if self._slots.pop(key, None) is None:
            return -2  # -ENOENT
        return 0

    def keys(self) -> list[bytes]:
        return list(self._slots.keys())

    # -- flat image (XState serialization) ---------------------------------

    def slot_bytes(self) -> int:
        """Serialized size of one slot."""
        return _SLOT_HEADER + self.key_size + self.value_size * self.n_cpus

    def image_bytes(self) -> int:
        """Total serialized size (the XState allocation size)."""
        return self.slot_bytes() * self.max_entries

    def serialize(self) -> bytes:
        """Flatten to the XState wire/memory image."""
        out = bytearray()
        entries = list(self._slots.items())
        for index in range(self.max_entries):
            if index < len(entries):
                key, value = entries[index]
                out += b"\x01" + bytes(7) + key + value
            else:
                out += bytes(self.slot_bytes())
        return bytes(out)

    @classmethod
    def deserialize(
        cls,
        data: bytes,
        map_type: MapType,
        key_size: int,
        value_size: int,
        max_entries: int,
        name: str = "",
        n_cpus: int = 1,
    ) -> "BpfMap":
        """Rebuild a map from its flat image."""
        bpf_map = cls(map_type, key_size, value_size, max_entries, name, n_cpus)
        if map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
            bpf_map._slots.clear()
        slot = bpf_map.slot_bytes()
        if len(data) != slot * max_entries:
            raise XStateError(
                f"image size {len(data)} != {slot * max_entries} for {name!r}"
            )
        for index in range(max_entries):
            chunk = data[index * slot : (index + 1) * slot]
            if chunk[0]:
                key = chunk[_SLOT_HEADER : _SLOT_HEADER + key_size]
                value = chunk[_SLOT_HEADER + key_size :]
                bpf_map._slots[bytes(key)] = bytes(value)
        return bpf_map
