"""The helper-function registry (bpf_helper_defs analogue).

Helpers are the program's window into the local runtime: their
*addresses* differ per host, which is why JIT output carries a
relocation per call site and why RDX must link binaries against the
target's GOT (§3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional


class ArgType(enum.Enum):
    """Verifier-visible helper argument types (subset of the kernel's)."""

    SCALAR = "scalar"
    CONST_MAP_PTR = "const_map_ptr"
    MAP_KEY_PTR = "map_key_ptr"  # stack pointer sized to the map key
    MAP_VALUE_PTR = "map_value_ptr"
    STACK_PTR = "stack_ptr"
    ANYTHING = "anything"


class RetType(enum.Enum):
    """Helper return types."""

    SCALAR = "scalar"
    MAP_VALUE_OR_NULL = "map_value_or_null"
    VOID = "void"


@dataclass(frozen=True)
class Helper:
    """One helper: id, name, signature, and a host-side implementation.

    ``impl`` receives (runtime_ctx, *arg_values) where runtime_ctx is
    whatever execution environment the interpreter was constructed
    with (it exposes maps, time, and a PRNG).
    """

    helper_id: int
    name: str
    args: tuple[ArgType, ...]
    ret: RetType
    impl: Callable


def _map_lookup(rt, map_ref, key_addr):
    return rt.map_lookup(map_ref, key_addr)


def _map_update(rt, map_ref, key_addr, value_addr, flags):
    return rt.map_update(map_ref, key_addr, value_addr, flags)


def _map_delete(rt, map_ref, key_addr):
    return rt.map_delete(map_ref, key_addr)


def _ktime_get_ns(rt):
    return rt.ktime_ns()


def _get_prandom_u32(rt):
    return rt.prandom_u32()


def _get_smp_processor_id(rt):
    return rt.cpu_id()


def _trace_printk(rt, fmt_addr, fmt_size):
    return rt.trace_printk(fmt_addr, fmt_size)


#: Helper ids follow the kernel's numbering where one exists.
HELPERS: dict[int, Helper] = {
    1: Helper(
        1,
        "bpf_map_lookup_elem",
        (ArgType.CONST_MAP_PTR, ArgType.MAP_KEY_PTR),
        RetType.MAP_VALUE_OR_NULL,
        _map_lookup,
    ),
    2: Helper(
        2,
        "bpf_map_update_elem",
        (
            ArgType.CONST_MAP_PTR,
            ArgType.MAP_KEY_PTR,
            ArgType.MAP_VALUE_PTR,
            ArgType.SCALAR,
        ),
        RetType.SCALAR,
        _map_update,
    ),
    3: Helper(
        3,
        "bpf_map_delete_elem",
        (ArgType.CONST_MAP_PTR, ArgType.MAP_KEY_PTR),
        RetType.SCALAR,
        _map_delete,
    ),
    5: Helper(5, "bpf_ktime_get_ns", (), RetType.SCALAR, _ktime_get_ns),
    6: Helper(
        6,
        "bpf_trace_printk",
        (ArgType.STACK_PTR, ArgType.SCALAR),
        RetType.SCALAR,
        _trace_printk,
    ),
    7: Helper(7, "bpf_get_prandom_u32", (), RetType.SCALAR, _get_prandom_u32),
    8: Helper(
        8, "bpf_get_smp_processor_id", (), RetType.SCALAR, _get_smp_processor_id
    ),
}

_BY_NAME = {helper.name: helper for helper in HELPERS.values()}


def helper_by_id(helper_id: int) -> Optional[Helper]:
    return HELPERS.get(helper_id)


def helper_by_name(name: str) -> Optional[Helper]:
    return _BY_NAME.get(name)
