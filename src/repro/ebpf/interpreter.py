"""Reference interpreter for the eBPF subset.

Executes verified programs against a packet/context buffer, a stack,
and real :class:`~repro.ebpf.maps.BpfMap` objects.  Used three ways:

* functional correctness checks after deployment (the paper's §6
  "automated checks ensuring functional correctness"),
* differential testing against JIT round-trips, and
* data-path execution inside sandboxes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SandboxError
from repro.ebpf import opcodes as op
from repro.ebpf.helpers import ArgType, helper_by_id
from repro.ebpf.insn import Insn
from repro.ebpf.maps import BpfMap

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

#: Virtual address-space bases used during execution.
CTX_BASE = 0x0001_0000
STACK_TOP = 0x0002_0000
MAP_VALUE_BASE = 0x0010_0000
MAP_REF_BASE = 0x0040_0000

#: Runtime instruction budget (defense in depth behind the verifier).
DEFAULT_INSN_BUDGET = 4_000_000


def _signed(value: int, bits: int = 64) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    r0: int
    insns_executed: int
    printk_lines: list[str] = field(default_factory=list)


class Interpreter:
    """Executes one program invocation at a time.

    ``maps`` supplies the live map object for each map slot the program
    references.  ``time_ns``/``cpu_id``/``prandom_seq`` parameterize
    the environment-dependent helpers deterministically.
    """

    def __init__(
        self,
        maps: Sequence[BpfMap] = (),
        time_ns: int = 0,
        cpu_id: int = 0,
        prandom_seq: Optional[Sequence[int]] = None,
        insn_budget: int = DEFAULT_INSN_BUDGET,
    ):
        self.maps = list(maps)
        self.time_ns = time_ns
        self._cpu_id = cpu_id
        self._prandom = itertools.cycle(prandom_seq or [0x5DEECE66])
        self.insn_budget = insn_budget
        self._ctx = b""
        self._stack = bytearray(op.STACK_SIZE)
        self._value_areas: dict[int, tuple[BpfMap, bytes]] = {}
        self._next_value_base = MAP_VALUE_BASE
        self._printk: list[str] = []

    # -- helper runtime surface (called from helpers.py impls) ----------

    def _map_from_ref(self, map_ref: int) -> BpfMap:
        slot = map_ref - MAP_REF_BASE
        if not 0 <= slot < len(self.maps):
            raise SandboxError(f"bad map reference {map_ref:#x}")
        return self.maps[slot]

    def map_lookup(self, map_ref: int, key_addr: int) -> int:
        bpf_map = self._map_from_ref(map_ref)
        key = self._read_mem(key_addr, bpf_map.key_size)
        if bpf_map.lookup(key) is None:
            return 0
        base = self._next_value_base
        self._next_value_base += max(64, bpf_map.value_size + 16)
        self._value_areas[base] = (bpf_map, key)
        return base

    def map_update(
        self, map_ref: int, key_addr: int, value_addr: int, flags: int
    ) -> int:
        bpf_map = self._map_from_ref(map_ref)
        key = self._read_mem(key_addr, bpf_map.key_size)
        value = self._read_mem(value_addr, bpf_map.value_size * bpf_map.n_cpus)
        return _signed(bpf_map.update(key, value, flags))

    def map_delete(self, map_ref: int, key_addr: int) -> int:
        bpf_map = self._map_from_ref(map_ref)
        key = self._read_mem(key_addr, bpf_map.key_size)
        return _signed(bpf_map.delete(key))

    def ktime_ns(self) -> int:
        return self.time_ns

    def prandom_u32(self) -> int:
        return next(self._prandom) & _U32

    def cpu_id(self) -> int:
        return self._cpu_id

    def trace_printk(self, fmt_addr: int, fmt_size: int) -> int:
        raw = self._read_mem(fmt_addr, fmt_size)
        self._printk.append(raw.split(b"\x00")[0].decode("latin1"))
        return len(raw)

    # -- memory ------------------------------------------------------------

    def _area_for(self, addr: int, size: int):
        if CTX_BASE <= addr and addr + size <= CTX_BASE + len(self._ctx):
            return ("ctx", addr - CTX_BASE)
        stack_base = STACK_TOP - op.STACK_SIZE
        if stack_base <= addr and addr + size <= STACK_TOP:
            return ("stack", addr - stack_base)
        for base, (bpf_map, _key) in self._value_areas.items():
            if base <= addr and addr + size <= base + bpf_map.value_size:
                return ("map_value", (base, addr - base))
        raise SandboxError(f"bad memory access [{addr:#x}, +{size})")

    def _read_mem(self, addr: int, size: int) -> bytes:
        kind, where = self._area_for(addr, size)
        if kind == "ctx":
            return self._ctx[where : where + size]
        if kind == "stack":
            return bytes(self._stack[where : where + size])
        base, offset = where
        bpf_map, key = self._value_areas[base]
        value = bpf_map.lookup(key)
        if value is None:
            raise SandboxError("map value pointer went stale")
        return value[offset : offset + size]

    def _write_mem(self, addr: int, data: bytes) -> None:
        kind, where = self._area_for(addr, len(data))
        if kind == "ctx":
            raise SandboxError("ctx is read-only")
        if kind == "stack":
            self._stack[where : where + len(data)] = data
            return
        base, offset = where
        bpf_map, key = self._value_areas[base]
        value = bytearray(bpf_map.lookup(key) or b"")
        value[offset : offset + len(data)] = data
        bpf_map.update(key, bytes(value))

    # -- execution ----------------------------------------------------------

    def run(self, insns: list[Insn], ctx: bytes = b"") -> ExecutionResult:
        """Execute ``insns`` with ``ctx`` as the context buffer."""
        self._ctx = bytes(ctx)
        self._stack = bytearray(op.STACK_SIZE)
        self._value_areas.clear()
        self._next_value_base = MAP_VALUE_BASE
        self._printk = []
        regs = [0] * 11
        regs[op.R1] = CTX_BASE
        regs[op.R10] = STACK_TOP
        pc = 0
        executed = 0
        while True:
            if executed >= self.insn_budget:
                raise SandboxError("instruction budget exhausted")
            if not 0 <= pc < len(insns):
                raise SandboxError(f"pc {pc} out of range")
            insn = insns[pc]
            executed += 1
            cls = op.insn_class(insn.opcode)

            if insn.opcode == op.LDDW:
                if pc + 1 >= len(insns):
                    raise SandboxError("truncated LDDW")
                high = insns[pc + 1].imm & _U32
                low = insn.imm & _U32
                if insn.src == op.PSEUDO_MAP_FD:
                    regs[insn.dst] = MAP_REF_BASE + low
                else:
                    regs[insn.dst] = (high << 32) | low
                pc += 2
                continue

            if cls in (op.BPF_ALU, op.BPF_ALU64):
                self._alu(regs, insn, cls)
                pc += 1
                continue

            if cls == op.BPF_LDX:
                size = op.SIZE_BYTES[insn.opcode & op.SIZE_MASK]
                data = self._read_mem((regs[insn.src] + insn.off) & _U64, size)
                regs[insn.dst] = int.from_bytes(data, "little")
                pc += 1
                continue

            if cls in (op.BPF_ST, op.BPF_STX):
                size = op.SIZE_BYTES[insn.opcode & op.SIZE_MASK]
                value = regs[insn.src] if cls == op.BPF_STX else insn.imm & _U64
                data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
                self._write_mem((regs[insn.dst] + insn.off) & _U64, data)
                pc += 1
                continue

            if cls in (op.BPF_JMP, op.BPF_JMP32):
                operation = op.alu_op(insn.opcode)
                if operation == op.BPF_EXIT:
                    return ExecutionResult(
                        r0=regs[op.R0],
                        insns_executed=executed,
                        printk_lines=self._printk,
                    )
                if operation == op.BPF_CALL:
                    self._call(regs, insn)
                    pc += 1
                    continue
                if operation == op.BPF_JA:
                    pc += 1 + insn.off
                    continue
                if self._jump_taken(regs, insn, cls):
                    pc += 1 + insn.off
                else:
                    pc += 1
                continue

            raise SandboxError(f"unsupported opcode {insn.opcode:#04x}")

    def _alu(self, regs: list[int], insn: Insn, cls: int) -> None:
        operation = op.alu_op(insn.opcode)
        is64 = cls == op.BPF_ALU64
        mask = _U64 if is64 else _U32
        bits = 64 if is64 else 32
        if insn.opcode & op.BPF_X:
            operand = regs[insn.src] & mask
        else:
            operand = insn.imm & mask
        value = regs[insn.dst] & mask

        if operation == op.BPF_MOV:
            result = operand
        elif operation == op.BPF_ADD:
            result = value + operand
        elif operation == op.BPF_SUB:
            result = value - operand
        elif operation == op.BPF_MUL:
            result = value * operand
        elif operation == op.BPF_DIV:
            result = value // operand if operand else 0
        elif operation == op.BPF_MOD:
            result = value % operand if operand else value
        elif operation == op.BPF_OR:
            result = value | operand
        elif operation == op.BPF_AND:
            result = value & operand
        elif operation == op.BPF_XOR:
            result = value ^ operand
        elif operation == op.BPF_LSH:
            result = value << (operand % bits)
        elif operation == op.BPF_RSH:
            result = value >> (operand % bits)
        elif operation == op.BPF_ARSH:
            result = _signed(value, bits) >> (operand % bits)
        elif operation == op.BPF_NEG:
            result = -value
        elif operation == op.BPF_END:
            size = max(2, min(8, insn.imm // 8)) if insn.imm else 8
            result = int.from_bytes(
                (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"), "big"
            )
        else:
            raise SandboxError(f"unsupported ALU op {operation:#x}")
        regs[insn.dst] = result & mask

    def _jump_taken(self, regs: list[int], insn: Insn, cls: int) -> bool:
        operation = op.alu_op(insn.opcode)
        bits = 32 if cls == op.BPF_JMP32 else 64
        mask = (1 << bits) - 1
        left = regs[insn.dst] & mask
        if insn.opcode & op.BPF_X:
            right = regs[insn.src] & mask
        else:
            right = insn.imm & mask
        sleft, sright = _signed(left, bits), _signed(right, bits)
        if operation == op.BPF_JEQ:
            return left == right
        if operation == op.BPF_JNE:
            return left != right
        if operation == op.BPF_JGT:
            return left > right
        if operation == op.BPF_JGE:
            return left >= right
        if operation == op.BPF_JLT:
            return left < right
        if operation == op.BPF_JLE:
            return left <= right
        if operation == op.BPF_JSET:
            return bool(left & right)
        if operation == op.BPF_JSGT:
            return sleft > sright
        if operation == op.BPF_JSGE:
            return sleft >= sright
        if operation == op.BPF_JSLT:
            return sleft < sright
        if operation == op.BPF_JSLE:
            return sleft <= sright
        raise SandboxError(f"unsupported jump op {operation:#x}")

    def _call(self, regs: list[int], insn: Insn) -> None:
        helper = helper_by_id(insn.imm)
        if helper is None:
            raise SandboxError(f"call to unknown helper {insn.imm}")
        args = [regs[i] for i in range(1, 1 + len(helper.args))]
        result = helper.impl(self, *args)
        regs[op.R0] = (result or 0) & _U64
        for index in range(1, 6):
            regs[index] = 0
