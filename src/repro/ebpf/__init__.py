"""A working eBPF subset: ISA, assembler, verifier, interpreter, JIT, maps.

This is the paper's primary proving ground (§6): the agent baseline
verifies and JIT-compiles these programs on the target host's CPU,
while RDX does both remotely and injects the finished binary.  The
toolchain is functional, not a mock -- programs compute real results,
the verifier genuinely rejects unsafe code, and JIT output carries
relocation records that must be linked before execution.

Instruction encoding follows the kernel's fixed 8-byte format
(opcode, dst/src nibbles, 16-bit offset, 32-bit immediate) with the
standard class/op/source bit layout; see :mod:`repro.ebpf.opcodes`.
"""

from repro.ebpf.insn import Insn, decode_program, encode_program
from repro.ebpf.asm import Asm
from repro.ebpf.program import BpfProgram, BpfProgMetadata, ProgType
from repro.ebpf.verifier import VerifierStats, verify
from repro.ebpf.interpreter import ExecutionResult, Interpreter
from repro.ebpf.jit import JitBinary, Relocation, RelocKind, jit_compile
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.helpers import HELPERS, Helper, helper_by_id, helper_by_name
from repro.ebpf.stress import make_stress_program, STRESS_SIZES
from repro.ebpf.loader import LocalLoader

__all__ = [
    "Asm",
    "BpfMap",
    "BpfProgMetadata",
    "BpfProgram",
    "ExecutionResult",
    "HELPERS",
    "Helper",
    "Insn",
    "Interpreter",
    "JitBinary",
    "LocalLoader",
    "MapType",
    "ProgType",
    "RelocKind",
    "Relocation",
    "STRESS_SIZES",
    "VerifierStats",
    "decode_program",
    "encode_program",
    "helper_by_id",
    "helper_by_name",
    "jit_compile",
    "make_stress_program",
    "verify",
]
