"""A small fluent assembler for building eBPF programs in tests/workloads.

Example -- return the first packet byte doubled::

    prog = (
        Asm()
        .ldx_b(op.R0, op.R1, 0)     # r0 = *(u8 *)(r1 + 0)
        .alu64_imm(op.BPF_MUL, op.R0, 2)
        .exit_()
        .build()
    )

Labels support forward and backward jump targets by name (the verifier
rejects backward jumps, but the assembler does not second-guess you --
that is the verifier's job, and tests need to build bad programs too).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.ebpf import opcodes as op
from repro.ebpf.insn import Insn, lddw_pair


class Asm:
    """Accumulates instructions; ``build()`` resolves labels."""

    def __init__(self):
        self._insns: list[Insn] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []  # (insn index, label)

    def __len__(self) -> int:
        return len(self._insns)

    def raw(self, insn: Insn) -> "Asm":
        self._insns.append(insn)
        return self

    def label(self, name: str) -> "Asm":
        if name in self._labels:
            raise ReproError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)
        return self

    # -- ALU -----------------------------------------------------------

    def mov_imm(self, dst: int, imm: int) -> "Asm":
        return self.raw(Insn(op.BPF_ALU64 | op.BPF_MOV | op.BPF_K, dst=dst, imm=imm))

    def mov_reg(self, dst: int, src: int) -> "Asm":
        return self.raw(Insn(op.BPF_ALU64 | op.BPF_MOV | op.BPF_X, dst=dst, src=src))

    def alu64_imm(self, alu_op: int, dst: int, imm: int) -> "Asm":
        return self.raw(Insn(op.BPF_ALU64 | alu_op | op.BPF_K, dst=dst, imm=imm))

    def alu64_reg(self, alu_op: int, dst: int, src: int) -> "Asm":
        return self.raw(Insn(op.BPF_ALU64 | alu_op | op.BPF_X, dst=dst, src=src))

    def alu32_imm(self, alu_op: int, dst: int, imm: int) -> "Asm":
        return self.raw(Insn(op.BPF_ALU | alu_op | op.BPF_K, dst=dst, imm=imm))

    def neg(self, dst: int) -> "Asm":
        return self.raw(Insn(op.BPF_ALU64 | op.BPF_NEG, dst=dst))

    # -- memory -----------------------------------------------------------

    def ldx(self, size: int, dst: int, src: int, off: int) -> "Asm":
        return self.raw(Insn(op.BPF_LDX | size | op.BPF_MEM, dst=dst, src=src, off=off))

    def ldx_b(self, dst: int, src: int, off: int) -> "Asm":
        return self.ldx(op.BPF_B, dst, src, off)

    def ldx_w(self, dst: int, src: int, off: int) -> "Asm":
        return self.ldx(op.BPF_W, dst, src, off)

    def ldx_dw(self, dst: int, src: int, off: int) -> "Asm":
        return self.ldx(op.BPF_DW, dst, src, off)

    def stx(self, size: int, dst: int, src: int, off: int) -> "Asm":
        return self.raw(Insn(op.BPF_STX | size | op.BPF_MEM, dst=dst, src=src, off=off))

    def stx_dw(self, dst: int, src: int, off: int) -> "Asm":
        return self.stx(op.BPF_DW, dst, src, off)

    def st_imm(self, size: int, dst: int, off: int, imm: int) -> "Asm":
        return self.raw(Insn(op.BPF_ST | size | op.BPF_MEM, dst=dst, off=off, imm=imm))

    def lddw(self, dst: int, imm64: int) -> "Asm":
        for insn in lddw_pair(dst, imm64):
            self.raw(insn)
        return self

    def ld_map_fd(self, dst: int, map_name_imm: int) -> "Asm":
        """Load a map reference (BPF_PSEUDO_MAP_FD) into ``dst``.

        ``map_name_imm`` is the program-local map slot index; the
        loader/linker resolves it to an actual map.
        """
        for insn in lddw_pair(dst, map_name_imm, src=op.PSEUDO_MAP_FD):
            self.raw(insn)
        return self

    # -- control flow ---------------------------------------------------

    def ja(self, label: str) -> "Asm":
        self._fixups.append((len(self._insns), label))
        return self.raw(Insn(op.BPF_JMP | op.BPF_JA, off=0))

    def jmp_imm(self, jmp_op: int, dst: int, imm: int, label: str) -> "Asm":
        self._fixups.append((len(self._insns), label))
        return self.raw(Insn(op.BPF_JMP | jmp_op | op.BPF_K, dst=dst, imm=imm))

    def jmp_reg(self, jmp_op: int, dst: int, src: int, label: str) -> "Asm":
        self._fixups.append((len(self._insns), label))
        return self.raw(Insn(op.BPF_JMP | jmp_op | op.BPF_X, dst=dst, src=src))

    def call(self, helper_id: int) -> "Asm":
        return self.raw(Insn(op.BPF_JMP | op.BPF_CALL, imm=helper_id))

    def exit_(self) -> "Asm":
        return self.raw(Insn(op.BPF_JMP | op.BPF_EXIT))

    # -- finalize ---------------------------------------------------------

    def build(self) -> list[Insn]:
        """Resolve labels and return the instruction list."""
        insns = list(self._insns)
        for index, label in self._fixups:
            target = self._labels.get(label)
            if target is None:
                raise ReproError(f"undefined label {label!r}")
            offset = target - index - 1
            old = insns[index]
            insns[index] = Insn(
                opcode=old.opcode, dst=old.dst, src=old.src, off=offset, imm=old.imm
            )
        return insns
