"""repro -- a reproduction of "Remote Direct Code Execution" (HotNets '25).

RDX elevates RDMA from remote memory access to remote *code* execution
for runtime-extension frameworks (eBPF, Wasm filters, UDFs), replacing
per-node agents with a remote control plane driving one-sided verbs.

Quickstart::

    from repro.sim import Simulator
    from repro.net import Cluster
    from repro.sandbox import Sandbox
    from repro.core import RdxControlPlane
    from repro.core.api import bootstrap_sandbox, rdx_create_codeflow, rdx_deploy_prog
    from repro.ebpf import make_stress_program

    sim = Simulator()
    cluster = Cluster(sim, n_hosts=1)
    sandbox = Sandbox(cluster.hosts[0], hooks=("ingress",))
    bootstrap_sandbox(sandbox)
    control = RdxControlPlane(cluster.control_host)

    def main():
        handle = yield from rdx_create_codeflow(control, sandbox)
        report = yield from rdx_deploy_prog(
            handle, make_stress_program(1_300), "ingress")
        return report

    report = sim.run_process(main())
    print(f"injected in {report.total_us:.1f} us")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every figure and table.
"""

__version__ = "1.0.0"

from repro import params
from repro.errors import (
    ConsistencyError,
    DeployError,
    JitError,
    LinkError,
    ProtectionError,
    RdmaError,
    ReproError,
    SandboxCrash,
    SandboxError,
    SecurityError,
    VerifierError,
    WorkloadError,
    XStateError,
)

__all__ = [
    "ConsistencyError",
    "DeployError",
    "JitError",
    "LinkError",
    "ProtectionError",
    "RdmaError",
    "ReproError",
    "SandboxCrash",
    "SandboxError",
    "SecurityError",
    "VerifierError",
    "WorkloadError",
    "XStateError",
    "__version__",
    "params",
]
