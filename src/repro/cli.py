"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro.cli list
    python -m repro.cli fig4a
    python -m repro.cli fig5 --quick
    python -m repro.cli all --quick
    python -m repro.cli telemetry --quick --format prom

``--quick`` shrinks sweeps for a fast smoke run; the default settings
match `benchmarks/`.  ``telemetry`` runs a representative deploy /
broadcast / audit workload and prints the resulting metrics snapshot
(``--format table|jsonl|prom``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.exp import (
    format_table,
    run_fault_campaign,
    run_fig2a,
    run_fig2b,
    run_fig2c,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_tab_broadcast,
    run_tab_mesh,
    run_tab_redis,
    run_tab_rollback,
)


def _fig2a(quick: bool) -> str:
    sizes = (1_300, 11_000) if quick else (1_300, 11_000, 26_000, 49_000, 76_000)
    result = run_fig2a(sizes=sizes, repeats=2 if quick else 3)
    return format_table(
        "Fig 2a -- agent injection overhead",
        ["insns", "inject (ms)", "verify+JIT share"],
        [
            (p.insn_size, p.mean_inject_us / 1000.0,
             f"{p.verify_jit_share * 100:.1f}%")
            for p in result.points
        ],
    )


def _fig2b(quick: bool) -> str:
    apps = (("app1", 4), ("app2", 11)) if quick else None
    kwargs = {"apps": apps} if apps else {}
    if quick:
        kwargs.update(ebpf_insns=3_000, wasm_padding=500)
    result = run_fig2b(**kwargs)
    return format_table(
        "Fig 2b -- rollout inconsistency window",
        ["app", "services", "family", "window (ms)", "violations"],
        [
            (p.app, p.n_services, p.family, p.window_us / 1000.0, p.violations)
            for p in result.points
        ],
    )


def _fig2c(quick: bool) -> str:
    duration = 400_000 if quick else 800_000
    result = run_fig2c(rates=(100, 200, 300, 400), duration_us=duration)
    return format_table(
        "Fig 2c -- completion under injection contention",
        ["offered req/s", "clean", "contended", "degradation"],
        [
            (p.offered_req_s, p.completion_no_contention,
             p.completion_with_contention, f"{p.degradation * 100:.0f}%")
            for p in result.points
        ],
    )


def _fig4a(quick: bool) -> str:
    sizes = (1_300, 11_000) if quick else (1_300, 11_000, 26_000, 49_000,
                                           76_000, 95_000)
    result = run_fig4a(sizes=sizes, repeats=2 if quick else 3)
    return format_table(
        "Fig 4a -- Agent vs RDX injection",
        ["insns", "agent (ms)", "RDX (us)", "speedup"],
        [
            (p.insn_size, p.agent_us / 1000.0, p.rdx_us, f"{p.speedup:.0f}x")
            for p in result.points
        ],
    )


def _fig4b(quick: bool) -> str:
    result = run_fig4b()
    rows = [("agent", k, v) for k, v in result.agent_phases_us.items()]
    rows += [("rdx", k, v) for k, v in result.rdx_phases_us.items()]
    return format_table(
        f"Fig 4b -- breakdown at {result.insn_size} insns",
        ["path", "phase", "us"],
        rows,
        note=f"agent verify+JIT share {result.agent_verify_jit_share * 100:.1f}%",
    )


def _fig5(quick: bool) -> str:
    levels = (5, 20, 40) if quick else (5, 10, 15, 20, 25, 30, 35, 40)
    result = run_fig5(cpki_levels=levels, trials=15 if quick else 31)
    return format_table(
        "Fig 5 -- incoherence vs CPKI",
        ["CPKI", "vanilla (us)", "RDX (us)"],
        [
            (p.cpki, p.vanilla_median_us, p.rdx_median_us)
            for p in result.points
        ],
    )


def _tab_redis(quick: bool) -> str:
    result = run_tab_redis(duration_us=150_000 if quick else 300_000)
    return format_table(
        "Redis throughput",
        ["deployment", "ops/s"],
        [("agent", result.agent_ops_s), ("RDX", result.rdx_ops_s)],
        note=f"improvement {result.improvement_pct:.1f}%",
    )


def _tab_mesh(quick: bool) -> str:
    result = run_tab_mesh(duration_us=200_000 if quick else 400_000)
    return format_table(
        "Mesh completion under filter churn",
        ["deployment", "req/s"],
        [
            ("agents", result.agent_completion_s),
            ("RDX", result.rdx_completion_s),
        ],
        note=f"improvement {result.improvement_pct:.1f}%",
    )


def _tab_broadcast(quick: bool) -> str:
    sizes = (2, 4) if quick else (2, 4, 8, 16)
    result = run_tab_broadcast(group_sizes=sizes)
    return format_table(
        "rdx_broadcast / BBU sizing",
        ["nodes", "bubble (us)", "RDX buffer", "agent buffer"],
        [
            (r.group_size, r.bubble_window_us, f"{r.bbu_buffer_requests:.0f}",
             f"{r.agent_buffer_requests:,.0f}")
            for r in result.rows
        ],
    )


def _tab_rollback(quick: bool) -> str:
    result = run_tab_rollback()
    return format_table(
        "Rollback under 95% CPU load",
        ["path", "latency (us)"],
        [
            ("agent re-inject", result.agent_rollback_us),
            ("RDX flip+flush", result.rdx_rollback_us),
        ],
        note=f"speedup {result.speedup:,.0f}x",
    )


def run_telemetry_workload(quick: bool = False):
    """Drive a representative workload; returns (testbed, last AuditReport).

    Exercises every instrumented layer: cold + warm deploys (cache
    miss/hit), an ``rdx_broadcast`` fan-out (parent + per-target child
    spans), an XState deploy, and two audits -- one clean, one after
    tampering with a deployed image so findings counters move.
    """
    from repro.core.broadcast import CodeFlowGroup
    from repro.core.introspect import RemoteIntrospector
    from repro.core.xstate import XStateSpec
    from repro.ebpf.maps import MapType
    from repro.ebpf.stress import make_stress_program
    from repro.exp.harness import make_testbed

    n_hosts = 2 if quick else 4
    repeats = 2 if quick else 5
    bed = make_testbed(n_hosts=n_hosts, cores_per_host=8)

    # Cold deploy (cache miss: validate + JIT) then warm re-deploys
    # (cache hits: pure injection -- the Fig 4b fast path).
    program = make_stress_program(1_300 if quick else 5_000, seed=7)
    for _ in range(repeats):
        bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )

    # Cluster-wide transactional update: one program per target.
    group = CodeFlowGroup(bed.codeflows)
    rollout = make_stress_program(900, seed=11, name="rollout")
    bed.sim.run_process(
        group.broadcast([rollout] * len(bed.codeflows), "egress")
    )

    # Extension state (Meta-XState) deploy.
    bed.sim.run_process(
        bed.codeflow.deploy_xstate(XStateSpec("kv", MapType.HASH, 4, 8, 8))
    )

    # Remote audits: a clean pass, then one that must find tampering.
    introspector = RemoteIntrospector(bed.codeflow)
    introspector.snapshot_deployed()
    bed.sim.run_process(introspector.audit())
    record = bed.codeflow.deployed[program.name]
    raw = bed.host.memory.read(record.code_addr + 16, 1)
    bed.host.memory.write(record.code_addr + 16, bytes([raw[0] ^ 0xFF]))
    report = bed.sim.run_process(introspector.audit())

    # Reliability layer: a transient fault absorbed by the retry
    # policy (rdx.retry.*), then a torn image write that fails the
    # verify readback and aborts the broadcast (rdx.broadcast.abort).
    from repro.core.faults import FaultInjector, FaultKind
    from repro.errors import BroadcastAborted

    injector = FaultInjector(bed.codeflows[-1], seed=5)
    injector.arm(FaultKind.TRANSIENT)
    injector.attach()
    patch = make_stress_program(700, seed=13, name="rollout")
    bed.sim.run_process(
        group.broadcast([patch] * len(bed.codeflows), "egress")
    )
    injector.arm(FaultKind.TORN_WRITE)
    torn = make_stress_program(800, seed=17, name="rollout")
    try:
        bed.sim.run_process(
            group.broadcast([torn] * len(bed.codeflows), "egress")
        )
    except BroadcastAborted:
        pass  # expected: succeeded targets rolled back to `patch`
    finally:
        injector.detach()
    return bed, report


def _telemetry(quick: bool, fmt: str = "table") -> str:
    from repro.obs import to_jsonl, to_prometheus

    bed, _report = run_telemetry_workload(quick)
    registry = bed.obs.registry
    if fmt == "jsonl":
        return to_jsonl(registry).rstrip("\n")
    if fmt == "prom":
        return to_prometheus(registry).rstrip("\n")

    scalar_rows = []
    histo_rows = []
    for row in registry.snapshot():
        labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        if row["type"] == "histogram":
            histo_rows.append(
                (row["name"], labels, row["count"], row["p50"], row["p90"],
                 row["p99"], row["max"])
            )
        else:
            scalar_rows.append((row["name"], labels, row["type"], row["value"]))
    parts = [
        format_table(
            "Telemetry -- counters and gauges",
            ["name", "labels", "type", "value"],
            scalar_rows,
        ),
        "",
        format_table(
            "Telemetry -- histograms (us unless noted)",
            ["name", "labels", "count", "p50", "p90", "p99", "max"],
            histo_rows,
            note=(
                f"{bed.obs.tracer.started} spans, "
                f"{len(bed.obs.recorder)} trace events"
            ),
        ),
    ]
    return "\n".join(parts)


def _faults(
    rounds: int, seed: int, nodes: int, allow_partial: bool,
    scrape: bool = False, telemetry_out: str = "",
) -> str:
    bed = None
    if scrape or telemetry_out:
        from repro.exp.harness import make_testbed

        bed = make_testbed(n_hosts=nodes, cores_per_host=8, seed=seed)
    result = run_fault_campaign(
        n_hosts=nodes, rounds=rounds, seed=seed, allow_partial=allow_partial,
        testbed=bed, scrape=scrape or bool(telemetry_out),
    )
    if telemetry_out:
        import os

        from repro.obs import export_jsonl, export_prometheus

        os.makedirs(telemetry_out, exist_ok=True)
        with open(os.path.join(telemetry_out, "snap.prom"), "w") as fh:
            fh.write(export_prometheus(bed.obs))
        with open(os.path.join(telemetry_out, "snap.jsonl"), "w") as fh:
            fh.write(export_jsonl(bed.obs))
    rows = [
        (
            r.index,
            r.fault,
            r.target,
            "degraded" if r.degraded else
            ("committed" if r.committed else "ABORTED"),
            r.retries,
            r.abort_us,
            "yes" if r.bubbles_clear else "NO",
        )
        for r in result.rounds
    ]
    note = (
        f"{result.committed} committed, {result.aborts} aborted, "
        f"{result.degraded} degraded | {result.faults_injected} faults "
        f"injected, {result.retries_total} transport retries, "
        f"{result.stranded} stranded-bubble rounds (must be 0)"
    )
    if scrape or telemetry_out:
        note += (
            f" | {result.scrapes} one-sided scrapes "
            f"({result.scrape_retries} seqlock retries, "
            f"{result.scrape_torn} torn)"
        )
    return format_table(
        f"Fault campaign -- {result.n_hosts} nodes, seed {result.seed}, "
        f"allow_partial={result.allow_partial}",
        ["round", "fault", "target", "outcome", "retries", "abort (us)",
         "bubbles clear"],
        rows,
        note=note,
    )


def _races(seed: int, nodes: int, rounds: int) -> tuple[str, int]:
    """Happens-before race check: fault campaign + known-bad schedules.

    Returns (report text, exit status).  Nonzero when the fault
    campaign trips a detector (a real ordering bug in the stack) or
    when a known-bad schedule fails to trip its detector (a dead
    detector).
    """
    from repro import params
    from repro.exp.hb_schedules import format_report, run_hb_schedules
    from repro.hb import checker

    parts = []
    status = 0

    saved = params.RDX_HB_CHECK
    params.RDX_HB_CHECK = True
    checker.reset_active()
    try:
        run_fault_campaign(n_hosts=nodes, rounds=rounds, seed=seed)
        reports = checker.check_active()
    finally:
        checker.reset_active()
        params.RDX_HB_CHECK = saved

    rows = []
    for index, (_sim, report) in enumerate(reports):
        rows.append(
            (
                index,
                report.events,
                len(report.findings),
                "yes" if report.truncated else "no",
                "clean" if report.clean else "DIRTY",
            )
        )
        if report.findings:
            status = 1
            parts.append(checker.format_findings(report.findings))
    parts.insert(
        0,
        format_table(
            f"HB race check -- fault campaign, {nodes} nodes, "
            f"{rounds} rounds, seed {seed}",
            ["sim", "hb events", "findings", "truncated", "verdict"],
            rows,
            note="every simulation the campaign touched, checked at exit",
        ),
    )

    schedules = run_hb_schedules(seed=seed)
    parts.append("")
    parts.append(format_report(schedules))
    if not schedules.ok:
        status = 1
    return "\n".join(parts), status


def _blackbox(seed: int, nodes: int) -> str:
    """Crash the control plane mid-broadcast, then read the black box.

    Models the operator workflow after an incarnation dies: the crash
    handler snapshotted the flight recorder (recent spans, metric
    deltas, still-open spans) into the durable intent journal; this
    command replays those FLIGHT records into a post-mortem report,
    then shows the successor recovering.
    """
    import random as _random

    from repro.core.broadcast import CodeFlowGroup
    from repro.core.reconcile import Reconciler, resume_control_plane
    from repro.ebpf.stress import make_stress_program
    from repro.exp.harness import make_testbed
    from repro.obs.flight import format_blackbox

    rng = _random.Random(seed)
    bed = make_testbed(n_hosts=nodes, cores_per_host=8, seed=seed)
    group = CodeFlowGroup(bed.codeflows)

    def programs(version: int):
        return [
            make_stress_program(400, seed=version * 31 + i, name=f"bb{i}")
            for i in range(len(bed.codeflows))
        ]

    # A committed baseline, then a broadcast that dies mid-flight.
    bed.sim.run_process(group.broadcast(programs(1), "ingress"))
    proc = bed.sim.spawn(
        group.broadcast(programs(2), "ingress"), name="doomed-broadcast"
    )
    bed.sim.run(until=bed.sim.now + 20.0 + rng.uniform(0.0, 30.0))
    bed.control.crash()  # journals the FLIGHT snapshot
    proc.interrupt("control plane fail-stop")
    bed.sim.run()

    flights = [record.detail for record in bed.control.journal.flight_records()]
    report = format_blackbox(flights, epoch=bed.control.epoch)

    # The successor recovers; its repairs prove the box was read from
    # durable state, not from the dead incarnation's memory.
    plane, codeflows = bed.sim.run_process(
        resume_control_plane(
            bed.cluster.control_host, bed.control.journal, bed.sandboxes,
            trace=bed.trace,
        )
    )
    bed.sim.run_process(Reconciler(plane).reconcile_all(codeflows))
    aborted = sum(1 for r in plane.journal.records if r.rec == "ABORT")
    return (
        report
        + f"\nrecovery: successor epoch {plane.epoch}, "
        f"{aborted} dangling txn(s) aborted, cluster reconciled"
    )


def _fuzz(
    scenario: str,
    iterations: int,
    seed: int,
    corpus_dir: str,
    replay: bool,
    max_events: int,
) -> tuple[str, int]:
    """The ``fuzz`` subcommand: explore schedules or replay the corpus.

    Fuzz mode exits nonzero when a *guarded* scenario produces a
    finding or invariant break (a live ordering bug).  Known-bad
    scenarios are *supposed* to fail; their minimized tapes are saved
    to the corpus as regression anchors.  Replay mode reruns every
    corpus schedule and exits nonzero unless each one re-trips its
    recorded failure class -- the detector-liveness gate.
    """
    from repro.fuzz import corpus as fuzz_corpus
    from repro.fuzz.engine import fuzz as run_fuzz
    from repro.fuzz.scenarios import GUARDED, KNOWN_BAD, SCENARIOS, get

    lines: list[str] = []
    status = 0

    if replay:
        entries = fuzz_corpus.load_dir(corpus_dir)
        if not entries:
            return f"no schedule files under {corpus_dir}", 1
        for entry in entries:
            result, ok = fuzz_corpus.replay(entry, max_events=max_events)
            mark = "ok" if ok else "DETECTOR SILENT"
            lines.append(
                f"[{mark}] {entry.filename}: verdict={result.verdict} "
                f"kinds={','.join(result.kinds) or '-'} "
                f"({len(entry.plan.decisions)} decision(s))"
            )
            if not ok:
                status = 1
        lines.append(
            f"{len(entries)} schedule(s) replayed"
            + ("" if status == 0 else " -- LIVENESS GATE FAILED")
        )
        return "\n".join(lines), status

    if scenario == "all":
        names = list(SCENARIOS)
    elif scenario == "guarded":
        names = list(GUARDED)
    elif scenario == "known-bad":
        names = list(KNOWN_BAD)
    else:
        names = [scenario]

    for name in names:
        target = get(name)
        report = run_fuzz(
            target, iterations=iterations, seed=seed, max_events=max_events
        )
        verdicts = " ".join(
            f"{k}={v}" for k, v in sorted(report.verdicts.items())
        )
        lines.append(f"{name}: {report.iterations} iteration(s), {verdicts}")
        for failure in report.failures:
            entry = fuzz_corpus.CorpusEntry.from_failure(
                failure, workload_seed=0
            )
            path = fuzz_corpus.save(entry, corpus_dir)
            lines.append(
                f"  {failure.kind}: found at iteration {failure.iteration}, "
                f"minimized {failure.original_decisions} -> "
                f"{failure.minimized_decisions} decision(s) "
                f"in {failure.minimize_runs} run(s) -> {path}"
            )
        if not target.known_bad and report.failures:
            lines.append(f"  ORDERING BUG: guarded scenario {name} failed")
            status = 1
        if target.known_bad and target.expect not in report.kinds_found:
            lines.append(
                f"  DETECTOR MISS: {name} never tripped {target.expect} "
                f"in {iterations} iteration(s)"
            )
            status = 1
    return "\n".join(lines), status


def _serve(quick: bool, tenants: int, duration_us: float, seed: int) -> str:
    """The ``serve`` subcommand: one open-loop multi-tenant run."""
    from repro.exp.serve_workload import ServeWorkloadSpec, run_serve_workload

    spec = ServeWorkloadSpec(
        n_tenants=60 if quick else tenants,
        n_targets=2 if quick else 8,
        duration_us=200_000.0 if quick else duration_us,
        n_hot_programs=4 if quick else 12,
        seed=seed,
    )
    result, service = run_serve_workload(spec)
    shed_total = sum(result.shed.values())
    warm_ratio = (
        result.cold_service_p50_us / result.warm_service_p50_us
        if result.warm_service_p50_us > 0
        else 0.0
    )
    rows = [
        ("deploys/sec (sustained)", result.deploys_per_sec),
        ("latency p50 (us)", result.latency_p50_us),
        ("latency p95 (us)", result.latency_p95_us),
        ("latency p99 (us)", result.latency_p99_us),
        ("warm service p50 (us)", result.warm_service_p50_us),
        ("cold service p50 (us)", result.cold_service_p50_us),
        ("warm/cold speedup", f"{warm_ratio:.1f}x"),
        ("offered", result.offered),
        ("completed", result.completed),
        ("failed", result.failed),
        ("shed (total)", shed_total),
    ]
    rows += [
        (f"shed: {reason}", count)
        for reason, count in sorted(result.shed.items())
    ]
    rows += [
        (f"p99 {name} (us)", p99)
        for name, p99 in sorted(result.per_class_p99_us.items())
    ]
    return format_table(
        f"Multi-tenant serving -- {spec.n_tenants} tenants, "
        f"{spec.n_targets} targets, {spec.duration_us / 1e6:.1f}s open loop",
        ["metric", "value"],
        rows,
        note=(
            f"warm pool: {result.warm_hits} hits, {result.warm_misses} "
            f"misses, {result.warm_evictions} evictions; "
            f"unaccounted deploys: {result.unaccounted} (must be 0)"
        ),
    )


def _recover(seed: int, nodes: int) -> str:
    from repro.exp.recovery_campaign import (
        format_recovery_report,
        run_recovery_campaign,
    )

    result = run_recovery_campaign(n_hosts=nodes, seed=seed)
    return format_recovery_report(result)


EXPERIMENTS: dict[str, Callable[[bool], str]] = {
    "fig2a": _fig2a,
    "fig2b": _fig2b,
    "fig2c": _fig2c,
    "fig4a": _fig4a,
    "fig4b": _fig4b,
    "fig5": _fig5,
    "redis": _tab_redis,
    "mesh": _tab_mesh,
    "broadcast": _tab_broadcast,
    "rollback": _tab_rollback,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate RDX paper figures/tables."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "list", "telemetry", "faults", "recover", "races",
           "blackbox", "fuzz", "serve"],
        help="which figure/table to regenerate "
        "(or 'telemetry' / 'faults' / 'recover' / 'races' / 'blackbox' "
        "/ 'fuzz' / 'serve')",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps, faster run"
    )
    parser.add_argument(
        "--format",
        choices=["table", "jsonl", "prom"],
        default="table",
        help="output format for the telemetry snapshot",
    )
    parser.add_argument(
        "--rounds", type=int, default=8,
        help="faults: number of faulted broadcast rounds",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="faults/recover: RNG seed for the fault schedule",
    )
    parser.add_argument(
        "--nodes", type=int, default=3,
        help="faults/recover: number of target hosts",
    )
    parser.add_argument(
        "--allow-partial", action="store_true",
        help="faults: quorum mode (degrade instead of abort)",
    )
    parser.add_argument(
        "--scrape", action="store_true",
        help="faults: run one-sided telemetry scrapes between rounds",
    )
    parser.add_argument(
        "--telemetry-out", default="", metavar="DIR",
        help="faults: write snap.prom / snap.jsonl metric snapshots "
        "to DIR (implies --scrape)",
    )
    parser.add_argument(
        "--iterations", type=int, default=25,
        help="fuzz: decision tapes to try per scenario",
    )
    parser.add_argument(
        "--scenario", default="all", metavar="NAME",
        help="fuzz: scenario name, or 'all' / 'guarded' / 'known-bad'",
    )
    parser.add_argument(
        "--corpus-dir", default="corpus/schedules", metavar="DIR",
        help="fuzz: where minimized schedule files live",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="fuzz: replay the corpus instead of fuzzing (detector "
        "liveness gate)",
    )
    parser.add_argument(
        "--max-events", type=int, default=50_000,
        help="fuzz: per-iteration trace bound (overrun = inconclusive)",
    )
    parser.add_argument(
        "--tenants", type=int, default=1000,
        help="serve: tenant population for the open-loop mix",
    )
    parser.add_argument(
        "--duration", type=float, default=2_000_000.0, metavar="US",
        help="serve: open-loop arrival window, simulated microseconds",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        try:
            for name in sorted(EXPERIMENTS) + [
                "blackbox", "faults", "fuzz", "races", "recover", "serve",
                "telemetry"
            ]:
                print(name)
        except BrokenPipeError:  # e.g. `repro list | head`
            pass
        return 0

    if args.experiment == "telemetry":
        print(_telemetry(args.quick, args.format))
        return 0

    if args.experiment == "recover":
        print(_recover(seed=args.seed, nodes=args.nodes))
        return 0

    if args.experiment == "serve":
        print(
            _serve(
                args.quick,
                tenants=args.tenants,
                duration_us=args.duration,
                seed=args.seed or 7,
            )
        )
        return 0

    if args.experiment == "blackbox":
        print(_blackbox(seed=args.seed, nodes=args.nodes))
        return 0

    if args.experiment == "races":
        text, status = _races(
            seed=args.seed,
            nodes=args.nodes,
            rounds=4 if args.quick else args.rounds,
        )
        print(text)
        return status

    if args.experiment == "fuzz":
        text, status = _fuzz(
            scenario=args.scenario,
            iterations=5 if args.quick else args.iterations,
            seed=args.seed,
            corpus_dir=args.corpus_dir,
            replay=args.replay,
            max_events=args.max_events,
        )
        print(text)
        return status

    if args.experiment == "faults":
        print(
            _faults(
                rounds=4 if args.quick else args.rounds,
                seed=args.seed,
                nodes=args.nodes,
                allow_partial=args.allow_partial,
                scrape=args.scrape,
                telemetry_out=args.telemetry_out,
            )
        )
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(EXPERIMENTS[name](args.quick))
        print(f"[{name} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
