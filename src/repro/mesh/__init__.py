"""Service-mesh case study: sidecars, microservice DAGs, workloads.

Reproduces the environments of the paper's motivating measurements:

* Fig 2b -- update inconsistency across apps of 4/11/17/33
  microservices (:mod:`~repro.mesh.apps`, :mod:`~repro.mesh.consistency`),
* Fig 2c -- control/data-path contention under request load
  (:mod:`~repro.mesh.workload`),
* the §6 "+65% microservice performance" claim (Wasm filters over RDX
  vs per-pod agents).
"""

from repro.mesh.proxy import SidecarProxy
from repro.mesh.apps import AppSpec, MicroserviceApp, PAPER_APPS, make_app_dag
from repro.mesh.workload import OpenLoopLoad, RequestStats
from repro.mesh.consistency import ConsistencyProbe, MixedVersionWindow

__all__ = [
    "AppSpec",
    "ConsistencyProbe",
    "MicroserviceApp",
    "MixedVersionWindow",
    "OpenLoopLoad",
    "PAPER_APPS",
    "RequestStats",
    "SidecarProxy",
    "make_app_dag",
]
