"""Microservice applications over the mesh (paper Fig 2b's four apps).

The paper evaluates inconsistency on four applications with 4, 11, 17,
and 33 microservices.  :func:`make_app_dag` builds deterministic
call DAGs of those sizes (a layered fan-out shaped like the Alibaba
trace analysis the paper cites: shallow-but-wide with a single entry).
Each service gets a host, a sidecar proxy, and optionally a per-pod
agent (the baseline) -- RDX replaces the agents with CodeFlows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.agent.daemon import NodeAgent
from repro.errors import WorkloadError
from repro.mesh.proxy import SidecarProxy
from repro.net.fabric import Fabric
from repro.net.topology import Host
from repro.sim.core import Simulator

#: (label, n_services) for the paper's four applications.
PAPER_APPS = (("app1", 4), ("app2", 11), ("app3", 17), ("app4", 33))


def make_app_dag(n_services: int, fanout: int = 3) -> nx.DiGraph:
    """A deterministic layered call DAG with one entry service.

    ``svc0`` is the front-end; each service calls up to ``fanout``
    services in the next layer.  Shapes match the microservice-depth
    characteristics the paper's Fig 2b spans.
    """
    if n_services < 1:
        raise WorkloadError("need at least one service")
    graph = nx.DiGraph()
    names = [f"svc{i}" for i in range(n_services)]
    graph.add_nodes_from(names)
    frontier = [0]
    next_child = 1
    while next_child < n_services:
        new_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                if next_child >= n_services:
                    break
                graph.add_edge(names[parent], names[next_child])
                new_frontier.append(next_child)
                next_child += 1
        if not new_frontier:
            break
        frontier = new_frontier
    return graph


@dataclass
class AppSpec:
    """Configuration for building a :class:`MicroserviceApp`."""

    n_services: int
    cores_per_host: int = 4
    dram_bytes: int = 32 * 2**20
    n_filter_slots: int = 2
    with_agents: bool = True
    cpki: float = 5.0
    fanout: int = 3


@dataclass
class ServicePod:
    """One deployed service: host + sidecar (+ agent in baseline mode)."""

    name: str
    host: Host
    proxy: SidecarProxy
    agent: Optional[NodeAgent] = None


class MicroserviceApp:
    """A running application: pods wired along a call DAG."""

    def __init__(self, sim: Simulator, spec: AppSpec, fabric: Optional[Fabric] = None):
        self.sim = sim
        self.spec = spec
        self.dag = make_app_dag(spec.n_services, fanout=spec.fanout)
        self.fabric = fabric or Fabric(sim)
        self.pods: dict[str, ServicePod] = {}
        for index, service in enumerate(sorted(self.dag.nodes)):
            host = Host(
                sim,
                f"{service}.host",
                cores=spec.cores_per_host,
                dram_bytes=spec.dram_bytes,
                cpki=spec.cpki,
                seed=index + 1,
            )
            self.fabric.attach(host)
            proxy = SidecarProxy(
                host, name=f"{service}.sidecar",
                n_filter_slots=spec.n_filter_slots,
            )
            agent = None
            if spec.with_agents:
                agent = NodeAgent(host, proxy.sandbox, service=f"agent:{service}")
            self.pods[service] = ServicePod(
                name=service, host=host, proxy=proxy, agent=agent
            )

    @property
    def entry(self) -> str:
        return "svc0"

    def services(self) -> list[str]:
        return sorted(self.pods)

    def callees_of(self, service: str) -> list[str]:
        return sorted(self.dag.successors(service))

    def call_path(self, path_hash: int) -> list[str]:
        """The service chain one request traverses (deterministic).

        From the entry service, each hop picks one callee by path
        hash -- a request touches depth-many services, so mixed filter
        versions along the path are observable.
        """
        path = [self.entry]
        current = self.entry
        cursor = path_hash
        while True:
            callees = self.callees_of(current)
            if not callees:
                return path
            current = callees[cursor % len(callees)]
            cursor //= max(2, len(callees))
            path.append(current)

    def agents_by_service(self) -> dict[str, NodeAgent]:
        out = {}
        for service, pod in self.pods.items():
            if pod.agent is None:
                raise WorkloadError(f"{service} has no agent (agentless app)")
            out[service] = pod.agent
        return out

    def dependency_map(self) -> dict[str, list[str]]:
        """caller -> callees, for rollout planning."""
        return {
            service: self.callees_of(service) for service in self.services()
        }
