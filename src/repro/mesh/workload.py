"""Open-loop request workloads over a microservice app (Fig 2c).

Requests arrive Poisson at a configured rate, walk their call path,
and charge CPU at every hop (service logic + the sidecar filter
chain).  Because agents share the same cores, injection bursts steal
capacity from requests and vice versa -- the mutual contention of
§2.2 Obs 3.
"""

from __future__ import annotations

from repro.sim.rand import derive_rng
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro import params
from repro.errors import SandboxCrash
from repro.mesh.apps import MicroserviceApp
from repro.sim.core import Simulator
from repro.wasm.runtime import DENY, RequestContext


@dataclass
class RequestRecord:
    """One completed (or failed) request."""

    started_us: float
    finished_us: float
    path: tuple[str, ...]
    versions: tuple[int, ...]
    denied: bool = False
    crashed: bool = False

    @property
    def latency_us(self) -> float:
        return self.finished_us - self.started_us

    @property
    def mixed_versions(self) -> bool:
        """True when hops ran different filter logic versions."""
        stamped = [v for v in self.versions if v]
        return len(set(stamped)) > 1


@dataclass
class RequestStats:
    """Aggregates over a workload run."""

    records: list[RequestRecord] = field(default_factory=list)
    offered: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if not r.denied and not r.crashed)

    @property
    def mixed(self) -> int:
        return sum(1 for r in self.records if r.mixed_versions)

    def completion_rate(self, window_us: float) -> float:
        """Completed requests per second over ``window_us``."""
        if window_us <= 0:
            return 0.0
        return self.completed / (window_us / 1e6)

    def latency_percentile(self, pct: float) -> float:
        done = sorted(
            r.latency_us for r in self.records if not r.denied and not r.crashed
        )
        if not done:
            return 0.0
        index = min(len(done) - 1, int(len(done) * pct / 100.0))
        return done[index]

    def mixed_window_us(self) -> float:
        """Span between the first and last mixed-version request."""
        times = [r.finished_us for r in self.records if r.mixed_versions]
        if not times:
            return 0.0
        return max(times) - min(times)


class OpenLoopLoad:
    """Poisson open-loop request generator against one app."""

    def __init__(
        self,
        app: MicroserviceApp,
        rate_per_s: float,
        seed: int = 0,
        hop_service_us: float = params.MESH_HOP_SERVICE_US,
        with_responses: bool = False,
    ):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.app = app
        self.sim = app.sim
        self.rate_per_s = rate_per_s
        self.hop_service_us = hop_service_us
        self.with_responses = with_responses
        self._rng = derive_rng(seed, "mesh.workload")
        self.stats = RequestStats()
        self._running = False

    def run(self, duration_us: float) -> Generator:
        """Generate arrivals for ``duration_us``; completes when the
        last spawned request finishes."""
        self._running = True
        end = self.sim.now + duration_us
        inflight = []
        mean_gap_us = 1e6 / self.rate_per_s
        while self.sim.now < end:
            yield self.sim.timeout(self._rng.expovariate(1.0 / mean_gap_us))
            if self.sim.now >= end:
                break
            self.stats.offered += 1
            path_hash = self._rng.randrange(1 << 30)
            inflight.append(
                self.sim.spawn(
                    self._request(path_hash), name=f"req@{self.sim.now:.0f}"
                )
            )
        if inflight:
            yield self.sim.all_of(inflight)
        self._running = False
        return self.stats

    def _request(self, path_hash: int) -> Generator:
        started = self.sim.now
        path = self.app.call_path(path_hash)
        versions = []
        denied = False
        crashed = False
        for service in path:
            pod = self.app.pods[service]
            if pod.proxy.sandbox.bubble_active():
                # BBU: buffer until the bubble clears.
                while pod.proxy.sandbox.bubble_active():
                    yield self.sim.timeout(2.0)
            ctx = RequestContext(path_hash=path_hash, now_us=self.sim.now)
            try:
                verdict, filter_cost = pod.proxy.process_request(ctx)
            except SandboxCrash:
                crashed = True
                break
            versions.append(pod.proxy.versions_seen(ctx) or 0)
            # Request handling is time-sliced like any userspace work.
            yield from pod.host.cpu.run(
                self.hop_service_us + filter_cost, quantum_us=1_000.0
            )
            if verdict == DENY:
                denied = True
                break
        if self.with_responses and not denied and not crashed:
            # Unwind: each hop's sidecar filters the response.
            for service in reversed(path):
                pod = self.app.pods[service]
                ctx = RequestContext(path_hash=path_hash, now_us=self.sim.now)
                try:
                    verdict, filter_cost = pod.proxy.process_response(ctx)
                except SandboxCrash:
                    crashed = True
                    break
                yield from pod.host.cpu.run(filter_cost, quantum_us=1_000.0)
                if verdict == DENY:
                    denied = True
                    break
        self.stats.records.append(
            RequestRecord(
                started_us=started,
                finished_us=self.sim.now,
                path=tuple(path),
                versions=tuple(versions),
                denied=denied,
                crashed=crashed,
            )
        )
