"""The sidecar proxy: an Envoy-like filter chain over a Wasm sandbox.

Each service pod runs one sidecar; requests traverse its ordered
filter slots (hooks ``filter0..filterN-1``).  Filters come and go at
runtime via either the per-pod agent or an RDX CodeFlow -- the proxy
itself only *executes*, reading hook pointers through the host cache
like any data plane.
"""

from __future__ import annotations

from typing import Optional

from repro import params
from repro.errors import SandboxCrash
from repro.net.topology import Host
from repro.sandbox.sandbox import Sandbox
from repro.wasm.runtime import CONTINUE, DENY, RequestContext


class SidecarProxy:
    """One sidecar: a Wasm sandbox with an ordered filter chain."""

    def __init__(
        self,
        host: Host,
        name: str = "",
        n_filter_slots: int = 4,
        code_bytes: int = 2 * 2**20,
        scratchpad_bytes: int = 1 * 2**20,
    ):
        # Request chain (filterN), response chain (respN), plus one
        # spare non-chain hook ("mgmt") for extensions that are not on
        # the request path (e.g. telemetry probes being rolled out
        # while traffic flows).
        hooks = (
            tuple(f"filter{i}" for i in range(n_filter_slots))
            + tuple(f"resp{i}" for i in range(n_filter_slots))
            + ("mgmt",)
        )
        self.host = host
        self.n_filter_slots = n_filter_slots
        self.sandbox = Sandbox(
            host,
            name=name or f"{host.name}.sidecar",
            hooks=hooks,
            code_bytes=code_bytes,
            scratchpad_bytes=scratchpad_bytes,
        )
        self.requests_processed = 0
        self.requests_denied = 0

    @property
    def name(self) -> str:
        return self.sandbox.name

    def filter_hooks(self) -> list[str]:
        return [f"filter{i}" for i in range(self.n_filter_slots)]

    def process_request(
        self, ctx: RequestContext
    ) -> tuple[int, float]:
        """Run the request through the chain.

        Returns (verdict, cpu_cost_us).  Empty slots are skipped at a
        pointer-check cost; a DENY verdict short-circuits.  A crash
        (torn or mis-linked image) propagates as
        :class:`~repro.errors.SandboxCrash`.
        """
        cost = 0.0
        verdict = CONTINUE
        for hook in self.filter_hooks():
            result, exec_cost = self.sandbox.run_wasm_hook(hook, ctx)
            cost += exec_cost
            if result is None:
                continue
            cost += params.MESH_FILTER_OVERHEAD_US
            if result.value == DENY:
                verdict = DENY
                self.requests_denied += 1
                break
        self.requests_processed += 1
        return verdict, cost

    def process_response(self, ctx: RequestContext) -> tuple[int, float]:
        """Run the response through the resp chain (reverse order).

        Proxy-wasm response filters run innermost-first; a DENY verdict
        replaces the upstream response (e.g. header policy violation).
        """
        cost = 0.0
        verdict = CONTINUE
        for index in reversed(range(self.n_filter_slots)):
            result, exec_cost = self.sandbox.run_wasm_hook(f"resp{index}", ctx)
            cost += exec_cost
            if result is None:
                continue
            cost += params.MESH_FILTER_OVERHEAD_US
            if result.value == DENY:
                verdict = DENY
                break
        return verdict, cost

    def versions_seen(self, ctx: RequestContext) -> Optional[int]:
        """The logic-version stamp the chain left on this request."""
        from repro.wasm.filters import VERSION_HEADER_KEY

        return ctx.headers.get(VERSION_HEADER_KEY)
