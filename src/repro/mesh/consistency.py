"""Consistency probing during rollouts (paper §2.2 Obs 2 / Fig 2b).

The probe sends a steady trickle of tracer requests through the app
and classifies each as old-logic, new-logic, or **mixed** (different
hops stamped different filter versions).  The mixed-version window --
first to last mixed observation -- is the user-visible inconsistency
the paper plots in Fig 2b.
"""

from __future__ import annotations

from repro.sim.rand import derive_rng
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import SandboxCrash
from repro.mesh.apps import MicroserviceApp
from repro.wasm.runtime import RequestContext


@dataclass
class MixedVersionWindow:
    """Result of one probing session."""

    probes_sent: int
    first_mixed_us: Optional[float]
    last_mixed_us: Optional[float]
    mixed_count: int
    #: (time, versions tuple) per probe, for detailed assertions.
    observations: list[tuple[float, tuple[int, ...]]] = field(default_factory=list)

    @property
    def window_us(self) -> float:
        if self.first_mixed_us is None or self.last_mixed_us is None:
            return 0.0
        return self.last_mixed_us - self.first_mixed_us

    @property
    def saw_mixed(self) -> bool:
        return self.mixed_count > 0


class ConsistencyProbe:
    """Sends tracer requests and records version mixes."""

    def __init__(self, app: MicroserviceApp, interval_us: float = 500.0,
                 seed: int = 7):
        self.app = app
        self.sim = app.sim
        self.interval_us = interval_us
        self._rng = derive_rng(seed, "mesh.consistency")
        self._observations: list[tuple[float, tuple[int, ...]]] = []
        self._proc = None

    def start(self, duration_us: float) -> None:
        """Begin probing in the background for ``duration_us``."""

        def prober() -> Generator:
            end = self.sim.now + duration_us
            while self.sim.now < end:
                yield self.sim.timeout(self.interval_us)
                self._probe_once()

        self._proc = self.sim.spawn(prober(), name="consistency-probe")

    def stop(self) -> None:
        """End probing early (e.g. once the rollout completed)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("probe stopped")
        self._proc = None

    def _probe_once(self) -> None:
        path_hash = self._rng.randrange(1 << 30)
        path = self.app.call_path(path_hash)
        versions = []
        for service in path:
            pod = self.app.pods[service]
            if pod.proxy.sandbox.bubble_active():
                # BBU: this request would be buffered, not served mixed
                # logic; count it as unobserved.
                return
            ctx = RequestContext(path_hash=path_hash, now_us=self.sim.now)
            try:
                pod.proxy.process_request(ctx)
            except SandboxCrash:
                return
            versions.append(pod.proxy.versions_seen(ctx) or 0)
        self._observations.append((self.sim.now, tuple(versions)))

    def result(self) -> MixedVersionWindow:
        """Summarize what the probe saw."""
        mixed_times = []
        for when, versions in self._observations:
            stamped = {v for v in versions if v}
            if len(stamped) > 1:
                mixed_times.append(when)
        return MixedVersionWindow(
            probes_sent=len(self._observations),
            first_mixed_us=min(mixed_times) if mixed_times else None,
            last_mixed_us=max(mixed_times) if mixed_times else None,
            mixed_count=len(mixed_times),
            observations=list(self._observations),
        )
