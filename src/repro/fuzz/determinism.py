"""Process-global counter isolation: same seed, byte-identical trace.

Several modules mint ids from process-global ``itertools.count``
streams (QP numbers, WR ids, hb chain/txn ids, span ids, ...).  Those
ids land in trace events, so two runs of the *same* scenario in one
process would differ byte-for-byte purely because earlier tests
advanced the counters.  :func:`deterministic_ids` pins them: each
counter is swapped for a fresh one at its canonical start value for
the duration of the block, then the original stream is restored so
surrounding code keeps counting from where it was.

Id collisions with objects created outside the block are harmless:
every id in this list is only ever compared *within* one simulator's
scope (a QP number keys actors inside one trace; an rkey is looked up
in one protection domain), and a fuzz iteration builds its world from
scratch inside the block.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager


def _sites() -> list[tuple[object, str, int]]:
    """(module-or-class, attribute, canonical start) for every counter
    whose values can appear in a recorded trace."""
    from repro.core import codeflow
    from repro.ebpf import maps, program
    from repro.hb import events as hb_events
    from repro.net import rpc
    from repro.obs import spans
    from repro.rdma import mr, qp
    from repro.sandbox import sandbox
    from repro.wasm import module as wasm_module

    return [
        (qp, "_qp_numbers", 0x11),
        (qp, "_wr_ids", 1),
        (hb_events, "_chain_ids", 1),
        (hb_events, "_txn_ids", 1),
        (spans, "_span_ids", 1),
        (spans, "_trace_ids", 1),
        (sandbox, "_sandbox_ids", 1),
        (rpc, "_rpc_ids", 1),
        (mr, "_key_source", 0x1000),
        (mr.ProtectionDomain, "_handles", 1),
        (codeflow, "_deploy_ids", 1),
        (program, "_prog_ids", 1),
        (maps, "_map_ids", 1),
        (wasm_module, "_module_ids", 1),
    ]


@contextmanager
def deterministic_ids():
    """Pin every trace-visible id counter to its canonical start."""
    saved = []
    for owner, attr, start in _sites():
        saved.append((owner, attr, getattr(owner, attr)))
        setattr(owner, attr, itertools.count(start))
    try:
        yield
    finally:
        for owner, attr, original in saved:
            setattr(owner, attr, original)
