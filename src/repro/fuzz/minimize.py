"""Delta-debugging (ddmin) over decision tapes.

The tape's replay semantics make shrinking-by-deletion sound: a frozen
plan defaults every choice point *not* on the tape to choice 0, "no
perturbation".  Deleting a decision therefore never desynchronizes
later ones -- each decision is keyed ``(site, hit)``, not positional,
so the surviving entries still land at exactly the same choice points.

Classic Zeller/Hildebrandt complement ddmin: try ever-finer partitions,
restart coarse whenever a smaller failing tape is found, stop at
granularity > length or when the run budget is spent.  The result is
1-minimal *modulo budget*: with budget to spare, removing any single
surviving decision makes the failure vanish.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.fuzz.plan import Decision


def minimize_decisions(
    decisions: Sequence[Decision],
    test: Callable[[list[Decision]], bool],
    budget: int = 64,
) -> list[Decision]:
    """Shrink ``decisions`` to a smaller list for which ``test`` still
    returns True.  ``test([])`` is tried first: structural races fire
    on *every* interleaving, so their minimal tape is empty -- that is
    the finding ("the bug needs no special schedule"), not a fuzzer
    failure.  ``budget`` caps the number of ``test`` invocations.
    """
    current = list(decisions)
    if not current:
        return current
    runs = 0

    def check(subset: list[Decision]) -> bool:
        nonlocal runs
        runs += 1
        return test(subset)

    if check([]):
        return []
    granularity = 2
    while len(current) >= 2 and runs < budget:
        chunks = _partition(current, granularity)
        reduced = False
        for i in range(len(chunks)):
            if runs >= budget:
                break
            complement = [
                d for j, chunk in enumerate(chunks) for d in chunk if j != i
            ]
            if check(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(granularity * 2, len(current))
    return current


def _partition(
    items: list[Decision], granularity: int
) -> list[list[Decision]]:
    n = len(items)
    granularity = min(granularity, n)
    base, extra = divmod(n, granularity)
    chunks = []
    start = 0
    for i in range(granularity):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks
