"""Perturbation hooks: how a plan reaches into the simulation.

The RNIC, fabric, and fault layers call :func:`perturb_us` /
:func:`plan_of` at their stochastic choice points.  Both are gated on
:data:`repro.params.RDX_FUZZ` *at the call site* so a normal run pays
one module-global read per WR and nothing else.

The plan rides on the :class:`~repro.sim.core.Simulator` instance
itself (like the telemetry hub), so two concurrently constructed
simulations can never cross tapes and there is no global registry to
reset between iterations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.fuzz.plan import SchedulePlan
    from repro.sim.core import Simulator

#: Attribute caching the plan on the simulator instance.
_SIM_ATTR = "_rdx_fuzz_plan"


def install(sim: "Simulator", plan: "SchedulePlan") -> None:
    """Attach ``plan`` as ``sim``'s decision tape."""
    setattr(sim, _SIM_ATTR, plan)


def uninstall(sim: "Simulator") -> None:
    if hasattr(sim, _SIM_ATTR):
        delattr(sim, _SIM_ATTR)


def plan_of(sim: "Simulator") -> "Optional[SchedulePlan]":
    return getattr(sim, _SIM_ATTR, None)


def perturb_us(sim: "Simulator", site: str, base_us: float) -> float:
    """Extra delay the installed plan injects at ``site`` (0 if none).

    Callers already checked :data:`repro.params.RDX_FUZZ`; a sim with
    no plan installed (e.g. a second testbed built while the flag is
    on) is simply unperturbed.
    """
    plan = getattr(sim, _SIM_ATTR, None)
    if plan is None:
        return 0.0
    return plan.delay_us(site, base_us)


def bind(
    sim: "Simulator", plan: "SchedulePlan", max_events: int
) -> TraceRecorder:
    """Install ``plan`` plus a fresh bounded trace recorder on ``sim``.

    Must run before any component touches :func:`telemetry_of` on this
    simulator (the fuzz engine creates the bare ``Simulator`` itself
    for exactly this reason).  The per-iteration recorder is the fuzz
    loop's memory bound: each iteration gets its own ring, torn down
    explicitly by the engine, and a ring that overflows marks the
    iteration inconclusive rather than growing without limit.
    """
    from repro.obs.telemetry import _SIM_ATTR as _TELEMETRY_ATTR, Telemetry

    if getattr(sim, _TELEMETRY_ATTR, None) is not None:
        raise RuntimeError(
            "fuzz bind() must precede the simulator's first telemetry use"
        )
    recorder = TraceRecorder(max_events=max_events)
    setattr(sim, _TELEMETRY_ATTR, Telemetry(sim, recorder=recorder))
    install(sim, plan)
    return recorder
