"""The schedule corpus: minimized failures as regression anchors.

Every minimized failure serializes to one JSON schedule file carrying
everything a replay needs -- scenario, workload seed, frozen decision
tape, the detector kind it must re-trip, and the finding it originally
produced (for the human reading the file).  ``replay`` reruns the
schedule deterministically and verifies the same failure class fires:
the corpus doubles as a liveness gate on the detectors themselves
(CI replays it every run -- a detector that stops firing on a known-bad
schedule fails the build, exactly like a test that stops asserting).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError
from repro.fuzz.engine import MinimizedFailure, RunResult, run_plan
from repro.fuzz.plan import SCHEMA, SchedulePlan
from repro.fuzz.scenarios import get as get_scenario

#: Repo-relative default corpus location (CI replays this directory).
DEFAULT_DIR = os.path.join("corpus", "schedules")


@dataclass
class CorpusEntry:
    """One schedule file: a replayable minimized failure."""

    scenario: str
    kind: str
    workload_seed: int
    plan: SchedulePlan
    finding: Optional[dict] = None
    meta: Optional[dict] = None

    @property
    def filename(self) -> str:
        return f"{self.scenario}.{self.kind}.json"

    def to_dict(self) -> dict:
        data: dict = {
            "schema": SCHEMA,
            "scenario": self.scenario,
            "kind": self.kind,
            "workload_seed": self.workload_seed,
            "plan": self.plan.to_dict(),
        }
        if self.finding is not None:
            data["finding"] = self.finding
        if self.meta is not None:
            data["meta"] = self.meta
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        if data.get("schema") != SCHEMA:
            raise ReproError(
                f"schedule file schema {data.get('schema')!r} != {SCHEMA!r}"
            )
        return cls(
            scenario=str(data["scenario"]),
            kind=str(data["kind"]),
            workload_seed=int(data.get("workload_seed", 0)),
            plan=SchedulePlan.from_dict(data["plan"]),
            finding=data.get("finding"),
            meta=data.get("meta"),
        )

    @classmethod
    def from_failure(
        cls, failure: MinimizedFailure, workload_seed: int
    ) -> "CorpusEntry":
        finding = (
            failure.result.findings[0].to_dict()
            if failure.result.findings
            else None
        )
        return cls(
            scenario=failure.scenario,
            kind=failure.kind,
            workload_seed=workload_seed,
            plan=failure.plan,
            finding=finding,
            meta={
                "found_at_iteration": failure.iteration,
                "original_decisions": failure.original_decisions,
                "minimized_decisions": failure.minimized_decisions,
                "minimize_runs": failure.minimize_runs,
                "verdict": failure.result.verdict,
                "digest": failure.result.digest,
            },
        )


def save(entry: CorpusEntry, directory: str = DEFAULT_DIR) -> str:
    """Write the schedule file; returns the path.  Filenames are keyed
    (scenario, kind) so re-fuzzing refreshes anchors in place instead
    of accreting duplicates."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, entry.filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load(path: str) -> CorpusEntry:
    with open(path, "r", encoding="utf-8") as handle:
        return CorpusEntry.from_dict(json.load(handle))


def load_dir(directory: str = DEFAULT_DIR) -> list[CorpusEntry]:
    """All schedule files in ``directory``, name-sorted (deterministic
    replay order)."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            entries.append(load(os.path.join(directory, name)))
    return entries


def replay(
    entry: CorpusEntry, max_events: int = 50_000
) -> tuple[RunResult, bool]:
    """Rerun one corpus schedule; ``ok`` means the expected failure
    class fired again (detector liveness)."""
    scenario = get_scenario(entry.scenario)
    result = run_plan(
        scenario,
        entry.plan.replay_plan(),
        workload_seed=entry.workload_seed,
        max_events=max_events,
    )
    if entry.kind == "invariant":
        ok = bool(result.failures)
    else:
        ok = entry.kind in result.kinds
    return result, ok
