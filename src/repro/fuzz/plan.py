"""The decision tape: every stochastic choice a schedule makes.

A :class:`SchedulePlan` is the single source of nondeterminism for one
fuzzed simulation run.  Perturbation hooks (RNIC service/completion
delay, fabric message delay, fault type/timing) never roll dice
themselves -- they ask the plan::

    choice = plan.choose("rnic.service:h0.rnic.q1", len(menu))

keyed by a **site** (a stable string naming the choice point) and a
per-site **hit counter** (the Nth time that site is consulted).  Two
modes:

* **generate** -- the choice is a pure function of
  ``(plan seed, site, hit)`` via :func:`repro.sim.rand.stable_seed`,
  so the same seed regenerates the same tape regardless of the order
  sites are consulted in.  Non-default choices are recorded as
  :class:`Decision` entries -- the realized tape.
* **replay** (frozen) -- the choice is looked up from an explicit
  decision list; a ``(site, hit)`` with no entry gets choice 0, which
  every menu reserves for "no perturbation".  Deleting entries from a
  frozen tape therefore *removes* perturbations -- exactly the shrink
  operation delta debugging needs.

Choice 0 meaning "default/unperturbed" at every site is the contract
that makes minimization sound: the empty tape is the baseline
schedule, and any subset of a failing tape is a well-formed schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sim.rand import stable_seed

#: JSON schema tag stamped into every serialized plan/schedule file.
SCHEMA = "rdx-fuzz-schedule-v1"

#: Delay multipliers a timing site chooses from (applied to the site's
#: base magnitude).  Index 0 is the unperturbed schedule; two zero
#: entries bias generation toward leaving most choice points alone, so
#: a failing tape stays sparse and shrinks well.
DELAY_STEPS = (0.0, 0.0, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class Decision:
    """One recorded choice: site, hit index, and the menu index taken."""

    site: str
    hit: int
    choice: int

    def to_dict(self) -> dict:
        return {"site": self.site, "hit": self.hit, "choice": self.choice}

    @classmethod
    def from_dict(cls, data: dict) -> "Decision":
        return cls(
            site=str(data["site"]),
            hit=int(data["hit"]),
            choice=int(data["choice"]),
        )


class SchedulePlan:
    """A seed-derived (or replayed) decision tape for one run."""

    def __init__(
        self,
        seed: int,
        scenario: str = "",
        decisions: Optional[Iterable[Decision]] = None,
        frozen: bool = False,
    ):
        self.seed = seed
        self.scenario = scenario
        self.frozen = frozen
        #: Realized non-default choices, in consultation order
        #: (generate mode) or as loaded (replay mode).
        self.decisions: list[Decision] = list(decisions or ())
        self._tape: dict[tuple[str, int], int] = {
            (d.site, d.hit): d.choice for d in self.decisions
        }
        self._hits: dict[str, int] = {}
        #: Total choice points consulted (diagnostics).
        self.consulted = 0

    # -- choice points ---------------------------------------------------

    def choose(self, site: str, n: int) -> int:
        """The menu index for this site's next hit (0 = unperturbed)."""
        if n < 1:
            raise ValueError(f"empty menu at {site!r}")
        hit = self._hits.get(site, 0)
        self._hits[site] = hit + 1
        self.consulted += 1
        if self.frozen:
            return min(self._tape.get((site, hit), 0), n - 1)
        choice = stable_seed(self.seed, site, hit) % n
        if choice:
            decision = Decision(site, hit, choice)
            self.decisions.append(decision)
            self._tape[(site, hit)] = choice
        return choice

    def delay_us(self, site: str, base_us: float) -> float:
        """A fuzzed extra delay: ``DELAY_STEPS[choice] * base_us``."""
        return DELAY_STEPS[self.choose(site, len(DELAY_STEPS))] * base_us

    def reset(self) -> None:
        """Rewind hit counters so the plan can drive a fresh run.

        Frozen plans keep their tape; generate-mode plans also forget
        the realized decisions (they will be re-derived identically).
        """
        self._hits.clear()
        self.consulted = 0
        if not self.frozen:
            self.decisions.clear()
            self._tape.clear()

    # -- derivation ------------------------------------------------------

    def replay_plan(
        self, decisions: Optional[Iterable[Decision]] = None
    ) -> "SchedulePlan":
        """A frozen plan replaying ``decisions`` (default: this tape).

        The minimizer calls this with subsets of a failing tape; the
        seed and scenario ride along as provenance.
        """
        source = self.decisions if decisions is None else decisions
        return SchedulePlan(
            seed=self.seed,
            scenario=self.scenario,
            decisions=source,
            frozen=True,
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "scenario": self.scenario,
            "frozen": self.frozen,
            "decisions": [d.to_dict() for d in self.decisions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SchedulePlan":
        if data.get("schema") != SCHEMA:
            raise ValueError(f"not a {SCHEMA} plan: {data.get('schema')!r}")
        return cls(
            seed=int(data["seed"]),
            scenario=str(data.get("scenario", "")),
            decisions=[Decision.from_dict(d) for d in data["decisions"]],
            frozen=bool(data.get("frozen", True)),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "SchedulePlan":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "replay" if self.frozen else "generate"
        return (
            f"SchedulePlan(seed={self.seed}, scenario={self.scenario!r}, "
            f"{mode}, {len(self.decisions)} decision(s))"
        )
