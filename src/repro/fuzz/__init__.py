"""Seeded schedule fuzzer: explore interleavings, shrink failures.

The simulator is deterministic given a seed -- which makes every run
*one* schedule.  This package turns that into coverage: a
:class:`~repro.fuzz.plan.SchedulePlan` (a seed-derived decision tape)
drives explicit perturbation hooks at the stack's stochastic choice
points (WR service order and completion timing in the RNIC, message
delay in the fabric, fault kind/timing in the injector), the PR-5
happens-before detectors judge each generated interleaving, and a
delta-debugging minimizer shrinks any failure to the smallest decision
tape that still reproduces -- written out as a replayable JSON
schedule file that becomes a permanent regression anchor.

Entry points: ``python -m repro.cli fuzz`` or
:func:`repro.fuzz.engine.fuzz` directly.
"""

from repro.fuzz.plan import DELAY_STEPS, Decision, SchedulePlan

__all__ = ["DELAY_STEPS", "Decision", "SchedulePlan"]
