"""The fuzz loop: generate a tape, run a scenario under it, judge.

One iteration = one :class:`~repro.fuzz.plan.SchedulePlan` driving one
scenario on a fresh simulator, judged by the full PR-5 detector suite
plus the simulator's own failed-process ledger.  Verdicts:

``clean``
    No findings, no unmodeled process failures, trace complete.
``finding``
    The HB checker reported >= 1 race.
``invariant``
    A simulator process died with an exception outside the
    :class:`~repro.errors.ReproError` hierarchy -- a bug in the stack
    itself, not a modeled fault.
``inconclusive``
    The bounded recorder dropped events; the HB graph would be missing
    edges, so *no* verdict is sound.  Never reported as clean.

Determinism contract: ``run_plan`` with the same (scenario, plan seed
or frozen tape, workload seed) produces a byte-identical event digest
-- enforced by :func:`repro.fuzz.determinism.deterministic_ids`
pinning every process-global id counter for the run's duration.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import params
from repro.errors import ReproError
from repro.fuzz import hooks
from repro.fuzz.determinism import deterministic_ids
from repro.fuzz.minimize import minimize_decisions
from repro.fuzz.plan import Decision, SchedulePlan
from repro.fuzz.scenarios import Scenario
from repro.hb import checker
from repro.hb import events as hb_events
from repro.hb.detect import RaceFinding
from repro.sim.core import Simulator
from repro.sim.rand import stable_seed

#: Default per-iteration trace bound.  Generous for the target
#: scenarios (the densest, broadcast-8, emits ~15k hb events) while
#: keeping a 1000-iteration run's peak memory at one recorder's worth
#: -- each iteration tears its recorder down before the next starts.
DEFAULT_MAX_EVENTS = 50_000


@dataclass
class RunResult:
    """One scenario execution under one decision tape."""

    scenario: str
    verdict: str  # "clean" | "finding" | "invariant" | "inconclusive"
    findings: list[RaceFinding] = field(default_factory=list)
    #: Detector kinds present, in first-seen order.
    kinds: tuple[str, ...] = ()
    events: int = 0
    truncated: bool = False
    #: sha256 over the extracted hb events -- the determinism witness.
    digest: str = ""
    #: (process name, exception repr) for unmodeled process deaths.
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: The decisions the plan actually consulted (generate mode: the
    #: nonzero ones; these are what minimization shrinks).
    decisions: list[Decision] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.verdict in ("finding", "invariant")


def run_plan(
    scenario: Scenario,
    plan: SchedulePlan,
    workload_seed: int = 0,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> RunResult:
    """Execute one scenario under one tape, fully isolated.

    Flips ``RDX_HB_CHECK``/``RDX_FUZZ`` on for the run, pins the id
    counters, binds a fresh bounded recorder, drives the scenario, and
    unconditionally tears everything down (recorder cleared, hb
    registry dropped, flags restored) so a million-iteration loop
    holds one trace in memory at a time.
    """
    saved_check, saved_fuzz = params.RDX_HB_CHECK, params.RDX_FUZZ
    params.RDX_HB_CHECK = True
    params.RDX_FUZZ = True
    plan.reset()
    sim: Optional[Simulator] = None
    recorder = None
    try:
        with deterministic_ids():
            sim = Simulator()
            recorder = hooks.bind(sim, plan, max_events=max_events)
            drive_error: Optional[BaseException] = None
            try:
                scenario.drive(sim, workload_seed, plan)
            except ReproError:
                pass  # modeled failure a driver chose not to swallow
            except Exception as exc:  # noqa: BLE001 -- classified below
                drive_error = exc
            report = checker.check_sim(sim)
        digest = _digest(recorder)
        failures = [
            (name, f"{type(exc).__name__}: {exc}")
            for name, exc in sim.failed_processes
            if not isinstance(exc, ReproError)
        ]
        if drive_error is not None:
            failures.append(
                (
                    "<drive>",
                    "".join(
                        traceback.format_exception_only(drive_error)
                    ).strip(),
                )
            )
        kinds: list[str] = []
        for finding in report.findings:
            if finding.kind not in kinds:
                kinds.append(finding.kind)
        if report.truncated:
            verdict = "inconclusive"
        elif failures:
            verdict = "invariant"
        elif report.findings:
            verdict = "finding"
        else:
            verdict = "clean"
        return RunResult(
            scenario=scenario.name,
            verdict=verdict,
            findings=report.findings,
            kinds=tuple(kinds),
            events=report.events,
            truncated=report.truncated,
            digest=digest,
            failures=failures,
            decisions=list(plan.decisions),
        )
    finally:
        if sim is not None:
            hb_events.forget(sim)
            hooks.uninstall(sim)
        if recorder is not None:
            recorder.clear()
        params.RDX_HB_CHECK = saved_check
        params.RDX_FUZZ = saved_fuzz


def _digest(recorder) -> str:
    """Order-sensitive hash of the run's hb events."""
    hasher = hashlib.sha256()
    for event in hb_events.extract(recorder):
        hasher.update(
            json.dumps(event.to_dict(), sort_keys=True).encode()
        )
    return hasher.hexdigest()


@dataclass
class MinimizedFailure:
    """A failure shrunk to its smallest reproducing decision tape."""

    scenario: str
    #: Detector kind -- or ``"invariant"`` for unmodeled crashes.
    kind: str
    plan: SchedulePlan  # frozen, minimized
    result: RunResult  # the replay of the minimized plan
    iteration: int
    original_decisions: int
    minimized_decisions: int
    minimize_runs: int


@dataclass
class FuzzReport:
    """Outcome of one ``fuzz()`` campaign over one scenario."""

    scenario: str
    iterations: int = 0
    verdicts: dict[str, int] = field(default_factory=dict)
    #: First failure per distinct kind, minimized.
    failures: list[MinimizedFailure] = field(default_factory=list)

    @property
    def kinds_found(self) -> tuple[str, ...]:
        return tuple(f.kind for f in self.failures)


def fuzz(
    scenario: Scenario,
    iterations: int,
    seed: int = 0,
    workload_seed: int = 0,
    max_events: int = DEFAULT_MAX_EVENTS,
    minimize_budget: int = 64,
    progress: Optional[Callable[[int, RunResult], None]] = None,
) -> FuzzReport:
    """Run ``iterations`` tapes over ``scenario``; minimize failures.

    Per-iteration plan seeds derive from ``(seed, scenario, i)`` so a
    campaign is reproducible from its base seed alone, and any single
    iteration can be regenerated without rerunning the loop.  The
    first failure of each distinct kind is shrunk with ddmin and
    verified by replaying the frozen minimized tape.
    """
    report = FuzzReport(scenario=scenario.name)
    seen_kinds: set[str] = set()
    for i in range(iterations):
        plan = SchedulePlan(
            seed=stable_seed(seed, scenario.name, i), scenario=scenario.name
        )
        result = run_plan(
            scenario, plan, workload_seed=workload_seed, max_events=max_events
        )
        report.iterations += 1
        report.verdicts[result.verdict] = (
            report.verdicts.get(result.verdict, 0) + 1
        )
        if progress is not None:
            progress(i, result)
        if not result.failed:
            continue
        for kind in _failure_kinds(result):
            if kind in seen_kinds:
                continue
            seen_kinds.add(kind)
            report.failures.append(
                _shrink(
                    scenario, plan, result, kind, i,
                    workload_seed=workload_seed,
                    max_events=max_events,
                    budget=minimize_budget,
                )
            )
    return report


def _failure_kinds(result: RunResult) -> tuple[str, ...]:
    kinds = list(result.kinds)
    if result.failures:
        kinds.append("invariant")
    return tuple(kinds)


def _shrink(
    scenario: Scenario,
    plan: SchedulePlan,
    result: RunResult,
    kind: str,
    iteration: int,
    workload_seed: int,
    max_events: int,
    budget: int,
) -> MinimizedFailure:
    """ddmin the tape down to the fewest decisions that still trip
    ``kind``, then verify the survivor by replaying it frozen."""
    runs = 0

    def still_fails(decisions: list[Decision]) -> bool:
        nonlocal runs
        runs += 1
        trial = run_plan(
            scenario,
            plan.replay_plan(decisions),
            workload_seed=workload_seed,
            max_events=max_events,
        )
        return kind in _failure_kinds(trial)

    minimized = minimize_decisions(
        result.decisions, still_fails, budget=budget
    )
    final_plan = plan.replay_plan(minimized)
    final = run_plan(
        scenario, final_plan, workload_seed=workload_seed,
        max_events=max_events,
    )
    assert kind in _failure_kinds(final), (
        f"minimized tape for {scenario.name}/{kind} no longer reproduces "
        "-- nondeterministic scenario?"
    )
    return MinimizedFailure(
        scenario=scenario.name,
        kind=kind,
        plan=final_plan,
        result=final,
        iteration=iteration,
        original_decisions=len(result.decisions),
        minimized_decisions=len(minimized),
        minimize_runs=runs,
    )
