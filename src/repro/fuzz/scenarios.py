"""Target scenarios the schedule fuzzer explores.

Two families:

* **guarded** -- the real stack with its ordering guards *on* (single
  deploy, delta hotpatch, 8-way broadcast, crash-recovery).  Expected
  finding-free under every interleaving; a finding here is a live
  ordering bug (or a hole in the HB model) and fails the fuzz run.
  The decision tape also picks payload faults for these
  (:data:`~repro.core.faults.FUZZ_FAULT_MENU`), so the guards are
  exercised on perturbed *and* faulted schedules.
* **known-bad** -- guard-disabled reconstructions of the five
  ``exp/hb_schedules.py`` bug classes (sharded commit, fenceless stale
  writer, live rewrite, bubble sweep, sharded delta chunk).  Here the
  fuzzer must *rediscover* the race: concurrency is set up, but spawn
  order and op timing come from the tape, so some interleavings
  exhibit the bug and some do not.  Each carries the detector kind it
  must reproduce.

A scenario's ``drive(sim, seed, plan)`` builds its testbed on the
engine-provided simulator (plan + bounded recorder already bound),
runs the workload swallowing *modeled* failures (``SandboxCrash``
from tape-chosen corruption, ``BroadcastAborted``), and returns.  The
engine owns flag flipping, checking, and teardown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro import params
from repro.core.faults import FaultInjector
from repro.errors import ReproError, SandboxCrash
from repro.exp.harness import make_testbed
from repro.hb import events as hb_events

if TYPE_CHECKING:  # pragma: no cover
    from repro.fuzz.plan import SchedulePlan
    from repro.sim.core import Simulator

#: Settle horizon after the driven workload: long enough for every
#: in-flight WR, retry loop, and deferred flush to land in the trace.
_SETTLE_US = 10_000.0


@dataclass(frozen=True)
class Scenario:
    """One fuzz target."""

    name: str
    drive: "Callable[[Simulator, int, SchedulePlan], None]"
    #: Detector kind this scenario must reproduce (None = guarded,
    #: expected clean).
    expect: Optional[str] = None
    #: The ``exp/hb_schedules.py`` class a known-bad scenario maps to.
    schedule_class: str = ""

    @property
    def known_bad(self) -> bool:
        return self.expect is not None


def _staggered(
    sim: "Simulator", plan: "SchedulePlan", gen: Generator, site: str,
    base_us: float,
) -> Generator:
    """Run ``gen`` after a tape-chosen start jitter -- the spawn-order
    choice point every racing pair hangs off."""
    delay = plan.delay_us(site, base_us)
    if delay:
        yield sim.timeout(delay)
    yield from gen


# -- guarded scenarios ------------------------------------------------------


def _drive_single_deploy(sim, seed: int, plan: "SchedulePlan") -> None:
    from repro.ebpf.stress import make_stress_program

    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed, sim=sim)
    sandbox = bed.sandboxes[0]
    injector = FaultInjector(bed.codeflow, seed=seed)
    injector.attach()

    def drive():
        for version in range(2):
            injector.disarm()
            injector.arm_from_plan(plan, f"fault.kind:deploy{version}")
            program = make_stress_program(
                150, seed=seed * 17 + version, name="fzsingle"
            )
            try:
                yield from bed.control.inject(bed.codeflow, program, "ingress")
            except ReproError:
                continue  # tape-chosen fault rejected by the deploy path
            for burst in range(3):
                try:
                    sandbox.run_hook("ingress", bytes(256))
                except SandboxCrash:
                    sandbox.crashed = False  # corruption detected, by design
                yield sim.timeout(
                    2.0 + plan.delay_us(f"scn.exec-gap:{version}", 5.0)
                )

    try:
        sim.run_process(drive())
        sim.run(until=sim.now + _SETTLE_US)
    finally:
        injector.detach()


def _drive_delta_hotpatch(sim, seed: int, plan: "SchedulePlan") -> None:
    from repro.ebpf.stress import make_stress_program, make_stress_variant

    saved = params.RDX_DELTA_DEPLOY
    params.RDX_DELTA_DEPLOY = True
    try:
        bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed, sim=sim)
        sandbox = bed.sandboxes[0]
        injector = FaultInjector(bed.codeflow, seed=seed)
        injector.attach()
        v1 = make_stress_program(400, seed=seed + 3, name="fzdelta")

        def drive():
            yield from bed.control.inject(bed.codeflow, v1, "ingress")
            for patch in range(2):
                injector.disarm()
                injector.arm_from_plan(plan, f"fault.kind:patch{patch}")
                try:
                    yield from bed.control.inject(
                        bed.codeflow,
                        make_stress_variant(v1, patch + 1),
                        "ingress",
                    )
                except ReproError:
                    continue
                try:
                    sandbox.run_hook("ingress", bytes(256))
                except SandboxCrash:
                    sandbox.crashed = False
                yield sim.timeout(
                    2.0 + plan.delay_us(f"scn.patch-gap:{patch}", 5.0)
                )

        try:
            sim.run_process(drive())
            sim.run(until=sim.now + _SETTLE_US)
        finally:
            injector.detach()
    finally:
        params.RDX_DELTA_DEPLOY = saved


def _drive_broadcast_8(sim, seed: int, plan: "SchedulePlan") -> None:
    from repro.core.broadcast import CodeFlowGroup
    from repro.ebpf.stress import make_stress_program
    from repro.errors import BroadcastAborted

    bed = make_testbed(n_hosts=8, cores_per_host=2, seed=seed, sim=sim)
    group = CodeFlowGroup(bed.codeflows)
    injector = FaultInjector(bed.codeflows[-1], seed=seed)
    injector.attach()
    injector.arm_from_plan(plan, "fault.kind:broadcast")
    rollout = make_stress_program(300, seed=seed + 7, name="fzcast")
    try:
        try:
            sim.run_process(
                group.broadcast([rollout] * len(bed.codeflows), "ingress")
            )
        except BroadcastAborted:
            pass  # tape-chosen fault aborted the round; rollback ran
        for sandbox in bed.sandboxes:
            try:
                sandbox.run_hook("ingress", bytes(256))
            except (SandboxCrash, ReproError):
                sandbox.crashed = False
        sim.run(until=sim.now + _SETTLE_US)
    finally:
        injector.detach()


def _drive_broadcast_64_tree(sim, seed: int, plan: "SchedulePlan") -> None:
    """Rack-scale guarded target: a 64-way *tree* broadcast -- relay
    fan-out, chained-doorbell raises, tree-relayed lowers -- with a
    tape-chosen payload fault on one leaf.  Relay legs swap a target's
    sync and dispatch CPU mid-flight and forward prelinked images over
    freshly wired QPs; an ordering hole in that handoff is exactly what
    the perturbed schedules exist to surface."""
    from repro.core.broadcast import CodeFlowGroup
    from repro.ebpf.stress import make_stress_program
    from repro.errors import BroadcastAborted

    saved = (params.RDX_TREE_BROADCAST, params.RDX_TREE_DEGREE)
    params.RDX_TREE_BROADCAST = True
    params.RDX_TREE_DEGREE = 4
    try:
        # Lean rack: one core per host and no node agents, so 25 fuzz
        # iterations of a 64-target round stay within the CI budget.
        bed = make_testbed(
            n_hosts=64, cores_per_host=1, with_agents=False, seed=seed,
            sim=sim,
        )
        group = CodeFlowGroup(bed.codeflows)
        injector = FaultInjector(bed.codeflows[-1], seed=seed)
        injector.attach()
        injector.arm_from_plan(plan, "fault.kind:broadcast64")
        rollout = make_stress_program(300, seed=seed + 13, name="fztree")
        try:
            try:
                sim.run_process(
                    group.broadcast(
                        [rollout] * len(bed.codeflows), "ingress"
                    )
                )
            except BroadcastAborted:
                pass  # tape-chosen fault aborted the round; rollback ran
            for sandbox in bed.sandboxes[::8]:
                try:
                    sandbox.run_hook("ingress", bytes(256))
                except (SandboxCrash, ReproError):
                    sandbox.crashed = False
            sim.run(until=sim.now + _SETTLE_US)
        finally:
            injector.detach()
    finally:
        params.RDX_TREE_BROADCAST, params.RDX_TREE_DEGREE = saved


def _drive_crash_recovery(sim, seed: int, plan: "SchedulePlan") -> None:
    from repro.core.broadcast import CodeFlowGroup
    from repro.core.reconcile import Reconciler, resume_control_plane
    from repro.ebpf.stress import make_stress_program
    from repro.errors import BroadcastAborted

    bed = make_testbed(n_hosts=3, cores_per_host=4, seed=seed, sim=sim)
    group = CodeFlowGroup(bed.codeflows)

    def programs(version: int):
        return [
            make_stress_program(
                400, seed=seed * 29 + version * 31 + i, name=f"fzcr{i}"
            )
            for i in range(len(bed.codeflows))
        ]

    try:
        sim.run_process(group.broadcast(programs(1), "ingress"))
    except BroadcastAborted:
        pass
    doomed = sim.spawn(
        group.broadcast(programs(2), "ingress"), name="fz-doomed-broadcast"
    )
    # Fault *timing* is a tape choice: the control plane dies anywhere
    # from mid-prepare to post-commit.
    sim.run(until=sim.now + 10.0 + plan.delay_us("scn.crash-at", 25.0))
    bed.control.crash()
    doomed.interrupt("control plane fail-stop")
    sim.run()
    plane, codeflows = sim.run_process(
        resume_control_plane(
            bed.cluster.control_host, bed.control.journal, bed.sandboxes,
            trace=bed.trace,
        )
    )
    sim.run_process(Reconciler(plane).reconcile_all(codeflows))
    sim.run(until=sim.now + _SETTLE_US)


# -- known-bad scenarios (guards off; the rediscovery targets) --------------


def _drive_sharded_commit(sim, seed: int, plan: "SchedulePlan") -> None:
    """``reordered-commit``: body and commit split across sibling QPs
    -- the completion fallacy, with spawn order fuzzed."""
    from repro.exp.hb_schedules import sibling_sync

    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed, sim=sim)
    sandbox = bed.sandboxes[0]
    body_sync = bed.codeflow.sync
    commit_sync = sibling_sync(bed, sandbox)
    assert sandbox.ctx_manifest is not None
    code_addr = sandbox.ctx_manifest.code_addr
    hook_addr = sandbox.hook_table.slot_addr("ingress")
    body = bytes(range(256)) * 24  # two MTU chunks

    note = hb_events.txn_note(publishes=(code_addr, len(body)))
    sim.spawn(
        _staggered(
            sim, plan,
            body_sync.write(code_addr, body, note={"txn": note["txn"]}),
            "scn.body-start", 6.0,
        ),
        name="fz-body",
    )
    sim.spawn(
        _staggered(
            sim, plan, commit_sync.cas(hook_addr, 0, code_addr, note=note),
            "scn.commit-start", 6.0,
        ),
        name="fz-commit",
    )
    sim.run(until=sim.now + _SETTLE_US)


def _drive_fenceless_writer(sim, seed: int, plan: "SchedulePlan") -> None:
    """``fenceless-stale-writer``: a superseded plane keeps writing
    through the raw sync layer *while* its successor fences the
    target.  Genuinely schedule-dependent: the race only manifests on
    tapes that land the stale bytes after the fence CAS."""
    from repro.core.control_plane import RdxControlPlane

    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed, sim=sim)
    sandbox = bed.sandboxes[0]
    stale_sync = bed.codeflow.sync  # epoch 1, about to be superseded

    def drive():
        successor = RdxControlPlane(
            bed.control.host, journal=bed.control.journal
        )
        sim.spawn(successor.create_codeflow(sandbox), name="fz-successor")
        # The stale plane keeps writing: a burst of metadata updates
        # with tape-chosen gaps.  Each write is one chance to land
        # after the fence; with every gap at 0 (the empty tape) the
        # whole burst completes before the fence CAS -- clean, which
        # keeps minimization sound for this genuinely
        # schedule-dependent race.
        assert sandbox.ctx_manifest is not None
        metadata_addr = sandbox.ctx_manifest.metadata_addr
        for k in range(4):
            gap = plan.delay_us(f"scn.stale-gap:{k}", 30.0)
            if gap:
                yield sim.timeout(gap)
            yield from stale_sync.write(
                metadata_addr + 128 * k, b"\xde\xad" * 64
            )

    sim.run_process(drive())
    sim.run(until=sim.now + _SETTLE_US)


def _drive_live_rewrite(sim, seed: int, plan: "SchedulePlan") -> None:
    """``torn-install``: rewrite a live image in place while the data
    path executes it; exec timing comes from the tape."""
    from repro.ebpf.stress import make_stress_program
    from repro.exp.hb_schedules import sibling_sync

    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed, sim=sim)
    sandbox = bed.sandboxes[0]
    program = make_stress_program(400, seed=seed + 5, name="fztorn")
    sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
    record = bed.codeflow.deployed[program.name]
    writer = sibling_sync(bed, sandbox)
    junk = b"\xcc" * record.code_len
    sim.spawn(
        _staggered(
            sim, plan, writer.write(record.code_addr, junk),
            "scn.clobber-start", 3.0,
        ),
        name="fz-clobber",
    )
    sim.run(until=sim.now + 1.0 + plan.delay_us("scn.exec-at", 3.0))
    try:
        sandbox.run_hook("ingress", bytes(256))
    except SandboxCrash:
        sandbox.crashed = False  # decoding the torn image may crash
    sim.run(until=sim.now + _SETTLE_US)


def _drive_bubble_sweep(sim, seed: int, plan: "SchedulePlan") -> None:
    """``bubble-race``: two owners flip the bubble word concurrently
    (broadcast raising vs a reconciler-style sweep lowering)."""
    from repro.exp.hb_schedules import sibling_sync
    from repro.mem.layout import pack_qword

    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed, sim=sim)
    sandbox = bed.sandboxes[0]
    raiser = bed.codeflow.sync
    lowerer = sibling_sync(bed, sandbox)
    bubble = sandbox.bubble_addr
    sim.spawn(
        _staggered(
            sim, plan, raiser.write(bubble, pack_qword(1)),
            "scn.raise-start", 4.0,
        ),
        name="fz-raise",
    )
    sim.spawn(
        _staggered(
            sim, plan, lowerer.write(bubble, pack_qword(0)),
            "scn.lower-start", 4.0,
        ),
        name="fz-lower",
    )
    sim.run(until=sim.now + _SETTLE_US)


def _drive_delta_shard(sim, seed: int, plan: "SchedulePlan") -> None:
    """``delta-chunk-reordered``: a delta dirty chunk on a sibling QP
    racing its commit CAS on the primary."""
    from repro.ebpf.stress import make_stress_program, make_stress_variant
    from repro.exp.hb_schedules import sibling_sync

    saved = params.RDX_DELTA_DEPLOY
    params.RDX_DELTA_DEPLOY = True
    try:
        bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed, sim=sim)
        sandbox = bed.sandboxes[0]
        v1 = make_stress_program(400, seed=seed + 3, name="fzshard")
        v2 = make_stress_variant(v1, 1)
        sim.run_process(bed.control.inject(bed.codeflow, v1, "ingress"))
        sim.run_process(bed.control.inject(bed.codeflow, v2, "ingress"))
        record = bed.codeflow.deployed["fzshard"]
        assert record.baseline_addr is not None
        hook_addr = sandbox.hook_table.slot_addr("ingress")

        note = hb_events.txn_note(
            publishes=(record.baseline_addr, record.code_len)
        )
        chunk_sync = sibling_sync(bed, sandbox)
        sim.spawn(
            _staggered(
                sim, plan,
                chunk_sync.write(
                    record.baseline_addr + 256, b"\xd7" * 64,
                    note={"txn": note["txn"]},
                ),
                "scn.chunk-start", 6.0,
            ),
            name="fz-delta-chunk",
        )
        sim.spawn(
            _staggered(
                sim, plan,
                bed.codeflow.sync.cas(
                    hook_addr, record.code_addr, record.baseline_addr,
                    note=note,
                ),
                "scn.delta-commit-start", 6.0,
            ),
            name="fz-delta-commit",
        )
        sim.run(until=sim.now + _SETTLE_US)
    finally:
        params.RDX_DELTA_DEPLOY = saved


_ALL = (
    Scenario("single-deploy", _drive_single_deploy),
    Scenario("delta-hotpatch", _drive_delta_hotpatch),
    Scenario("broadcast-8", _drive_broadcast_8),
    Scenario("broadcast-64-tree", _drive_broadcast_64_tree),
    Scenario("crash-recovery", _drive_crash_recovery),
    Scenario(
        "sharded-commit", _drive_sharded_commit,
        expect="commit-before-body", schedule_class="reordered-commit",
    ),
    Scenario(
        "fenceless-writer", _drive_fenceless_writer,
        expect="stale-epoch-write", schedule_class="fenceless-stale-writer",
    ),
    Scenario(
        "live-rewrite", _drive_live_rewrite,
        expect="torn-exec", schedule_class="torn-install",
    ),
    Scenario(
        "bubble-sweep", _drive_bubble_sweep,
        expect="bubble-race", schedule_class="bubble-race",
    ),
    Scenario(
        "delta-shard", _drive_delta_shard,
        expect="commit-before-body", schedule_class="delta-chunk-reordered",
    ),
)

SCENARIOS: dict[str, Scenario] = {s.name: s for s in _ALL}
GUARDED = tuple(s.name for s in _ALL if not s.known_bad)
KNOWN_BAD = tuple(s.name for s in _ALL if s.known_bad)


def get(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown fuzz scenario {name!r} "
            f"(have: {', '.join(sorted(SCENARIOS))})"
        ) from None
