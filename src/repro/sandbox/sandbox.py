"""The sandbox runtime: code pages, hooks, metadata, XState, execution.

One :class:`Sandbox` per pod/VM on a host.  Its entire control surface
is plain memory -- which is the paper's core enabling observation
("code is data"): a remote control plane holding the boot manifest can
perform every lifecycle operation with one-sided RDMA.

Memory layout (all carved from the host allocator)::

    control block   64 B    lock / epoch / bubble flag / doorbell
    GOT             4 KiB   qword per symbol
    hook table      512 B   qword per hook slot
    metadata array  16 KiB  256 B per descriptor slot
    telemetry seg   256 B   seqlock-guarded counters (obs/segment.py)
    code region     8 MiB   JIT images (RegionAllocator)
    scratchpad      16 MiB  Meta-XState index + XState allocations
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro import params
from repro.errors import SandboxCrash, SandboxError
from repro.ebpf.helpers import HELPERS
from repro.ebpf.interpreter import ExecutionResult, Interpreter
from repro.ebpf.jit import JitBinary, decode_image
from repro.ebpf.maps import MapType
from repro.ebpf.program import BpfProgram
from repro.mem.layout import pack_qword, unpack_qword
from repro.mem.memory import RegionAllocator
from repro.net.topology import Host
from repro.obs.segment import LAYOUT as TELEMETRY_LAYOUT
from repro.obs.segment import TelemetrySegment
from repro.rdma.mr import AccessFlags, MemoryRegionMr, ProtectionDomain
from repro.sandbox.got import GlobalContext, SymbolKind
from repro.sandbox.hooks import HookTable
from repro.sandbox.metadata import (
    MetadataArray,
    MetadataBlock,
    SLOT_DETACHED,
    SLOT_EMPTY,
    SLOT_LIVE,
)
from repro.sandbox.xmaps import MemoryBackedMap

_sandbox_ids = itertools.count(1)

# Control-block field offsets.
OFF_LOCK = 0
OFF_EPOCH = 8
OFF_BUBBLE = 16
OFF_DOORBELL = 24
CONTROL_BLOCK_BYTES = 64

#: Base of the per-sandbox helper-function address space.
HELPER_ADDR_BASE = 0xFFFF_8000_0000_0000


@dataclass
class BootManifest:
    """What ``ctx_register`` hands the remote control plane, once.

    Addresses + rkeys + static layouts; everything else is readable
    over RDMA at runtime.
    """

    sandbox_name: str
    host_name: str
    arch: str
    control_addr: int
    got_addr: int
    got_layout: dict[str, int]
    hook_table_addr: int
    hook_layout: dict[str, int]
    metadata_addr: int
    metadata_slots: int
    code_addr: int
    code_bytes: int
    scratchpad_addr: int
    scratchpad_bytes: int
    meta_xstate_addr: int
    meta_xstate_slots: int
    rkey: int = 0
    helper_addresses: dict[str, int] = field(default_factory=dict)
    #: The seqlock-guarded telemetry segment a scraper READs
    #: one-sidedly (see :mod:`repro.obs.segment`).
    telemetry_addr: int = 0
    telemetry_bytes: int = 0


class Sandbox:
    """A runtime extension sandbox bound to one host."""

    def __init__(
        self,
        host: Host,
        name: str = "",
        hooks: tuple[str, ...] = ("ingress", "egress"),
        arch: str = "x86_64",
        code_bytes: int = params.SANDBOX_CODE_BYTES,
        scratchpad_bytes: int = params.XSTATE_SCRATCHPAD_BYTES,
    ):
        self.host = host
        self.sandbox_id = next(_sandbox_ids)
        self.name = name or f"{host.name}.sb{self.sandbox_id}"
        self.arch = arch
        self._hooks = tuple(hooks)
        self.crashed = False
        self.crash_reason = ""
        self.reboots = 0

        allocate = host.allocator.alloc
        self.control_addr = allocate(CONTROL_BLOCK_BYTES, align=64)
        host.memory.fill(self.control_addr, CONTROL_BLOCK_BYTES, 0)

        got_addr = allocate(4096, align=64)
        self.got = GlobalContext(host.memory, got_addr, capacity=512)

        hook_addr = allocate(params.SANDBOX_HOOK_SLOTS * 8, align=64)
        host.memory.fill(hook_addr, params.SANDBOX_HOOK_SLOTS * 8, 0)
        self.hook_table = HookTable(
            host.cache, hook_addr, params.SANDBOX_HOOK_SLOTS
        )

        metadata_addr = allocate(64 * 256, align=64)
        self.metadata = MetadataArray(host.memory, metadata_addr, slots=64)

        # Telemetry segment: allocated between metadata and code so it
        # lands inside the single MR span ctx_register registers.
        self.telemetry = TelemetrySegment(
            host.cache, allocate(TELEMETRY_LAYOUT.size_bytes, align=64)
        )

        self.code_base = allocate(code_bytes, align=4096)
        self.code_bytes = code_bytes
        self.code_allocator = RegionAllocator(
            self.code_base, code_bytes, label=f"{self.name}.code"
        )

        self.scratchpad_base = allocate(scratchpad_bytes, align=4096)
        self.scratchpad_bytes = scratchpad_bytes

        #: Live map objects by slot index (data-path view of XState).
        self.maps: list[MemoryBackedMap] = []
        self._maps_by_addr: dict[int, int] = {}
        self._helper_addr_to_id: dict[int, int] = {}
        self._hostcall_addr_to_id: dict[int, int] = {}
        self._code_len_by_addr: dict[int, int] = {}
        # Instruction-cache analogue: decoded images keyed by their
        # exact bytes.  A torn/corrupt image has different bytes, so
        # it always misses and the decoder still crashes on it.
        self._decode_cache: dict[bytes, list] = {}
        self.events_executed = 0
        self.mr: Optional[MemoryRegionMr] = None
        self.ctx_manifest: Optional[BootManifest] = None

        self._ctx_init(hooks)

    # -- management stubs (§3.1) -------------------------------------------

    def _ctx_init(self, hooks: tuple[str, ...]) -> None:
        """ctx_init: preload empty descriptors and declare hook points.

        Defines both extension families' local entry points in the GOT:
        eBPF helpers and Wasm host calls get per-sandbox addresses, so
        images linked for a *different* sandbox crash here -- linking
        really is per-target (§3.3).
        """
        from repro.wasm.hostcalls import HOST_CALLS

        self.metadata.init_empty()
        for hook in hooks:
            self.hook_table.declare(hook)
        base = HELPER_ADDR_BASE + (self.sandbox_id << 20)
        for helper_id, helper in sorted(HELPERS.items()):
            address = base + helper_id * 0x40
            self.got.define(helper.name, SymbolKind.HELPER, address, token=helper_id)
            self._helper_addr_to_id[address] = helper_id
        wasm_base = base + 0x1_0000
        for call_id, call in sorted(HOST_CALLS.items()):
            address = wasm_base + call_id * 0x40
            self.got.define(call.name, SymbolKind.HELPER, address, token=call_id)
            self._hostcall_addr_to_id[address] = call_id

    def ctx_register(self, pd: ProtectionDomain) -> BootManifest:
        """ctx_register: RDMA-register the control surface; one-time.

        Registers one MR spanning all sandbox regions (control block
        through scratchpad) and returns the boot manifest the remote
        control plane needs.
        """
        span_start = self.control_addr
        span_end = self.scratchpad_base + self.scratchpad_bytes
        self._boot_pd = pd
        self.mr = pd.reg_mr(
            span_start,
            span_end - span_start,
            AccessFlags.REMOTE_READ
            | AccessFlags.REMOTE_WRITE
            | AccessFlags.REMOTE_ATOMIC
            | AccessFlags.LOCAL_WRITE,
        )
        self.ctx_manifest = BootManifest(
            sandbox_name=self.name,
            host_name=self.host.name,
            arch=self.arch,
            control_addr=self.control_addr,
            got_addr=self.got.base_addr,
            got_layout=self.got.layout(),
            hook_table_addr=self.hook_table.base_addr,
            hook_layout=self.hook_table.names(),
            metadata_addr=self.metadata.base_addr,
            metadata_slots=self.metadata.slots,
            code_addr=self.code_base,
            code_bytes=self.code_bytes,
            scratchpad_addr=self.scratchpad_base,
            scratchpad_bytes=self.scratchpad_bytes,
            meta_xstate_addr=self.scratchpad_base,
            meta_xstate_slots=params.XSTATE_META_SLOTS,
            rkey=self.mr.rkey,
            helper_addresses={
                name: self.got.address_of(name)
                for name in self.got.layout()
            },
            telemetry_addr=self.telemetry.base_addr,
            telemetry_bytes=self.telemetry.size_bytes,
        )
        return self.ctx_manifest

    def warm_reboot(self) -> None:
        """Restart the sandbox runtime with DRAM intact (warm reboot).

        What a process restart on a recovered host looks like: the
        *volatile* control surface -- control block (epoch included),
        hook pointers, metadata descriptors, the Meta-XState index --
        comes back zeroed by a fresh ``ctx_init``, while old code
        images and XState chunks survive in DRAM as unreachable bytes.
        The MR registration is re-established at the same addresses,
        so the boot manifest stays valid and a control plane can
        repair the surface one-sidedly (see
        :class:`repro.core.reconcile.Reconciler`).
        """
        # A reboot leaves no process-lifetime cache lines behind: any
        # address the old incarnation had cached (and that a repair may
        # now reuse) must be re-read from DRAM.
        self.host.cache.flush_all()
        cpu_write = self.host.cache.cpu_write
        cpu_write(self.control_addr, bytes(CONTROL_BLOCK_BYTES))
        cpu_write(
            self.hook_table.base_addr, bytes(params.SANDBOX_HOOK_SLOTS * 8)
        )
        cpu_write(
            self.scratchpad_base,
            bytes(params.XSTATE_META_SLOTS * params.XSTATE_META_ENTRY_BYTES),
        )
        self.code_allocator = RegionAllocator(
            self.code_base, self.code_bytes, label=f"{self.name}.code"
        )
        self.maps = []
        self._maps_by_addr = {}
        self._code_len_by_addr = {}
        self._decode_cache = {}
        self.crashed = False
        self.crash_reason = ""
        self.reboots += 1
        # New incarnation: counters restart from zero under a bumped
        # epoch word, so a scraper can never blend pre-crash totals
        # into post-recovery series (the epoch lives inside the
        # seqlock bracket -- see obs/segment.py).
        self.telemetry.reset(epoch=self.reboots + 1)
        self.telemetry.set_gauge("reboots", float(self.reboots))
        self._ctx_init(self._hooks)

    def ctx_teardown(self, prog_id: int) -> bool:
        """ctx_teardown: drop one reference; detach at zero (§3.1)."""
        index = self.metadata.find_by_prog_id(prog_id)
        if index is None:
            raise SandboxError(f"no live program {prog_id}")
        block = self.metadata.read(index)
        block.ref_count = max(0, block.ref_count - 1)
        if block.ref_count == 0:
            block.state = SLOT_DETACHED
            for hook, _slot in self.hook_table.names().items():
                if self.hook_table.pointer_in_dram(hook) == block.code_addr:
                    self.hook_table.write_pointer(hook, 0)
            if block.code_addr and self.code_allocator.size_of(block.code_addr):
                self.code_allocator.free(block.code_addr)
            self._code_len_by_addr.pop(block.code_addr, None)
            detached = True
        else:
            detached = False
        self.metadata.write(index, block)
        return detached

    # -- local (agent-path) install -----------------------------------------

    def install_local(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        ref_count: int = 1,
    ) -> int:
        """Agent-path attach: CPU writes image + metadata + hook pointer.

        Returns the code address.  Coherent by construction (CPU writes
        are write-through and refresh the cache).  Replacing the hook's
        current occupant detaches it: its descriptor slot is reclaimed
        and its code pages freed (the kernel drops a program when its
        last reference goes).
        """
        previous = self.hook_table.pointer_in_dram(hook_name)
        if previous:
            self._evict_local(previous)
        code_addr = self.code_allocator.alloc(len(linked.code), align=64)
        self.host.cache.cpu_write(code_addr, linked.code)
        self._code_len_by_addr[code_addr] = len(linked.code)
        slot = self.metadata.find_free()
        if slot is None:
            self.code_allocator.free(code_addr)
            raise SandboxError("metadata array full")
        self.metadata.write(
            slot,
            MetadataBlock(
                state=SLOT_LIVE,
                prog_id=program.prog_id,
                insn_cnt=len(program.insns),
                ref_count=ref_count,
                code_addr=code_addr,
                code_len=len(linked.code),
                hook_slot=self.hook_table.slot_index(hook_name),
                version=1,
                tag=program.tag().encode()[:16],
                name=program.name,
            ),
        )
        self.hook_table.write_pointer(hook_name, code_addr)
        return code_addr

    def _evict_local(self, code_addr: int) -> None:
        """Drop a locally installed image being replaced at its hook."""
        if self.code_allocator.size_of(code_addr) is None:
            return  # remotely deployed image; its CodeFlow owns it
        for index in range(self.metadata.slots):
            block = self.metadata.read(index)
            if block.state == SLOT_LIVE and block.code_addr == code_addr:
                block.state = SLOT_DETACHED
                self.metadata.write(index, block)
                break
        self.code_allocator.free(code_addr)
        self._code_len_by_addr.pop(code_addr, None)

    def register_map(self, name: str, bpf_map: MemoryBackedMap) -> int:
        """Expose a live map to programs; returns its slot index."""
        slot = len(self.maps)
        self.maps.append(bpf_map)
        self._maps_by_addr[bpf_map.base_addr] = slot
        self.got.define(name, SymbolKind.MAP, bpf_map.base_addr, token=slot)
        return slot

    def create_map(
        self,
        name: str,
        map_type: MapType,
        key_size: int,
        value_size: int,
        max_entries: int,
    ) -> MemoryBackedMap:
        """Allocate a map in the scratchpad (local path convenience)."""
        probe = MemoryBackedMap.geometry_size(
            key_size, value_size, max_entries
        )
        addr = self.host.allocator.alloc(probe, align=64)
        bpf_map = MemoryBackedMap(
            self.host.cache, addr, map_type, key_size, value_size,
            max_entries, name=name,
        )
        self.register_map(name, bpf_map)
        return bpf_map

    # -- remote-side reverse lookups (data path decoding) --------------------

    def _helper_at(self, address: int) -> Optional[int]:
        return self._helper_addr_to_id.get(address)

    def _map_slot_at(self, address: int) -> Optional[int]:
        slot = self._maps_by_addr.get(address)
        if slot is not None:
            return slot
        return self._adopt_remote_map(address)

    def _adopt_remote_map(self, address: int) -> Optional[int]:
        """Discover a remotely deployed XState map from its header.

        The control plane wrote ``[header][slots...]`` into the
        scratchpad; ``address`` points at the slot area.  The header
        carries the geometry, so the data path can construct its local
        view without any agent involvement.
        """
        header_addr = address - params.XSTATE_HEADER_BYTES
        if not (
            self.scratchpad_base
            <= header_addr
            < self.scratchpad_base + self.scratchpad_bytes
        ):
            return None
        header = self.host.cache.cpu_read(header_addr, params.XSTATE_HEADER_BYTES)
        if header[0] == 0:
            return None
        from repro.core.xstate import decode_xstate_header

        decoded = decode_xstate_header(bytes(header))
        if decoded is None:
            return None
        bpf_map = MemoryBackedMap(
            self.host.cache,
            address,
            decoded.map_type,
            decoded.key_size,
            decoded.value_size,
            decoded.max_entries,
            name=f"xstate@{address:#x}",
            initialize=False,
        )
        slot = len(self.maps)
        self.maps.append(bpf_map)
        self._maps_by_addr[address] = slot
        return slot

    # -- data-path execution -------------------------------------------------

    def run_hook(
        self, hook_name: str, ctx: bytes, time_ns: int = 0
    ) -> tuple[Optional[ExecutionResult], float]:
        """Execute the extension attached at ``hook_name``.

        Returns ``(result, cpu_cost_us)``; result is None when the hook
        is empty.  All reads go through the cache, so stale pointers
        and torn images behave exactly as on real hardware; corruption
        raises :class:`SandboxCrash` and marks the sandbox crashed.
        """
        pointer = self.hook_table.read_pointer(hook_name)
        if pointer == 0:
            if params.RDX_OBS:
                self.telemetry.inc("exec.empty")
            return None, 0.1  # empty-hook fast path
        if params.RDX_HB_CHECK:
            self._emit_hb_exec(hook_name, pointer)
        try:
            insns = self._decode_at(pointer)
            interp = Interpreter(maps=self.maps, time_ns=time_ns)
            result = interp.run(insns, ctx)
        except SandboxCrash as crash:
            self.crashed = True
            self.crash_reason = str(crash)
            if params.RDX_OBS:
                self.telemetry.inc("exec.crashes")
            raise
        self.events_executed += 1
        cost_us = result.insns_executed / params.CPU_INSN_PER_US + 0.2
        if params.RDX_OBS:
            self._note_exec(hook_name, pointer, result.insns_executed, cost_us)
        return result, cost_us

    def run_wasm_hook(
        self, hook_name: str, request_ctx, args: tuple[int, ...] = ()
    ) -> tuple[Optional[object], float]:
        """Execute the Wasm filter attached at ``hook_name``.

        Mirrors :meth:`run_hook` for the stack-machine flavour: reads
        go through the cache, corruption crashes the sandbox.  Returns
        ``(WasmResult | None, cpu_cost_us)``.
        """
        from repro.wasm.compiler import decode_wasm_image
        from repro.wasm.runtime import WasmRuntime

        pointer = self.hook_table.read_pointer(hook_name)
        if pointer == 0:
            if params.RDX_OBS:
                self.telemetry.inc("exec.empty")
            return None, 0.1
        if params.RDX_HB_CHECK:
            self._emit_hb_exec(hook_name, pointer)
        try:
            header = self.host.cache.cpu_read(pointer, 8)
            slot_count = int.from_bytes(header[4:8], "little")
            total = 8 + slot_count * 10 + 4
            if total > self.code_bytes or slot_count > 2_000_000:
                raise SandboxCrash(f"implausible image header at {pointer:#x}")
            image = self.host.cache.cpu_read(pointer, total)
            instrs = self._decode_cache.get(image)
            if instrs is None:
                instrs = decode_wasm_image(
                    image,
                    host_call_at=self._hostcall_addr_to_id.get,
                    expect_arch=self.arch,
                )
                self._decode_cache[image] = instrs
            result = WasmRuntime().run(instrs, request_ctx, args=args)
        except SandboxCrash as crash:
            self.crashed = True
            self.crash_reason = str(crash)
            if params.RDX_OBS:
                self.telemetry.inc("exec.crashes")
            raise
        self.events_executed += 1
        cost_us = result.insns_executed / params.CPU_INSN_PER_US + 0.2
        if params.RDX_OBS:
            self._note_exec(hook_name, pointer, result.insns_executed, cost_us)
        return result, cost_us

    def _note_exec(
        self, hook_name: str, pointer: int, insns: int, cost_us: float
    ) -> None:
        """Publish one execution into the telemetry segment.

        The first execution of a freshly installed image is the
        *install-observed* edge: it closes the causal deploy trace, so
        it is also mirrored into the sim-wide trace recorder where the
        span reconstruction (obs/spans.py) can join it on ``pointer``.
        """
        from repro.obs import telemetry_of

        now = self.host.sim.now
        first_exec = self.telemetry.note_exec(
            hook_name, pointer, insns, cost_us, now
        )
        if first_exec:
            telemetry_of(self.host.sim).recorder.record(
                now,
                "rdx.trace.first_exec",
                target=self.name,
                hook=hook_name,
                pointer=pointer,
            )

    def _emit_hb_exec(self, hook_name: str, pointer: int) -> None:
        """Record the hook execution for the happens-before checker.

        Emitted *before* decoding, so an exec that crashes on a torn
        image still shows up as the racing read it was.  The code
        range is sized from the image header through the cache -- the
        same bytes the decode is about to read -- clamped to the code
        region when the header itself is torn garbage.
        """
        from repro.hb import events as hb_events

        try:
            header = self.host.cache.cpu_read(pointer, 8)
            slot_count = int.from_bytes(header[4:8], "little")
            total = 8 + slot_count * 10 + 4
            if not 0 < total <= self.code_bytes:
                total = self.code_bytes
        except Exception:
            total = 8
        hb_events.emit(
            self.host.sim,
            "hb.exec",
            target=self.host.name,
            hook=hook_name,
            hook_addr=self.hook_table.slot_addr(hook_name),
            pointer=pointer,
            addr=pointer,
            length=total,
        )

    def _decode_at(self, code_addr: int):
        header = self.host.cache.cpu_read(code_addr, 8)
        slot_count = int.from_bytes(header[4:8], "little")
        total = 8 + slot_count * 10 + 4
        if total > self.code_bytes or slot_count > 2_000_000:
            raise SandboxCrash(f"implausible image header at {code_addr:#x}")
        image = self.host.cache.cpu_read(code_addr, total)
        cached = self._decode_cache.get(image)
        if cached is None:
            cached = decode_image(
                image,
                helper_at=self._helper_at,
                map_slot_at=self._map_slot_at,
                expect_arch=self.arch,
            )
            self._decode_cache[image] = cached
        return cached

    # -- control block accessors ------------------------------------------

    @property
    def lock_addr(self) -> int:
        return self.control_addr + OFF_LOCK

    @property
    def epoch_addr(self) -> int:
        return self.control_addr + OFF_EPOCH

    @property
    def bubble_addr(self) -> int:
        return self.control_addr + OFF_BUBBLE

    def bubble_active(self) -> bool:
        """Data-path check of the BBU buffering flag (through cache)."""
        active = unpack_qword(self.host.cache.cpu_read(self.bubble_addr, 8)) != 0
        if active and params.RDX_OBS:
            self.telemetry.inc("bubble.stalls")
        return active

    def epoch(self) -> int:
        return unpack_qword(self.host.cache.cpu_read(self.epoch_addr, 8))

    def cpu_try_lock(self, owner: int) -> bool:
        """CPU-side lock acquire (lock-prefixed CAS semantics: DRAM truth)."""
        current = unpack_qword(self.host.memory.read(self.lock_addr, 8))
        if current != 0:
            return False
        self.host.cache.cpu_write(self.lock_addr, pack_qword(owner))
        return True

    def cpu_unlock(self, owner: int) -> None:
        current = unpack_qword(self.host.memory.read(self.lock_addr, 8))
        if current != owner:
            raise SandboxError(f"unlock by non-owner {owner}")
        self.host.cache.cpu_write(self.lock_addr, pack_qword(0))
