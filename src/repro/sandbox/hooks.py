"""The hook table: named attach points holding code pointers.

Each slot is one qword in sandbox memory: the address of the installed
extension's code image (0 = empty).  Slot updates are single-qword
writes, which is what makes ``rdx_tx``'s CAS visibility flip atomic
from the data path's perspective (§3.5): the big code image lands
first, elsewhere; the qword swap is the commit point.

Data-path reads go through the host *cache*, so a freshly swapped
pointer may not be observed until eviction or an explicit flush --
exactly Fig 5's incoherence window.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SandboxError
from repro.mem.cache import CacheModel
from repro.mem.layout import pack_qword, unpack_qword


class HookTable:
    """Fixed array of hook slots in sandbox memory."""

    def __init__(self, cache: CacheModel, base_addr: int, slots: int):
        self.cache = cache
        self.base_addr = base_addr
        self.slots = slots
        self._names: dict[str, int] = {}

    @property
    def size_bytes(self) -> int:
        return self.slots * 8

    def declare(self, hook_name: str) -> int:
        """Reserve a slot for ``hook_name``; returns its index."""
        if hook_name in self._names:
            return self._names[hook_name]
        if len(self._names) >= self.slots:
            raise SandboxError("hook table full")
        index = len(self._names)
        self._names[hook_name] = index
        return index

    def slot_index(self, hook_name: str) -> int:
        try:
            return self._names[hook_name]
        except KeyError:
            raise SandboxError(f"unknown hook {hook_name!r}") from None

    def slot_addr(self, hook_name: str) -> int:
        """The memory address of the hook's pointer qword."""
        return self.base_addr + self.slot_index(hook_name) * 8

    def names(self) -> dict[str, int]:
        return dict(self._names)

    # -- CPU-side access (data path) --------------------------------------

    def read_pointer(self, hook_name: str) -> int:
        """Data-path read of a hook pointer -- through the cache."""
        data = self.cache.cpu_read(self.slot_addr(hook_name), 8)
        return unpack_qword(data)

    def write_pointer(self, hook_name: str, code_addr: int) -> None:
        """Local (agent-path) update of a hook pointer -- via the CPU."""
        self.cache.cpu_write(self.slot_addr(hook_name), pack_qword(code_addr))

    # -- DRAM truth (assertions / remote side) -----------------------------

    def pointer_in_dram(self, hook_name: str) -> int:
        return unpack_qword(self.cache.memory.read(self.slot_addr(hook_name), 8))
