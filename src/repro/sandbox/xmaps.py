"""Memory-backed maps: XState whose truth lives in sandbox DRAM.

A :class:`MemoryBackedMap` has the same geometry and interface as
:class:`~repro.ebpf.maps.BpfMap` but stores its slots in host memory,
so the remote control plane can read/update entries with one-sided
RDMA while local extensions access them through the CPU/cache --
concurrent access mediated by RDX's sync primitives (§3.4-§3.5).

Slot layout matches ``BpfMap.serialize``:
``[used u8][pad 7][key][value*n_cpus]`` per slot.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XStateError
from repro.ebpf.maps import BPF_ANY, BPF_EXIST, BPF_NOEXIST, BpfMap, MapType
from repro.mem.cache import CacheModel

_SLOT_HEADER = 8


class MemoryBackedMap(BpfMap):
    """A BpfMap whose slots live at ``base_addr`` in host memory.

    CPU-side operations (extension execution, agent polling) go through
    the cache model; the DMA side simply addresses the same bytes.
    """

    def __init__(
        self,
        cache: CacheModel,
        base_addr: int,
        map_type: MapType,
        key_size: int,
        value_size: int,
        max_entries: int,
        name: str = "",
        n_cpus: int = 1,
        initialize: bool = True,
    ):
        super().__init__(map_type, key_size, value_size, max_entries, name, n_cpus)
        self.cache = cache
        self.base_addr = base_addr
        # The dict-based storage of the parent is unused.
        self._slots.clear()
        if initialize:
            # Zero the backing memory to match a fresh map.
            self.cache.memory.fill(base_addr, self.image_bytes(), 0)
            if map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
                for index in range(max_entries):
                    self._write_slot(index, index.to_bytes(4, "little"),
                                     bytes(value_size * self.n_cpus))

    @staticmethod
    def geometry_size(
        key_size: int, value_size: int, max_entries: int, n_cpus: int = 1
    ) -> int:
        """Bytes of backing memory a map of this geometry needs."""
        return (_SLOT_HEADER + key_size + value_size * n_cpus) * max_entries

    # -- slot IO ----------------------------------------------------------

    def _slot_addr(self, index: int) -> int:
        return self.base_addr + index * self.slot_bytes()

    def _read_slot(self, index: int) -> tuple[bool, bytes, bytes]:
        raw = self.cache.cpu_read(self._slot_addr(index), self.slot_bytes())
        used = bool(raw[0])
        key = raw[_SLOT_HEADER : _SLOT_HEADER + self.key_size]
        value = raw[_SLOT_HEADER + self.key_size :]
        return used, bytes(key), bytes(value)

    def _write_slot(self, index: int, key: bytes, value: bytes) -> None:
        data = b"\x01" + bytes(7) + key + value
        self.cache.cpu_write(self._slot_addr(index), data)

    def _clear_slot(self, index: int) -> None:
        self.cache.cpu_write(self._slot_addr(index), bytes(self.slot_bytes()))

    def _find(self, key: bytes) -> Optional[int]:
        if self.map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
            index = int.from_bytes(key, "little")
            return index if index < self.max_entries else None
        for index in range(self.max_entries):
            used, slot_key, _value = self._read_slot(index)
            if used and slot_key == key:
                return index
        return None

    def _find_free(self) -> Optional[int]:
        for index in range(self.max_entries):
            used, _key, _value = self._read_slot(index)
            if not used:
                return index
        return None

    # -- BpfMap interface --------------------------------------------------

    def __len__(self) -> int:
        return sum(
            1 for index in range(self.max_entries) if self._read_slot(index)[0]
        )

    def lookup(self, key: bytes) -> Optional[bytes]:
        key = self._check_key(key)
        index = self._find(key)
        if index is None:
            return None
        used, _slot_key, value = self._read_slot(index)
        if not used:
            return None
        return value

    def update(self, key: bytes, value: bytes, flags: int = BPF_ANY) -> int:
        key = self._check_key(key)
        expected = self.value_size * self.n_cpus
        if len(value) != expected:
            raise XStateError(f"{self.name}: value size {len(value)} != {expected}")
        index = self._find(key)
        exists = index is not None and self._read_slot(index)[0]
        if flags == BPF_NOEXIST and exists:
            return -17
        if flags == BPF_EXIST and not exists:
            return -2
        if index is None or (not exists and self.map_type is MapType.HASH):
            index = index if index is not None else self._find_free()
            if index is None:
                return -7
        self._write_slot(index, key, value)
        return 0

    def delete(self, key: bytes) -> int:
        key = self._check_key(key)
        if self.map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
            return -22
        index = self._find(key)
        if index is None:
            return -2
        self._clear_slot(index)
        return 0

    def keys(self) -> list[bytes]:
        found = []
        for index in range(self.max_entries):
            used, key, _value = self._read_slot(index)
            if used:
                found.append(key)
        return found

    def serialize(self) -> bytes:
        """Snapshot straight from DRAM (what a remote READ returns)."""
        return self.cache.memory.read(self.base_addr, self.image_bytes())
