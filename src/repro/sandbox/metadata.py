"""Serialized extension metadata blocks (`struct bpf_program` analogue).

§3.1: an extension is code *plus* a descriptor of 30+ fields.  The
``ctx_init`` stub preloads empty descriptors ("empty extensions at
locations of interest") so the remote control plane only has to fill
slots, never to conjure layout from thin air.

Each slot is a fixed 256-byte block::

    [state u32][prog_id u32][insn_cnt u32][ref_count u32]
    [code_addr u64][code_len u32][hook_slot i32]
    [xstate_addr u64][version u32][prog_type u8][flags u8][pad 2]
    [tag 16s][name 64s] ... zero padding to 256
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import SandboxError
from repro.mem.memory import PhysicalMemory

METADATA_SLOT_BYTES = 256

#: Slot lifecycle states.
SLOT_EMPTY = 0
SLOT_LOADING = 1
SLOT_LIVE = 2
SLOT_DETACHED = 3

_FIXED = struct.Struct("<IIIIQIiQIBB2x16s64s")


@dataclass
class MetadataBlock:
    """Decoded view of one descriptor slot."""

    state: int = SLOT_EMPTY
    prog_id: int = 0
    insn_cnt: int = 0
    ref_count: int = 0
    code_addr: int = 0
    code_len: int = 0
    hook_slot: int = -1
    xstate_addr: int = 0
    version: int = 0
    prog_type: int = 0
    flags: int = 0
    tag: bytes = b"\x00" * 16
    name: str = ""

    def encode(self) -> bytes:
        packed = _FIXED.pack(
            self.state,
            self.prog_id,
            self.insn_cnt,
            self.ref_count,
            self.code_addr,
            self.code_len,
            self.hook_slot,
            self.xstate_addr,
            self.version,
            self.prog_type,
            self.flags,
            self.tag[:16].ljust(16, b"\x00"),
            self.name.encode()[:64].ljust(64, b"\x00"),
        )
        return packed.ljust(METADATA_SLOT_BYTES, b"\x00")

    @classmethod
    def decode(cls, data: bytes) -> "MetadataBlock":
        if len(data) < _FIXED.size:
            raise SandboxError("metadata block too short")
        (
            state,
            prog_id,
            insn_cnt,
            ref_count,
            code_addr,
            code_len,
            hook_slot,
            xstate_addr,
            version,
            prog_type,
            flags,
            tag,
            name,
        ) = _FIXED.unpack_from(data)
        return cls(
            state=state,
            prog_id=prog_id,
            insn_cnt=insn_cnt,
            ref_count=ref_count,
            code_addr=code_addr,
            code_len=code_len,
            hook_slot=hook_slot,
            xstate_addr=xstate_addr,
            version=version,
            prog_type=prog_type,
            flags=flags,
            tag=tag,
            name=name.rstrip(b"\x00").decode(errors="replace"),
        )


class MetadataArray:
    """The descriptor array in sandbox memory."""

    def __init__(self, memory: PhysicalMemory, base_addr: int, slots: int = 64):
        self.memory = memory
        self.base_addr = base_addr
        self.slots = slots

    @property
    def size_bytes(self) -> int:
        return self.slots * METADATA_SLOT_BYTES

    def slot_addr(self, index: int) -> int:
        if not 0 <= index < self.slots:
            raise SandboxError(f"metadata slot {index} out of range")
        return self.base_addr + index * METADATA_SLOT_BYTES

    def read(self, index: int) -> MetadataBlock:
        return MetadataBlock.decode(
            self.memory.read(self.slot_addr(index), METADATA_SLOT_BYTES)
        )

    def write(self, index: int, block: MetadataBlock) -> None:
        self.memory.write(self.slot_addr(index), block.encode())

    def init_empty(self) -> None:
        """ctx_init: preload every slot with an empty descriptor."""
        empty = MetadataBlock().encode()
        for index in range(self.slots):
            self.memory.write(self.slot_addr(index), empty)

    def find_free(self) -> Optional[int]:
        """First reusable slot (never written, or detached)."""
        for index in range(self.slots):
            if self.read(index).state in (SLOT_EMPTY, SLOT_DETACHED):
                return index
        return None

    def find_by_prog_id(self, prog_id: int) -> Optional[int]:
        for index in range(self.slots):
            block = self.read(index)
            if block.state != SLOT_EMPTY and block.prog_id == prog_id:
                return index
        return None
