"""The sandbox's global offset table (GOT) and symbol context.

JIT-compiled extensions reference host-local entities -- helper
functions, maps, global variables -- whose addresses differ per host.
The GOT maps symbol names to local addresses; its serialized form (a
qword array in sandbox memory) is what ``rdx_create_codeflow`` reads
so the remote control plane can link binaries accurately (§3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import LinkError
from repro.mem.layout import pack_qword, unpack_qword
from repro.mem.memory import PhysicalMemory


class SymbolKind(enum.Enum):
    HELPER = "helper"
    MAP = "map"
    GLOBAL = "global"


@dataclass(frozen=True)
class Symbol:
    name: str
    kind: SymbolKind
    address: int
    #: For helpers: the helper id.  For maps: the live map slot.
    token: int = 0


class GlobalContext:
    """Symbol table + backing qword array in sandbox memory.

    The name->index mapping (the "layout") is static per sandbox build
    and shared with the control plane once, at CodeFlow creation; the
    *addresses* live in memory and are readable over RDMA at any time.
    """

    def __init__(self, memory: PhysicalMemory, base_addr: int, capacity: int = 512):
        self.memory = memory
        self.base_addr = base_addr
        self.capacity = capacity
        self._symbols: dict[str, Symbol] = {}
        self._index: dict[str, int] = {}
        self._by_address: dict[int, Symbol] = {}

    @property
    def size_bytes(self) -> int:
        return self.capacity * 8

    def define(self, name: str, kind: SymbolKind, address: int, token: int = 0) -> Symbol:
        """Add (or re-point) a symbol and persist its address qword."""
        if name in self._index:
            index = self._index[name]
            old = self._symbols[name]
            self._by_address.pop(old.address, None)
        else:
            if len(self._index) >= self.capacity:
                raise LinkError("GOT full")
            index = len(self._index)
            self._index[name] = index
        symbol = Symbol(name=name, kind=kind, address=address, token=token)
        self._symbols[name] = symbol
        self._by_address[address] = symbol
        self.memory.write(self.base_addr + index * 8, pack_qword(address))
        return symbol

    def undefine(self, name: str) -> None:
        """Drop a symbol (its GOT slot is zeroed, index retained)."""
        symbol = self._symbols.pop(name, None)
        if symbol is None:
            raise LinkError(f"undefine of unknown symbol {name!r}")
        self._by_address.pop(symbol.address, None)
        index = self._index[name]
        self.memory.write(self.base_addr + index * 8, pack_qword(0))

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def address_of(self, name: str) -> int:
        symbol = self._symbols.get(name)
        if symbol is None:
            raise LinkError(f"undefined symbol {name!r}")
        return symbol.address

    def symbol_at(self, address: int) -> Optional[Symbol]:
        """Reverse lookup used when decoding linked binaries."""
        return self._by_address.get(address)

    def layout(self) -> dict[str, int]:
        """name -> GOT index; the static part shared with the control plane."""
        return dict(self._index)

    def export_addresses(self) -> dict[str, int]:
        """name -> address snapshot (what a remote GOT read yields)."""
        return {name: sym.address for name, sym in self._symbols.items()}

    def read_remote_qword(self, index: int) -> int:
        """Interpret one GOT slot as the control plane would via RDMA."""
        return unpack_qword(self.memory.read(self.base_addr + index * 8, 8))

    def __len__(self) -> int:
        return len(self._symbols)
