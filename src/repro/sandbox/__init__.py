"""Runtime sandboxes: the local data plane extensions execute in.

A sandbox owns real carve-outs of its host's simulated DRAM -- code
pages, a hook table of code pointers, a metadata array, a GOT, an
XState scratchpad, and a small control block -- all RDMA-registered at
boot by the ``ctx_register`` management stub so a remote control plane
can manipulate them with one-sided verbs (paper §3.1).

The sandbox's CPU-side reads go through the host cache model, so
everything the paper says about torn reads and stale cache lines
happens here for real.
"""

from repro.sandbox.got import GlobalContext, SymbolKind
from repro.sandbox.hooks import HookTable
from repro.sandbox.metadata import METADATA_SLOT_BYTES, MetadataArray
from repro.sandbox.xmaps import MemoryBackedMap
from repro.sandbox.sandbox import BootManifest, Sandbox

__all__ = [
    "BootManifest",
    "GlobalContext",
    "HookTable",
    "METADATA_SLOT_BYTES",
    "MemoryBackedMap",
    "MetadataArray",
    "Sandbox",
    "SymbolKind",
]
