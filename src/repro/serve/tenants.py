"""Tenant model: priority classes layered on the QoS scheduler.

A *priority class* bundles the service-level policy knobs one tier of
tenants shares: the wire priority (lower = more urgent, same axis as
:class:`repro.core.qos.TenantQuota`), a class-aggregate rate limit, a
bounded deploy-queue depth, and the default per-tenant quota a tenant
of that class registers with.  The :class:`TenantDirectory` maps
tenant names to their class and hands the underlying
:class:`~repro.core.qos.QosScheduler` its per-tenant token buckets.

Class names double as the low-cardinality ``tenant_class`` metric
label (see :func:`repro.obs.tenant_label`): a 1000-tenant mix exports
a handful of series per metric, not a thousand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import params
from repro.core.qos import QosScheduler, TenantQuota
from repro.errors import SecurityError


@dataclass(frozen=True)
class PriorityClass:
    """Service policy for one tier of tenants."""

    name: str
    #: Wire priority (lower = more urgent); also orders dequeue.
    priority: int
    #: Class-aggregate injection rate across all member tenants.
    rate_bytes_per_s: float
    burst_bytes: float
    #: Bounded deploy-queue depth; arrivals beyond it are shed (open
    #: loop) or block the producer (backpressure).
    queue_depth: int
    #: Default per-tenant quota for members of this class.
    tenant_rate_bytes_per_s: float
    tenant_burst_bytes: float
    #: Per-tenant cap on queued+running deploys -- one tenant cannot
    #: monopolize its class queue.
    max_pending_per_tenant: int = 8
    #: Admission-time throttle ceiling, us: a deploy whose class or
    #: tenant bucket deficit exceeds this is shed as ``rate-limited``.
    max_throttle_us: float = params.RDX_SERVE_MAX_THROTTLE_US


def default_classes(queue_depth: Optional[int] = None) -> tuple:
    """The stock three-tier mix: hotpatch / standard / bulk.

    Hotpatch is the paper's microsecond fix-push: tiny programs,
    urgent, generously rated per byte (they barely move bytes).  Bulk
    is the 95K-insn roll: high aggregate bandwidth, lowest priority,
    tighter per-tenant pending cap.  Standard sits between.
    """
    depth = queue_depth or params.RDX_SERVE_QUEUE_DEPTH
    return (
        PriorityClass(
            "hotpatch", priority=0,
            rate_bytes_per_s=50e6, burst_bytes=256_000,
            queue_depth=depth,
            tenant_rate_bytes_per_s=2e6, tenant_burst_bytes=64_000,
            max_pending_per_tenant=8,
        ),
        PriorityClass(
            "standard", priority=2,
            rate_bytes_per_s=100e6, burst_bytes=1_000_000,
            queue_depth=depth,
            tenant_rate_bytes_per_s=5e6, tenant_burst_bytes=256_000,
            max_pending_per_tenant=8,
        ),
        PriorityClass(
            "bulk", priority=5,
            rate_bytes_per_s=200e6, burst_bytes=4_000_000,
            queue_depth=depth,
            tenant_rate_bytes_per_s=20e6, tenant_burst_bytes=2_000_000,
            max_pending_per_tenant=4,
        ),
    )


class TenantDirectory:
    """Registered tenants, their classes, and their QoS quotas."""

    def __init__(self, qos: QosScheduler, classes):
        self.qos = qos
        self.classes: dict[str, PriorityClass] = {}
        for cls in classes:
            if cls.name in self.classes:
                raise SecurityError(f"class {cls.name!r} already defined")
            self.classes[cls.name] = cls
        self._class_of: dict[str, str] = {}

    def register(
        self,
        tenant: str,
        class_name: str,
        rate_bytes_per_s: Optional[float] = None,
        burst_bytes: Optional[float] = None,
    ) -> TenantQuota:
        """Enroll ``tenant`` into ``class_name``.

        The per-tenant quota defaults to the class's, overridable per
        tenant (a paying tenant can buy more rate without leaving its
        tier).  Duplicate registration raises, mirroring
        :meth:`QosScheduler.register_tenant`.
        """
        cls = self.classes.get(class_name)
        if cls is None:
            raise SecurityError(f"unknown priority class {class_name!r}")
        quota = TenantQuota(
            name=tenant,
            rate_bytes_per_s=(
                rate_bytes_per_s
                if rate_bytes_per_s is not None
                else cls.tenant_rate_bytes_per_s
            ),
            burst_bytes=(
                burst_bytes
                if burst_bytes is not None
                else cls.tenant_burst_bytes
            ),
            priority=cls.priority,
        )
        self.qos.register_tenant(quota)  # raises on duplicates
        self._class_of[tenant] = class_name
        return quota

    def class_of(self, tenant: str) -> Optional[PriorityClass]:
        name = self._class_of.get(tenant)
        return self.classes[name] if name is not None else None

    def tenants(self) -> dict[str, str]:
        """tenant -> class-name snapshot."""
        return dict(self._class_of)
