"""The serve-plane telemetry segment: agentless serving counters.

The PR-6 telemetry plane made *sandboxes* scrapeable without agents:
a seqlock-bracketed segment in registered memory, read one-sided.
The deploy service gets the same treatment -- warm-pool hit/miss/
evict, admission accept, and every shed reason live in a fixed-layout
segment carved from the control host's DRAM, updated write-through by
the service's local stores and readable by an external monitor with
one-sided READs: **zero service-CPU events per scrape**, the same
bypass the sandbox segments get.

The wire format is :class:`repro.obs.segment.SegmentLayout` with
serve-specific slot tuples; the seqlock protocol, epoch word, and
torn-read rules are identical (and :func:`scrape_serve` mirrors
:class:`~repro.obs.scrape.TelemetryScraper`'s accept loop).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro import params
from repro.errors import ReproError
from repro.net.topology import Host
from repro.obs.segment import (
    OFF_SEQ,
    SegmentLayout,
    SegmentSnapshot,
    TelemetrySegment,
    decode_segment,
)

#: Monotonic serving counters (u64 each).
SERVE_COUNTER_SLOTS = (
    "warm.hit",            # warm-pool lookups served pre-linked
    "warm.miss",           # warm-pool lookups that fell to the cold path
    "warm.evict",          # LRU/invalidation evictions from the pool
    "admit.accept",        # requests admitted into a class queue
    "shed.queue_full",     # rejected: class queue at depth
    "shed.tenant_quota",   # rejected: per-tenant pending cap
    "shed.unknown_tenant",  # rejected: no registration
    "shed.rate_limited",   # rejected: bucket deficit over policy
    "shed.stopped",        # rejected: service shutting down
    "deploys.completed",   # deploys that reached install-visible
    "deploys.failed",      # deploys that raised (counted, not silent)
)

#: Point-in-time service gauges (f64).
SERVE_GAUGE_SLOTS = (
    "queued",              # tickets waiting across all class queues
    "inflight",            # deploys currently executing
)

#: Log-bucket latency histogram (submit -> install-visible, us).
SERVE_HIST_SLOTS = ("deploy_us",)

#: The serve-plane schema (distinct from the sandbox LAYOUT).
SERVE_LAYOUT = SegmentLayout(
    counters=SERVE_COUNTER_SLOTS,
    gauges=SERVE_GAUGE_SLOTS,
    hists=SERVE_HIST_SLOTS,
)


class ServeSegment(TelemetrySegment):
    """Single-writer serve segment resident on the control host.

    Allocates its span from the host's DRAM and writes through the
    host cache, so the DRAM bytes a remote READ observes are always
    current -- exactly the sandbox segment's contract.
    """

    def __init__(self, host: Host, layout: SegmentLayout = SERVE_LAYOUT):
        self.host = host
        base = host.allocator.alloc(layout.size_bytes, align=64)
        super().__init__(host.cache, base, layout=layout)


def scrape_serve(
    read: Callable[[int, int], Generator],
    base_addr: int,
    layout: SegmentLayout = SERVE_LAYOUT,
    max_retries: Optional[int] = None,
    sim=None,
) -> Generator:
    """Process body: one seqlock-consistent scrape of a serve segment.

    ``read(addr, size)`` is any one-sided read generator -- a
    :meth:`RemoteSync.read <repro.core.sync.RemoteSync.read>` bound to
    the control host's region, or a monitor-side RDMA shim.  The
    accept rule is the standard one: seq even before, payload, seq
    unchanged after; anything else is torn, retried, and **never
    returned**.  When ``sim`` is given, retries back off
    :data:`~repro.params.RDX_SCRAPE_RETRY_US` apiece (the
    :class:`~repro.obs.scrape.TelemetryScraper` discipline) so a
    scraper can ride out a slow writer bracket instead of burning the
    whole budget inside it.  Raises :class:`ReproError` when the
    retry budget runs out.
    """
    budget = (
        max_retries if max_retries is not None
        else params.RDX_SCRAPE_MAX_RETRIES
    )
    retries = 0
    for _attempt in range(budget + 1):
        word = yield from read(base_addr + OFF_SEQ, 8)
        seq_before = int.from_bytes(bytes(word), "little")
        if seq_before % 2 == 0:
            raw = bytes((yield from read(base_addr, layout.size_bytes)))
            word = yield from read(base_addr + OFF_SEQ, 8)
            seq_after = int.from_bytes(bytes(word), "little")
            if seq_after == seq_before:
                snapshot: SegmentSnapshot = decode_segment(raw, layout)
                if snapshot.valid:
                    return snapshot
        retries += 1
        if sim is not None:
            yield sim.timeout(params.RDX_SCRAPE_RETRY_US)
    raise ReproError(
        f"serve-segment scrape torn {retries}x; snapshot discarded"
    )
