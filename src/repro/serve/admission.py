"""Admission control: bounded per-class queues with counted shedding.

The deploy service's front door.  Every arriving request either lands
in its class's bounded queue or is rejected with an attributed *shed
reason* -- there is no path through this module that drops a request
silently, which is what lets the benchmark assert
``offered == completed + failed + shed``.

Shed reasons (the closed set, each a counter):

* ``queue-full``      -- the class queue is at depth.
* ``tenant-quota``    -- the tenant's pending cap is reached.
* ``unknown-tenant``  -- no registration (mirrors QosScheduler).
* ``rate-limited``    -- the class/tenant token-bucket deficit exceeds
  the class's ``max_throttle_us`` (waiting would only grow the queue).
* ``stopped``         -- the service is shutting down.

Backpressure is the other half of the contract: a closed-loop producer
can wait on :meth:`AdmissionController.space_event` instead of being
shed, so ``queue-full`` only ever sheds callers who chose open-loop
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.qos import _TokenBucket
from repro.obs import telemetry_of
from repro.serve.tenants import PriorityClass

#: The closed set of shed reasons (also the serve-segment slot names,
#: with ``-`` mapped to ``_``).
SHED_QUEUE_FULL = "queue-full"
SHED_TENANT_QUOTA = "tenant-quota"
SHED_UNKNOWN_TENANT = "unknown-tenant"
SHED_RATE_LIMITED = "rate-limited"
SHED_STOPPED = "stopped"
SHED_REASONS = (
    SHED_QUEUE_FULL,
    SHED_TENANT_QUOTA,
    SHED_UNKNOWN_TENANT,
    SHED_RATE_LIMITED,
    SHED_STOPPED,
)


@dataclass
class DeployTicket:
    """One submitted deploy request and its lifecycle record."""

    tenant: str
    class_name: str
    program: object
    hook_name: str
    codeflow: object
    size_bytes: int
    submitted_us: float
    #: Set at admission: how long the class bucket asks this deploy to
    #: be paced before executing (its reservation deficit).
    pace_us: float = 0.0
    accepted: bool = False
    shed_reason: Optional[str] = None
    #: Succeeds (with this ticket) when the deploy completes or fails;
    #: never ``fail()``-ed, so open-loop waiters don't need try/except.
    done: Optional[object] = None
    started_us: Optional[float] = None
    finished_us: Optional[float] = None
    report: Optional[object] = None
    error: Optional[BaseException] = None
    #: Free-form marker the workload generator uses (hot/bulk/cold).
    kind: str = ""

    @property
    def completed(self) -> bool:
        return self.report is not None

    @property
    def queue_wait_us(self) -> float:
        if self.started_us is None:
            return 0.0
        return self.started_us - self.submitted_us

    @property
    def service_us(self) -> float:
        """Execution latency: dequeue to install-visible."""
        if self.started_us is None or self.finished_us is None:
            return 0.0
        return self.finished_us - self.started_us

    @property
    def latency_us(self) -> float:
        """End-to-end: submit to install-visible (includes queueing)."""
        if self.finished_us is None:
            return 0.0
        return self.finished_us - self.submitted_us


@dataclass
class _ClassQueue:
    cls: PriorityClass
    bucket: _TokenBucket
    tickets: list = field(default_factory=list)
    #: Waiters parked by backpressure mode; fired (and replaced) when
    #: a slot frees up.
    space: Optional[object] = None


class AdmissionController:
    """Bounded, prioritized admission in front of the deploy workers."""

    def __init__(self, sim, classes, segment=None):
        self.sim = sim
        self.obs = telemetry_of(sim)
        self.segment = segment
        self._queues: dict[str, _ClassQueue] = {}
        for cls in classes:
            self._queues[cls.name] = _ClassQueue(
                cls=cls,
                bucket=_TokenBucket(
                    sim, cls.rate_bytes_per_s, cls.burst_bytes
                ),
            )
        #: Dequeue order: strict priority, FIFO within a class.
        self._order = sorted(
            self._queues.values(), key=lambda q: q.cls.priority
        )
        self.admitted = 0
        #: reason -> count; the "never silent" ledger.
        self.shed: dict[str, int] = {}
        self._pending_by_tenant: dict[str, int] = {}

    # -- intake --------------------------------------------------------------

    def pending(self, class_name: Optional[str] = None) -> int:
        if class_name is not None:
            return len(self._queues[class_name].tickets)
        return sum(len(q.tickets) for q in self._queues.values())

    def has_space(self, class_name: str) -> bool:
        queue = self._queues[class_name]
        return len(queue.tickets) < queue.cls.queue_depth

    def space_event(self, class_name: str):
        """Event that fires the next time ``class_name`` frees a slot."""
        queue = self._queues[class_name]
        if queue.space is None:
            queue.space = self.sim.event()
        return queue.space

    def offer(
        self, ticket: DeployTicket, throttle_hint_us: float = 0.0
    ) -> Optional[str]:
        """Admit ``ticket`` or return the shed reason (already counted).

        ``throttle_hint_us`` is the tenant-bucket deficit the caller
        peeked from the QoS layer; it joins the class bucket's own
        deficit under the class's ``max_throttle_us`` ceiling.
        """
        queue = self._queues[ticket.class_name]
        cls = queue.cls
        pending = self._pending_by_tenant.get(ticket.tenant, 0)
        if pending >= cls.max_pending_per_tenant:
            return self._shed(ticket, SHED_TENANT_QUOTA)
        if len(queue.tickets) >= cls.queue_depth:
            return self._shed(ticket, SHED_QUEUE_FULL)
        class_delay = queue.bucket.delay_for(ticket.size_bytes)
        if max(class_delay, throttle_hint_us) > cls.max_throttle_us:
            return self._shed(ticket, SHED_RATE_LIMITED)
        # Point of no return: reserve the class bytes atomically (the
        # deficit becomes this ticket's pacing delay) and enqueue.
        ticket.pace_us = queue.bucket.reserve(ticket.size_bytes)
        ticket.accepted = True
        ticket.done = self.sim.event()
        queue.tickets.append(ticket)
        self._pending_by_tenant[ticket.tenant] = pending + 1
        self.admitted += 1
        self.obs.counter(
            "rdx.serve.admitted", tenant_class=ticket.class_name
        ).inc()
        if self.segment is not None:
            self.segment.inc("admit.accept")
        return None

    def shed_explicit(self, ticket: DeployTicket, reason: str) -> str:
        """Shed ``ticket`` for a service-level reason (e.g. stopped)."""
        return self._shed(ticket, reason)

    def _shed(self, ticket: DeployTicket, reason: str) -> str:
        ticket.accepted = False
        ticket.shed_reason = reason
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self.obs.counter(
            "rdx.serve.shed", reason=reason, tenant_class=ticket.class_name
        ).inc()
        if self.segment is not None:
            self.segment.inc("shed." + reason.replace("-", "_"))
        return reason

    # -- dequeue ---------------------------------------------------------------

    def next_ready(self) -> Optional[DeployTicket]:
        """Pop the highest-priority queued ticket (FIFO within class)."""
        for queue in self._order:
            if queue.tickets:
                # Note the tenant's pending slot stays held until
                # release() -- the per-tenant cap covers queued *and*
                # running deploys.
                ticket = queue.tickets.pop(0)
                if queue.space is not None:
                    queue.space.succeed()
                    queue.space = None
                return ticket
        return None

    def release(self, ticket: DeployTicket) -> None:
        """Return the tenant's pending slot once its deploy finishes."""
        remaining = self._pending_by_tenant.get(ticket.tenant, 0) - 1
        if remaining > 0:
            self._pending_by_tenant[ticket.tenant] = remaining
        else:
            self._pending_by_tenant.pop(ticket.tenant, None)

    def drain_queued(self, reason: str = SHED_STOPPED) -> int:
        """Shed every queued ticket (service stop); returns the count.

        Each shed ticket's ``done`` event is succeeded so waiters are
        not stranded -- the rejection is visible on the ticket.
        """
        count = 0
        for queue in self._order:
            while queue.tickets:
                ticket = queue.tickets.pop(0)
                self.release(ticket)
                self._shed(ticket, reason)
                if ticket.done is not None:
                    ticket.done.succeed(ticket)
                count += 1
            if queue.space is not None:
                queue.space.succeed()
                queue.space = None
        return count
