"""Multi-tenant deploy service (paper §7 as a serving system).

A service tier in front of the control plane: priority-classed
tenants, bounded admission with counted load-shedding, a warm
linked-image pool that serves popular extensions pre-linked, and an
agentless telemetry segment for the whole thing.
"""

from repro.serve.admission import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    SHED_REASONS,
    SHED_STOPPED,
    SHED_TENANT_QUOTA,
    SHED_UNKNOWN_TENANT,
    AdmissionController,
    DeployTicket,
)
from repro.serve.segment import (
    SERVE_COUNTER_SLOTS,
    SERVE_GAUGE_SLOTS,
    SERVE_HIST_SLOTS,
    SERVE_LAYOUT,
    ServeSegment,
    scrape_serve,
)
from repro.serve.service import DeployService
from repro.serve.tenants import PriorityClass, TenantDirectory, default_classes
from repro.serve.warmpool import WarmImage, WarmLinkedImagePool

__all__ = [
    "AdmissionController",
    "DeployService",
    "DeployTicket",
    "PriorityClass",
    "SERVE_COUNTER_SLOTS",
    "SERVE_GAUGE_SLOTS",
    "SERVE_HIST_SLOTS",
    "SERVE_LAYOUT",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMITED",
    "SHED_REASONS",
    "SHED_STOPPED",
    "SHED_TENANT_QUOTA",
    "SHED_UNKNOWN_TENANT",
    "ServeSegment",
    "TenantDirectory",
    "WarmImage",
    "WarmLinkedImagePool",
    "default_classes",
    "scrape_serve",
]
