"""The multi-tenant deploy service: an async front end for injection.

Gluing the serving stack together (paper §7's control plane *as a
service*): tenants submit deploys to a :class:`DeployService`; the
admission controller queues or sheds them; a fixed pool of worker
processes drains the queues in strict priority order and executes
each deploy through the :class:`~repro.core.qos.QosScheduler` (tenant
rate + wire priority) and the control plane -- where the warm
linked-image pool intercepts popular extensions before validate+JIT+
link ever run.

Two intake modes:

* :meth:`submit` -- open loop.  Synchronous verdict: the ticket is
  either queued (``accepted``) or shed with a counted reason.
* :meth:`submit_wait` -- closed loop / backpressure.  A producer that
  would have been shed ``queue-full`` parks on the class's space
  event instead; all other shed reasons still reject.

Deploys to one *target* serialize on a per-target priority mutex: the
hook-flip CAS is a compare-and-swap against the previous image, so
two concurrent deploys to one sandbox would abort each other; across
targets the workers run fully parallel.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import params
from repro.core.control_plane import RdxControlPlane
from repro.core.qos import QosScheduler
from repro.errors import ReproError
from repro.obs import telemetry_of, tenant_label
from repro.serve.admission import (
    SHED_STOPPED,
    SHED_UNKNOWN_TENANT,
    AdmissionController,
    DeployTicket,
)
from repro.serve.segment import ServeSegment
from repro.serve.tenants import TenantDirectory, default_classes
from repro.serve.warmpool import WarmLinkedImagePool
from repro.sim.resources import Resource


class DeployService:
    """Admission + queues + workers + warm pool over one control plane."""

    def __init__(
        self,
        control_plane: RdxControlPlane,
        classes=None,
        workers: Optional[int] = None,
        warm_pool: Optional[WarmLinkedImagePool] = None,
        with_segment: bool = True,
    ):
        self.control = control_plane
        self.sim = control_plane.sim
        self.obs = telemetry_of(self.sim)
        self.workers = workers if workers is not None else params.RDX_SERVE_WORKERS
        #: Serve-plane telemetry segment (one-sided scrape surface).
        self.segment = (
            ServeSegment(control_plane.host)
            if with_segment and params.RDX_OBS
            else None
        )
        classes = tuple(classes) if classes is not None else default_classes()
        #: The QoS layer underneath: per-tenant buckets + priority wire.
        #: Wire width matches the worker pool so the wire orders
        #: contention by priority without halving concurrency.
        self.qos = QosScheduler(control_plane, wire_slots=self.workers)
        self.directory = TenantDirectory(self.qos, classes)
        self.admission = AdmissionController(
            self.sim, classes, segment=self.segment
        )
        self.warm_pool = warm_pool or WarmLinkedImagePool(
            control_plane, segment=self.segment
        )
        if self.warm_pool.segment is None:
            self.warm_pool.segment = self.segment
        self.warm_pool.attach()
        #: Deploys to one target serialize (hook CAS safety); the lock
        #: is priority-aware so a hotpatch overtakes queued bulk work
        #: even at the per-target gate.
        self._target_locks: dict[str, Resource] = {}
        self.running = False
        self.offered = 0
        self.completed = 0
        self.failed = 0
        self.inflight = 0
        self._wake = self.sim.event()
        self._worker_procs: list = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self.running:
            raise ReproError("deploy service already running")
        self.running = True
        for index in range(self.workers):
            self._worker_procs.append(
                self.sim.spawn(self._worker_loop(), name=f"serve.w{index}")
            )

    def stop(self) -> int:
        """Stop intake and shed everything still queued (counted).

        Running deploys finish; returns the number of queued tickets
        shed as ``stopped``.
        """
        self.running = False
        count = self.admission.drain_queued(SHED_STOPPED)
        self._broadcast_wake()
        self._note_depth()
        return count

    def drain(self) -> Generator:
        """Process body: wait until queues are empty and workers idle."""
        while self.admission.pending() or self.inflight:
            yield self.sim.timeout(50.0)

    # -- tenants ---------------------------------------------------------------

    def register(self, tenant: str, class_name: str, **quota_overrides):
        """Enroll ``tenant`` into ``class_name`` (see TenantDirectory)."""
        return self.directory.register(tenant, class_name, **quota_overrides)

    # -- intake ------------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        codeflow,
        program,
        hook_name: str,
        kind: str = "",
    ) -> DeployTicket:
        """Open-loop submission: queued or shed, decided synchronously.

        Always returns the ticket; ``ticket.accepted`` says which way
        it went, ``ticket.shed_reason`` is the counted rejection
        reason, and ``ticket.done`` (when accepted) succeeds with the
        ticket at install-visible or failure.
        """
        self.offered += 1
        cls = self.directory.class_of(tenant)
        ticket = DeployTicket(
            tenant=tenant,
            class_name=cls.name if cls is not None else "_unknown",
            program=program,
            hook_name=hook_name,
            codeflow=codeflow,
            size_bytes=program.size_bytes(),
            submitted_us=self.sim.now,
            kind=kind,
        )
        if not self.running:
            self.admission.shed_explicit(ticket, SHED_STOPPED)
            return ticket
        if cls is None:
            self.admission.shed_explicit(ticket, SHED_UNKNOWN_TENANT)
            return ticket
        hint = self.qos.throttle_hint(tenant, ticket.size_bytes)
        if self.admission.offer(ticket, throttle_hint_us=hint) is None:
            self._note_depth()
            self._broadcast_wake()
        return ticket

    def submit_wait(
        self, tenant: str, codeflow, program, hook_name: str, kind: str = ""
    ) -> Generator:
        """Process body: backpressure submission.

        Blocks (yields) while the tenant's class queue is full instead
        of shedding; every other rejection reason still returns a shed
        ticket immediately.  Returns the ticket.
        """
        cls = self.directory.class_of(tenant)
        while (
            self.running
            and cls is not None
            and not self.admission.has_space(cls.name)
        ):
            yield self.admission.space_event(cls.name)
        ticket = self.submit(tenant, codeflow, program, hook_name, kind=kind)
        return ticket

    # -- execution ----------------------------------------------------------------

    def _worker_loop(self) -> Generator:
        while True:
            ticket = self.admission.next_ready()
            if ticket is None:
                if not self.running:
                    return
                yield self._wake
                continue
            self._note_depth()
            yield from self._execute(ticket)

    def _execute(self, ticket: DeployTicket) -> Generator:
        cls = self.directory.classes[ticket.class_name]
        ticket.started_us = self.sim.now
        # Claim the ticket as inflight *before* the first yield: a
        # popped ticket must be counted somewhere at every instant, or
        # the accounting identity (and drain()) has a window where it
        # is neither queued nor inflight.
        self.inflight += 1
        self._note_depth()
        self.obs.histogram(
            "rdx.serve.queue_wait_us", tenant_class=ticket.class_name
        ).observe(ticket.queue_wait_us)
        if ticket.pace_us > 0:
            # The class bucket's reservation deficit: pacing the drain
            # to the class rate without holding the queue slot.
            yield self.sim.timeout(ticket.pace_us)
        lock = self._target_lock(ticket.codeflow.sandbox.name)
        grant = lock.request(priority=cls.priority)
        yield grant
        codeflow = ticket.codeflow
        codeflow.tenant = tenant_label(ticket.tenant, ticket.class_name)
        try:
            report = yield from self.qos.inject(
                ticket.tenant, codeflow, ticket.program, ticket.hook_name,
                retain_history=False,
            )
            ticket.report = report
            self.completed += 1
            self.obs.counter(
                "rdx.serve.completed", tenant_class=ticket.class_name
            ).inc()
            if self.segment is not None:
                self.segment.inc("deploys.completed")
        except ReproError as err:
            # Persistent failure (crashed target, fence, policy): the
            # retry layer already absorbed transient faults.  Counted,
            # recorded on the ticket -- never silent.
            ticket.error = err
            self.failed += 1
            self.obs.counter(
                "rdx.serve.failed", tenant_class=ticket.class_name
            ).inc()
            if self.segment is not None:
                self.segment.inc("deploys.failed")
        finally:
            lock.release(grant)
            self.inflight -= 1
            self.admission.release(ticket)
            self._note_depth()
        ticket.finished_us = self.sim.now
        self.obs.histogram(
            "rdx.serve.deploy_us", tenant_class=ticket.class_name
        ).observe(ticket.latency_us)
        if self.segment is not None:
            self.segment.observe("deploy_us", ticket.latency_us)
        ticket.done.succeed(ticket)

    # -- helpers ---------------------------------------------------------------

    def _target_lock(self, target: str) -> Resource:
        lock = self._target_locks.get(target)
        if lock is None:
            lock = Resource(self.sim, capacity=1)
            self._target_locks[target] = lock
        return lock

    def _broadcast_wake(self) -> None:
        wake, self._wake = self._wake, self.sim.event()
        wake.succeed()

    def _note_depth(self) -> None:
        if self.segment is not None:
            self.segment.set_gauge("queued", float(self.admission.pending()))
            self.segment.set_gauge("inflight", float(self.inflight))

    # -- reporting ----------------------------------------------------------------

    def accounting(self) -> dict:
        """The no-silent-drops ledger: every offer ends somewhere."""
        shed = dict(self.admission.shed)
        return {
            "offered": self.offered,
            "completed": self.completed,
            "failed": self.failed,
            "shed": shed,
            "queued": self.admission.pending(),
            "inflight": self.inflight,
            "unaccounted": (
                self.offered
                - self.completed
                - self.failed
                - sum(shed.values())
                - self.admission.pending()
                - self.inflight
            ),
        }
