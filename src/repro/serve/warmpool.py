"""The warm linked-image pool (KubeCodeRun-style warm path).

The PR-4 linked-image cache removes per-relocation rewriting from a
repeat deploy, but its key needs the *compiled* binary (content CRC),
so a cache hit still walks prepare: policy checks, registry probe,
span bookkeeping.  The warm pool extends that cache one level up: it
keys pre-linked popular extensions by ``(program tag, arch,
GOT-layout fingerprint)`` -- all derivable from the deploy request
itself -- so a warm hit resolves to ready-to-ship bytes before
validate, JIT, or link ever run, and the deploy rides the pipelined
WR chain directly.

Staleness has the same contract as the link cache: the fingerprint
covers *resolved addresses*, and the pool recomputes it against the
target's live layout on every lookup.  Address churn (warm reboot,
scratchpad reuse) changes the fingerprint, so a stale entry can never
be served -- it just misses (reason ``layout-changed``), exactly like
``test_address_reuse_after_warm_reboot_misses`` pins for the cache.

Every hit, miss (by reason), and eviction is counted in the metrics
registry and mirrored into the serve telemetry segment so an external
monitor can scrape them with one-sided READs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro import params
from repro.ebpf.jit import JitBinary, RelocKind
from repro.obs import telemetry_of
from repro.obs.spans import Span


@dataclass
class WarmImage:
    """One pre-linked extension resident in the pool."""

    tag: str
    arch: str
    fingerprint: int
    #: The ready-to-deploy linked image.
    linked: JitBinary
    #: Full link-cache key ``(content CRC, arch, fingerprint)`` --
    #: stamped onto the codeflow on a hit so downstream consumers
    #: (stub-rendezvous skip, delta certification) behave exactly as
    #: they would after a link-cache hit.
    link_key: tuple
    #: ``(RelocKind, symbol)`` pairs re-resolved at lookup time; the
    #: recomputed fingerprint must match :attr:`fingerprint` for the
    #: entry to be served.
    relocs: tuple[tuple[RelocKind, str], ...] = ()
    hits: int = 0


class WarmLinkedImagePool:
    """LRU pool of pre-linked popular extensions on a control plane.

    Install with :meth:`attach` (or via
    :class:`repro.serve.DeployService`, which does it for you); the
    control plane's ``inject`` then probes the pool before running the
    cold pipeline and feeds completed cold deploys back through
    :meth:`note_deploy` for popularity-based admission.
    """

    def __init__(
        self,
        control_plane,
        cap: Optional[int] = None,
        admit_after: Optional[int] = None,
        segment=None,
    ):
        self.control_plane = control_plane
        self.sim = control_plane.sim
        self.obs = telemetry_of(self.sim)
        self.cap = cap if cap is not None else params.RDX_WARM_POOL_CAP
        self.admit_after = (
            admit_after
            if admit_after is not None
            else params.RDX_WARM_POOL_ADMIT_DEPLOYS
        )
        #: Optional serve telemetry segment mirror (one-sided scrape).
        self.segment = segment
        #: (tag, arch, fingerprint) -> WarmImage; dict order is the
        #: LRU recency list, same idiom as the registry + link cache.
        self.entries: dict[tuple, WarmImage] = {}
        #: (tag, arch) -> fingerprints resident for that program, so a
        #: lookup probes one index entry instead of scanning the pool.
        self._by_prog: dict[tuple[str, str], set[int]] = {}
        #: (tag, arch, fingerprint) -> cold deploys observed; admission
        #: threshold counter.
        self._popularity: dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: reason -> count; every miss is attributed.
        self.miss_reasons: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def attach(self) -> "WarmLinkedImagePool":
        """Install this pool on its control plane; returns self."""
        self.control_plane.warm_pool = self
        return self

    # -- the warm path -----------------------------------------------------

    def lookup(
        self, codeflow, program, parent_span: Optional[Span] = None
    ) -> Generator:
        """Process body: probe the pool for ``program`` on ``codeflow``.

        Returns the pre-linked :class:`JitBinary` on a hit (with the
        codeflow's link-cache state stamped, so the deploy body skips
        the stub rendezvous and delta eligibility still certifies), or
        ``None`` on a miss.  Charges one control-plane probe
        (:data:`~repro.params.RDX_WARM_POOL_LOOKUP_US`): an index
        lookup plus re-fingerprinting the entry's relocations against
        the target's current layout.
        """
        yield from self.control_plane.host.cpu.run(
            params.RDX_WARM_POOL_LOOKUP_US
        )
        tag = program.tag()
        arch = codeflow.manifest.arch
        fingerprints = self._by_prog.get((tag, arch))
        if not fingerprints:
            return self._miss("absent")
        # Every entry of one (tag, arch) shares the same relocation
        # symbols (same program, same JIT), so one candidate's relocs
        # resolve the target's current fingerprint for all of them.
        candidate = self.entries[(tag, arch, next(iter(fingerprints)))]
        fingerprint = codeflow.layout_fingerprint(candidate.relocs)
        if fingerprint is None:
            return self._miss("unresolved")
        if fingerprint not in fingerprints:
            # Layout churn (e.g. warm reboot reused addresses): the
            # resident image would be byte-wrong here.  Same semantics
            # as a link-cache miss after reboot.
            return self._miss("layout-changed")
        key = (tag, arch, fingerprint)
        entry = self.entries[key]
        self.entries[key] = self.entries.pop(key)  # LRU touch
        entry.hits += 1
        self.hits += 1
        self.obs.counter("rdx.serve.warm.hit").inc()
        if self.segment is not None:
            self.segment.inc("warm.hit")
        if parent_span is not None:
            parent_span.attrs["warm"] = "hit"
        # Stamp the link-cache state a fresh link would have produced:
        # the fast deploy body skips the stub rendezvous, and a delta
        # redeploy can certify the layout from _last_link_key.
        codeflow._last_link_cached = True
        codeflow._last_link_key = entry.link_key
        return entry.linked

    def _miss(self, reason: str) -> None:
        self.misses += 1
        self.miss_reasons[reason] = self.miss_reasons.get(reason, 0) + 1
        self.obs.counter("rdx.serve.warm.miss", reason=reason).inc()
        if self.segment is not None:
            self.segment.inc("warm.miss")
        return None

    # -- admission ----------------------------------------------------------

    def note_deploy(self, program, codeflow, binary: JitBinary) -> None:
        """Feed one completed *cold* deploy into popularity accounting.

        Called by the control plane after the full pipeline ran.  Once
        a ``(tag, arch, layout)`` has been cold-deployed
        ``admit_after`` times, its freshly linked image (already in
        the link cache) is promoted into the pool.
        """
        key = codeflow._last_link_key
        if key is None:
            return
        _content, arch, fingerprint = key
        pool_key = (program.tag(), arch, fingerprint)
        count = self._popularity.get(pool_key, 0) + 1
        self._popularity[pool_key] = count
        if count < self.admit_after or pool_key in self.entries:
            return
        linked = self.control_plane.linked_images.get(key)
        if linked is None:
            return
        self._admit(pool_key, key, binary, linked)

    def prewarm(self, codeflow, program, maps=(), principal=None) -> Generator:
        """Process body: pre-link ``program`` for ``codeflow``'s layout.

        The off-critical-path admission: runs prepare + link (cached,
        single-flight) without deploying, then force-admits the result
        regardless of popularity.  A fleet's dominant layouts can be
        warmed at service start so even a program's *first* deploy to
        a target is a warm hit.
        """
        entry = yield from self.control_plane.prepare_for(
            codeflow, program, maps=maps, principal=principal
        )
        linked = yield from codeflow.link_code(entry.binary)
        key = codeflow._last_link_key
        if key is None:
            return False
        _content, arch, fingerprint = key
        self._admit(
            (program.tag(), arch, fingerprint), key, entry.binary, linked
        )
        return True

    def _admit(
        self, pool_key: tuple, link_key: tuple, binary: JitBinary,
        linked: JitBinary,
    ) -> None:
        tag, arch, fingerprint = pool_key
        self.entries[pool_key] = WarmImage(
            tag=tag,
            arch=arch,
            fingerprint=fingerprint,
            linked=linked,
            link_key=link_key,
            relocs=tuple(
                (reloc.kind, reloc.symbol) for reloc in binary.relocations
            ),
        )
        self._by_prog.setdefault((tag, arch), set()).add(fingerprint)
        self.obs.counter("rdx.serve.warm.admit").inc()
        while len(self.entries) > self.cap:
            victim_key = next(iter(self.entries))
            self._evict(victim_key)

    def _evict(self, pool_key: tuple) -> None:
        self.entries.pop(pool_key)
        tag, arch, fingerprint = pool_key
        survivors = self._by_prog.get((tag, arch))
        if survivors is not None:
            survivors.discard(fingerprint)
            if not survivors:
                del self._by_prog[(tag, arch)]
        self.evictions += 1
        self.obs.counter("rdx.serve.warm.evict").inc()
        if self.segment is not None:
            self.segment.inc("warm.evict")

    def invalidate(self, tag: Optional[str] = None) -> int:
        """Drop entries (all, or one program's); returns the count.

        Operational hook for explicit invalidation (a recalled
        extension version); counted as evictions so the scrape-side
        totals stay truthful.
        """
        victims = [
            key for key in self.entries if tag is None or key[0] == tag
        ]
        for key in victims:
            self._evict(key)
        return len(victims)
