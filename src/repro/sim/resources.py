"""Contended resources: generic capacity resources, CPU cores, queues.

The :class:`CPU` model is central to reproducing the paper's §2.2
Observation 3 (control/data-path contention): agent work (validation,
JIT) and application request handling both execute on the same cores,
so heavy request load slows injection and vice versa.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Generator, Optional

from repro import params
from repro.sim.core import Event, SimulationError, Simulator, Timeout


class Resource:
    """A capacity-limited resource with FIFO (optionally priority) grants.

    The wait queue is a binary heap keyed ``(priority, seq)`` -- seq is
    a per-resource monotone counter, so equal priorities stay FIFO --
    making every enqueue/dequeue O(log n).  The previous stable-insert
    deque rebuilt itself in O(n) whenever a higher-priority requester
    arrived behind a long queue, which at rack scale (hundreds of WR
    chains parked on one RNIC pipeline) turned the scheduler itself
    into the bottleneck.

    Usage from a process::

        grant = resource.request()
        yield grant
        try:
            yield sim.timeout(work)
        finally:
            resource.release(grant)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Event] = set()
        self._waiting: list[tuple[int, int, Event]] = []
        self._seq = 0
        #: Slots claimed via the eventless fast path (see
        #: :meth:`CPU.run`): capacity accounting without a grant
        #: object per claim.
        self._fast_claims = 0

    @property
    def in_use(self) -> int:
        return len(self._users) + self._fast_claims

    @property
    def queue_len(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> Event:
        """Request a slot; the returned event fires when granted.

        Lower ``priority`` values are served first; ties are FIFO.
        """
        grant = Event(self.sim)
        if len(self._users) + self._fast_claims < self.capacity and not self._waiting:
            self._users.add(grant)
            grant.succeed(self)
        else:
            self._seq += 1
            heappush(self._waiting, (priority, self._seq, grant))
        return grant

    def release(self, grant: Event) -> None:
        """Return a previously granted slot."""
        if grant not in self._users:
            raise SimulationError("release() of a slot that is not held")
        self._users.discard(grant)
        self._settle()

    def _release_fast(self) -> None:
        """Return a slot claimed without a grant event."""
        self._fast_claims -= 1
        self._settle()

    def _settle(self) -> None:
        while self._waiting and len(self._users) + self._fast_claims < self.capacity:
            _priority, _seq, waiter = heappop(self._waiting)
            self._users.add(waiter)
            waiter.succeed(self)

    def using(self, work_us: float, priority: int = 0) -> Generator:
        """Convenience process body: acquire, hold for ``work_us``, release."""
        grant = self.request(priority)
        yield grant
        try:
            yield self.sim.timeout(work_us)
        finally:
            self.release(grant)


class Mutex(Resource):
    """A single-slot resource (capacity 1)."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=1)


class CPU:
    """A pool of identical cores with utilization accounting.

    Tasks are submitted as (cost, priority) pairs and occupy one core
    for their full cost (run-to-completion, FIFO within priority).
    Busy time is tracked so experiments can report utilization.
    """

    def __init__(self, sim: Simulator, cores: int = 24, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self.cores = cores
        self._resource = Resource(sim, capacity=cores)
        self.busy_us = 0.0
        self.tasks_run = 0

    @property
    def queue_len(self) -> int:
        return self._resource.queue_len

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    def utilization(self, since_us: float = 0.0) -> float:
        """Mean utilization over [since_us, now] across all cores."""
        elapsed = self.sim.now - since_us
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_us / (elapsed * self.cores))

    def run(
        self, cost_us: float, priority: int = 0, quantum_us: Optional[float] = None
    ) -> Generator:
        """Process body that executes ``cost_us`` of work on one core.

        Without ``quantum_us`` the task runs to completion once
        scheduled.  With it, the work is time-sliced: the task yields
        the core after each quantum and re-queues, modeling a
        preemptible fair scheduler -- large control-path jobs (e.g.
        verifier runs) then genuinely contend with short data-path
        work instead of monopolizing a core.
        """
        if cost_us < 0:
            raise ValueError(f"negative CPU cost: {cost_us}")
        remaining = cost_us
        resource = self._resource
        sim = self.sim
        fast = params.RDX_SIM_FAST
        users = resource._users
        waiting = resource._waiting
        capacity = resource.capacity
        while True:
            slice_us = remaining if quantum_us is None else min(quantum_us, remaining)
            if fast and not waiting and len(users) + resource._fast_claims < capacity:
                # Uncontended fast path: a free core is claimed
                # synchronously (a counter bump, no grant event)
                # instead of bouncing a grant through the calendar.
                # Capacity accounting is identical -- the claim holds
                # the slot for the whole slice and later requesters
                # queue behind it -- and no timestamp moves, so only
                # same-time tie order can differ from the ablation
                # arm.  At rack scale the grant hop is the single
                # most-dispatched event class; eliding it nearly
                # halves kernel work per slice.
                resource._fast_claims += 1
                grant = None
            else:
                grant = resource.request(priority)
                yield grant
            try:
                if fast:
                    # Bare-number yield: the process's reusable tick
                    # carries the slice, skipping the per-slice
                    # Timeout allocation (see sim.core._Tick).
                    yield slice_us
                else:
                    yield Timeout(sim, slice_us)
                self.busy_us += slice_us
            finally:
                if grant is None:
                    resource._release_fast()
                else:
                    resource.release(grant)
            remaining -= slice_us
            if remaining <= 1e-9:
                break
        self.tasks_run += 1

    def spawn_task(self, cost_us: float, priority: int = 0, name: str = ""):
        """Spawn ``run`` as an independent process; returns the Process."""
        return self.sim.spawn(self.run(cost_us, priority), name=name or self.name)


class Container:
    """A continuous-level container (e.g. bytes of buffer space)."""

    def __init__(self, sim: Simulator, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self._getters: deque[tuple[float, Event]] = deque()
        self._putters: deque[tuple[float, Event]] = deque()

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("negative put amount")
        event = Event(self.sim)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("negative get amount")
        event = Event(self.sim)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        moved = True
        while moved:
            moved = False
            if self._putters:
                amount, event = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed(amount)
                    moved = True
            if self._getters:
                amount, event = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    moved = True


class Store:
    """An unbounded-or-bounded FIFO store of items."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        moved = True
        while moved:
            moved = False
            if self._putters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                item, event = self._putters.popleft()
                self.items.append(item)
                event.succeed(item)
                moved = True
            if self._getters and self.items:
                getter = self._getters.popleft()
                getter.succeed(self.items.popleft())
                moved = True
