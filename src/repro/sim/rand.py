"""Seed derivation: one audited way to mint decorrelated RNG streams.

Every stochastic component in the simulator must draw from a
``random.Random`` instance whose seed is a pure function of (a) the
experiment's top-level seed and (b) a stable salt naming the
component.  Two rules fall out of that:

* **no module-level randomness** -- ``random.random()`` et al. read
  the interpreter-global Mersenne state, which any import or test
  ordering perturbs; a schedule fuzzer cannot replay that.
* **no shared integer seeds** -- ``random.Random(0)`` in two
  components produces the *same* stream twice, silently correlating
  e.g. cache evictions with workload arrivals.  Salting decorrelates
  streams that share one experiment seed.

:func:`derive_rng` gives both properties: byte-stable across runs,
processes, and Python versions (BLAKE2 of the seed/salt parts, not
``hash()``, which is randomized per process).
"""

from __future__ import annotations

import hashlib
import random

#: Seeds derived here are 64-bit: plenty of stream separation, small
#: enough to serialize cleanly everywhere (JSON, trace payloads).
_SEED_BITS = 64


def stable_seed(*parts: object) -> int:
    """A 64-bit seed that is a pure function of ``parts``.

    Parts are joined by their ``str()`` -- use primitives (ints,
    strings) so the rendering is unambiguous.  Unlike ``hash()``,
    the result is identical across processes and platforms.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.blake2b(
        text.encode("utf-8"), digest_size=_SEED_BITS // 8
    ).digest()
    return int.from_bytes(digest, "little")


def derive_rng(*parts: object) -> random.Random:
    """A seeded ``random.Random`` stream named by ``parts``.

    Convention: ``derive_rng(seed, "component.name", *extra)`` -- the
    experiment seed first, then a dotted salt naming the consumer, then
    any instance discriminators (host name, round index).
    """
    return random.Random(stable_seed(*parts))
