"""Event calendar, events, and the generator-based process model.

The kernel is deliberately small and deterministic: two runs of the same
simulation with the same seeds produce identical event orderings.  Ties
in timestamp are broken by insertion order (a monotonically increasing
sequence number), never by object identity.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro import params

#: One microsecond -- the base unit of simulated time.
US = 1.0
#: One millisecond in microseconds.
MS = 1_000.0
#: One second in microseconds.
S = 1_000_000.0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running a dead sim)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied,
    typically a short human-readable reason string.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when given a value
    (or an exception), and runs its callbacks when the simulator pops it
    from the calendar.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (value is safe to read)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value read from untriggered event")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every waiting process when the
        event is processed.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._enqueue(self)
        return self

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class _Poke(Event):
    """A pre-triggered single-callback event, minimally constructed.

    The kernel enqueues thousands of these (process bootstraps,
    interrupts, resumes on already-processed events); they are never
    yielded, waited on, or observed from user code, so the full
    :class:`Event` construction protocol (pending state, ``succeed``
    double-trigger checks) is pure overhead.  Dispatch only touches
    ``callbacks`` / ``_processed`` / ``_value`` / ``_exception``, which
    is all this initializer fills in.
    """

    __slots__ = ()

    def __init__(
        self,
        sim: "Simulator",
        callback: Callable[["Event"], None],
        value: Any = None,
        exception: Optional[BaseException] = None,
    ):
        self.sim = sim
        self.callbacks = [callback]
        self._value = value
        self._exception = exception
        self._triggered = True
        self._processed = False
        seq = sim._seq = sim._seq + 1
        heappush(sim._queue, (sim._now, seq, self))


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Flattened Event.__init__ + enqueue: timeouts are the single
        # most-allocated object in the simulator, so they skip the
        # two-level constructor and the _enqueue call.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self._triggered = True
        self._processed = False
        self.delay = delay
        seq = sim._seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, seq, self))


class _Tick(Event):
    """A process's reusable timeout carrier for bare-number yields.

    A process waits on at most one thing at a time, so one tick object
    per process can carry *every* ``yield <float>`` it ever makes: each
    use re-arms ``_processed``/``callbacks`` and pushes the same object
    back on the calendar.  This removes the per-slice :class:`Timeout`
    allocation from the hottest kernel loop (CPU quantum slicing at
    rack scale allocates one otherwise-identical timeout per slice).
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._exception = None
        self._triggered = True
        self._processed = False


class Process(Event):
    """A running generator; completes (as an event) when it returns.

    The wrapped generator yields :class:`Event` instances.  When a
    yielded event fires, the generator is resumed with the event's value
    (or the event's exception is thrown into it).  A bare ``int`` or
    ``float`` yield is a timeout of that many microseconds, serviced by
    the process's reusable :class:`_Tick` with no allocation.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_resume_cb", "_tick")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        #: One bound method for the process's whole life -- every
        #: ``callbacks.append(self._resume)`` would otherwise allocate
        #: a fresh bound-method object per yield.
        self._resume_cb = self._resume
        #: Lazily-built reusable timeout carrier for bare-number yields.
        self._tick: Optional[_Tick] = None
        # Bootstrap: resume once at spawn time (time "now").
        _Poke(sim, self._resume_cb)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a completed process is a no-op.
        """
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
            if target is self._tick:
                # The tick stays queued (inert: no callbacks) -- retire
                # it so a later bare-number yield can't re-arm an
                # object with a stale, earlier calendar entry.
                self._tick = None
            self._waiting_on = None
        _Poke(self.sim, lambda _ev: self._throw(Interrupt(cause)))

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into waiters
            self.sim._note_failure(self, err)
            self.fail(err)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exception is not None:
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into waiters
            self.sim._note_failure(self, err)
            self.fail(err)
            return
        # Inlined _wait_on fast paths: _resume is the single hottest
        # kernel function.  A bare number is a timeout serviced by the
        # reusable tick (no allocation); nearly every other yield hands
        # back a pending event in this simulator.
        cls = target.__class__
        if cls is float or cls is int:
            self._schedule_tick(target)
            return
        if isinstance(target, Event) and target.sim is self.sim:
            self._waiting_on = target
            if not target._processed:
                target.callbacks.append(self._resume_cb)
            else:
                _Poke(
                    self.sim, self._resume_cb, target._value, target._exception
                )
            return
        self._wait_on(target)

    def _schedule_tick(self, delay: float) -> None:
        """Arm the reusable tick ``delay`` microseconds out."""
        if delay < 0:
            self._throw(SimulationError(f"negative timeout delay: {delay}"))
            return
        tick = self._tick
        if tick is None:
            tick = self._tick = _Tick(self.sim)
        tick._processed = False
        tick.callbacks.append(self._resume_cb)
        self._waiting_on = tick
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, seq, tick))

    def _wait_on(self, target: Any) -> None:
        cls = target.__class__
        if cls is float or cls is int:
            self._schedule_tick(target)
            return
        # Fast path next: a pending event in this simulator is what
        # nearly every yield hands back.
        if isinstance(target, Event) and target.sim is self.sim:
            self._waiting_on = target
            if not target._processed:
                target.callbacks.append(self._resume_cb)
            else:
                # Already fired: resume immediately (same timestamp).
                _Poke(
                    self.sim, self._resume_cb, target._value, target._exception
                )
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._throw(exc)
            return
        self._throw(SimulationError("yielded event belongs to another simulator"))


class _Condition(Event):
    """Base for AllOf/AnyOf composition events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event._processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the value list."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is (event, value)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed((event, event._value))


class Simulator:
    """The event calendar and virtual clock.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> proc = sim.spawn(hello())
    >>> sim.run()
    >>> proc.value
    5.0
    """

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._spawned = 0
        self._processed_events = 0
        #: (process name, exception) for every process that died with
        #: an unhandled exception -- including background processes
        #: nothing was waiting on.  Check this when a simulation's
        #: results look mysteriously incomplete.
        self.failed_processes: list[tuple[str, BaseException]] = []

    def _note_failure(self, process: "Process", err: BaseException) -> None:
        # Interrupts are cooperative cancellation, not failures.
        if not isinstance(err, Interrupt):
            self.failed_processes.append((process.name, err))

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (for diagnostics)."""
        return self._processed_events

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    # -- factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a pending event owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator at the current time."""
        self._spawned += 1
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self._processed_events += 1
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if no event lands on that instant, so back-to-back ``run``
        calls compose predictably.

        With :data:`repro.params.RDX_SIM_FAST` (the default) dispatch
        is inlined -- no per-event ``step()``/``_process()`` calls --
        with identical ordering semantics; ``RDX_SIM_FAST=0`` selects
        the original loop for ablation.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})"
            )
        if not params.RDX_SIM_FAST:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                self.step()
            if until is not None:
                self._now = until
            return
        queue = self._queue
        processed = self._processed_events
        try:
            if until is None:
                while queue:
                    when, _seq, event = heappop(queue)
                    self._now = when
                    processed += 1
                    event._processed = True
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for callback in callbacks:
                            callback(event)
            else:
                while queue:
                    if queue[0][0] > until:
                        self._now = until
                        return
                    when, _seq, event = heappop(queue)
                    self._now = when
                    processed += 1
                    event._processed = True
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for callback in callbacks:
                            callback(event)
                self._now = until
        finally:
            self._processed_events = processed

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn ``generator``, run until *it* completes, return its value.

        Stops as soon as the process finishes -- long-lived background
        processes (pollers, probes, workload loops) keep their pending
        events on the calendar and continue on the next ``run`` call,
        instead of being drained to exhaustion here.
        """
        proc = self.spawn(generator, name=name)
        queue = self._queue
        if not params.RDX_SIM_FAST:
            while not proc._triggered and queue:
                self.step()
        else:
            processed = self._processed_events
            try:
                while not proc._triggered and queue:
                    when, _seq, event = heappop(queue)
                    self._now = when
                    processed += 1
                    event._processed = True
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for callback in callbacks:
                            callback(event)
            finally:
                self._processed_events = processed
        if not proc._triggered:
            raise SimulationError(
                f"process {proc.name!r} never completed (deadlock?)"
            )
        return proc.value
