"""Lightweight structured tracing for experiments and debugging.

Experiments record :class:`TraceEvent` rows (time, category, payload)
into a :class:`TraceRecorder`; the experiment harness then filters and
aggregates them into the figures' series.  The span tracer in
:mod:`repro.obs.spans` is layered on top of the same recorder.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``time_us`` is the simulated timestamp; ``category`` is a short
    dotted label like ``"rdx.deploy"`` or ``"agent.verify"``; ``data``
    holds free-form structured payload.
    """

    time_us: float
    category: str
    data: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only event log with simple query helpers.

    ``max_events`` bounds memory for long-running mesh/stress
    workloads: when set, the oldest events are dropped to make room
    and :attr:`dropped` counts how many were lost.  Unbounded by
    default (experiments that post-process every event stay exact).
    """

    #: Bucket width of the lazily built address-overlap index.  One
    #: RNIC MTU: deploy-sized payloads span a handful of buckets while
    #: 8-byte control words (the hot hb-checker lookups) hit exactly
    #: one.
    ADDR_BUCKET = 4096

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None):
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.enabled = enabled
        self.max_events = max_events
        self.events: deque[TraceEvent] = deque(maxlen=max_events)
        #: Events evicted by the ``max_events`` bound (drop-oldest).
        self.dropped = 0
        #: Optional callback invoked with the drop count each time an
        #: event is evicted -- the obs layer hooks this to surface ring
        #: truncation as a first-class counter.
        self.on_drop: Optional[Callable[[int], None]] = None
        # Address-overlap index, built lazily on the first range query
        # and reused until the log changes (appends, eviction, clear
        # all bump the mutation stamp).  Maps bucket -> positions into
        # the snapshot list taken at build time.
        self._mutations = 0
        self._addr_stamp = -1
        self._addr_snapshot: list[TraceEvent] = []
        self._addr_buckets: dict[int, list[int]] = {}

    def record(self, time_us: float, category: str, **data: Any) -> None:
        """Append one event (no-op when tracing is disabled)."""
        if self.enabled:
            if (
                self.max_events is not None
                and len(self.events) == self.max_events
            ):
                self.dropped += 1  # deque(maxlen) evicts the oldest
                if self.on_drop is not None:
                    self.on_drop(1)
            self._mutations += 1
            self.events.append(TraceEvent(time_us, category, data))

    def clear(self) -> None:
        """Forget recorded events and reset the drop counter.

        The obs layer latches drops separately (via :attr:`on_drop`)
        before they can be cleared: an exporter snapshot taken after
        any drop stays marked ``truncated`` for the life of the
        telemetry hub -- the HB checker's never-report-clean rule.
        """
        self.events.clear()
        self.dropped = 0
        self._mutations += 1

    def __len__(self) -> int:
        return len(self.events)

    def filter(
        self,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
        address_range: Optional[tuple[int, int]] = None,
    ) -> Iterator[TraceEvent]:
        """Yield events matching a category prefix and/or predicate.

        ``address_range`` is a half-open ``(lo, hi)`` byte range: only
        events whose payload carries an ``addr`` (plus optional
        ``length``, default 1) overlapping it are yielded.  Events
        without an ``addr`` never match a range filter.

        Range queries go through a bucketed overlap index instead of a
        full scan: the hb checker and fuzz verdicts issue thousands of
        narrow range lookups against 1024-node traces, where O(log
        size + matches) per query is the difference between seconds
        and hours.  The index is built lazily on the first range query
        after any mutation and amortizes across the read-mostly query
        phase.
        """
        if address_range is None:
            for event in self.events:
                if category is not None and not event.category.startswith(
                    category
                ):
                    continue
                if predicate is not None and not predicate(event):
                    continue
                yield event
            return
        lo, hi = address_range
        if hi <= lo:
            return
        self._ensure_addr_index()
        bucket_width = self.ADDR_BUCKET
        positions: set[int] = set()
        for bucket in range(lo // bucket_width, (hi - 1) // bucket_width + 1):
            positions.update(self._addr_buckets.get(bucket, ()))
        snapshot = self._addr_snapshot
        for position in sorted(positions):
            event = snapshot[position]
            addr = event.data["addr"]
            length = max(int(event.data.get("length", 1)), 1)
            if addr >= hi or addr + length <= lo:
                continue
            if category is not None and not event.category.startswith(category):
                continue
            if predicate is not None and not predicate(event):
                continue
            yield event

    def _ensure_addr_index(self) -> None:
        """(Re)build the bucket -> positions overlap map if stale.

        Only events carrying an ``addr`` enter the index; an event is
        registered in every bucket its ``[addr, addr+length)`` span
        overlaps, so lookups never miss a long write that *starts*
        below the queried range.  Positions index into a snapshot list
        (chronological order), keeping yields time-ordered even though
        bucket membership is unordered.
        """
        if self._addr_stamp == self._mutations:
            return
        snapshot = list(self.events)
        buckets: dict[int, list[int]] = {}
        bucket_width = self.ADDR_BUCKET
        for position, event in enumerate(snapshot):
            addr = event.data.get("addr")
            if addr is None:
                continue
            length = max(int(event.data.get("length", 1)), 1)
            for bucket in range(
                addr // bucket_width, (addr + length - 1) // bucket_width + 1
            ):
                buckets.setdefault(bucket, []).append(position)
        self._addr_snapshot = snapshot
        self._addr_buckets = buckets
        self._addr_stamp = self._mutations

    def since(self, time_us: float) -> list[TraceEvent]:
        """Events with ``event.time_us >= time_us``, oldest first.

        Events are appended in nondecreasing simulated time, so this
        walks backwards from the newest event and stops at the first
        older one -- O(matched) instead of O(all) for the common
        "what happened since my checkpoint" query.
        """
        out: list[TraceEvent] = []
        for event in reversed(self.events):
            if event.time_us < time_us:
                break
            out.append(event)
        out.reverse()
        return out

    def durations(self, start_category: str, end_category: str, key: str) -> list[float]:
        """Pair start/end events by ``data[key]`` and return durations.

        Re-entrant operations are handled by keeping a *stack* of open
        starts per key: an end event pairs with the most recent
        unmatched start of the same key (LIFO, matching nested or
        overlapping same-key ops without discarding the earlier start).
        Starts that never see an end are ignored; an end without a
        start is ignored as well.  Useful for e.g. injection latency:
        pair ``agent.inject.start`` / ``agent.inject.done`` on ``ext_id``.
        """
        starts: dict[Any, list[float]] = {}
        durations: list[float] = []
        for event in self.events:
            if event.category == start_category:
                starts.setdefault(event.data.get(key), []).append(event.time_us)
            elif event.category == end_category:
                open_starts = starts.get(event.data.get(key))
                if open_starts:
                    durations.append(event.time_us - open_starts.pop())
        return durations
