"""Lightweight structured tracing for experiments and debugging.

Experiments record :class:`TraceEvent` rows (time, category, payload)
into a :class:`TraceRecorder`; the experiment harness then filters and
aggregates them into the figures' series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``time_us`` is the simulated timestamp; ``category`` is a short
    dotted label like ``"rdx.deploy"`` or ``"agent.verify"``; ``data``
    holds free-form structured payload.
    """

    time_us: float
    category: str
    data: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, time_us: float, category: str, **data: Any) -> None:
        """Append one event (no-op when tracing is disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(time_us, category, data))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def filter(
        self,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> Iterator[TraceEvent]:
        """Yield events matching a category prefix and/or predicate."""
        for event in self.events:
            if category is not None and not event.category.startswith(category):
                continue
            if predicate is not None and not predicate(event):
                continue
            yield event

    def durations(self, start_category: str, end_category: str, key: str) -> list[float]:
        """Pair start/end events by ``data[key]`` and return durations.

        Unmatched starts (no end seen) are ignored; an end without a
        start is ignored as well.  Useful for e.g. injection latency:
        pair ``agent.inject.start`` / ``agent.inject.done`` on ``ext_id``.
        """
        starts: dict[Any, float] = {}
        durations: list[float] = []
        for event in self.events:
            if event.category == start_category:
                starts[event.data.get(key)] = event.time_us
            elif event.category == end_category:
                begun = starts.pop(event.data.get(key), None)
                if begun is not None:
                    durations.append(event.time_us - begun)
        return durations
