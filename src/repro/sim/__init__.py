"""Discrete-event simulation kernel.

This package provides the simulated clock, process model, and shared
resources on which every other subsystem in :mod:`repro` runs.  The
design follows the classic event-calendar architecture (SimPy-style):

* :class:`~repro.sim.core.Simulator` owns a priority queue of timestamped
  events and advances virtual time from event to event.
* :class:`~repro.sim.core.Process` wraps a Python generator; the
  generator yields :class:`~repro.sim.core.Event` objects (timeouts,
  resource grants, completions) and is resumed when they fire.
* :mod:`~repro.sim.resources` models contended hardware (CPU cores,
  locks, bounded queues) so that control-path and data-path work can
  interfere with each other exactly as in the paper's §2.2.

All simulated time is expressed in **microseconds** (floats).  The
constants :data:`US`, :data:`MS`, and :data:`S` convert between scales.
"""

from repro.sim.core import (
    US,
    MS,
    S,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Container, CPU, Mutex, Resource, Store
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "US",
    "MS",
    "S",
    "AllOf",
    "AnyOf",
    "CPU",
    "Container",
    "Event",
    "Interrupt",
    "Mutex",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceEvent",
    "TraceRecorder",
]
