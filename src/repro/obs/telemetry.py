"""The per-simulation telemetry hub.

One :class:`Telemetry` bundles the three observability surfaces --
metrics registry, span tracer, and the trace recorder the tracer
writes through -- so instrumented components need a single handle.

Components do not construct it directly; they call
:func:`telemetry_of`, which lazily attaches one hub per
:class:`~repro.sim.core.Simulator`.  That gives every experiment and
test an isolated, deterministic telemetry scope for free (a fresh sim
means fresh metrics), with no global mutable state to reset between
runs.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanTracer
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: Attribute name used to cache the hub on the simulator instance.
_SIM_ATTR = "_rdx_telemetry"


class Telemetry:
    """Metrics + spans + trace recorder for one simulation."""

    def __init__(
        self,
        sim: "Simulator",
        recorder: Optional[TraceRecorder] = None,
    ):
        self.sim = sim
        self.registry = MetricsRegistry()
        #: Span events land here; bounded so background workloads
        #: cannot grow it without limit (drop-oldest, counted).
        self.recorder = recorder or TraceRecorder(max_events=100_000)
        self.tracer = SpanTracer(sim, self.recorder, self.registry)

    # -- metric passthroughs ----------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.registry.histogram(name, **labels)

    # -- span passthroughs -------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None, **attrs: Any) -> Span:
        return self.tracer.span(name, parent=parent, **attrs)

    def wrap(self, generator, name: str, parent: Optional[Span] = None, **attrs):
        return self.tracer.wrap(generator, name, parent=parent, **attrs)

    def snapshot(self) -> list[dict]:
        return self.registry.snapshot()


def telemetry_of(sim: "Simulator") -> Telemetry:
    """The simulator's telemetry hub, created on first use."""
    hub = getattr(sim, _SIM_ATTR, None)
    if hub is None:
        hub = Telemetry(sim)
        setattr(sim, _SIM_ATTR, hub)
    return hub
