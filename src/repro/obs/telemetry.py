"""The per-simulation telemetry hub.

One :class:`Telemetry` bundles the three observability surfaces --
metrics registry, span tracer, and the trace recorder the tracer
writes through -- so instrumented components need a single handle.

Components do not construct it directly; they call
:func:`telemetry_of`, which lazily attaches one hub per
:class:`~repro.sim.core.Simulator`.  That gives every experiment and
test an isolated, deterministic telemetry scope for free (a fresh sim
means fresh metrics), with no global mutable state to reset between
runs.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanTracer
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: Attribute name used to cache the hub on the simulator instance.
_SIM_ATTR = "_rdx_telemetry"


class Telemetry:
    """Metrics + spans + trace recorder for one simulation."""

    def __init__(
        self,
        sim: "Simulator",
        recorder: Optional[TraceRecorder] = None,
    ):
        self.sim = sim
        self.registry = MetricsRegistry()
        #: Span events land here; bounded so background workloads
        #: cannot grow it without limit (drop-oldest, counted).
        # Explicit None check: an empty TraceRecorder is falsy (len 0).
        if recorder is None:
            recorder = TraceRecorder(max_events=100_000)
        self.recorder = recorder
        self.tracer = SpanTracer(sim, self.recorder, self.registry)
        #: Crash flight recorder: a bounded ring of recent spans +
        #: metric deltas the control plane journals on crash.
        self.flight = FlightRecorder(sim)
        self.tracer.on_finish.append(self.flight.record_span)
        # Ring-buffer drops become a first-class counter the moment
        # they happen, and latch the hub as truncated forever after
        # (never-report-clean, mirroring the HB checker).
        self._ever_dropped = False
        self.recorder.on_drop = self._note_drop

    def _note_drop(self, count: int) -> None:
        self._ever_dropped = True
        self.registry.counter("rdx.obs.trace_dropped").inc(count)

    @property
    def truncated(self) -> bool:
        """True once any bounded ring has dropped history."""
        return (
            self._ever_dropped
            or self.recorder.dropped > 0
            or self.flight.dropped > 0
        )

    def sync_health_metrics(self) -> None:
        """Refresh the hub's self-describing gauges before an export."""
        self.registry.gauge("rdx.obs.truncated").set(
            1.0 if self.truncated else 0.0
        )
        self.registry.gauge("rdx.obs.spans_open").set(
            len(self.tracer.open_spans)
        )

    # -- metric passthroughs ----------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.registry.histogram(name, **labels)

    # -- span passthroughs -------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None, **attrs: Any) -> Span:
        return self.tracer.span(name, parent=parent, **attrs)

    def wrap(self, generator, name: str, parent: Optional[Span] = None, **attrs):
        return self.tracer.wrap(generator, name, parent=parent, **attrs)

    def snapshot(self) -> list[dict]:
        return self.registry.snapshot()


def export_prometheus(hub: Telemetry) -> str:
    """Prometheus text for the hub, with health gauges refreshed.

    A snapshot taken after any ring drop carries
    ``rdx_obs_truncated 1`` -- there is no way back to a clean export
    on this hub.
    """
    from repro.obs.exporters import to_prometheus

    hub.sync_health_metrics()
    return to_prometheus(hub.registry)


def export_jsonl(hub: Telemetry) -> str:
    """JSON-lines for the hub, with health gauges refreshed."""
    from repro.obs.exporters import to_jsonl

    hub.sync_health_metrics()
    return to_jsonl(hub.registry)


def telemetry_of(sim: "Simulator") -> Telemetry:
    """The simulator's telemetry hub, created on first use."""
    hub = getattr(sim, _SIM_ATTR, None)
    if hub is None:
        hub = Telemetry(sim)
        setattr(sim, _SIM_ATTR, hub)
    return hub
