"""Observability: the agentless telemetry plane.

The telemetry substrate the control plane, RNICs, and auditor report
into.  One :class:`Telemetry` hub exists per simulator (see
:func:`telemetry_of`); exporters render its registry as JSON-lines or
Prometheus text.  ``python -m repro.cli telemetry`` runs a
representative workload and prints the resulting snapshot.

v2 adds the RDX-native pieces (DESIGN.md §14):

* :mod:`repro.obs.segment` -- the sandbox-resident, seqlock-guarded
  telemetry segment inside the registered MR span;
* :mod:`repro.obs.scrape` -- one-sided scraping of those segments
  (zero sandbox-CPU events, torn snapshots retried and never exported);
* causal deploy traces (:func:`reconstruct_deploy_traces`) joining
  control-plane spans with sandbox-side first-exec edges;
* :mod:`repro.obs.flight` -- the crash flight recorder replayed by
  ``python -m repro.cli blackbox``.
"""

from repro.obs.cardinality import (
    UNSHARDED,
    drop_target_series,
    target_label,
    tenant_label,
)
from repro.obs.exporters import (
    escape_label_value,
    from_jsonl,
    parse_prometheus,
    prom_name,
    to_jsonl,
    to_prometheus,
)
from repro.obs.flight import FlightRecorder, format_blackbox
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.segment import (
    LAYOUT,
    SegmentLayout,
    SegmentSnapshot,
    TelemetrySegment,
    decode_segment,
)
from repro.obs.scrape import ScrapeResult, TelemetryScraper, TornSnapshotError
from repro.obs.spans import (
    DeployTrace,
    Span,
    SpanTracer,
    TargetTrace,
    reconstruct_deploy_traces,
)
from repro.obs.telemetry import (
    Telemetry,
    export_jsonl,
    export_prometheus,
    telemetry_of,
)

__all__ = [
    "Counter",
    "DeployTrace",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LAYOUT",
    "MetricsRegistry",
    "ScrapeResult",
    "SegmentLayout",
    "SegmentSnapshot",
    "Span",
    "SpanTracer",
    "TargetTrace",
    "Telemetry",
    "TelemetryScraper",
    "TelemetrySegment",
    "TornSnapshotError",
    "UNSHARDED",
    "decode_segment",
    "drop_target_series",
    "escape_label_value",
    "export_jsonl",
    "export_prometheus",
    "format_blackbox",
    "from_jsonl",
    "parse_prometheus",
    "prom_name",
    "reconstruct_deploy_traces",
    "target_label",
    "telemetry_of",
    "tenant_label",
    "to_jsonl",
    "to_prometheus",
]
