"""Observability: metrics, span tracing, and exporters.

The telemetry substrate the control plane, RNICs, and auditor report
into.  One :class:`Telemetry` hub exists per simulator (see
:func:`telemetry_of`); exporters render its registry as JSON-lines or
Prometheus text.  ``python -m repro.cli telemetry`` runs a
representative workload and prints the resulting snapshot.
"""

from repro.obs.exporters import (
    from_jsonl,
    parse_prometheus,
    prom_name,
    to_jsonl,
    to_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanTracer
from repro.obs.telemetry import Telemetry, telemetry_of

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "Telemetry",
    "telemetry_of",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus",
    "parse_prometheus",
    "prom_name",
]
