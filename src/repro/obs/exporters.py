"""Registry exporters: JSON-lines (lossless) and Prometheus text.

* :func:`to_jsonl` / :func:`from_jsonl` -- one JSON object per series
  per line.  Histograms ship their exact aggregates plus the retained
  sample reservoir, so ``from_jsonl(to_jsonl(reg))`` reconstructs a
  registry that exports identically (the round-trip tests assert
  this).
* :func:`to_prometheus` / :func:`parse_prometheus` -- the conventional
  ``# TYPE`` + ``name{labels} value`` exposition format.  Histograms
  are rendered as summaries (quantile series + ``_count``/``_sum``).
  The parser reads the format back into plain value maps -- enough to
  verify that both exporters agree on the same registry, and to
  scrape the CLI's output.

Metric names use dots internally (``rdx.deploy.latency_us``);
Prometheus names replace every non-alphanumeric rune with ``_``.
"""

from __future__ import annotations

import json
import re
from typing import TextIO, Union

from repro.obs.metrics import Histogram, MetricsRegistry

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
# The label block may contain "}" inside quoted values, so the line
# regex matches quoted strings (with escapes) as units rather than
# scanning for the first closing brace.
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?\s+(?P<value>[^\s]+)$'
)
_PROM_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)

#: Quantiles rendered for each histogram-as-summary.
SUMMARY_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))


# ---------------------------------------------------------------------------
# JSON-lines
# ---------------------------------------------------------------------------

def to_jsonl(registry: MetricsRegistry) -> str:
    """Serialize every series, one JSON object per line, sorted order."""
    lines = [
        json.dumps(row, sort_keys=True, default=float)
        for row in registry.snapshot()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(source: Union[str, TextIO]) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_jsonl` output."""
    text = source if isinstance(source, str) else source.read()
    registry = MetricsRegistry()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(f"jsonl line {lineno}: {err}") from None
        kind = row.get("type")
        name = row["name"]
        labels = row.get("labels", {})
        if kind == "counter":
            registry.counter(name, **labels).inc(row["value"])
        elif kind == "gauge":
            registry.gauge(name, **labels).set(row["value"])
        elif kind == "histogram":
            hist = registry.histogram(name, **labels)
            _restore_histogram(hist, row)
        else:
            raise ValueError(f"jsonl line {lineno}: unknown type {kind!r}")
    return registry


def _restore_histogram(hist: Histogram, row: dict) -> None:
    if row["count"]:
        hist.count = int(row["count"])
        hist.sum = float(row["sum"])
        hist.min = float(row["min"])
        hist.max = float(row["max"])
    hist._samples = [float(v) for v in row.get("samples", [])]
    hist._stride = int(row.get("stride", 1))


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def prom_name(name: str) -> str:
    """``rdx.deploy.latency_us`` -> ``rdx_deploy_latency_us``.

    Enforces the full metric-name charset: every rune outside
    ``[a-zA-Z0-9_:]`` becomes ``_`` and a leading digit is prefixed
    (``3xx.count`` -> ``_3xx_count``), so arbitrary internal names can
    never emit an unparseable exposition line.
    """
    name = _PROM_NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    r"""Escape ``\``, ``"`` and newlines per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, char + nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _prom_labels(labels: dict[str, str], extra: dict[str, str] = {}) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{prom_name(k)}="{escape_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus exposition format."""
    out: list[str] = []
    typed: set[str] = set()
    for row in registry.snapshot():
        name = prom_name(row["name"])
        labels = {prom_name(k): v for k, v in row["labels"].items()}
        if row["type"] == "histogram":
            if name not in typed:
                out.append(f"# TYPE {name} summary")
                typed.add(name)
            for quantile, pkey in SUMMARY_QUANTILES:
                out.append(
                    f"{name}{_prom_labels(labels, {'quantile': str(quantile)})} "
                    f"{_prom_value(row[pkey])}"
                )
            out.append(f"{name}_count{_prom_labels(labels)} {row['count']}")
            out.append(
                f"{name}_sum{_prom_labels(labels)} {_prom_value(row['sum'])}"
            )
        else:
            if name not in typed:
                out.append(f"# TYPE {name} {row['type']}")
                typed.add(name)
            out.append(
                f"{name}{_prom_labels(labels)} {_prom_value(row['value'])}"
            )
    return "\n".join(out) + ("\n" if out else "")


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into {(name, sorted labels): value}.

    Lossy by design (the text format carries no raw samples); used to
    check that both exporters present the same registry and to consume
    the CLI's ``--format prom`` output programmatically.
    """
    values: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"prometheus line {lineno}: cannot parse {line!r}")
        labels = tuple(
            sorted(
                (m.group("key"), _unescape_label_value(m.group("value")))
                for m in _PROM_LABEL_RE.finditer(match.group("labels") or "")
            )
        )
        values[(match.group("name"), labels)] = float(match.group("value"))
    return values
