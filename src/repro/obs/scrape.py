"""One-sided scraping of sandbox telemetry segments.

The scraper is the read side of :mod:`repro.obs.segment`: it pulls a
sandbox's counters with RDMA READs only -- zero sandbox-CPU events --
and defends against The Completion Fallacy with the segment's seqlock:

1. READ the sequence word; odd means a local write is in flight.
2. READ the slot payload.
3. READ the sequence word again; accept iff unchanged and even.

A mismatch is a *torn* snapshot: retried up to
``params.RDX_SCRAPE_MAX_RETRIES`` times with a small backoff, counted,
and -- crucially -- **never exported**.  An accepted snapshot is
single-epoch by construction (the incarnation word lives inside the
bracket), so a post-``warm_reboot`` scrape can't blend pre-crash
totals into the new incarnation's series.

Accepted snapshots feed the control plane's metrics registry as
``sandbox.*`` series labeled with ``target`` and ``epoch``; counter
slots are published as deltas against the previous accepted snapshot
so registry counters stay monotonic per incarnation.  On an epoch bump
the target's old-epoch series are dropped from the registry.

Scheduling piggybacks on :class:`repro.core.health.HealthDetector`:
every successful lease probe is followed by a scrape of the same
target over the already-warm QP, so telemetry freshness rides the
failure-detection interval without its own timer wheel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro import params
from repro.errors import ReproError
from repro.obs.segment import (
    LAYOUT,
    COUNTER_SLOTS,
    GAUGE_SLOTS,
    HIST_BUCKETS,
    HIST_SLOTS,
    OFF_SEQ,
    SegmentLayout,
    SegmentSnapshot,
    decode_segment,
)
from repro.obs.telemetry import telemetry_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.codeflow import CodeFlow


class TornSnapshotError(ReproError):
    """Seqlock retries exhausted: the segment never held still."""


@dataclass
class ScrapeResult:
    """One accepted (seqlock-consistent) scrape of one target."""

    target: str
    epoch: int
    snapshot: SegmentSnapshot
    retries: int = 0
    scraped_at_us: float = 0.0
    #: Counter deltas vs the previous accepted scrape (same epoch).
    deltas: dict[str, int] = field(default_factory=dict)


class TelemetryScraper:
    """Scrapes registered sandboxes into the control plane's registry."""

    def __init__(
        self,
        codeflows,
        layout: SegmentLayout = LAYOUT,
        max_retries: Optional[int] = None,
    ):
        codeflows = list(codeflows)
        if not codeflows:
            raise ValueError("scraper needs at least one codeflow")
        self.codeflows: dict[str, "CodeFlow"] = {
            cf.sandbox.name: cf for cf in codeflows
        }
        self.layout = layout
        self.max_retries = max_retries
        self.sim = codeflows[0].sync.sim
        self.obs = telemetry_of(self.sim)
        #: target -> (epoch, raw counter values) of the last accepted
        #: scrape; the delta baseline.
        self._baseline: dict[str, tuple[int, dict[str, int]]] = {}
        self.results: list[ScrapeResult] = []
        self._m_count = self.obs.counter("rdx.scrape.count")
        self._m_retries = self.obs.counter("rdx.scrape.retries")
        self._m_torn = self.obs.counter("rdx.scrape.torn")

    # -- the seqlock read protocol ----------------------------------------

    def scrape(self, target: str):
        """Process body: scrape one target; returns a ScrapeResult.

        Raises :class:`TornSnapshotError` when the bounded retry budget
        runs out -- the caller gets *nothing* rather than a torn
        snapshot (never-export-torn).  Transport errors propagate as
        usual (the health detector owns liveness policy).
        """
        codeflow = self.codeflows[target]
        manifest = codeflow.manifest
        base = manifest.telemetry_addr
        size = manifest.telemetry_bytes or self.layout.size_bytes
        budget = (
            self.max_retries
            if self.max_retries is not None
            else params.RDX_SCRAPE_MAX_RETRIES
        )
        retries = 0
        for _attempt in range(budget + 1):
            word = yield from codeflow.sync.read(base + OFF_SEQ, 8)
            seq_before = int.from_bytes(bytes(word), "little")
            if seq_before % 2 == 0:
                raw = bytes((yield from codeflow.sync.read(base, size)))
                word = yield from codeflow.sync.read(base + OFF_SEQ, 8)
                seq_after = int.from_bytes(bytes(word), "little")
                if seq_after == seq_before:
                    snapshot = decode_segment(raw, self.layout)
                    if snapshot.valid:
                        result = ScrapeResult(
                            target=target,
                            epoch=snapshot.epoch,
                            snapshot=snapshot,
                            retries=retries,
                            scraped_at_us=self.sim.now,
                        )
                        self._publish(result)
                        self._m_count.inc()
                        self.results.append(result)
                        return result
            # Torn (odd seq, moved seq, or bad magic): back off, retry.
            retries += 1
            self._m_retries.inc()
            yield self.sim.timeout(params.RDX_SCRAPE_RETRY_US)
        self._m_torn.inc()
        raise TornSnapshotError(
            f"scrape of {target!r} torn {retries}x; snapshot discarded"
        )

    def scrape_all(self):
        """Process body: scrape every registered target, in name order.

        Torn targets are skipped (already counted); the return value
        maps target -> ScrapeResult for the targets that were accepted.
        """
        accepted: dict[str, ScrapeResult] = {}
        for target in sorted(self.codeflows):
            try:
                accepted[target] = yield from self.scrape(target)
            except ReproError:
                continue
        return accepted

    # -- registry publication ---------------------------------------------

    def _publish(self, result: ScrapeResult) -> None:
        registry = self.obs.registry
        target = result.target
        epoch = result.epoch
        values = result.snapshot.values
        previous = self._baseline.get(target)
        if previous is not None and previous[0] != epoch:
            # New incarnation: retire every series of the old one so
            # pre-crash counters can't leak into recovered snapshots.
            registry.drop(target=target)
            previous = None
        baseline = previous[1] if previous is not None else {}
        labels = {"target": target, "epoch": str(epoch)}

        new_baseline: dict[str, int] = {}
        for name in COUNTER_SLOTS:
            total = int(values[name])
            new_baseline[name] = total
            delta = total - baseline.get(name, 0)
            if delta < 0:
                # Counters only move backward on a same-epoch reset,
                # which the seqlock + epoch word rule out; be safe.
                delta = total
            result.deltas[name] = delta
            if delta:
                registry.counter(f"sandbox.{name}", **labels).inc(delta)
            else:
                registry.counter(f"sandbox.{name}", **labels)
        for name in GAUGE_SLOTS:
            registry.gauge(f"sandbox.{name}", **labels).set(values[name])
        for name in HIST_SLOTS:
            hist = result.snapshot.histogram(name)
            for bucket in range(HIST_BUCKETS):
                key = f"{name}.bucket{bucket}"
                total = int(values[key])
                new_baseline[key] = total
                delta = total - baseline.get(key, 0)
                if delta < 0:
                    delta = total
                if delta:
                    registry.counter(
                        f"sandbox.{name}_bucket", le=str(2 ** bucket), **labels
                    ).inc(delta)
            registry.gauge(f"sandbox.{name}_count", **labels).set(
                hist["count"]
            )
            registry.gauge(f"sandbox.{name}_sum", **labels).set(hist["sum"])
        self._baseline[target] = (epoch, new_baseline)
