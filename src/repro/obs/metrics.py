"""Metric instruments and the registry that owns them.

Three instrument kinds, mirroring the conventional trinity:

* :class:`Counter` -- monotonically increasing totals (cache hits,
  bytes DMA'd, audit findings);
* :class:`Gauge` -- a value that goes up and down (CQ depth, live
  deployments);
* :class:`Histogram` -- a latency/size distribution with exact
  count/sum/min/max and percentile summaries (p50/p90/p99) computed
  over a deterministically decimated sample reservoir.

Every instrument is keyed by ``name`` plus an optional label set, so
``registry.counter("rdma.verbs", op="write")`` and
``registry.counter("rdma.verbs", op="read")`` are independent series
of the same metric family.  All values are in simulated units (times
in microseconds); the registry itself is simulation-agnostic.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Union

#: A label key -> value mapping, normalized to a sorted tuple for keying.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter; ``inc`` with a negative delta is rejected."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name}: negative increment {delta}")
        self.value += delta

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """Last-write-wins value with inc/dec convenience."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        self.value += delta

    def dec(self, delta: float = 1.0) -> None:
        self.value -= delta

    def __repr__(self) -> str:
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class Histogram:
    """Distribution summary with deterministic bounded memory.

    ``count``/``sum``/``min``/``max`` are exact over every observation.
    Percentiles are computed from a retained sample list: once it fills
    ``max_samples`` slots it is halved (every other sample kept) and the
    keep-stride doubles, so long-running workloads retain an evenly
    spaced subsample instead of growing without bound.  The scheme is
    deterministic -- two identical runs summarize identically.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (), max_samples: int = 4096):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.labels = labels
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """The standard snapshot block: count/sum/min/max/mean + p50/90/99."""
        if not self.count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def samples(self) -> list[float]:
        """The retained (decimated) observations, in arrival order."""
        return list(self._samples)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{dict(self.labels)} "
            f"count={self.count} mean={self.mean:.1f})"
        )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for every metric series.

    Series identity is (name, labels); asking for an existing name with
    a different instrument kind is a programming error and raises.
    """

    def __init__(self):
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def _get_or_create(self, cls, name: str, labels: dict) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def get(self, name: str, **labels: object) -> Optional[Metric]:
        """Existing series or None (never creates)."""
        return self._metrics.get((name, _label_key(labels)))

    def series(self, name: str) -> list[Metric]:
        """Every series of one metric family, sorted by labels."""
        return [
            metric
            for (metric_name, _), metric in sorted(self._metrics.items())
            if metric_name == name
        ]

    def __iter__(self) -> Iterator[Metric]:
        for _key, metric in sorted(self._metrics.items()):
            yield metric

    def __len__(self) -> int:
        return len(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    def drop(self, name: Optional[str] = None, **labels: object) -> int:
        """Remove every series matching ``name`` and/or a label subset.

        A series matches when its name equals ``name`` (if given) and
        its labels contain *all* of ``labels``.  Returns the number of
        series removed.  This is how the scraper retires a sandbox
        incarnation: on an epoch bump it drops the target's old-epoch
        series so pre-crash counters can't leak into post-recovery
        snapshots.
        """
        want = {(str(k), str(v)) for k, v in labels.items()}
        doomed = [
            key
            for key, metric in self._metrics.items()
            if (name is None or key[0] == name)
            and want <= set(metric.labels)
        ]
        for key in doomed:
            del self._metrics[key]
        return len(doomed)

    def snapshot(self) -> list[dict]:
        """Plain-data dump of every series (exporter substrate).

        Counters/gauges carry ``value``; histograms carry the summary
        block plus the retained samples (for lossless re-import).
        """
        rows = []
        for metric in self:
            row: dict[str, object] = {
                "type": metric.kind,
                "name": metric.name,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                row.update(metric.summary())
                row["samples"] = metric.samples()
                row["stride"] = metric._stride
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows
