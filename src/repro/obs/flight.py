"""The crash flight recorder: what was the control plane doing?

A bounded ring of recent activity -- finished spans and metric deltas
-- plus the set of spans still *open* at snapshot time.  On
``RdxControlPlane.crash()`` the ring is serialized into the intent
journal as a ``FLIGHT`` record, which survives into the recovered
incarnation the same way in-flight intents do.  ``python -m repro.cli
blackbox`` replays it so a post-``warm_reboot`` post-mortem explains
the final seconds of the dead incarnation instead of guessing from
counters.

Entries are plain JSON-able dicts (the journal round-trips through
JSONL); span attributes are stringified defensively.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span


def _jsonable(value):
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


class FlightRecorder:
    """Bounded ring of recent spans and metric deltas."""

    def __init__(self, sim, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.entries: deque[dict] = deque(maxlen=capacity)
        #: Entries evicted by the ring bound (drop-oldest).
        self.dropped = 0
        self._metric_checkpoint: dict[tuple, float] = {}

    def _push(self, entry: dict) -> None:
        if len(self.entries) == self.capacity:
            self.dropped += 1
        self.entries.append(entry)

    # -- feeds -------------------------------------------------------------

    def record_span(self, span: Span) -> None:
        """Feed one finished span (wired to ``SpanTracer.on_finish``)."""
        self._push(
            {
                "kind": "span",
                "t": span.end_us,
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                "start_us": span.start_us,
                "duration_us": span.duration_us,
                "status": span.status,
                "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
            }
        )

    def note_metrics(self, registry: MetricsRegistry,
                     prefix: str = "rdx.") -> int:
        """Checkpoint counters and ring the deltas since last time.

        Called at op boundaries (each journal COMMIT/ABORT); keeps the
        ring carrying "what moved lately" without hooking every
        ``inc()`` on the hot path.  Returns the number of delta
        entries recorded.
        """
        recorded = 0
        now = self.sim.now
        for metric in registry:
            if metric.kind != "counter" or not metric.name.startswith(prefix):
                continue
            key = (metric.name, metric.labels)
            delta = metric.value - self._metric_checkpoint.get(key, 0.0)
            self._metric_checkpoint[key] = metric.value
            if delta:
                self._push(
                    {
                        "kind": "metric",
                        "t": now,
                        "name": metric.name,
                        "labels": dict(metric.labels),
                        "delta": delta,
                        "total": metric.value,
                    }
                )
                recorded += 1
        return recorded

    # -- the crash snapshot ------------------------------------------------

    def snapshot(self, open_spans: Optional[dict] = None) -> dict:
        """Serialize the ring + in-flight spans for the journal.

        The detail dict deliberately nests everything under non-target
        keys so the journal's recovery scanners (``known_targets``,
        ``in_flight``) never mistake a flight record for an intent.
        """
        open_list = []
        for span in (open_spans or {}).values():
            open_list.append(
                {
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "trace_id": span.trace_id,
                    "start_us": span.start_us,
                    "open_for_us": self.sim.now - span.start_us,
                    "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
        open_list.sort(key=lambda s: s["start_us"])
        return {
            "at_us": self.sim.now,
            "ring": list(self.entries),
            "ring_dropped": self.dropped,
            "truncated": self.dropped > 0,
            "open_spans": open_list,
        }


# -- blackbox replay -------------------------------------------------------


def format_blackbox(flight_details: list[dict], epoch: int = 0) -> str:
    """Render journal FLIGHT records as a post-mortem report."""
    if not flight_details:
        return "blackbox: no flight records in journal (clean shutdown?)"
    lines: list[str] = []
    for index, detail in enumerate(flight_details):
        at = detail.get("at_us", 0.0)
        header = f"flight record {index + 1}/{len(flight_details)}"
        if epoch:
            header += f" (journal epoch {epoch})"
        lines.append(header)
        lines.append(f"  snapshotted at t={at:.1f}us")
        if detail.get("truncated"):
            lines.append(
                f"  TRUNCATED: ring dropped {detail.get('ring_dropped', 0)} "
                "older entries"
            )
        open_spans = detail.get("open_spans", [])
        lines.append(f"  in flight at death ({len(open_spans)} spans):")
        for span in open_spans:
            attrs = span.get("attrs", {})
            what = " ".join(
                f"{k}={v}" for k, v in sorted(attrs.items())
            )
            lines.append(
                f"    OPEN {span['name']}"
                f" trace={span.get('trace_id')}"
                f" started t={span['start_us']:.1f}us"
                f" open {span['open_for_us']:.1f}us"
                + (f"  {what}" if what else "")
            )
        ring = detail.get("ring", [])
        lines.append(f"  recent activity ({len(ring)} entries, oldest first):")
        for entry in ring:
            if entry.get("kind") == "span":
                attrs = entry.get("attrs", {})
                what = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                lines.append(
                    f"    t={entry['t']:.1f}us span {entry['name']}"
                    f" [{entry.get('status', '?')}]"
                    f" {entry.get('duration_us', 0.0):.1f}us"
                    f" trace={entry.get('trace_id')}"
                    + (f"  {what}" if what else "")
                )
            else:
                labels = entry.get("labels", {})
                tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                lines.append(
                    f"    t={entry['t']:.1f}us metric {entry['name']}"
                    + (f"{{{tag}}}" if tag else "")
                    + f" +{entry.get('delta', 0):g}"
                    + f" (total {entry.get('total', 0):g})"
                )
    return "\n".join(lines)
