"""Span-based tracing for the CodeFlow op pipeline.

A :class:`Span` is one timed operation (``rdx.validate``,
``rdx.deploy``, ...) with free-form attributes and an optional parent,
so a ``rdx_broadcast`` fan-out renders as one parent span with a child
span per target.

The tracer is **built on** :class:`repro.sim.trace.TraceRecorder`
rather than replacing it: opening a span records a ``<name>.start``
event and closing it records ``<name>.end`` (both carrying
``span_id``/``parent_id``), so every existing recorder tool --
``filter``, ``durations``, experiment post-processing -- keeps working
on span data unchanged.  On top of that, each finished span feeds the
metrics registry: a span named ``rdx.deploy`` observes the
``rdx.deploy.latency_us`` histogram automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.core import Simulator
    from repro.sim.trace import TraceRecorder

_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)

#: Span names that root a causal deploy trace.
TRACE_ROOTS = ("rdx.inject", "rdx.broadcast")


@dataclass
class Span:
    """One timed operation; close with ``finish()`` or a ``with`` block."""

    name: str
    span_id: int
    start_us: float
    parent_id: Optional[int] = None
    #: The causal trace this span belongs to: minted when a root span
    #: opens, inherited by every descendant, and carried through WR
    #: chains / CAS / flush trace events so one deploy reconstructs as
    #: one end-to-end tree (see :func:`reconstruct_deploy_traces`).
    trace_id: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)
    end_us: Optional[float] = None
    status: str = "ok"
    _tracer: Optional["SpanTracer"] = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end_us - self.start_us

    def finish(self, **attrs: Any) -> "Span":
        assert self._tracer is not None
        self._tracer.finish(self, **attrs)
        return self

    # -- context-manager sugar (works inside sim generators: the body
    # between __enter__ and __exit__ may span many yields, and the
    # duration is whatever simulated time elapsed in between) --------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if not self.finished:
            if exc is not None:
                self.status = "error"
                self.finish(error=str(exc))
            else:
                self.finish()


class SpanTracer:
    """Creates spans against one simulator clock.

    ``recorder`` receives the start/end trace events (backward-compat
    surface); ``registry`` receives the per-span-name latency
    histograms.  Either may be None to opt out.
    """

    def __init__(
        self,
        sim: "Simulator",
        recorder: Optional["TraceRecorder"] = None,
        registry: Optional["MetricsRegistry"] = None,
        keep_finished: int = 10_000,
    ):
        self.sim = sim
        self.recorder = recorder
        self.registry = registry
        #: Finished spans, oldest first (bounded; see ``keep_finished``).
        self.finished_spans: list[Span] = []
        self.keep_finished = keep_finished
        #: Spans evicted from ``finished_spans`` by the bound.
        self.evicted = 0
        self.started = 0
        #: In-flight spans by span_id -- what the control plane "was
        #: doing"; the flight recorder snapshots these on crash.
        self.open_spans: dict[int, Span] = {}
        #: Listeners called with each finished span (flight recorder).
        self.on_finish: list = []

    def start(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        span = Span(
            name=name,
            span_id=next(_span_ids),
            start_us=self.sim.now,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=(
                parent.trace_id if parent is not None
                else next(_trace_ids)
            ),
            attrs=dict(attrs),
            _tracer=self,
        )
        self.started += 1
        self.open_spans[span.span_id] = span
        if self.recorder is not None:
            self.recorder.record(
                self.sim.now,
                f"{name}.start",
                span_id=span.span_id,
                parent_id=span.parent_id,
                trace_id=span.trace_id,
                **attrs,
            )
        return span

    #: ``span`` is the idiomatic entry point: ``with tracer.span(...)``.
    span = start

    def finish(self, span: Span, **attrs: Any) -> Span:
        if span.finished:
            raise ValueError(f"span {span.name!r} already finished")
        span.attrs.update(attrs)
        span.end_us = self.sim.now
        self.open_spans.pop(span.span_id, None)
        if self.recorder is not None:
            self.recorder.record(
                self.sim.now,
                f"{span.name}.end",
                span_id=span.span_id,
                parent_id=span.parent_id,
                trace_id=span.trace_id,
                duration_us=span.duration_us,
                status=span.status,
                **attrs,
            )
        if self.registry is not None:
            self.registry.histogram(f"{span.name}.latency_us").observe(
                span.duration_us
            )
        for listener in self.on_finish:
            listener(span)
        self.finished_spans.append(span)
        if len(self.finished_spans) > self.keep_finished:
            overflow = len(self.finished_spans) - self.keep_finished
            del self.finished_spans[:overflow]
            self.evicted += overflow
        return span

    def wrap(self, generator, name: str, parent: Optional[Span] = None, **attrs):
        """Run a sim process generator inside a span of its own.

        Usable anywhere a generator is expected (``sim.spawn``,
        ``yield from``); the span closes when the wrapped process
        returns or raises.
        """
        span = self.start(name, parent=parent, **attrs)
        with span:
            result = yield from generator
        return result

    # -- hierarchy queries -------------------------------------------------

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.finished_spans if s.parent_id == span.span_id]

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.finished_spans if s.name == name]

    def by_trace(self, trace_id: int) -> list[Span]:
        return [s for s in self.finished_spans if s.trace_id == trace_id]


# -- causal deploy-trace reconstruction ------------------------------------


@dataclass
class TargetTrace:
    """One target's leg of a deploy trace.

    ``install_visible_us`` is the *true* per-target install latency:
    from the root op starting until this target's commit (CAS +
    coherence flush) retired -- the point after which a data-path read
    can observe the new pointer.  ``first_exec_us`` closes the loop
    further: when the sandbox actually ran the installed image (joined
    from the segment-mirrored ``rdx.trace.first_exec`` event on the
    image's code address), relative to the same root start.
    """

    target: str
    span: Span
    install_visible_us: float
    first_exec_us: Optional[float] = None


@dataclass
class DeployTrace:
    """One reconstructed end-to-end deploy: a root span + target legs."""

    trace_id: int
    root: Span
    tenant: str = ""
    targets: list[TargetTrace] = field(default_factory=list)
    bubble_window_us: Optional[float] = None
    #: Low-level causal events (WR chains, chunk lands, CAS, flush)
    #: recorded under this trace id, oldest first.
    events: list = field(default_factory=list)

    @property
    def total_us(self) -> float:
        return self.root.duration_us

    def target_named(self, target: str) -> Optional[TargetTrace]:
        for leg in self.targets:
            if leg.target == target:
                return leg
        return None


def _first_exec_index(recorder) -> dict[tuple[str, int], float]:
    """(target, code_addr) -> earliest first-exec time, from the recorder."""
    index: dict[tuple[str, int], float] = {}
    if recorder is None:
        return index
    for event in recorder.filter("rdx.trace.first_exec"):
        key = (event.data.get("target"), event.data.get("pointer"))
        if key not in index:
            index[key] = event.time_us
    return index


def reconstruct_deploy_traces(
    tracer: SpanTracer, recorder: Optional["TraceRecorder"] = None
) -> list[DeployTrace]:
    """Rebuild one :class:`DeployTrace` per deploy/broadcast root span.

    Works purely from finished spans plus (optionally) the trace
    recorder: the recorder contributes the low-level causal events the
    sync layer tagged with the trace id and the sandbox-side
    first-exec edges.
    """
    recorder = recorder if recorder is not None else tracer.recorder
    first_execs = _first_exec_index(recorder)
    events_by_trace: dict[int, list] = {}
    if recorder is not None:
        for event in recorder.filter("rdx.trace."):
            trace_id = event.data.get("trace_id")
            if trace_id is not None:
                events_by_trace.setdefault(trace_id, []).append(event)

    traces: list[DeployTrace] = []
    for root in tracer.finished_spans:
        if root.name not in TRACE_ROOTS or root.parent_id is not None:
            continue
        assert root.trace_id is not None
        trace = DeployTrace(
            trace_id=root.trace_id,
            root=root,
            tenant=str(root.attrs.get("tenant", "")),
            bubble_window_us=root.attrs.get("bubble_window_us"),
            events=events_by_trace.get(root.trace_id, []),
        )
        for span in tracer.by_trace(root.trace_id):
            if span.name == "rdx.broadcast.target" or (
                span.name == "rdx.deploy" and root.name == "rdx.inject"
            ):
                target = str(span.attrs.get("target", ""))
                leg = TargetTrace(
                    target=target,
                    span=span,
                    install_visible_us=span.end_us - root.start_us,
                )
                code_addr = _leg_code_addr(tracer, span)
                if code_addr is not None:
                    when = first_execs.get((target, code_addr))
                    if when is not None and when >= root.start_us:
                        leg.first_exec_us = when - root.start_us
                trace.targets.append(leg)
        traces.append(trace)
    return traces


def _leg_code_addr(tracer: SpanTracer, leg: Span) -> Optional[int]:
    """The deployed image's code address for a target leg span.

    ``rdx.deploy`` spans carry it directly; ``rdx.broadcast.target``
    legs find it on their descendant deploy span.
    """
    addr = leg.attrs.get("code_addr")
    if addr is not None:
        return addr
    frontier = [leg]
    while frontier:
        node = frontier.pop()
        for child in tracer.children_of(node):
            addr = child.attrs.get("code_addr")
            if addr is not None:
                return addr
            frontier.append(child)
    return None
