"""Span-based tracing for the CodeFlow op pipeline.

A :class:`Span` is one timed operation (``rdx.validate``,
``rdx.deploy``, ...) with free-form attributes and an optional parent,
so a ``rdx_broadcast`` fan-out renders as one parent span with a child
span per target.

The tracer is **built on** :class:`repro.sim.trace.TraceRecorder`
rather than replacing it: opening a span records a ``<name>.start``
event and closing it records ``<name>.end`` (both carrying
``span_id``/``parent_id``), so every existing recorder tool --
``filter``, ``durations``, experiment post-processing -- keeps working
on span data unchanged.  On top of that, each finished span feeds the
metrics registry: a span named ``rdx.deploy`` observes the
``rdx.deploy.latency_us`` histogram automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.core import Simulator
    from repro.sim.trace import TraceRecorder

_span_ids = itertools.count(1)


@dataclass
class Span:
    """One timed operation; close with ``finish()`` or a ``with`` block."""

    name: str
    span_id: int
    start_us: float
    parent_id: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)
    end_us: Optional[float] = None
    status: str = "ok"
    _tracer: Optional["SpanTracer"] = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end_us - self.start_us

    def finish(self, **attrs: Any) -> "Span":
        assert self._tracer is not None
        self._tracer.finish(self, **attrs)
        return self

    # -- context-manager sugar (works inside sim generators: the body
    # between __enter__ and __exit__ may span many yields, and the
    # duration is whatever simulated time elapsed in between) --------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if not self.finished:
            if exc is not None:
                self.status = "error"
                self.finish(error=str(exc))
            else:
                self.finish()


class SpanTracer:
    """Creates spans against one simulator clock.

    ``recorder`` receives the start/end trace events (backward-compat
    surface); ``registry`` receives the per-span-name latency
    histograms.  Either may be None to opt out.
    """

    def __init__(
        self,
        sim: "Simulator",
        recorder: Optional["TraceRecorder"] = None,
        registry: Optional["MetricsRegistry"] = None,
        keep_finished: int = 10_000,
    ):
        self.sim = sim
        self.recorder = recorder
        self.registry = registry
        #: Finished spans, oldest first (bounded; see ``keep_finished``).
        self.finished_spans: list[Span] = []
        self.keep_finished = keep_finished
        #: Spans evicted from ``finished_spans`` by the bound.
        self.evicted = 0
        self.started = 0

    def start(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        span = Span(
            name=name,
            span_id=next(_span_ids),
            start_us=self.sim.now,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
            _tracer=self,
        )
        self.started += 1
        if self.recorder is not None:
            self.recorder.record(
                self.sim.now,
                f"{name}.start",
                span_id=span.span_id,
                parent_id=span.parent_id,
                **attrs,
            )
        return span

    #: ``span`` is the idiomatic entry point: ``with tracer.span(...)``.
    span = start

    def finish(self, span: Span, **attrs: Any) -> Span:
        if span.finished:
            raise ValueError(f"span {span.name!r} already finished")
        span.attrs.update(attrs)
        span.end_us = self.sim.now
        if self.recorder is not None:
            self.recorder.record(
                self.sim.now,
                f"{span.name}.end",
                span_id=span.span_id,
                parent_id=span.parent_id,
                duration_us=span.duration_us,
                status=span.status,
                **attrs,
            )
        if self.registry is not None:
            self.registry.histogram(f"{span.name}.latency_us").observe(
                span.duration_us
            )
        self.finished_spans.append(span)
        if len(self.finished_spans) > self.keep_finished:
            overflow = len(self.finished_spans) - self.keep_finished
            del self.finished_spans[:overflow]
            self.evicted += overflow
        return span

    def wrap(self, generator, name: str, parent: Optional[Span] = None, **attrs):
        """Run a sim process generator inside a span of its own.

        Usable anywhere a generator is expected (``sim.spawn``,
        ``yield from``); the span closes when the wrapped process
        returns or raises.
        """
        span = self.start(name, parent=parent, **attrs)
        with span:
            result = yield from generator
        return result

    # -- hierarchy queries -------------------------------------------------

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.finished_spans if s.parent_id == span.span_id]

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.finished_spans if s.name == name]
