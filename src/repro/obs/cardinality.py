"""Label-cardinality control for per-target metric series.

Every deploy leg, heartbeat, and fence trip historically carried a
``target=<sandbox>`` label.  At 8 targets that is a readable breakdown;
at N=1024 it is thousands of live series per metric name -- the
registry, the exporters, and every scrape pay for it.  The fix is the
standard one from production metric pipelines: aggregate the hot
per-target series to their owning *shard* by default, and keep the
full breakdown behind an explicit opt-in for small runs.

:func:`target_label` is the one choke point: instrumentation sites
pass the sandbox name plus the shard that owns it, and get back the
label value to emit under the current
:data:`repro.params.RDX_OBS_TARGET_LABELS` setting.

Retired series (a closed codeflow, a superseded epoch) are dropped via
:meth:`repro.obs.metrics.MetricsRegistry.drop` -- see
:func:`drop_target_series`.
"""

from __future__ import annotations

from repro import params

#: Aggregate label value used when no shard owns the target (a plain
#: unsharded control plane).
UNSHARDED = "_all"


def target_label(target: str, shard: str = "") -> str:
    """The ``target=`` label value to emit for ``target``.

    Per-target when :data:`~repro.params.RDX_OBS_TARGET_LABELS` is on;
    otherwise the owning ``shard`` (or :data:`UNSHARDED`), collapsing
    the series count from O(targets) to O(shards).
    """
    if params.RDX_OBS_TARGET_LABELS:
        return target
    return shard or UNSHARDED


def tenant_label(tenant: str, tenant_class: str) -> str:
    """The ``tenant=`` label value to emit for ``tenant``.

    Per-tenant labels are the same cardinality trap as per-target ones
    -- a 1000-tenant serving mix would mint 1000 series per metric
    name.  Under the default aggregation the label collapses to the
    tenant's *priority class* (a handful of values by construction);
    :data:`~repro.params.RDX_OBS_TARGET_LABELS` opts small runs back
    into the per-tenant breakdown.
    """
    if params.RDX_OBS_TARGET_LABELS:
        return tenant
    return tenant_class or UNSHARDED


def drop_target_series(registry, target: str, shard: str = "") -> int:
    """Retire every series labelled for ``target`` from ``registry``.

    Called when a codeflow closes or a target is permanently removed,
    so a long-lived control plane does not accumulate dead series.
    When aggregation is active the per-target series never existed and
    the shard-level series keeps serving the survivors, so there is
    nothing to drop.  Returns the number of series removed.
    """
    if not params.RDX_OBS_TARGET_LABELS:
        return 0
    return registry.drop(target=target)
