"""Exporter schema checker: validate telemetry snapshots from disk.

CI's telemetry smoke job scrapes a fault campaign to ``snap.prom`` /
``snap.jsonl`` and runs this module over both::

    python -m repro.obs.schema_check --prom snap.prom --jsonl snap.jsonl

Checks, per format:

* **Prometheus text** -- every non-comment line must parse under the
  exposition grammar (:func:`repro.obs.exporters.parse_prometheus`),
  every metric name must already be in the legal charset
  (``[a-zA-Z_:][a-zA-Z0-9_:]*`` -- i.e. :func:`prom_name` is a no-op
  on it), label values must survive an escape round-trip, and values
  must be finite or NaN.
* **JSON-lines** -- every line is an object carrying the keys its
  ``type`` requires (counter/gauge: ``value``; histogram: ``count``,
  ``sum``, ``min``, ``max`` and the quantile keys), with string-keyed
  string-valued labels.

Exit status 1 on any violation, with one diagnostic per offending
line -- the job fails loudly instead of shipping a snapshot no scraper
could ingest.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys

from repro.obs.exporters import parse_prometheus, prom_name

_NAME_OK_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Keys every JSONL row must carry, plus per-type requirements.
_ROW_COMMON = ("name", "type", "labels")
_ROW_BY_TYPE = {
    "counter": ("value",),
    "gauge": ("value",),
    "histogram": ("count", "sum", "min", "max", "p50", "p90", "p99"),
}


def check_prometheus(text: str) -> list[str]:
    """Return a list of violations ("" text is vacuously clean)."""
    problems: list[str] = []
    try:
        values = parse_prometheus(text)
    except ValueError as err:
        return [f"prom: {err}"]
    for (name, labels), value in values.items():
        if not _NAME_OK_RE.match(name):
            problems.append(f"prom: illegal metric name {name!r}")
        elif prom_name(name) != name:
            problems.append(f"prom: name {name!r} not in exporter charset")
        for key, _ in labels:
            if not _NAME_OK_RE.match(key) or key.startswith("__"):
                problems.append(
                    f"prom: {name}: illegal label name {key!r}"
                )
        if math.isinf(value):
            problems.append(f"prom: {name}: non-finite value {value!r}")
    return problems


def check_jsonl(text: str) -> list[str]:
    problems: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as err:
            problems.append(f"jsonl line {lineno}: unparseable ({err})")
            continue
        if not isinstance(row, dict):
            problems.append(f"jsonl line {lineno}: not an object")
            continue
        kind = row.get("type")
        required = _ROW_BY_TYPE.get(kind)
        if required is None:
            problems.append(f"jsonl line {lineno}: unknown type {kind!r}")
            continue
        for key in _ROW_COMMON + required:
            if key not in row:
                problems.append(
                    f"jsonl line {lineno}: {kind} row missing {key!r}"
                )
        labels = row.get("labels", {})
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()
        ):
            problems.append(
                f"jsonl line {lineno}: labels must map str -> str"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.schema_check",
        description="Validate exported telemetry snapshots.",
    )
    parser.add_argument(
        "--prom", action="append", default=[], metavar="FILE",
        help="Prometheus text snapshot to check (repeatable)",
    )
    parser.add_argument(
        "--jsonl", action="append", default=[], metavar="FILE",
        help="JSON-lines snapshot to check (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.prom and not args.jsonl:
        parser.error("nothing to check: pass --prom and/or --jsonl")

    status = 0
    for path, checker in [(p, check_prometheus) for p in args.prom] + [
        (p, check_jsonl) for p in args.jsonl
    ]:
        with open(path) as fh:
            problems = checker(fh.read())
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}")
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
