"""The sandbox-resident telemetry segment and its seqlock protocol.

The control plane is blind to what a sandbox *experienced* -- hook
executions, crashes, bubble stalls, first-exec-after-install -- unless
the sandbox publishes it.  An agent would push metrics; RDX instead
keeps a fixed-layout **telemetry segment** inside the registered MR
span, updated locally by management stubs and hook executions, and
scraped by the control plane with one-sided READs (zero sandbox-CPU
events -- the same bypass the data plane gets).

Torn reads are real: a READ completion proves the snapshot landed in
control-plane memory, not that the writer was quiescent.  The segment
is therefore bracketed by a **seqlock**: a sequence qword the local
writer bumps to odd before touching any slot and back to even after.
A scraper accepts a snapshot only when the sequence word was even and
unchanged across the payload read; everything between brackets --
including the incarnation ``epoch`` word -- is single-writer-session
by construction, so an accepted snapshot can never mix epochs.

Layout (all fields little-endian)::

    off  0   magic   "RDXT"            } header, outside the
    off  4   version u32               } seqlock bracket
    off  8   seq     u64   seqlock word (odd = write in progress)
    off 16   epoch   u64   incarnation (bumped by warm_reboot)
    off 24   slots   fixed schema: counters, gauges, one log-bucket
             histogram (16 x u64 buckets + count u64 + sum f64)

All updates go through ``cache.cpu_write`` -- write-through, so DRAM
always holds the truth a remote READ will observe.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.mem.cache import CacheModel

SEGMENT_MAGIC = b"RDXT"
SEGMENT_VERSION = 2

#: Byte offsets of the header words.
OFF_MAGIC = 0
OFF_SEQ = 8
OFF_EPOCH = 16
SLOTS_BASE = 24

#: Log2 buckets per histogram: bucket ``i`` counts values ``v`` (in
#: microseconds) with ``2**(i-1) <= v < 2**i`` (bucket 0: ``v < 1``,
#: the last bucket absorbs everything above ``2**14``).
HIST_BUCKETS = 16

#: Monotonic counters a sandbox maintains (u64 each).
COUNTER_SLOTS = (
    "exec.count",          # hook executions completed
    "exec.insns",          # instructions retired by extensions
    "exec.crashes",        # SandboxCrash raised from a hook
    "exec.empty",          # data-path events that found an empty hook
    "bubble.stalls",       # data-path events buffered behind a bubble
    "install.observed",    # first exec of a freshly installed image
)

#: Point-in-time gauges (f64, except addresses which are u64).
GAUGE_SLOTS = (
    "reboots",             # warm reboots survived (f64)
    "last_exec_us",        # sim time of the most recent execution
    "first_exec_us",       # sim time the newest install first ran
    "last_install_addr",   # code address of that install (u64)
)

#: Log-bucket histograms (buckets + count + sum each).
HIST_SLOTS = ("exec_us",)

_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


def bucket_of(value_us: float) -> int:
    """Log2 bucket index for a microsecond value."""
    return min(HIST_BUCKETS - 1, max(0, int(value_us)).bit_length())


class SegmentLayout:
    """Field-name -> (offset, format) map over a fixed slot schema.

    Defaults to the sandbox exec schema above; other planes (e.g. the
    deploy service's serve segment) instantiate their own slot tuples
    and get the same seqlock-bracketed wire format.
    """

    def __init__(
        self,
        counters: tuple[str, ...] = COUNTER_SLOTS,
        gauges: tuple[str, ...] = GAUGE_SLOTS,
        hists: tuple[str, ...] = HIST_SLOTS,
    ):
        self.counters = counters
        self.gauges = gauges
        self.hists = hists
        self.fields: dict[str, tuple[int, str]] = {}
        offset = SLOTS_BASE
        for name in counters:
            self.fields[name] = (offset, "q")
            offset += 8
        for name in gauges:
            fmt = "q" if name.endswith("_addr") else "d"
            self.fields[name] = (offset, fmt)
            offset += 8
        for name in hists:
            for bucket in range(HIST_BUCKETS):
                self.fields[f"{name}.bucket{bucket}"] = (offset, "q")
                offset += 8
            self.fields[f"{name}.count"] = (offset, "q")
            offset += 8
            self.fields[f"{name}.sum"] = (offset, "d")
            offset += 8
        # Round up so segments stay cacheline-tileable.
        self.size_bytes = (offset + 63) // 64 * 64

    def offset_of(self, name: str) -> int:
        return self.fields[name][0]

    def encode(self, name: str, value) -> bytes:
        _offset, fmt = self.fields[name]
        if fmt == "q":
            return _U64.pack(int(value) & 0xFFFF_FFFF_FFFF_FFFF)
        return _F64.pack(float(value))

    def decode_field(self, raw: bytes, name: str):
        offset, fmt = self.fields[name]
        packer = _U64 if fmt == "q" else _F64
        return packer.unpack_from(raw, offset)[0]


#: The one schema every sandbox and scraper share (versioned above).
LAYOUT = SegmentLayout()


@dataclass
class SegmentSnapshot:
    """A decoded (not-necessarily-consistent) view of segment bytes."""

    seq: int
    epoch: int
    values: dict[str, float] = field(default_factory=dict)
    valid: bool = True

    @property
    def consistent(self) -> bool:
        """Seqlock-consistent as far as *this* buffer can tell."""
        return self.valid and self.seq % 2 == 0

    def histogram(self, name: str) -> dict:
        buckets = [
            int(self.values[f"{name}.bucket{i}"]) for i in range(HIST_BUCKETS)
        ]
        return {
            "buckets": buckets,
            "count": int(self.values[f"{name}.count"]),
            "sum": float(self.values[f"{name}.sum"]),
        }


def seq_of(raw: bytes) -> int:
    """The seqlock word embedded in a raw segment read."""
    return _U64.unpack_from(raw, OFF_SEQ)[0]


def decode_segment(raw: bytes, layout: SegmentLayout = LAYOUT) -> SegmentSnapshot:
    """Decode raw segment bytes; does NOT imply seqlock consistency."""
    valid = (
        len(raw) >= layout.size_bytes
        and bytes(raw[OFF_MAGIC:OFF_MAGIC + 4]) == SEGMENT_MAGIC
    )
    snapshot = SegmentSnapshot(
        seq=seq_of(raw) if len(raw) >= OFF_SEQ + 8 else 0,
        epoch=_U64.unpack_from(raw, OFF_EPOCH)[0] if valid else 0,
        valid=valid,
    )
    if valid:
        for name in layout.fields:
            snapshot.values[name] = layout.decode_field(raw, name)
    return snapshot


class TelemetrySegment:
    """The sandbox-side (single) writer of one telemetry segment.

    Every mutation runs inside a seqlock bracket: ``seq`` goes odd,
    the slot qwords land, ``seq`` goes back even.  ``begin_update`` /
    ``end_update`` expose the bracket so multi-slot updates (and
    deliberately torn test schedules) cost two seq bumps total.
    """

    def __init__(self, cache: CacheModel, base_addr: int,
                 layout: SegmentLayout = LAYOUT):
        self.cache = cache
        self.base_addr = base_addr
        self.layout = layout
        self._seq = 0
        self._depth = 0
        self._values: dict[str, float] = {}
        self._seen_pointers: dict[str, int] = {}
        cache.cpu_write(
            base_addr + OFF_MAGIC,
            SEGMENT_MAGIC + struct.pack("<I", SEGMENT_VERSION),
        )
        cache.cpu_write(base_addr + OFF_SEQ, _U64.pack(0))
        self.reset(epoch=1)

    @property
    def size_bytes(self) -> int:
        return self.layout.size_bytes

    @property
    def epoch(self) -> int:
        return int(self._values.get("__epoch__", 0))

    # -- seqlock bracket ---------------------------------------------------

    def begin_update(self) -> None:
        """Open the seqlock bracket (seq -> odd).  Re-entrant."""
        self._depth += 1
        if self._depth == 1:
            self._seq += 1
            self.cache.cpu_write(
                self.base_addr + OFF_SEQ, _U64.pack(self._seq)
            )

    def end_update(self) -> None:
        """Close the seqlock bracket (seq -> even)."""
        if self._depth <= 0:
            raise RuntimeError("end_update() without begin_update()")
        self._depth -= 1
        if self._depth == 0:
            self._seq += 1
            self.cache.cpu_write(
                self.base_addr + OFF_SEQ, _U64.pack(self._seq)
            )

    def __enter__(self) -> "TelemetrySegment":
        self.begin_update()
        return self

    def __exit__(self, *_exc) -> None:
        self.end_update()

    # -- slot updates ------------------------------------------------------

    def _store(self, name: str, value) -> None:
        self._values[name] = value
        self.cache.cpu_write(
            self.base_addr + self.layout.offset_of(name),
            self.layout.encode(name, value),
        )

    def inc(self, name: str, delta: int = 1) -> None:
        with self:
            self._store(name, int(self._values.get(name, 0)) + delta)

    def set_gauge(self, name: str, value) -> None:
        with self:
            self._store(name, value)

    def observe(self, name: str, value_us: float) -> None:
        with self:
            bucket = f"{name}.bucket{bucket_of(value_us)}"
            self._store(bucket, int(self._values.get(bucket, 0)) + 1)
            self._store(
                f"{name}.count", int(self._values.get(f"{name}.count", 0)) + 1
            )
            self._store(
                f"{name}.sum",
                float(self._values.get(f"{name}.sum", 0.0)) + value_us,
            )

    def note_exec(
        self,
        hook_name: str,
        pointer: int,
        insns_executed: int,
        cost_us: float,
        now_us: float,
    ) -> bool:
        """Record one hook execution under a single seqlock bracket.

        Returns True when ``pointer`` differs from the last image this
        hook executed -- the sandbox-visible *install-observed* edge a
        causal deploy trace terminates on.
        """
        first_exec = self._seen_pointers.get(hook_name) != pointer
        with self:
            self._store(
                "exec.count", int(self._values.get("exec.count", 0)) + 1
            )
            self._store(
                "exec.insns",
                int(self._values.get("exec.insns", 0)) + insns_executed,
            )
            self._store("last_exec_us", now_us)
            bucket = f"exec_us.bucket{bucket_of(cost_us)}"
            self._store(bucket, int(self._values.get(bucket, 0)) + 1)
            self._store(
                "exec_us.count", int(self._values.get("exec_us.count", 0)) + 1
            )
            self._store(
                "exec_us.sum",
                float(self._values.get("exec_us.sum", 0.0)) + cost_us,
            )
            if first_exec:
                self._seen_pointers[hook_name] = pointer
                self._store(
                    "install.observed",
                    int(self._values.get("install.observed", 0)) + 1,
                )
                self._store("first_exec_us", now_us)
                self._store("last_install_addr", pointer)
        return first_exec

    def reset(self, epoch: int) -> None:
        """Zero every slot and stamp a new incarnation epoch.

        The epoch word lives *inside* the seqlock bracket, so a scraper
        can never pair pre-reset counters with the post-reset epoch.
        """
        with self:
            self.cache.cpu_write(
                self.base_addr + OFF_EPOCH, _U64.pack(epoch)
            )
            for name in self.layout.fields:
                self._store(name, 0)
        self._values["__epoch__"] = epoch
        self._seen_pointers = {}

    # -- test/debug helpers ------------------------------------------------

    def snapshot_local(self) -> SegmentSnapshot:
        """Writer-side decoded view straight from DRAM (no RDMA)."""
        raw = self.cache.memory.read(self.base_addr, self.layout.size_bytes)
        return decode_segment(bytes(raw), self.layout)


def segment_region(base_addr: int,
                   layout: SegmentLayout = LAYOUT) -> tuple[int, int]:
    """The [start, end) byte range a scraper must READ."""
    return base_addr, base_addr + layout.size_bytes
