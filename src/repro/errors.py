"""Exception hierarchy shared across the repro packages.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch domain failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all domain errors raised by this library."""


class MemoryError_(ReproError):
    """Bad simulated-memory access (out of range, bad permissions)."""


class RdmaError(ReproError):
    """RDMA verbs misuse or transport failure."""


class ProtectionError(RdmaError):
    """Remote key / protection-domain violation on a one-sided op."""


class TransientFault(RdmaError):
    """A retryable transport hiccup (dropped op, timeout, flapping link).

    Raised where retrying the same operation may legitimately succeed;
    :class:`repro.core.retry.RetryPolicy` absorbs these up to its
    attempt/deadline budget.
    """


class HostUnreachable(TransientFault):
    """The destination host is crashed or partitioned away.

    Transient in the protocol sense -- the initiator cannot tell a
    crash from a slow link, so it retries until its deadline expires.
    """


class DeadlineExceeded(ReproError):
    """An operation's retry/deadline budget ran out before it succeeded."""


class VerifierError(ReproError):
    """Extension bytecode rejected by a static verifier."""


class JitError(ReproError):
    """JIT compilation failed (unsupported opcode, bad relocation)."""


class LinkError(ReproError):
    """Binary could not be linked against the target context."""


class SandboxError(ReproError):
    """Sandbox runtime failure (crash, unresolved relocation hit)."""


class SandboxCrash(SandboxError):
    """The sandbox executed ill-formed code and crashed."""


class XStateError(ReproError):
    """XState allocation/lookup/update failure."""


class DeployError(ReproError):
    """Extension deployment failed (agent or RDX path)."""


class ConsistencyError(ReproError):
    """An update-consistency invariant was violated."""


class BroadcastAborted(ConsistencyError):
    """A collective update failed on some targets and was rolled back.

    Carries the :class:`~repro.core.broadcast.BroadcastResult` (as
    ``result``) so callers can inspect per-target outcomes: which
    deploys failed, which succeeded and were reverted, and how long
    the abort took.  All-or-nothing visibility is preserved -- by the
    time this is raised, every reachable target runs its prior image
    and every bubble flag is lowered.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class StaleEpochError(DeployError):
    """A control plane with a superseded deployment epoch tried to write.

    The target's control block carries a newer epoch than the writer's,
    meaning another control-plane incarnation has taken over since this
    one last talked to the target (crash restart, partition failover).
    The write is fenced out *before* any byte lands; the stale writer
    must stand down and re-resume from the journal.
    """


class SecurityError(ReproError):
    """RBAC / signature / runtime-limit violation."""


class WorkloadError(ReproError):
    """Workload or application model misconfiguration."""
