"""Exception hierarchy shared across the repro packages.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch domain failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all domain errors raised by this library."""


class MemoryError_(ReproError):
    """Bad simulated-memory access (out of range, bad permissions)."""


class RdmaError(ReproError):
    """RDMA verbs misuse or transport failure."""


class ProtectionError(RdmaError):
    """Remote key / protection-domain violation on a one-sided op."""


class VerifierError(ReproError):
    """Extension bytecode rejected by a static verifier."""


class JitError(ReproError):
    """JIT compilation failed (unsupported opcode, bad relocation)."""


class LinkError(ReproError):
    """Binary could not be linked against the target context."""


class SandboxError(ReproError):
    """Sandbox runtime failure (crash, unresolved relocation hit)."""


class SandboxCrash(SandboxError):
    """The sandbox executed ill-formed code and crashed."""


class XStateError(ReproError):
    """XState allocation/lookup/update failure."""


class DeployError(ReproError):
    """Extension deployment failed (agent or RDX path)."""


class ConsistencyError(ReproError):
    """An update-consistency invariant was violated."""


class SecurityError(ReproError):
    """RBAC / signature / runtime-limit violation."""


class WorkloadError(ReproError):
    """Workload or application model misconfiguration."""
