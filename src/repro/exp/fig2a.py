"""Fig 2a -- agent injection overhead vs program complexity.

Paper claim: extension injection in existing (agent-based) frameworks
is millisecond-level even for small extensions, growing with
instruction size; >=90% of it is local verification + JIT (§2.2 Obs 1).

We deploy BPF-selftest-style stress programs of each size through a
node agent and report mean injection latency, plus the verify+JIT
share of the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.ebpf.stress import make_stress_program
from repro.exp.harness import Testbed, make_testbed

#: What the paper's figure shows (shape anchors).
PAPER = {
    "claim": "ms-level injection at small sizes; grows with insn count",
    "verify_jit_share_min": 0.90,
    "small_size_floor_ms": 1.0,
}

DEFAULT_SIZES = (1_300, 11_000, 26_000)


@dataclass
class Fig2aPoint:
    insn_size: int
    mean_inject_us: float
    verify_jit_share: float


@dataclass
class Fig2aResult:
    points: list[Fig2aPoint] = field(default_factory=list)

    def series_ms(self) -> list[tuple[int, float]]:
        return [(p.insn_size, p.mean_inject_us / 1000.0) for p in self.points]


def run_fig2a(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 3,
    testbed: Testbed | None = None,
) -> Fig2aResult:
    """Measure agent injection latency across program sizes."""
    bed = testbed or make_testbed(with_codeflows=False)
    result = Fig2aResult()
    for size in sizes:
        program = make_stress_program(size, seed=size % 97 + 1)
        totals = []
        shares = []
        for repeat in range(repeats):
            breakdown = bed.sim.run_process(
                bed.agent.inject(program, "ingress")
            )
            totals.append(breakdown.total_us)
            compile_us = breakdown.verify_us + breakdown.jit_us
            shares.append(compile_us / breakdown.total_us)
        result.points.append(
            Fig2aPoint(
                insn_size=size,
                mean_inject_us=sum(totals) / len(totals),
                verify_jit_share=sum(shares) / len(shares),
            )
        )
    return result
