"""Recovery campaign: crash the control plane and put it back together.

Three scenarios, each ending in the same invariant -- after any
injected control-plane crash, node reboot, or partition heal,
anti-entropy reconciliation converges every target back to the
journal's committed intent (clean audits, correct epoch) and no
stale-writer deploy ever lands:

1. **control-plane crash mid-broadcast** -- the incarnation dies with
   bubbles raised, legs half-deployed and a dangling INTEND in the
   WAL.  A successor replays the journal, fences the targets with its
   epoch, adopts what survived, detaches the orphaned half-work and
   lowers the stranded bubbles;
2. **node crash, then warm reboot** -- the target comes back with its
   volatile control surface wiped.  The lease detector walks it to
   DEAD (broadcasts degrade around it instead of timing out), then
   reconciliation rebuilds it from the journal and traffic resumes;
3. **partition, then stale-writer fencing** -- a standby control host
   takes over while the old incarnation is partitioned away.  When the
   partition heals, the old plane's broadcast must bounce off the
   epoch fence: every leg fails with ``StaleEpochError``, nothing
   lands.

``RDX_FAULT_SEED`` reseeds the fault schedule in CI so the invariant
is checked under several timings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.broadcast import CodeFlowGroup
from repro.core.faults import FaultInjector
from repro.core.health import HealthDetector, TargetHealth
from repro.core.reconcile import Reconciler, resume_control_plane
from repro.ebpf.stress import make_stress_program
from repro.errors import BroadcastAborted
from repro.exp.harness import Testbed, format_table, make_testbed
from repro.net.topology import Host


@dataclass
class ScenarioResult:
    """One recovery scenario's outcome."""

    name: str
    seed: int
    #: Every reconciled target converged to committed intent.
    converged: bool = False
    #: Closing audits were clean on every target.
    audits_clean: bool = False
    #: No bubble flag left raised once recovery finished.
    bubbles_clear: bool = False
    #: Scenario 3 only: the stale incarnation's write never landed.
    fenced: bool = False
    repairs: int = 0
    rebooted_targets: int = 0
    aborted_txns: int = 0
    recovery_us: float = 0.0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.converged and self.audits_clean and self.bubbles_clear


@dataclass
class RecoveryCampaignResult:
    n_hosts: int
    seed: int
    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.scenarios) and all(s.ok for s in self.scenarios)


def _programs(bed: Testbed, version: int, insns: int = 200):
    return [
        make_stress_program(insns, seed=version * 31 + i, name=f"rec{i}")
        for i in range(len(bed.codeflows))
    ]


def _bubbles_clear(bed: Testbed) -> bool:
    return all(not sb.bubble_active() for sb in bed.sandboxes)


def _finish(result: ScenarioResult, bed: Testbed, reports) -> None:
    result.converged = all(r.converged for r in reports)
    result.audits_clean = all(
        r.audit is not None and r.audit.clean for r in reports
    )
    result.bubbles_clear = _bubbles_clear(bed)
    result.repairs = sum(len(r.actions) for r in reports)
    result.rebooted_targets = sum(1 for r in reports if r.rebooted)
    result.detail = "; ".join(
        f"{r.target}:{'+'.join(a.kind for a in r.actions) or 'noop'}"
        for r in reports
    )


def _serving(bed: Testbed) -> bool:
    """Every target answers data-path traffic with its extension."""
    for sandbox in bed.sandboxes:
        execution, _ = sandbox.run_hook("ingress", bytes(256))
        if execution is None:
            return False
    return True


def scenario_control_plane_crash(bed: Testbed, seed: int) -> ScenarioResult:
    """Kill the incarnation mid-broadcast; a successor reconciles."""
    result = ScenarioResult(name="control-plane crash mid-broadcast", seed=seed)
    rng = random.Random(seed)
    group = CodeFlowGroup(bed.codeflows)
    bed.sim.run_process(group.broadcast(_programs(bed, 1), "ingress"))

    # Launch the v2 broadcast, then fail-stop the control plane at a
    # random instant inside it: no cleanup runs, bubbles stay raised,
    # the WAL keeps a dangling INTEND.
    proc = bed.sim.spawn(
        group.broadcast(_programs(bed, 2), "ingress"), name="doomed-broadcast"
    )
    bed.sim.run(until=bed.sim.now + 20.0 + rng.uniform(0.0, 300.0))
    crashed_mid_flight = proc.is_alive
    bed.control.crash()
    proc.interrupt("control plane fail-stop")
    bed.sim.run()

    started = bed.sim.now
    plane, codeflows = bed.sim.run_process(
        resume_control_plane(
            bed.cluster.control_host, bed.control.journal, bed.sandboxes,
            trace=bed.trace,
        )
    )
    reconciler = Reconciler(plane)
    reports = bed.sim.run_process(reconciler.reconcile_all(codeflows))
    result.recovery_us = bed.sim.now - started
    result.aborted_txns = sum(
        1 for record in plane.journal.records if record.rec == "ABORT"
    )
    if crashed_mid_flight and not result.aborted_txns:
        result.detail += "; dangling INTEND was never aborted"
    _finish(result, bed, reports)
    if not _serving(bed):
        result.converged = False
        result.detail += "; data path dead after recovery"
    # Hand the repaired cluster back for follow-on scenarios.
    bed.control, bed.codeflows = plane, codeflows
    return result


def scenario_node_reboot(bed: Testbed, seed: int) -> ScenarioResult:
    """Crash a node, degrade around it, warm-reboot it, repair it."""
    result = ScenarioResult(name="node crash + warm reboot", seed=seed)
    rng = random.Random(seed + 1)
    group = CodeFlowGroup(bed.codeflows)
    health = HealthDetector(bed.codeflows)
    bed.sim.run_process(group.broadcast(_programs(bed, 3), "ingress"))

    victim = rng.randrange(len(bed.codeflows))
    injector = FaultInjector(bed.codeflows[victim], seed=seed)
    injector.crash_target()
    # Walk the victim's lease to DEAD; broadcasts now degrade around it
    # (one free leg failure) instead of burning its per-leg deadline.
    for _ in range(health.dead_after):
        bed.sim.run_process(health.probe_all())
    degraded = bed.sim.run_process(
        group.broadcast(
            _programs(bed, 4), "ingress", allow_partial=True, health=health
        )
    )
    assert degraded.degraded, "broadcast did not degrade around DEAD lease"

    # The node returns with DRAM intact but its control surface wiped.
    injector.recover_target(reboot=True)
    bed.sim.run_process(health.probe_all())

    started = bed.sim.now
    reconciler = Reconciler(bed.control, health=health)
    reports = bed.sim.run_process(reconciler.reconcile_all(bed.codeflows))
    result.recovery_us = bed.sim.now - started
    _finish(result, bed, reports)
    if health.state_of(bed.codeflows[victim].sandbox.name) is not TargetHealth.ALIVE:
        result.converged = False
        result.detail += "; victim lease never returned to ALIVE"
    if not _serving(bed):
        result.converged = False
        result.detail += "; data path dead after recovery"
    return result


def scenario_partition_fencing(bed: Testbed, seed: int) -> ScenarioResult:
    """Fail over during a partition; the old writer must be fenced."""
    result = ScenarioResult(name="partition + stale-writer fencing", seed=seed)
    group = CodeFlowGroup(bed.codeflows)
    bed.sim.run_process(group.broadcast(_programs(bed, 5), "ingress"))
    old_plane = bed.control
    fabric = bed.cluster.fabric

    # Partition the old control host from every data host, then fail
    # over to a standby control host on the healthy side.
    for sandbox in bed.sandboxes:
        fabric.partition(old_plane.host.name, sandbox.host.name)
    standby = Host(
        bed.sim, "control-standby", cores=8, dram_bytes=64 * 2**20,
        seed=seed,
    )
    fabric.attach(standby)
    plane, codeflows = bed.sim.run_process(
        resume_control_plane(
            standby, old_plane.journal, bed.sandboxes, trace=bed.trace
        )
    )
    reconciler = Reconciler(plane)
    reports = bed.sim.run_process(reconciler.reconcile_all(codeflows))
    _finish(result, bed, reports)

    # Heal the partition.  The old incarnation -- which never crashed,
    # it was only unreachable -- tries to push one more version.  Every
    # leg must bounce off the epoch fence before any byte lands.
    for sandbox in bed.sandboxes:
        fabric.heal(old_plane.host.name, sandbox.host.name)
    hooks_before = [
        sb.host.memory.read(sb.hook_table.slot_addr("ingress"), 8)
        for sb in bed.sandboxes
    ]
    stale = bed.sim.spawn(
        group.broadcast(_programs(bed, 6), "ingress"), name="stale-broadcast"
    )
    bed.sim.run()
    try:
        _ = stale.value
    except BroadcastAborted as err:
        outcomes = err.result.outcomes
        result.fenced = all(
            outcome.error_kind == "StaleEpochError" for outcome in outcomes
        )
        result.detail += f"; stale legs: {[o.error_kind for o in outcomes]}"
    else:
        result.fenced = False
        result.detail += "; stale broadcast was not rejected"
    hooks_after = [
        sb.host.memory.read(sb.hook_table.slot_addr("ingress"), 8)
        for sb in bed.sandboxes
    ]
    if hooks_before != hooks_after:
        result.fenced = False
        result.detail += "; a stale write landed on a hook"
    result.bubbles_clear = result.bubbles_clear and _bubbles_clear(bed)
    if not result.fenced:
        result.converged = False
    bed.control, bed.codeflows = plane, codeflows
    return result


def run_recovery_campaign(
    n_hosts: int = 3, seed: int = 0, testbed=None
) -> RecoveryCampaignResult:
    """Run all three recovery scenarios on one shared testbed."""
    bed = testbed or make_testbed(n_hosts=n_hosts, cores_per_host=8, seed=seed)
    result = RecoveryCampaignResult(n_hosts=n_hosts, seed=seed)
    result.scenarios.append(scenario_control_plane_crash(bed, seed))
    result.scenarios.append(scenario_node_reboot(bed, seed))
    result.scenarios.append(scenario_partition_fencing(bed, seed))
    return result


def format_recovery_report(result: RecoveryCampaignResult) -> str:
    rows = [
        [
            s.name,
            "yes" if s.converged else "NO",
            "yes" if s.audits_clean else "NO",
            "yes" if s.bubbles_clear else "NO",
            s.repairs,
            f"{s.recovery_us:.1f}",
        ]
        for s in result.scenarios
    ]
    verdict = "PASS" if result.ok else "FAIL"
    return format_table(
        f"RDX recovery campaign ({result.n_hosts} hosts, "
        f"seed {result.seed}): {verdict}",
        ["scenario", "converged", "audits", "bubbles", "repairs", "t_us"],
        rows,
        note="invariant: reconciliation converges every target to the "
        "journal's committed intent; no stale-writer deploy ever lands",
    )


def main() -> int:
    import os

    seed = int(os.environ.get("RDX_FAULT_SEED", "0"))
    result = run_recovery_campaign(seed=seed)
    print(format_recovery_report(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
