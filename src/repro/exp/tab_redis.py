"""Redis agent-tax experiment (paper §6: "up to 25.3%").

Paper claim: agentless eBPF over RDX improves Redis throughput by up
to 25.3% over the agent baseline, because the agent's injection work
and periodic XState polling burn the cores Redis runs on.

Setup: a Redis-like server saturates a small host.  The **agent** run
adds periodic eBPF injections plus map polling on the same host; the
**RDX** run performs the same logical operations from the control
plane (injections one-sided, XState reads via RDMA) -- zero host CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro import params
from repro.apps.rediskv import RedisLikeServer
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed

PAPER = {
    "improvement_pct_max": 25.3,
    "claim": "agentless eBPF lifts Redis throughput by up to ~25%",
}


@dataclass
class TabRedisResult:
    agent_ops_s: float
    rdx_ops_s: float

    @property
    def improvement_pct(self) -> float:
        if self.agent_ops_s <= 0:
            return 0.0
        return (self.rdx_ops_s / self.agent_ops_s - 1.0) * 100.0


def run_tab_redis(
    duration_us: float = 300_000.0,
    cores: int = 2,
    n_workers: int = 2,
    inject_interval_us: float = 100_000.0,
    inject_insns: int = 20_000,
    poll_interval_us: float = 3_000.0,
    poll_cost_us: float = 450.0,
) -> TabRedisResult:
    """Measure Redis throughput under agent vs RDX management."""
    agent_ops = _run_one(
        duration_us, cores, n_workers, inject_interval_us, inject_insns,
        poll_interval_us, poll_cost_us, mode="agent",
    )
    rdx_ops = _run_one(
        duration_us, cores, n_workers, inject_interval_us, inject_insns,
        poll_interval_us, poll_cost_us, mode="rdx",
    )
    return TabRedisResult(agent_ops_s=agent_ops, rdx_ops_s=rdx_ops)


def _run_one(
    duration_us: float,
    cores: int,
    n_workers: int,
    inject_interval_us: float,
    inject_insns: int,
    poll_interval_us: float,
    poll_cost_us: float,
    mode: str,
) -> float:
    bed = make_testbed(n_hosts=1, cores_per_host=cores)
    server = RedisLikeServer(bed.host, n_workers=n_workers)
    program = make_stress_program(inject_insns, seed=3, name="redis_ext")

    if mode == "agent":

        def churn() -> Generator:
            while bed.sim.now < duration_us:
                yield bed.sim.timeout(inject_interval_us)
                yield from bed.agent.inject(program, "ingress")

        bed.sim.spawn(churn(), name="agent-churn")
        bed.agent.start_state_polling(
            interval_us=poll_interval_us,
            cost_us=poll_cost_us,
            duration_us=duration_us,
        )
    else:
        # Same management cadence, driven from the control plane.
        def churn() -> Generator:
            while bed.sim.now < duration_us:
                yield bed.sim.timeout(inject_interval_us)
                yield from bed.control.inject(
                    bed.codeflow, program, "ingress", retain_history=False
                )

        def poll() -> Generator:
            # XState introspection via one-sided READs of the hook +
            # metadata region -- no target CPU involved.
            while bed.sim.now < duration_us:
                yield bed.sim.timeout(poll_interval_us)
                yield from bed.codeflow.read_raw(
                    bed.codeflow.manifest.metadata_addr, 256
                )

        bed.sim.spawn(churn(), name="rdx-churn")
        bed.sim.spawn(poll(), name="rdx-poll")

    result = bed.sim.run_process(server.run_load(duration_us))
    return result.throughput_ops_s
