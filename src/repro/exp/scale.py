"""Rack-scale experiment plumbing: sharded testbeds and scale probes.

The PR-4/PR-7 benches stop at 8 targets -- one control plane, one flat
fan-out.  This module builds the rack-scale arrangements the scale
bench (``benchmarks/bench_scale.py``) sweeps:

* :func:`sharded_testbed` -- N data hosts partitioned across K
  control-plane shards (each shard a full control *host* on the shared
  fabric, not a thread on one box), wired into per-shard
  :class:`~repro.core.broadcast.CodeFlowGroup`\\ s plus one
  :class:`~repro.core.shard.ShardedGroup` collective handle;
* :func:`broadcast_window` -- one measured broadcast at a given scale
  under a chosen arm (flat / tree / sharded-tree), returning the
  bubble window;
* :func:`kernel_throughput` -- a pure sim-kernel stress (no RDX stack)
  measuring dispatched events per wall-clock second under the fast or
  legacy dispatch loop.

Everything restores the param flags it flips, so probes compose with
each other and with the surrounding test process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import params
from repro.core.api import bootstrap_sandbox
from repro.core.broadcast import CodeFlowGroup
from repro.core.control_plane import RdxControlPlane
from repro.core.shard import ShardedGroup, partition
from repro.ebpf.stress import make_stress_program
from repro.net.topology import Cluster, Host
from repro.obs import Telemetry, telemetry_of
from repro.sandbox.sandbox import Sandbox
from repro.sim.core import Simulator
from repro.sim.resources import CPU
from repro.sim.trace import TraceRecorder


@dataclass
class ShardedTestbed:
    """A rack with K control-plane shards instead of one control host."""

    sim: Simulator
    cluster: Cluster
    sandboxes: list[Sandbox]
    planes: list[RdxControlPlane]
    groups: list[CodeFlowGroup]
    sharded: ShardedGroup
    trace: TraceRecorder

    @property
    def obs(self) -> Telemetry:
        return telemetry_of(self.sim)

    @property
    def codeflows(self) -> list:
        return self.sharded.codeflows


def sharded_testbed(
    n_hosts: int,
    shards: int,
    cores_per_host: int = 4,
    hooks: tuple[str, ...] = ("ingress",),
    seed: int = 0,
    sim: Optional[Simulator] = None,
) -> ShardedTestbed:
    """Build N data hosts owned by K control-plane shards.

    Each shard is a dedicated control host (``ctrl0`` .. ``ctrlK-1``)
    on the cluster fabric running its own
    :class:`~repro.core.control_plane.RdxControlPlane` -- own journal,
    own epoch, own RNIC -- over a contiguous partition of the
    sandboxes, exactly the deployment §2 of the issue describes.
    """
    if sim is None:
        sim = Simulator()
    trace = TraceRecorder(enabled=False)
    cluster = Cluster(
        sim, n_hosts=n_hosts, cores_per_host=cores_per_host,
        dram_bytes=64 * 2**20, with_control_host=False, seed=seed,
    )
    sandboxes = []
    for host in cluster.hosts:
        sandbox = Sandbox(host, hooks=hooks)
        bootstrap_sandbox(sandbox)
        sandboxes.append(sandbox)

    planes = []
    groups = []
    for index, owned in enumerate(partition(sandboxes, shards)):
        control_host = Host(
            sim, f"ctrl{index}", cores=params.HOST_CORES,
            dram_bytes=64 * 2**20, seed=seed + index,
        )
        cluster.fabric.attach(control_host)
        plane = RdxControlPlane(
            control_host, trace=trace, shard=f"shard{index}"
        )
        codeflows = [
            sim.run_process(plane.create_codeflow(sandbox))
            for sandbox in owned
        ]
        planes.append(plane)
        groups.append(CodeFlowGroup(codeflows))
    return ShardedTestbed(
        sim=sim, cluster=cluster, sandboxes=sandboxes,
        planes=planes, groups=groups, sharded=ShardedGroup(groups),
        trace=trace,
    )


def _programs(n: int, seed: int) -> list:
    return [
        make_stress_program(400, seed=seed * 31 + i, name=f"p{i}")
        for i in range(n)
    ]


def broadcast_window(
    n_targets: int,
    tree: bool = True,
    shards: int = 1,
    degree: Optional[int] = None,
    seed: int = 0,
) -> float:
    """One measured broadcast at ``n_targets``; returns the bubble
    window in microseconds.

    Arms: ``tree=False, shards=1`` is the flat PR-4 fan-out (the
    ablation baseline); ``tree=True`` turns on relay fan-out;
    ``shards > 1`` splits the group across that many control planes
    with the cross-shard commit.  ``verify`` is off -- CRC readback
    adds the same linear term to every arm and the window is the
    quantity under test.
    """
    saved = (
        params.RDX_TREE_BROADCAST,
        params.RDX_TREE_DEGREE,
        params.RDX_BROADCAST_SHARDS,
    )
    params.RDX_TREE_BROADCAST = tree
    if degree is not None:
        params.RDX_TREE_DEGREE = degree
    params.RDX_BROADCAST_SHARDS = shards
    try:
        programs = _programs(n_targets, seed)
        if shards > 1:
            bed = sharded_testbed(n_targets, shards, seed=seed)
            result = bed.sim.run_process(
                bed.sharded.broadcast(programs, "ingress", verify=False)
            )
        else:
            from repro.exp.harness import make_testbed

            bed = make_testbed(
                n_hosts=n_targets, cores_per_host=4, hooks=("ingress",),
                with_agents=False, seed=seed,
            )
            group = CodeFlowGroup(bed.codeflows)
            result = bed.sim.run_process(
                group.broadcast(programs, "ingress", verify=False)
            )
        return result.bubble_window_us
    finally:
        (
            params.RDX_TREE_BROADCAST,
            params.RDX_TREE_DEGREE,
            params.RDX_BROADCAST_SHARDS,
        ) = saved


def _kernel_node(sim: Simulator, cpu: CPU, iters: int, seed: int):
    """One node's kernel-stress loop: mixed-priority, quantum-sliced
    CPU work interleaved with short timers -- the event mix a 1024-node
    broadcast actually generates (grants, slice expiries, timeouts)."""
    for i in range(iters):
        cost = 1.0 + ((seed + i) % 3)
        yield from cpu.run(cost, priority=i % 2, quantum_us=0.5)
        yield sim.timeout(0.1 + (seed % 5) * 0.01)


def kernel_throughput(
    n_nodes: int, fast: bool = True, iters: int = 20
) -> tuple[float, int]:
    """Sim-kernel stress: returns (events per wall second, events).

    Builds ``n_nodes`` two-core CPU pools and runs ``iters``
    mixed-priority quantum-sliced tasks on each -- pure kernel work
    (calendar pops, resource grants, generator resumes) with no RDX
    stack on top, so the two dispatch loops
    (:data:`repro.params.RDX_SIM_FAST` on/off) are compared on exactly
    the same event stream.
    """
    saved = params.RDX_SIM_FAST
    params.RDX_SIM_FAST = fast
    try:
        sim = Simulator()
        for node in range(n_nodes):
            cpu = CPU(sim, cores=2, name=f"n{node}.cpu")
            sim.spawn(
                _kernel_node(sim, cpu, iters, seed=node), name=f"n{node}"
            )
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        events = sim._processed_events
        return events / max(elapsed, 1e-9), events
    finally:
        params.RDX_SIM_FAST = saved


__all__ = [
    "ShardedTestbed",
    "sharded_testbed",
    "broadcast_window",
    "kernel_throughput",
]
